//! The serving tier's determinism contract, under concurrency.
//!
//! A resident session answers ad-hoc queries from its shared sketch
//! state while appends keep arriving. The contract: every query answer
//! is **bit-identical** to a fresh one-shot [`dangoron::Dangoron`] run
//! over exactly the column prefix the answer reports
//! (`QueryReply::covered_cols`) — regardless of how appends and
//! concurrent queries interleave, which engine mode is resident, or
//! which of many `(window, step, threshold)` combinations is asked.
//!
//! The interleaving schedule is seeded ([`dist::chaos::Rng`]): append
//! chunk sizes are drawn per seed while N query threads race the
//! appender over their own links, so a failure reproduces by seed.

use dangoron::config::{HorizontalConfig, PivotStrategy};
use dangoron::{BoundMode, Dangoron, DangoronConfig};
use dist::chaos::Rng;
use serve::{Registry, ServeClient};
use sketch::SlidingQuery;
use std::sync::Arc;
use std::time::Duration;
use tsdata::{generators, TimeSeriesMatrix};

const N_SERIES: usize = 8;
const TOTAL_COLS: usize = 600;
const INITIAL_COLS: usize = 100;
const SESSION: (usize, usize, f64) = (80, 20, 0.7);

/// The ad-hoc combos the query threads ask, none requiring the session's
/// own geometry.
const COMBOS: [(usize, usize, f64); 3] = [(80, 20, 0.7), (60, 20, 0.9), (100, 40, 0.5)];

fn exhaustive_with_pivots() -> DangoronConfig {
    DangoronConfig {
        basic_window: 20,
        bound: BoundMode::Exhaustive,
        horizontal: Some(HorizontalConfig {
            n_pivots: 2,
            strategy: PivotStrategy::Evenly,
        }),
        ..Default::default()
    }
}

fn jump_mode() -> DangoronConfig {
    DangoronConfig {
        basic_window: 20,
        bound: BoundMode::PaperJump { slack: 0.0 },
        ..Default::default()
    }
}

/// Asserts a wire answer is bit-identical to a fresh one-shot run over
/// the covered prefix.
fn verify_against_fresh(
    full: &TimeSeriesMatrix,
    config: &DangoronConfig,
    covered: usize,
    window: usize,
    step: usize,
    threshold: f64,
    wire_edges: &[(u32, sketch::output::Edge)],
) {
    let prefix = full.slice_columns(0, covered).expect("covered prefix");
    let fresh = Dangoron::new(config.clone())
        .expect("engine config")
        .execute(
            &prefix,
            SlidingQuery {
                start: 0,
                end: covered,
                window,
                step,
                threshold,
            },
        )
        .expect("fresh one-shot run");
    let mut fresh_edges = Vec::new();
    for (w, m) in fresh.matrices.iter().enumerate() {
        fresh_edges.extend(m.edges().iter().map(|e| (w as u32, *e)));
    }
    assert_eq!(
        wire_edges.len(),
        fresh_edges.len(),
        "edge count diverged at covered={covered} ({window},{step},{threshold})"
    );
    for (a, b) in wire_edges.iter().zip(&fresh_edges) {
        assert_eq!((a.0, a.1.i, a.1.j), (b.0, b.1.i, b.1.j));
        assert_eq!(
            a.1.value.to_bits(),
            b.1.value.to_bits(),
            "edge value not bit-identical at covered={covered} w{} ({},{})",
            a.0,
            a.1.i,
            a.1.j
        );
    }
}

/// One seeded interleaving: an appender drives the session from
/// `INITIAL_COLS` to `TOTAL_COLS` in seeded chunks while three query
/// threads (their own links) race it; every answer must verify against a
/// fresh run over its reported prefix.
fn run_interleaving(seed: u64, config: DangoronConfig) {
    let full = Arc::new(
        generators::clustered_matrix(N_SERIES, TOTAL_COLS, 2, 0.5, seed).expect("dataset"),
    );
    let addr = serve::spawn_local(Arc::new(Registry::new(None)), None)
        .expect("in-process daemon")
        .to_string();
    let name = format!("prop-{seed}");
    let (window, step, threshold) = SESSION;

    let mut appender = ServeClient::connect(&addr, Duration::from_secs(10)).expect("connect");
    let opened = appender
        .open(
            &name,
            &full.slice_columns(0, INITIAL_COLS).expect("initial"),
            window,
            step,
            threshold,
            &config,
        )
        .expect("open");
    assert_eq!(opened.covered_cols, INITIAL_COLS);

    let workers: Vec<_> = COMBOS
        .iter()
        .enumerate()
        .map(|(k, &(w, s, beta))| {
            let full = Arc::clone(&full);
            let config = config.clone();
            let addr = addr.clone();
            let name = name.clone();
            std::thread::spawn(move || {
                let mut client =
                    ServeClient::connect(&addr, Duration::from_secs(10)).expect("connect");
                for round in 0..4 {
                    let reply = client.query(&name, w, s, beta).expect("query");
                    assert!(
                        reply.covered_cols >= INITIAL_COLS && reply.covered_cols <= TOTAL_COLS,
                        "thread {k} round {round}: covered {} outside the stream",
                        reply.covered_cols
                    );
                    verify_against_fresh(
                        &full,
                        &config,
                        reply.covered_cols,
                        w,
                        s,
                        beta,
                        &reply.edges,
                    );
                }
            })
        })
        .collect();

    // The seeded append schedule, racing the query threads above.
    let mut rng = Rng::new(seed ^ 0x5eed);
    let mut at = INITIAL_COLS;
    while at < TOTAL_COLS {
        let chunk = (rng.range_u64(1, 60) as usize).min(TOTAL_COLS - at);
        let ack = appender
            .append(&name, &full.slice_columns(at, at + chunk).expect("chunk"))
            .expect("append");
        at += chunk;
        // The sketches absorb whole basic windows; a ragged tail stays
        // raw until the next append completes it.
        let absorbed = at / 20 * 20;
        assert_eq!(
            ack.covered_cols, absorbed,
            "backpressure ack tracks the absorbed prefix"
        );
    }
    for h in workers {
        h.join().expect("query thread");
    }

    // Quiescent sweep: with the full stream resident, every combo must
    // verify at covered == TOTAL_COLS (guaranteed full-prefix coverage
    // even if every racing query above landed early).
    let mut client = ServeClient::connect(&addr, Duration::from_secs(10)).expect("connect");
    for &(w, s, beta) in &COMBOS {
        let reply = client.query(&name, w, s, beta).expect("query");
        assert_eq!(reply.covered_cols, TOTAL_COLS);
        verify_against_fresh(&full, &config, TOTAL_COLS, w, s, beta, &reply.edges);
    }
}

#[test]
fn concurrent_shared_queries_are_bit_identical_to_one_shot_runs() {
    run_interleaving(11, exhaustive_with_pivots());
}

#[test]
fn concurrent_shared_queries_verify_in_jump_mode() {
    run_interleaving(42, jump_mode());
}

#[test]
fn session_geometry_queries_share_the_pivot_table() {
    // The session's own (window, step) reuses the resident pivot table;
    // this seed pins that path under the same contract.
    let full = generators::clustered_matrix(N_SERIES, 400, 2, 0.5, 77).expect("dataset");
    let addr = serve::spawn_local(Arc::new(Registry::new(None)), None)
        .expect("daemon")
        .to_string();
    let config = exhaustive_with_pivots();
    let mut client = ServeClient::connect(&addr, Duration::from_secs(10)).expect("connect");
    client
        .open(
            "pivots",
            &full.slice_columns(0, 400).expect("all"),
            80,
            20,
            0.7,
            &config,
        )
        .expect("open");
    let reply = client.query("pivots", 80, 20, 0.7).expect("query");
    assert_eq!(reply.covered_cols, 400);
    verify_against_fresh(&full, &config, 400, 80, 20, 0.7, &reply.edges);
}
