//! Failure injection: malformed or hostile data must never panic an
//! engine or fabricate edges — the contract is "undefined correlation ⇒
//! no edge", plus an explicit repair path for dirty inputs.

use baselines::naive::Naive;
use baselines::parcorr::ParCorr;
use baselines::statstream::StatStream;
use baselines::tsubasa::Tsubasa;
use baselines::SlidingEngine;
use dangoron::{Dangoron, DangoronConfig};
use sketch::SlidingQuery;
use tsdata::sync::repair_non_finite;
use tsdata::{generators, TimeSeriesMatrix};

fn query() -> SlidingQuery {
    SlidingQuery {
        start: 0,
        end: 200,
        window: 40,
        step: 20,
        threshold: 0.8,
    }
}

fn engines() -> Vec<Box<dyn SlidingEngine>> {
    vec![
        Box::new(Naive),
        Box::new(Tsubasa {
            basic_window: 20,
            threads: 1,
        }),
        Box::new(ParCorr {
            dim: 32,
            seed: 1,
            margin: 0.1,
            verify: true,
        }),
        // Full coefficient set: this suite tests failure handling, not the
        // truncation recall that E6 measures.
        Box::new(StatStream {
            coeffs: 40,
            margin: 0.1,
            verify: true,
        }),
    ]
}

#[test]
fn nan_poisoned_series_produce_no_edges_and_no_panics() {
    let clean = generators::white_noise(200, 1);
    let mut poisoned = generators::white_noise(200, 2);
    poisoned[50] = f64::NAN;
    poisoned[130] = f64::NAN;
    let live_a = generators::white_noise(200, 3);
    let live_b = live_a.clone();
    let x = TimeSeriesMatrix::from_rows(vec![clean, poisoned, live_a, live_b]).unwrap();

    for engine in engines() {
        let ms = engine.execute(&x, query()).unwrap();
        for (w, m) in ms.iter().enumerate() {
            // Windows touching the NaN cannot connect the poisoned series.
            let (ws, we) = query().window_range(w);
            if (ws..we).contains(&50) || (ws..we).contains(&130) {
                assert!(
                    !m.contains(0, 1) && !m.contains(1, 2),
                    "{}: edge through NaN window",
                    engine.name()
                );
            }
            // No emitted value may be NaN.
            for e in m.edges() {
                assert!(e.value.is_finite(), "{}: non-finite edge", engine.name());
            }
        }
        // The identical clean pair must still connect everywhere.
        assert!(
            ms.iter().all(|m| m.contains(2, 3)),
            "{}: lost the clean identical pair",
            engine.name()
        );
    }

    // Dangoron, both modes.
    for bound in [
        dangoron::BoundMode::Exhaustive,
        dangoron::BoundMode::PaperJump { slack: 0.0 },
    ] {
        let engine = Dangoron::new(DangoronConfig {
            basic_window: 20,
            bound,
            ..Default::default()
        })
        .unwrap();
        let res = engine.execute(&x, query()).unwrap();
        for m in &res.matrices {
            for e in m.edges() {
                assert!(e.value.is_finite());
            }
        }
        assert!(res.matrices.iter().all(|m| m.contains(2, 3)));
    }
}

#[test]
fn repair_then_query_recovers_poisoned_data() {
    // The documented path for dirty data: repair_non_finite, then query.
    let base = generators::white_noise(200, 7);
    let mut a = base.clone();
    a[99] = f64::NAN;
    let mut b = base;
    b[100] = f64::INFINITY;
    let mut x = TimeSeriesMatrix::from_rows(vec![a, b]).unwrap();
    let repaired = repair_non_finite(&mut x).unwrap();
    assert_eq!(repaired, 2);
    let engine = Dangoron::new(DangoronConfig {
        basic_window: 20,
        ..Default::default()
    })
    .unwrap();
    let res = engine.execute(&x, query()).unwrap();
    // Nearly identical series: every window connects after repair.
    assert!(res.matrices.iter().all(|m| m.contains(0, 1)));
}

#[test]
fn extreme_magnitudes_do_not_panic() {
    // 1e300-scale values overflow intermediate squared sums to infinity;
    // engines must degrade to "no edge", never panic or emit non-finite.
    let huge: Vec<f64> = (0..200).map(|t| 1e300 * ((t as f64) * 0.1).sin()).collect();
    let tiny: Vec<f64> = (0..200)
        .map(|t| 1e-300 * ((t as f64) * 0.1).cos())
        .collect();
    let normal = generators::white_noise(200, 5);
    let x = TimeSeriesMatrix::from_rows(vec![huge, tiny, normal]).unwrap();
    for engine in engines() {
        let ms = engine.execute(&x, query()).unwrap();
        for m in &ms {
            for e in m.edges() {
                assert!(e.value.is_finite(), "{}", engine.name());
            }
        }
    }
    let engine = Dangoron::new(DangoronConfig {
        basic_window: 20,
        ..Default::default()
    })
    .unwrap();
    let res = engine.execute(&x, query()).unwrap();
    for m in &res.matrices {
        for e in m.edges() {
            assert!(e.value.is_finite());
        }
    }
}

#[test]
fn dropped_subscriber_never_poisons_the_session_or_stalls_other_tenants() {
    // The serving tier's failure case: a subscriber that vanishes without
    // unsubscribing. The daemon must shed it on the next delta push; the
    // session it watched keeps absorbing appends, and *other* tenants'
    // sessions never even notice.
    use serve::{Registry, ServeClient};
    use std::sync::Arc;
    use std::time::Duration;

    let cfg = DangoronConfig {
        basic_window: 20,
        ..Default::default()
    };
    let full = generators::clustered_matrix(6, 300, 2, 0.5, 17).unwrap();
    let addr = serve::spawn_local(Arc::new(Registry::new(None)), None)
        .unwrap()
        .to_string();

    let mut owner = ServeClient::connect(&addr, Duration::from_secs(10)).unwrap();
    owner
        .open(
            "watched",
            &full.slice_columns(0, 100).unwrap(),
            60,
            20,
            0.8,
            &cfg,
        )
        .unwrap();
    let mut tenant = ServeClient::connect(&addr, Duration::from_secs(10)).unwrap();
    tenant
        .open(
            "tenant",
            &full.slice_columns(0, 100).unwrap(),
            40,
            20,
            0.8,
            &cfg,
        )
        .unwrap();

    // Three subscribers on the watched session; all vanish unread.
    for _ in 0..3 {
        let mut sub = ServeClient::connect(&addr, Duration::from_secs(10)).unwrap();
        sub.subscribe("watched").unwrap();
        sub.disconnect();
    }

    // Appends to the watched session must keep acking (the dead sinks are
    // shed, not waited on), and the other tenant stays fully serviceable
    // throughout.
    for (from, to) in [(100, 180), (180, 240), (240, 300)] {
        let ack = owner
            .append("watched", &full.slice_columns(from, to).unwrap())
            .unwrap();
        assert_eq!(ack.covered_cols, to);
        let reply = tenant.query("tenant", 40, 20, 0.8).unwrap();
        assert!(reply.n_windows > 0, "other tenant starved");
    }

    // The watched session's answers are still exact after shedding.
    let reply = owner.query("watched", 60, 20, 0.8).unwrap();
    let fresh = Dangoron::new(cfg.clone())
        .unwrap()
        .execute(
            &full,
            SlidingQuery {
                start: 0,
                end: 300,
                window: 60,
                step: 20,
                threshold: 0.8,
            },
        )
        .unwrap();
    let n_fresh: usize = fresh.matrices.iter().map(|m| m.n_edges()).sum();
    assert_eq!(reply.edges.len(), n_fresh);
    for ((w, e), (fw, fe)) in reply.edges.iter().zip(
        fresh
            .matrices
            .iter()
            .enumerate()
            .flat_map(|(w, m)| m.edges().iter().map(move |e| (w as u32, e))),
    ) {
        assert_eq!((*w, e.i, e.j), (fw, fe.i, fe.j));
        assert_eq!(e.value.to_bits(), fe.value.to_bits());
    }
}

#[test]
fn constant_and_near_constant_series_are_handled() {
    let constant = vec![42.0; 200];
    // Near-constant: variance ~1e-30, numerically at the edge.
    let near: Vec<f64> = (0..200).map(|t| 42.0 + 1e-15 * (t % 2) as f64).collect();
    let live = generators::white_noise(200, 11);
    let x = TimeSeriesMatrix::from_rows(vec![constant, near, live]).unwrap();
    for engine in engines() {
        let ms = engine.execute(&x, query()).unwrap();
        for m in &ms {
            assert!(!m.contains(0, 2), "{}: constant series edge", engine.name());
            for e in m.edges() {
                assert!(e.value.is_finite());
            }
        }
    }
}
