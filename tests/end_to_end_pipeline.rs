//! Full pipeline integration: USCRN-format text → parsing →
//! synchronization → Dangoron → network analytics.

use dangoron::{Dangoron, DangoronConfig};
use network::temporal::window_summaries;
use sketch::SlidingQuery;
use tsdata::sync::{synchronize_all, Aggregation, Grid};
use tsdata::uscrn::{self, Variable};

/// Builds a small USCRN-format corpus: 4 stations, hourly for `hours`
/// hours. Stations 1/2 share a warm-weather pattern, stations 3/4 a cold
/// one, so the downstream network must split into two communities.
fn fake_uscrn_corpus(hours: usize) -> Vec<String> {
    let mut lines = Vec::new();
    for h in 0..hours {
        let day = h / 24;
        let hour = h % 24;
        // Two regional temperature regimes plus tiny station offsets.
        let warm = 20.0
            + 8.0 * ((h as f64) * std::f64::consts::TAU / 24.0).sin()
            + (day as f64 * 0.7).sin() * 4.0;
        let cold = -2.0
            + 3.0 * ((h as f64) * std::f64::consts::TAU / 24.0).cos()
            + (day as f64 * 1.3).cos() * 5.0;
        for (station, base, offset) in [
            (1001u32, warm, 0.0),
            (1002, warm, 0.4),
            (2001, cold, 0.0),
            (2002, cold, -0.3),
        ] {
            // Occasionally emit the missing sentinel to exercise
            // interpolation (every 50th observation of station 1002).
            let value = if station == 1002 && h % 50 == 7 {
                "-9999.0".to_string()
            } else {
                format!("{:.1}", base + offset)
            };
            lines.push(format!(
                "{station} 2020{:02}{:02} {:02}00 20200101 0000 3 -105.0 40.0 {value} 0 0 0 0.0 0 0 0 0 0 0 R 0 0 0 0 0 0 50 0",
                1 + day / 28,
                1 + day % 28,
                hour
            ));
        }
    }
    lines
}

#[test]
fn uscrn_text_to_correlation_network() {
    let hours = 24 * 28; // four weeks
    let corpus = fake_uscrn_corpus(hours);

    // Parse.
    let data = uscrn::read_lines(corpus.iter().map(|s| s.as_str()), Variable::TCalc).unwrap();
    assert_eq!(data.n_stations(), 4);

    // Synchronize onto the hourly grid.
    let start = uscrn::parse_utc("20200101", "0000").unwrap();
    let grid = Grid::new(start, 3600, hours).unwrap();
    let matrix = synchronize_all(&data.into_series(), &grid, Aggregation::Mean).unwrap();
    assert_eq!(matrix.n_series(), 4);
    assert_eq!(matrix.len(), hours);

    // Query: daily windows sliding 12 h.
    let query = SlidingQuery {
        start: 0,
        end: hours,
        window: 48,
        step: 12,
        threshold: 0.9,
    };
    let engine = Dangoron::new(DangoronConfig {
        basic_window: 12,
        ..Default::default()
    })
    .unwrap();
    let result = engine.execute(&matrix, query).unwrap();
    assert_eq!(result.matrices.len(), query.n_windows());

    // The two regional pairs must dominate the network.
    let mut warm_pair = 0usize;
    let mut cold_pair = 0usize;
    let mut cross = 0usize;
    for m in &result.matrices {
        if m.contains(0, 1) {
            warm_pair += 1;
        }
        if m.contains(2, 3) {
            cold_pair += 1;
        }
        for (i, j) in [(0, 2), (0, 3), (1, 2), (1, 3)] {
            if m.contains(i, j) {
                cross += 1;
            }
        }
    }
    let n = result.matrices.len();
    assert!(
        warm_pair > n * 8 / 10,
        "warm pair connected {warm_pair}/{n}"
    );
    assert!(
        cold_pair > n * 8 / 10,
        "cold pair connected {cold_pair}/{n}"
    );
    // Cross-regime edges can fire occasionally (both regimes share the
    // diurnal cycle) but must be rarer than in-regime ones.
    assert!(
        cross < warm_pair + cold_pair,
        "cross edges {cross} should not dominate"
    );

    // Network summaries come out structurally sane.
    let summaries = window_summaries(&result.matrices);
    assert_eq!(summaries.len(), n);
    assert!(summaries.iter().all(|s| s.n_components >= 1));
}

#[test]
fn sketch_serialization_roundtrip_preserves_query_results() {
    let w = eval::workloads::climate_quick(6, 0.85).unwrap();
    let layout = sketch::BasicWindowLayout::for_query(&w.query, w.basic_window).unwrap();
    let store = sketch::SketchStore::build(&w.data, layout).unwrap();

    // Persist, reload, and verify the reloaded store answers identically.
    let bytes = store.serialize();
    let restored = sketch::SketchStore::deserialize(&bytes).unwrap();
    assert_eq!(store, restored);

    let pair = sketch::PairSketch::build(&layout, w.data.row(0), w.data.row(1)).unwrap();
    for b0 in 0..4 {
        let r1 = sketch::combine::window_correlation(&store, &pair, 0, 1, b0, b0 + 3);
        let r2 = sketch::combine::window_correlation(&restored, &pair, 0, 1, b0, b0 + 3);
        match (r1, r2) {
            (Ok(a), Ok(b)) => assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            other => panic!("divergent results: {other:?}"),
        }
    }
}
