//! Integration of the Tomborg benchmark with the engines: generated
//! datasets have known structure, so engine outputs can be validated
//! against generation-time ground truth (not just against each other).

use baselines::statstream::StatStream;
use baselines::SlidingEngine;
use dangoron::{BoundMode, DangoronConfig};
use eval::engines::DangoronEngine;
use eval::workloads;
use tomborg::verify::{edge_agreement, fidelity};
use tomborg::{CorrDistribution, SpectralEnvelope, TomborgConfig};

#[test]
fn generated_data_matches_its_target() {
    let d = tomborg::generator::generate(&TomborgConfig {
        n_series: 12,
        len: 4_096,
        corr: CorrDistribution::Block {
            n_blocks: 3,
            within: 0.8,
            between: 0.05,
            jitter: 0.0,
        },
        spectrum: SpectralEnvelope::White,
        seed: 77,
    })
    .unwrap();
    let f = fidelity(&d.data, &d.target).unwrap();
    assert!(f.mean_abs_err < 0.05, "{f:?}");
    let (p, r) = edge_agreement(&d.data, &d.target, 0.5).unwrap();
    assert!(p > 0.95 && r > 0.95, "precision {p}, recall {r}");
}

#[test]
fn dangoron_finds_planted_blocks_in_every_window() {
    let case = tomborg::suite::SuiteCase {
        name: "planted".into(),
        config: TomborgConfig {
            n_series: 9,
            len: 1_024,
            corr: CorrDistribution::Block {
                n_blocks: 3,
                within: 0.9,
                between: 0.0,
                jitter: 0.0,
            },
            spectrum: SpectralEnvelope::White,
            seed: 5,
        },
    };
    let w = workloads::from_tomborg(&case, 0.5).unwrap();
    let engine = DangoronEngine {
        config: DangoronConfig {
            basic_window: w.basic_window,
            bound: BoundMode::Exhaustive,
            ..Default::default()
        },
    };
    let ms = engine.execute(&w.data, w.query).unwrap();
    // Every in-block pair (planted r = 0.9) must be present in (nearly)
    // every window; window-level sampling noise allows a small shortfall.
    let n_windows = ms.len();
    for block in 0..3 {
        let members: Vec<usize> = (0..9).filter(|&v| v / 3 == block).collect();
        for (ai, &a) in members.iter().enumerate() {
            for &b in &members[ai + 1..] {
                let present = ms.iter().filter(|m| m.contains(a, b)).count();
                assert!(
                    present as f64 >= 0.9 * n_windows as f64,
                    "in-block pair ({a},{b}) present only {present}/{n_windows}"
                );
            }
        }
    }
}

#[test]
fn spectrum_controls_statstream_not_dangoron() {
    // The robustness claim, verified end-to-end: moving energy from low
    // to high frequencies must break StatStream's few-coefficient filter
    // while leaving Dangoron untouched.
    let beta = 0.75;
    let mk_case = |spectrum, seed| tomborg::suite::SuiteCase {
        name: "case".into(),
        config: TomborgConfig {
            n_series: 10,
            len: 1_024,
            corr: CorrDistribution::Block {
                n_blocks: 2,
                within: 0.85,
                between: 0.05,
                jitter: 0.0,
            },
            spectrum,
            seed,
        },
    };
    let mut dang_f1 = Vec::new();
    let mut stat_f1 = Vec::new();
    // Windows are 1/8 of the series, so a full-series frequency k appears
    // as k/8 cycles per window: frac 0.05 keeps windowed energy within the
    // first ~8 real-Fourier coefficients, the band pushes it far beyond.
    for (spectrum, seed) in [
        (SpectralEnvelope::Concentrated { frac: 0.05 }, 3),
        (SpectralEnvelope::Band { lo: 0.6, hi: 0.95 }, 3),
    ] {
        let w = workloads::from_tomborg(&mk_case(spectrum, seed), beta).unwrap();
        let truth = workloads::ground_truth(&w).unwrap();
        let dang = DangoronEngine {
            config: DangoronConfig {
                basic_window: w.basic_window,
                bound: BoundMode::PaperJump { slack: 0.0 },
                ..Default::default()
            },
        };
        let stat = StatStream {
            coeffs: 16,
            margin: 0.0,
            verify: true,
        };
        dang_f1.push(eval::compare(&dang.execute(&w.data, w.query).unwrap(), &truth).f1);
        stat_f1.push(eval::compare(&stat.execute(&w.data, w.query).unwrap(), &truth).f1);
    }
    assert!(
        (dang_f1[0] - dang_f1[1]).abs() < 0.15,
        "dangoron should be spectrum-robust: {dang_f1:?}"
    );
    assert!(
        stat_f1[0] > stat_f1[1] + 0.3,
        "statstream should collapse on band spectra: {stat_f1:?}"
    );
}
