//! Cross-crate integration: every engine in the workspace run over shared
//! workloads, with agreement guarantees matched to each engine's contract.

use baselines::naive::Naive;
use baselines::parcorr::ParCorr;
use baselines::statstream::StatStream;
use baselines::tsubasa::Tsubasa;
use baselines::SlidingEngine;
use dangoron::config::{HorizontalConfig, PivotStrategy};
use dangoron::{BoundMode, DangoronConfig};
use eval::engines::DangoronEngine;
use eval::workloads;

fn exact_engines(basic_window: usize) -> Vec<Box<dyn SlidingEngine>> {
    vec![
        Box::new(Tsubasa {
            basic_window,
            threads: 1,
        }),
        Box::new(Tsubasa {
            basic_window,
            threads: 3,
        }),
        Box::new(DangoronEngine {
            config: DangoronConfig {
                basic_window,
                bound: BoundMode::Exhaustive,
                ..Default::default()
            },
        }),
        Box::new(DangoronEngine {
            config: DangoronConfig {
                basic_window,
                bound: BoundMode::Exhaustive,
                horizontal: Some(HorizontalConfig {
                    n_pivots: 2,
                    strategy: PivotStrategy::Evenly,
                }),
                ..Default::default()
            },
        }),
        Box::new(DangoronEngine {
            config: DangoronConfig {
                basic_window,
                bound: BoundMode::Exhaustive,
                threads: 4,
                ..Default::default()
            },
        }),
    ]
}

#[test]
fn exact_engines_agree_with_naive_on_climate() {
    let w = workloads::climate_quick(10, 0.85).unwrap();
    let truth = Naive.execute(&w.data, w.query).unwrap();
    for engine in exact_engines(w.basic_window) {
        let got = engine.execute(&w.data, w.query).unwrap();
        let r = eval::compare(&got, &truth);
        assert_eq!(r.f1, 1.0, "{} disagreed with naive: {r:?}", engine.name());
        assert!(
            r.max_value_err < 1e-9,
            "{} value drift: {r:?}",
            engine.name()
        );
    }
}

#[test]
fn exact_engines_agree_on_tomborg_case() {
    let case = &tomborg::suite::smoke_suite(8, 512, 5)[0];
    let w = workloads::from_tomborg(case, 0.7).unwrap();
    let truth = Naive.execute(&w.data, w.query).unwrap();
    for engine in exact_engines(w.basic_window) {
        let got = engine.execute(&w.data, w.query).unwrap();
        let r = eval::compare(&got, &truth);
        assert_eq!(r.f1, 1.0, "{} disagreed: {r:?}", engine.name());
    }
}

#[test]
fn approximate_engines_meet_their_contracts() {
    let w = workloads::climate_quick(10, 0.85).unwrap();
    let truth = Naive.execute(&w.data, w.query).unwrap();

    // Dangoron(jump): perfect precision, ≥0.9 recall on climate data.
    let jump = DangoronEngine {
        config: DangoronConfig {
            basic_window: w.basic_window,
            bound: BoundMode::PaperJump { slack: 0.0 },
            ..Default::default()
        },
    };
    let r = eval::compare(&jump.execute(&w.data, w.query).unwrap(), &truth);
    assert_eq!(r.fp, 0, "jump mode must not invent edges");
    // The paper's "accuracy above 90 percent" — F1 against the exact output.
    assert!(r.f1 >= 0.9, "jump F1 {r:?}");
    assert!(r.recall >= 0.85, "jump recall {r:?}");

    // ParCorr with verification: perfect precision, high recall.
    let pc = ParCorr {
        dim: 256,
        seed: 3,
        margin: 0.1,
        verify: true,
    };
    let r = eval::compare(&pc.execute(&w.data, w.query).unwrap(), &truth);
    assert_eq!(r.fp, 0);
    assert!(r.recall >= 0.85, "parcorr recall {r:?}");

    // StatStream with verification: perfect precision by construction.
    let ss = StatStream {
        coeffs: 24,
        margin: 0.1,
        verify: true,
    };
    let r = eval::compare(&ss.execute(&w.data, w.query).unwrap(), &truth);
    assert_eq!(r.fp, 0);
}

#[test]
fn slack_trades_speed_for_recall() {
    let w = workloads::climate_quick(8, 0.85).unwrap();
    let truth = Naive.execute(&w.data, w.query).unwrap();
    let mut recalls = Vec::new();
    let mut evaluated = Vec::new();
    for slack in [0.0, 0.1, 0.3] {
        let engine = dangoron::Dangoron::new(DangoronConfig {
            basic_window: w.basic_window,
            bound: BoundMode::PaperJump { slack },
            ..Default::default()
        })
        .unwrap();
        let res = engine.execute(&w.data, w.query).unwrap();
        recalls.push(eval::compare(&res.matrices, &truth).recall);
        evaluated.push(res.stats.evaluated);
    }
    // More slack ⇒ at least as many evaluations and at least the recall.
    assert!(evaluated[0] <= evaluated[1] && evaluated[1] <= evaluated[2]);
    assert!(recalls[0] <= recalls[2] + 1e-12);
}
