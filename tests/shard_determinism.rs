//! Shard-count invariance: the distributed tier's determinism contract.
//!
//! Edges (values bit-for-bit), pruning-stat totals, and streaming drains
//! must be identical whether the pair space runs as one piece or as any
//! contiguous partition — 1/2/4/8 balanced shards, row-aligned shards,
//! random cut points, and cuts placed directly adjacent to planned shard
//! boundaries (the off-by-one hot spot).

use dangoron::{BoundMode, DangoronConfig, PruningStats};
use dist::coord::{expected_windows, run_in_process, run_single_process};
use dist::merge::{merge_shard_edges, windows_bit_identical};
use dist::proto::{Assignment, WorkerMode};
use dist::worker;
use dist::ShardPlan;
use proptest::prelude::*;
use sketch::triangular;
use sketch::{SlidingQuery, ThresholdedMatrix};
use tsdata::{generators, TimeSeriesMatrix};

const N_SERIES: usize = 11; // 55 pair ranks
const N_PAIRS: usize = N_SERIES * (N_SERIES - 1) / 2;

fn workload() -> (TimeSeriesMatrix, SlidingQuery) {
    let data = generators::clustered_matrix(N_SERIES, 320, 3, 0.5, 77).unwrap();
    let query = SlidingQuery {
        start: 0,
        end: 320,
        window: 60,
        step: 20,
        threshold: 0.7,
    };
    (data, query)
}

fn engine_cfg(bound: BoundMode) -> DangoronConfig {
    DangoronConfig {
        basic_window: 20,
        bound,
        ..Default::default()
    }
}

/// Runs an explicit partition (given by its interior cut points) through
/// the worker execution path and merges — the exact code real shard
/// processes run.
fn run_cuts(
    cuts: &[usize],
    mode: WorkerMode,
    cfg: &DangoronConfig,
    data: &TimeSeriesMatrix,
    query: SlidingQuery,
) -> (Vec<ThresholdedMatrix>, PruningStats) {
    let mut bounds = vec![0];
    bounds.extend_from_slice(cuts);
    bounds.push(N_PAIRS);
    bounds.sort_unstable();
    bounds.dedup();
    let mut stats = PruningStats::default();
    let mut segments = Vec::new();
    for w in bounds.windows(2) {
        let a = Assignment {
            shard_id: w[0] as u64,
            ranks: w[0]..w[1],
            mode,
            config: cfg.clone(),
            query,
        };
        let r = worker::execute(&a, data).expect("shard execution");
        stats.merge(&r.stats);
        segments.push((r.ranks, r.edges));
    }
    let n_windows = expected_windows(mode, cfg, data.len(), &query);
    let matrices = merge_shard_edges(
        data.n_series(),
        query.threshold,
        cfg.edge_rule,
        n_windows,
        segments,
    );
    (matrices, stats)
}

#[test]
fn batch_is_invariant_across_1_2_4_8_shards() {
    let (data, query) = workload();
    for bound in [BoundMode::Exhaustive, BoundMode::PaperJump { slack: 0.0 }] {
        let cfg = engine_cfg(bound);
        let single = run_single_process(WorkerMode::Batch, &cfg, &data, query).unwrap();
        assert!(!single.matrices.is_empty());
        for k in [1usize, 2, 4, 8] {
            let sharded = run_in_process(k, WorkerMode::Batch, &cfg, &data, query).unwrap();
            assert!(
                windows_bit_identical(&sharded.matrices, &single.matrices),
                "k={k} {bound:?}: edges differ"
            );
            assert_eq!(
                sharded.stats, single.stats,
                "k={k} {bound:?}: stat totals differ"
            );
        }
    }
}

#[test]
fn streaming_drains_are_invariant_across_1_2_4_8_shards() {
    let (data, query) = workload();
    let mode = WorkerMode::StreamingReplay {
        initial_cols: 140,
        chunk_cols: 60,
    };
    for bound in [BoundMode::Exhaustive, BoundMode::PaperJump { slack: 0.0 }] {
        let cfg = engine_cfg(bound);
        let single = run_single_process(mode, &cfg, &data, query).unwrap();
        assert!(!single.matrices.is_empty());
        for k in [1usize, 2, 4, 8] {
            let sharded = run_in_process(k, mode, &cfg, &data, query).unwrap();
            assert!(
                windows_bit_identical(&sharded.matrices, &single.matrices),
                "k={k} {bound:?}: streamed drains differ"
            );
            assert_eq!(sharded.stats, single.stats, "k={k} {bound:?}");
        }
    }
}

#[test]
fn cuts_adjacent_to_planned_boundaries_are_safe() {
    // The likely off-by-one bug lives at shard boundaries: a pair rank
    // leaking into (or out of) a neighbouring shard. Take every planned
    // boundary b of the balanced and row-aligned 4-shard plans and re-run
    // with cuts at {b−1, b, b+1}: every variant must reproduce the
    // unsharded result, in batch and streaming modes.
    let (data, query) = workload();
    let cfg = engine_cfg(BoundMode::PaperJump { slack: 0.0 });
    let stream = WorkerMode::StreamingReplay {
        initial_cols: 140,
        chunk_cols: 60,
    };
    let mut boundaries = Vec::new();
    for plan in [
        ShardPlan::balanced(N_SERIES, 4),
        ShardPlan::row_aligned(N_SERIES, 4),
    ] {
        for s in plan.shards().iter().skip(1) {
            boundaries.push(s.ranks.start);
        }
    }
    boundaries.sort_unstable();
    boundaries.dedup();
    assert!(!boundaries.is_empty());

    for mode in [WorkerMode::Batch, stream] {
        let single = run_single_process(mode, &cfg, &data, query).unwrap();
        for &b in &boundaries {
            for cut in [b.saturating_sub(1).max(1), b, (b + 1).min(N_PAIRS - 1)] {
                let (matrices, stats) = run_cuts(&[cut], mode, &cfg, &data, query);
                assert!(
                    windows_bit_identical(&matrices, &single.matrices),
                    "cut at rank {cut} (boundary {b}, {mode:?}) broke the merge"
                );
                assert_eq!(stats, single.stats, "cut {cut} ({mode:?})");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any random set of interior cut points partitions into the same
    /// result, with horizontal pruning on (exercising the sharded pivot
    /// machinery) and off.
    #[test]
    fn random_partitions_reproduce_the_unsharded_engine(
        cuts in prop::collection::vec(1usize..N_PAIRS, 0..6),
        pivots in proptest::bool::ANY,
    ) {
        let (data, query) = workload();
        let mut cfg = engine_cfg(BoundMode::PaperJump { slack: 0.0 });
        if pivots {
            cfg.horizontal = Some(dangoron::config::HorizontalConfig {
                n_pivots: 2,
                strategy: dangoron::PivotStrategy::Evenly,
            });
            cfg.storage = dangoron::PairStorage::OnDemand;
        }
        let single = run_single_process(WorkerMode::Batch, &cfg, &data, query).unwrap();
        let (matrices, stats) = run_cuts(&cuts, WorkerMode::Batch, &cfg, &data, query);
        prop_assert!(
            windows_bit_identical(&matrices, &single.matrices),
            "cuts {:?} broke bit-identity", &cuts
        );
        prop_assert_eq!(stats, single.stats);
    }

    /// Random streaming partitions: drained windows and cumulative stats
    /// are partition-invariant.
    #[test]
    fn random_streaming_partitions_reproduce_the_unsharded_session(
        cuts in prop::collection::vec(1usize..N_PAIRS, 0..4),
    ) {
        let (data, query) = workload();
        let cfg = engine_cfg(BoundMode::Exhaustive);
        let mode = WorkerMode::StreamingReplay { initial_cols: 140, chunk_cols: 80 };
        let single = run_single_process(mode, &cfg, &data, query).unwrap();
        let (matrices, stats) = run_cuts(&cuts, mode, &cfg, &data, query);
        prop_assert!(windows_bit_identical(&matrices, &single.matrices));
        prop_assert_eq!(stats, single.stats);
    }
}

#[test]
fn chunked_execution_is_partition_invariant() {
    // The v3 worker executes batch assignments in chunks (so it can
    // report progress and answer steals between them). Chunking is pure
    // scheduling: any chunk size over any partition must reproduce the
    // unsharded engine bit-for-bit.
    let (data, query) = workload();
    let cfg = engine_cfg(BoundMode::PaperJump { slack: 0.0 });
    let single = run_single_process(WorkerMode::Batch, &cfg, &data, query).unwrap();
    for chunk in [1usize, 3, 8, 64] {
        let mut stats = PruningStats::default();
        let mut segments = Vec::new();
        for w in [0usize, 13, 30, N_PAIRS].windows(2) {
            let a = Assignment {
                shard_id: w[0] as u64,
                ranks: w[0]..w[1],
                mode: WorkerMode::Batch,
                config: cfg.clone(),
                query,
            };
            let r = worker::execute_controlled(
                &a,
                &data,
                &worker::ExecControl::default(),
                chunk,
                std::time::Duration::ZERO,
                &mut |_| {},
            )
            .expect("chunked shard execution");
            stats.merge(&r.stats);
            segments.push((r.ranks, r.edges));
        }
        let n_windows = expected_windows(WorkerMode::Batch, &cfg, data.len(), &query);
        let matrices = merge_shard_edges(
            data.n_series(),
            query.threshold,
            cfg.edge_rule,
            n_windows,
            segments,
        );
        assert!(
            windows_bit_identical(&matrices, &single.matrices),
            "chunk={chunk}: chunked execution changed the edges"
        );
        assert_eq!(stats, single.stats, "chunk={chunk}");
    }
}

#[test]
fn steal_shrink_plus_stolen_tail_reproduce_the_unsharded_engine() {
    // A steal splits one interval into victim head + stolen tail at a
    // boundary the executor picks between chunks. Head and tail are
    // executed by different code paths at different times — their merge
    // must still be the unsharded answer, exactly.
    let (data, query) = workload();
    let cfg = engine_cfg(BoundMode::PaperJump { slack: 0.0 });
    let single = run_single_process(WorkerMode::Batch, &cfg, &data, query).unwrap();
    let ctl = worker::ExecControl::default();
    ctl.request_steal(); // latched before the first chunk boundary
    let mut granted = None;
    let a = Assignment {
        shard_id: 1,
        ranks: 0..N_PAIRS,
        mode: WorkerMode::Batch,
        config: cfg.clone(),
        query,
    };
    let victim =
        worker::execute_controlled(&a, &data, &ctl, 7, std::time::Duration::ZERO, &mut |m| {
            if let dist::proto::Message::StealGrant { new_end, .. } = m {
                granted = Some(*new_end as usize);
            }
        })
        .expect("victim execution");
    let new_end = granted.expect("no steal grant emitted");
    assert!(0 < new_end && new_end < N_PAIRS, "grant did not split");
    assert_eq!(victim.ranks, 0..new_end, "result does not honour the grant");
    let tail = worker::execute(
        &Assignment {
            shard_id: 2,
            ranks: new_end..N_PAIRS,
            mode: WorkerMode::Batch,
            config: cfg.clone(),
            query,
        },
        &data,
    )
    .expect("stolen-tail execution");
    let mut stats = PruningStats::default();
    stats.merge(&victim.stats);
    stats.merge(&tail.stats);
    let n_windows = expected_windows(WorkerMode::Batch, &cfg, data.len(), &query);
    let matrices = merge_shard_edges(
        data.n_series(),
        query.threshold,
        cfg.edge_rule,
        n_windows,
        vec![(victim.ranks, victim.edges), (tail.ranks, tail.edges)],
    );
    assert!(
        windows_bit_identical(&matrices, &single.matrices),
        "victim head + stolen tail do not merge to the unsharded result"
    );
    assert_eq!(stats, single.stats, "steal double-counted or lost stats");
}

#[test]
fn rank_space_is_the_sharding_key() {
    // Sanity-pin the contract the whole tier rests on: rank order equals
    // lexicographic (i, j) order, so contiguous rank shards concatenate
    // into sorted edge lists.
    let mut last = None;
    for p in 0..N_PAIRS {
        let (i, j) = triangular::unrank(p, N_SERIES);
        if let Some(prev) = last {
            assert!(prev < (i, j), "rank order is not (i, j) order at {p}");
        }
        last = Some((i, j));
    }
}
