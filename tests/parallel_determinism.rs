//! Parallel determinism: `QueryResult` — edge sets (values bit-for-bit)
//! and pruning counters — must be identical for `threads = 1, 2, 8`, in
//! both the batch and streaming engines, across storage modes, bound
//! modes and edge rules. The work-stealing scheduler hands pairs out
//! non-deterministically; the sort-and-partition assembly must erase that
//! completely.
//!
//! Since the SIMD kernel layer, the contract extends to the instruction
//! set: the dispatched kernels (AVX2+FMA / NEON) and the canonical
//! striped scalar fallback are bit-identical, so the engine's output is
//! invariant in the kernel backend too
//! ([`engine_output_is_kernel_backend_invariant`]); CI runs this file
//! with and without `-C target-feature=+avx2,+fma`.

use dangoron::{BoundMode, Dangoron, DangoronConfig, PairStorage, QueryResult, StreamingDangoron};
use sketch::output::EdgeRule;
use sketch::{SlidingQuery, ThresholdedMatrix};
use tsdata::generators;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn assert_bit_identical(a: &[ThresholdedMatrix], b: &[ThresholdedMatrix], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: window count");
    for (w, (ma, mb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ma.n_edges(), mb.n_edges(), "{ctx}: window {w} edge count");
        for (ea, eb) in ma.edges().iter().zip(mb.edges()) {
            assert_eq!((ea.i, ea.j), (eb.i, eb.j), "{ctx}: window {w} indices");
            assert_eq!(
                ea.value.to_bits(),
                eb.value.to_bits(),
                "{ctx}: window {w} edge ({}, {}) value not bit-identical",
                ea.i,
                ea.j
            );
        }
    }
}

fn assert_same_result(a: &QueryResult, b: &QueryResult, ctx: &str) {
    assert_bit_identical(&a.matrices, &b.matrices, ctx);
    assert_eq!(a.stats, b.stats, "{ctx}: pruning stats diverged");
}

#[test]
fn batch_engine_is_thread_count_invariant() {
    let x = generators::clustered_matrix(16, 480, 4, 0.6, 2024).unwrap();
    let q = SlidingQuery {
        start: 0,
        end: 480,
        window: 80,
        step: 20,
        threshold: 0.7,
    };
    for storage in [PairStorage::Precomputed, PairStorage::OnDemand] {
        for bound in [BoundMode::Exhaustive, BoundMode::PaperJump { slack: 0.0 }] {
            for edge_rule in [EdgeRule::Positive, EdgeRule::Absolute] {
                let run = |threads| {
                    Dangoron::new(DangoronConfig {
                        basic_window: 20,
                        bound,
                        storage,
                        threads,
                        edge_rule,
                        ..Default::default()
                    })
                    .unwrap()
                    .execute(&x, q)
                    .unwrap()
                };
                let baseline = run(THREAD_COUNTS[0]);
                assert!(baseline.total_edges() > 0, "workload produced no edges");
                for &t in &THREAD_COUNTS[1..] {
                    let got = run(t);
                    let ctx = format!("batch {storage:?}/{bound:?}/{edge_rule:?} threads={t}");
                    assert_same_result(&baseline, &got, &ctx);
                }
            }
        }
    }
}

#[test]
fn batch_engine_with_pivots_is_thread_count_invariant() {
    use dangoron::PivotStrategy;
    let x = generators::clustered_matrix(14, 400, 3, 0.7, 7).unwrap();
    let q = SlidingQuery {
        start: 0,
        end: 400,
        window: 80,
        step: 40,
        threshold: 0.85,
    };
    let run = |threads| {
        Dangoron::new(DangoronConfig {
            basic_window: 20,
            storage: PairStorage::OnDemand,
            horizontal: Some(dangoron::config::HorizontalConfig {
                n_pivots: 3,
                strategy: PivotStrategy::Evenly,
            }),
            threads,
            ..Default::default()
        })
        .unwrap()
        .execute(&x, q)
        .unwrap()
    };
    let baseline = run(1);
    for &t in &THREAD_COUNTS[1..] {
        assert_same_result(&baseline, &run(t), &format!("pivots threads={t}"));
    }
}

#[test]
fn streaming_engine_is_thread_count_invariant() {
    let full = generators::clustered_matrix(10, 400, 2, 0.5, 99).unwrap();
    for bound in [BoundMode::Exhaustive, BoundMode::PaperJump { slack: 0.0 }] {
        let run = |threads: usize| {
            let initial = full.slice_columns(0, 150).unwrap();
            let mut session = StreamingDangoron::new(
                initial,
                80,
                20,
                0.7,
                DangoronConfig {
                    basic_window: 10,
                    bound,
                    threads,
                    ..Default::default()
                },
            )
            .unwrap();
            let mut collected = session.drain_completed().unwrap();
            for (a, b) in [(150usize, 220usize), (220, 330), (330, 400)] {
                let chunk = full.slice_columns(a, b).unwrap();
                collected.extend(session.append(&chunk).unwrap());
            }
            collected
        };
        let baseline = run(1);
        assert!(
            baseline.iter().any(|c| c.matrix.n_edges() > 0),
            "stream produced no edges"
        );
        for &t in &THREAD_COUNTS[1..] {
            let got = run(t);
            assert_eq!(baseline.len(), got.len(), "{bound:?} threads={t}");
            for (a, b) in baseline.iter().zip(&got) {
                assert_eq!(a.index, b.index, "{bound:?} threads={t}");
                let ma = std::slice::from_ref(&a.matrix);
                let mb = std::slice::from_ref(&b.matrix);
                assert_bit_identical(ma, mb, &format!("stream {bound:?} threads={t}"));
            }
        }
    }
}

#[test]
fn streaming_with_pivots_emits_exact_batch_truth() {
    // Horizontal pruning is lossless, so a streaming session with pivots
    // must emit *exactly* the exhaustive batch truth — bit-identical —
    // for every append chunking, both edge rules, and every thread
    // count. Within one chunking the cumulative pruning stats must be
    // invariant in the thread count (across chunkings they legitimately
    // differ: counters record per-drain pair encounters), and the
    // triangle counters must actually fire on clustered data.
    use dangoron::config::HorizontalConfig;
    use dangoron::{PivotStrategy, PruningStats};

    let full = generators::clustered_matrix(12, 420, 3, 0.45, 13).unwrap();
    let chunkings: [&[usize]; 3] = [
        // One big append.
        &[160, 420],
        // Uneven, including sub-basic-window fragments.
        &[160, 167, 240, 253, 420],
        // Step-sized appends.
        &[
            160, 180, 200, 220, 240, 260, 280, 300, 320, 340, 360, 380, 400, 420,
        ],
    ];

    for edge_rule in [EdgeRule::Positive, EdgeRule::Absolute] {
        // The exhaustive batch truth, no pruning at all.
        let truth = Dangoron::new(DangoronConfig {
            basic_window: 20,
            bound: BoundMode::Exhaustive,
            edge_rule,
            ..Default::default()
        })
        .unwrap()
        .execute(
            &full,
            SlidingQuery {
                start: 0,
                end: 420,
                window: 80,
                step: 20,
                threshold: 0.85,
            },
        )
        .unwrap();

        let mut stats_across_runs: Vec<PruningStats> = Vec::new();
        for (c, chunking) in chunkings.iter().enumerate() {
            for &threads in &THREAD_COUNTS {
                let mut session = StreamingDangoron::new(
                    full.slice_columns(0, chunking[0]).unwrap(),
                    80,
                    20,
                    0.85,
                    DangoronConfig {
                        basic_window: 20,
                        bound: BoundMode::Exhaustive,
                        edge_rule,
                        threads,
                        horizontal: Some(HorizontalConfig {
                            n_pivots: 3,
                            strategy: PivotStrategy::Evenly,
                        }),
                        ..Default::default()
                    },
                )
                .unwrap();
                let mut collected = session.drain_completed().unwrap();
                for pair in chunking.windows(2) {
                    let chunk = full.slice_columns(pair[0], pair[1]).unwrap();
                    collected.extend(session.append(&chunk).unwrap());
                }
                let ctx = format!("pivots {edge_rule:?} chunking#{c} threads={threads}");
                assert_eq!(collected.len(), truth.matrices.len(), "{ctx}: windows");
                let streamed: Vec<ThresholdedMatrix> =
                    collected.iter().map(|cw| cw.matrix.clone()).collect();
                assert_bit_identical(&streamed, &truth.matrices, &ctx);
                let s = session.stats().clone();
                assert!(
                    s.pruned_by_triangle > 0 || s.pairs_skipped_entirely > 0,
                    "{ctx}: horizontal pruning never fired: {s:?}"
                );
                stats_across_runs.push(s);
            }
            // Stats invariant in the thread count (same chunking).
            let base = stats_across_runs.len() - THREAD_COUNTS.len();
            for k in 1..THREAD_COUNTS.len() {
                assert_eq!(
                    stats_across_runs[base],
                    stats_across_runs[base + k],
                    "{edge_rule:?} chunking#{c}: stats diverged across threads"
                );
            }
        }
    }
}

#[test]
fn engine_output_is_kernel_backend_invariant() {
    // Forcing the scalar-striped kernels must not move a single bit of
    // the result — edges, values, or pruning counters — in either
    // engine. (Safe to flip globally even while other tests run: the
    // backends are bit-identical by contract, so concurrent queries can
    // only get slower, never different.)
    let x = generators::clustered_matrix(12, 400, 3, 0.55, 77).unwrap();
    let q = SlidingQuery {
        start: 0,
        end: 400,
        window: 80,
        step: 20,
        threshold: 0.75,
    };
    let run = || {
        Dangoron::new(DangoronConfig {
            basic_window: 20,
            bound: BoundMode::PaperJump { slack: 0.0 },
            horizontal: Some(dangoron::config::HorizontalConfig {
                n_pivots: 3,
                strategy: dangoron::PivotStrategy::Evenly,
            }),
            threads: 2,
            ..Default::default()
        })
        .unwrap()
        .execute(&x, q)
        .unwrap()
    };
    let simd = run();
    assert!(simd.total_edges() > 0, "workload produced no edges");
    kernel::force_scalar(true);
    let scalar = run();
    kernel::force_scalar(false);
    assert_same_result(&simd, &scalar, "kernel backend (batch)");

    let stream = |threads: usize| {
        let initial = x.slice_columns(0, 160).unwrap();
        let mut session = StreamingDangoron::new(
            initial,
            80,
            20,
            0.75,
            DangoronConfig {
                basic_window: 20,
                bound: BoundMode::PaperJump { slack: 0.0 },
                threads,
                ..Default::default()
            },
        )
        .unwrap();
        let mut collected = session.drain_completed().unwrap();
        for (a, b) in [(160usize, 260usize), (260, 400)] {
            collected.extend(session.append(&x.slice_columns(a, b).unwrap()).unwrap());
        }
        collected
    };
    let simd = stream(2);
    kernel::force_scalar(true);
    let scalar = stream(2);
    kernel::force_scalar(false);
    assert_eq!(simd.len(), scalar.len(), "stream window count");
    for (a, b) in simd.iter().zip(&scalar) {
        assert_eq!(a.index, b.index);
        assert_bit_identical(
            std::slice::from_ref(&a.matrix),
            std::slice::from_ref(&b.matrix),
            "kernel backend (stream)",
        );
    }
}

#[test]
fn tsubasa_baseline_is_thread_count_invariant() {
    use baselines::tsubasa::Tsubasa;
    let x = generators::clustered_matrix(12, 300, 3, 0.6, 5).unwrap();
    let q = SlidingQuery {
        start: 0,
        end: 300,
        window: 60,
        step: 20,
        threshold: 0.6,
    };
    let run = |threads| {
        let t = Tsubasa {
            basic_window: 20,
            threads,
        };
        let prep = t.prepare(&x, q).unwrap();
        t.run(&prep)
    };
    let baseline = run(1);
    for &t in &THREAD_COUNTS[1..] {
        assert_bit_identical(&baseline, &run(t), &format!("tsubasa threads={t}"));
    }
}

#[test]
fn prepare_is_thread_count_invariant() {
    // The prepared state (sketch store + pair sketches) drives every
    // downstream number; the parallel tiled build must be bit-identical.
    let x = generators::clustered_matrix(12, 360, 3, 0.5, 31).unwrap();
    let q = SlidingQuery {
        start: 0,
        end: 360,
        window: 60,
        step: 20,
        threshold: 0.8,
    };
    let prep = |threads| {
        let engine = Dangoron::new(DangoronConfig {
            basic_window: 20,
            threads,
            ..Default::default()
        })
        .unwrap();
        let p = engine.prepare(&x, q).unwrap();
        (engine.run(&p), p.memory_bytes())
    };
    let (r1, m1) = prep(1);
    for &t in &THREAD_COUNTS[1..] {
        let (rt, mt) = prep(t);
        assert_same_result(&r1, &rt, &format!("prepare threads={t}"));
        assert_eq!(m1, mt, "memory accounting threads={t}");
    }
}
