//! Property-based integration tests: random workloads and queries, with
//! the engines' core invariants checked against the naive oracle.

use baselines::naive::Naive;
use baselines::SlidingEngine;
use dangoron::{BoundMode, Dangoron, DangoronConfig};
use proptest::prelude::*;
use sketch::SlidingQuery;
use tsdata::generators;

/// Strategy: a random-but-aligned query geometry over `len` points.
fn aligned_query(len: usize) -> impl Strategy<Value = (SlidingQuery, usize)> {
    // basic window in {4, 8, 10}, window/step multiples of it.
    (
        prop_oneof![Just(4usize), Just(8), Just(10)],
        2usize..5,
        1usize..4,
        0.0f64..0.95,
    )
        .prop_map(move |(b, w_mult, s_mult, beta)| {
            let window = b * w_mult * 2;
            let step = b * s_mult;
            (
                SlidingQuery {
                    start: 0,
                    end: len,
                    window,
                    step,
                    threshold: beta,
                },
                b,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exhaustive Dangoron equals the naive oracle on any clustered
    /// workload and any aligned query.
    #[test]
    fn exhaustive_equals_naive(
        (query, basic) in aligned_query(400),
        seed in 0u64..500,
        groups in 1usize..4,
        noise in 0.2f64..1.5,
    ) {
        let x = generators::clustered_matrix(7, 400, groups, noise, seed).unwrap();
        let engine = Dangoron::new(DangoronConfig {
            basic_window: basic,
            bound: BoundMode::Exhaustive,
            ..Default::default()
        }).unwrap();
        let got = engine.execute(&x, query).unwrap();
        let truth = Naive.execute(&x, query).unwrap();
        let r = eval::compare(&got.matrices, &truth);
        prop_assert_eq!(r.f1, 1.0);
        prop_assert!(r.max_value_err < 1e-9);
    }

    /// Jump mode never reports a false edge (its precision is structural:
    /// edges are only emitted after exact evaluation), on any workload.
    #[test]
    fn jump_mode_has_no_false_positives(
        (query, basic) in aligned_query(400),
        seed in 0u64..500,
    ) {
        let x = generators::independent_ar1_matrix(6, 400, 0.7, seed).unwrap();
        let engine = Dangoron::new(DangoronConfig {
            basic_window: basic,
            bound: BoundMode::PaperJump { slack: 0.0 },
            ..Default::default()
        }).unwrap();
        let got = engine.execute(&x, query).unwrap();
        let truth = Naive.execute(&x, query).unwrap();
        let r = eval::compare(&got.matrices, &truth);
        prop_assert_eq!(r.fp, 0, "false positives: {:?}", r);
    }

    /// Stats accounting is exact for every configuration: each (pair,
    /// window) cell is evaluated, jumped, or triangle-pruned.
    #[test]
    fn work_accounting_is_exact(
        (query, basic) in aligned_query(400),
        seed in 0u64..500,
        jump in proptest::bool::ANY,
    ) {
        let x = generators::clustered_matrix(6, 400, 2, 0.5, seed).unwrap();
        let engine = Dangoron::new(DangoronConfig {
            basic_window: basic,
            bound: if jump { BoundMode::PaperJump { slack: 0.0 } } else { BoundMode::Exhaustive },
            ..Default::default()
        }).unwrap();
        let res = engine.execute(&x, query).unwrap();
        let s = &res.stats;
        prop_assert_eq!(s.n_pairs, 15);
        prop_assert_eq!(s.total_cells, 15 * query.n_windows() as u64);
        prop_assert_eq!(
            s.evaluated + s.skipped_by_jump + s.pruned_by_triangle,
            s.total_cells
        );
        let emitted: u64 = res.matrices.iter().map(|m| m.n_edges() as u64).sum();
        prop_assert_eq!(s.edges, emitted);
    }

    /// The output matrices only ever contain values ≥ β, within [−1, 1].
    #[test]
    fn emitted_values_respect_threshold(
        (query, basic) in aligned_query(400),
        seed in 0u64..200,
    ) {
        let x = generators::clustered_matrix(6, 400, 2, 0.6, seed).unwrap();
        let engine = Dangoron::new(DangoronConfig {
            basic_window: basic,
            ..Default::default()
        }).unwrap();
        let res = engine.execute(&x, query).unwrap();
        for m in &res.matrices {
            for e in m.edges() {
                prop_assert!(e.value >= query.threshold);
                prop_assert!(e.value <= 1.0);
                prop_assert!(e.i < e.j);
            }
        }
    }
}
