//! Engine configuration.

use serde::{Deserialize, Serialize};
use sketch::output::EdgeRule;
use tsdata::TsError;

/// How windows are skipped across time (vertical pruning).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BoundMode {
    /// The paper's Eq. 2 jumping: sound under the paper's
    /// sample-distribution assumption, ≥90 % accuracy in practice, fastest.
    /// `slack` is added to the threshold margin: larger slack ⇒ more
    /// conservative jumps ⇒ higher recall, less skipping (`0.0` is the
    /// literal Eq. 2).
    PaperJump {
        /// Extra margin subtracted from the bound before comparing to `β`.
        slack: f64,
    },
    /// No jumping: every window of every pair is evaluated exactly via the
    /// O(1) sketch combine. Exact results; the ablation baseline for the
    /// jump machinery.
    Exhaustive,
}

impl Default for BoundMode {
    fn default() -> Self {
        BoundMode::PaperJump { slack: 0.0 }
    }
}

/// Whether per-pair cross-product sketches are materialised up front.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PairStorage {
    /// Build all `N·(N−1)/2` pair sketches during `prepare` (the TSUBASA
    /// storage model): O(N²·n_b) memory, O(1) query-time evaluation.
    /// "Pure query time" in the paper's sense excludes this build.
    #[default]
    Precomputed,
    /// Build each pair's sketch lazily inside the query (O(L) per visited
    /// pair): constant memory, the mode that scales to large `N`, and the
    /// mode where horizontal pruning pays (a pruned pair never touches the
    /// raw series).
    OnDemand,
}

/// Pivot selection for horizontal (triangle-inequality) pruning.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PivotStrategy {
    /// Evenly spaced series indices — the default; cheap and diverse.
    Evenly,
    /// Pseudorandom choice from the given seed.
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// Caller-provided pivot indices.
    Explicit(Vec<usize>),
}

/// Horizontal-pruning configuration.
///
/// Applies to both the batch engine (pivot table built in parallel during
/// `prepare`) and streaming sessions (pivot table grown incrementally per
/// append). The triangle bound is lossless, so enabling it never changes
/// results — only how many cells are evaluated exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HorizontalConfig {
    /// Number of pivot series.
    pub n_pivots: usize,
    /// How pivots are picked.
    pub strategy: PivotStrategy,
}

impl Default for HorizontalConfig {
    fn default() -> Self {
        Self {
            n_pivots: 2,
            strategy: PivotStrategy::Evenly,
        }
    }
}

/// Full engine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DangoronConfig {
    /// Basic-window width `B`; must divide the query's `window` and `step`.
    pub basic_window: usize,
    /// Vertical pruning mode.
    pub bound: BoundMode,
    /// Pair-sketch storage model.
    pub storage: PairStorage,
    /// Horizontal pruning; `None` disables it.
    pub horizontal: Option<HorizontalConfig>,
    /// Worker threads (1 = sequential).
    pub threads: usize,
    /// Which correlations become edges: the paper's `c ≥ β`
    /// ([`EdgeRule::Positive`], default) or the teleconnection variant
    /// `|c| ≥ β` ([`EdgeRule::Absolute`]).
    #[serde(default)]
    pub edge_rule: EdgeRule,
}

impl Default for DangoronConfig {
    fn default() -> Self {
        Self {
            basic_window: 24,
            bound: BoundMode::default(),
            storage: PairStorage::default(),
            horizontal: None,
            threads: 1,
            edge_rule: EdgeRule::Positive,
        }
    }
}

impl DangoronConfig {
    /// Validates parameter sanity (query-dependent checks happen in
    /// `prepare`).
    pub fn validate(&self) -> Result<(), TsError> {
        if self.basic_window < 2 {
            return Err(TsError::InvalidParameter(format!(
                "basic_window must be at least 2, got {}",
                self.basic_window
            )));
        }
        if self.threads == 0 {
            return Err(TsError::InvalidParameter("threads must be positive".into()));
        }
        if let BoundMode::PaperJump { slack } = self.bound {
            if !(0.0..=2.0).contains(&slack) || !slack.is_finite() {
                return Err(TsError::InvalidParameter(format!(
                    "slack must be in [0, 2], got {slack}"
                )));
            }
        }
        if let Some(h) = &self.horizontal {
            if h.n_pivots == 0 {
                return Err(TsError::InvalidParameter(
                    "horizontal pruning needs at least one pivot".into(),
                ));
            }
            if let PivotStrategy::Explicit(p) = &h.strategy {
                if p.is_empty() {
                    return Err(TsError::InvalidParameter(
                        "explicit pivot list is empty".into(),
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(DangoronConfig::default().validate().is_ok());
    }

    #[test]
    fn rejects_degenerate_parameters() {
        let c = DangoronConfig {
            basic_window: 1,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        let c = DangoronConfig {
            threads: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        let mut c = DangoronConfig {
            bound: BoundMode::PaperJump { slack: -0.1 },
            ..Default::default()
        };
        assert!(c.validate().is_err());
        c.bound = BoundMode::PaperJump { slack: f64::NAN };
        assert!(c.validate().is_err());

        let c = DangoronConfig {
            horizontal: Some(HorizontalConfig {
                n_pivots: 0,
                strategy: PivotStrategy::Evenly,
            }),
            ..Default::default()
        };
        assert!(c.validate().is_err());

        let c = DangoronConfig {
            horizontal: Some(HorizontalConfig {
                n_pivots: 1,
                strategy: PivotStrategy::Explicit(vec![]),
            }),
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn exhaustive_mode_is_valid() {
        let c = DangoronConfig {
            bound: BoundMode::Exhaustive,
            ..Default::default()
        };
        assert!(c.validate().is_ok());
    }
}
