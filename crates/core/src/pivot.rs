//! Horizontal (triangle-inequality) pruning support.
//!
//! A pivot series `z` is correlated against *every* series once per window
//! (O(N·γ) sketch combines — linear, not quadratic). For any pair `(x, y)`
//! the PSD-ness of correlation matrices then confines `c_xy` to
//! `c_xz·c_yz ± √((1−c_xz²)(1−c_yz²))`; pairs whose upper bound stays below
//! `β` never need an exact evaluation. Unlike the Eq. 2 jump this bound is
//! unconditional, so horizontal pruning never costs accuracy.
//!
//! The table is maintained *incrementally*: [`PivotSet::append_windows`]
//! grows it window-by-window from already-updated sketches, which is what
//! lets [`crate::streaming::StreamingDangoron`] apply horizontal pruning
//! without ever rebuilding pivot state — the per-drain cost stays
//! O(n_pivots · N · Δwindows).

use crate::config::PivotStrategy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sketch::output::EdgeRule;
use sketch::{combine, triangular, BasicWindowLayout, PairSketch, SketchStore, SlidingQuery};
use tsdata::{TimeSeriesMatrix, TsError};

/// Pivot indices plus their per-window correlations to every series.
#[derive(Debug, Clone)]
pub struct PivotSet {
    /// The pivot series indices.
    pub pivots: Vec<usize>,
    n_series: usize,
    n_windows: usize,
    /// `corr[p][w·N + s]` = corr(pivot p, series s) in window w, stored
    /// window-major so new windows append at the end; `NaN` marks
    /// undefined (zero-variance) windows, which never prune.
    corr: Vec<Vec<f64>>,
}

/// Picks pivot indices for a strategy.
pub fn select_pivots(
    strategy: &PivotStrategy,
    n_pivots: usize,
    n_series: usize,
) -> Result<Vec<usize>, TsError> {
    if n_series == 0 {
        return Err(TsError::Empty);
    }
    let k = n_pivots.min(n_series);
    let mut pivots = match strategy {
        PivotStrategy::Evenly => (0..k).map(|p| p * n_series / k).collect::<Vec<_>>(),
        PivotStrategy::Random { seed } => {
            // Seeded partial Fisher–Yates: O(n_series) worst case, unlike
            // rejection sampling which degrades as k → n_series.
            let mut rng = StdRng::seed_from_u64(*seed);
            let mut idx: Vec<usize> = (0..n_series).collect();
            for i in 0..k {
                let j = rng.gen_range(i..n_series);
                idx.swap(i, j);
            }
            idx.truncate(k);
            idx
        }
        PivotStrategy::Explicit(list) => {
            for &p in list {
                if p >= n_series {
                    return Err(TsError::OutOfRange {
                        requested: p,
                        available: n_series,
                    });
                }
            }
            list.clone()
        }
    };
    pivots.sort_unstable();
    pivots.dedup();
    if pivots.is_empty() {
        return Err(TsError::InvalidParameter("no pivots selected".into()));
    }
    Ok(pivots)
}

impl PivotSet {
    /// An empty table (zero windows) — the starting point for sessions
    /// that grow it via [`PivotSet::append_windows`].
    pub fn empty(pivots: Vec<usize>, n_series: usize) -> Self {
        let n_pivots = pivots.len();
        Self {
            pivots,
            n_series,
            n_windows: 0,
            corr: vec![Vec::new(); n_pivots],
        }
    }

    /// Builds pivot-to-all correlations for every window of `query`, with
    /// `threads` workers stealing `(pivot, series)` cells.
    ///
    /// When the caller has already materialised all pair sketches (the
    /// Precomputed storage mode), pass them as `pairs` (in
    /// [`triangular::rank`] order) and the build skips the per-cell O(L)
    /// sketch construction; otherwise each cell builds its own transient
    /// sketch. Cost: `O(n_pivots · N · (L + γ) / threads)`.
    pub fn build(
        x: &TimeSeriesMatrix,
        store: &SketchStore,
        layout: &BasicWindowLayout,
        query: &SlidingQuery,
        pivots: Vec<usize>,
        pairs: Option<&[PairSketch]>,
        threads: usize,
    ) -> Result<Self, TsError> {
        let _timer = obs::stages::span(obs::stages::Stage::PivotBuild);
        let n = x.n_series();
        let n_windows = query.n_windows();
        // Precompute the basic-window range of every window once.
        let mut ranges = Vec::with_capacity(n_windows);
        for w in 0..n_windows {
            let (ws, we) = query.window_range(w);
            ranges.push(layout.window_to_basic(ws, we)?);
        }

        // One column of per-window correlations per (pivot, series) cell;
        // cells are independent, so workers steal them.
        let cells: Vec<Result<Vec<f64>, TsError>> =
            exec::par_collect_chunks(pivots.len() * n, threads, 1, |range| {
                range
                    .map(|cell| {
                        let (p, s) = (cell / n, cell % n);
                        let z = pivots[p];
                        if s == z {
                            // corr(z, z) = 1 in every window.
                            return Ok(vec![1.0; n_windows]);
                        }
                        let owned;
                        let sketch: &PairSketch = match pairs {
                            Some(all) => &all[triangular::rank(z.min(s), z.max(s), n)],
                            None => {
                                owned = PairSketch::build(layout, x.row(z), x.row(s))?;
                                &owned
                            }
                        };
                        Ok(ranges
                            .iter()
                            .map(|&(b0, b1)| {
                                combine::window_correlation(store, sketch, z, s, b0, b1)
                                    .unwrap_or(f64::NAN)
                            })
                            .collect())
                    })
                    .collect()
            });

        let mut corr = vec![vec![f64::NAN; n * n_windows]; pivots.len()];
        for (cell, col) in cells.into_iter().enumerate() {
            let (p, s) = (cell / n, cell % n);
            for (w, v) in col?.into_iter().enumerate() {
                corr[p][w * n + s] = v;
            }
        }
        Ok(Self {
            pivots,
            n_series: n,
            n_windows,
            corr,
        })
    }

    /// Extends the table to cover `total_windows` windows, computing only
    /// the new windows' pivot-to-all correlations. Window `w` spans basic
    /// windows `[w·step_bw, w·step_bw + ns)`; `corr_of(z, s, b0, b1)`
    /// supplies the exact correlation from the caller's (incrementally
    /// updated) sketches, `NaN` when undefined.
    ///
    /// This is the streaming maintenance path: per append it costs
    /// O(n_pivots · N · Δwindows) sketch combines and never rescans
    /// history.
    pub fn append_windows(
        &mut self,
        total_windows: usize,
        ns: usize,
        step_bw: usize,
        corr_of: impl Fn(usize, usize, usize, usize) -> f64,
    ) {
        let n = self.n_series;
        for w in self.n_windows..total_windows {
            let (b0, b1) = (w * step_bw, w * step_bw + ns);
            for (p, &z) in self.pivots.iter().enumerate() {
                self.corr[p].reserve(n);
                for s in 0..n {
                    let v = if s == z { 1.0 } else { corr_of(z, s, b0, b1) };
                    self.corr[p].push(v);
                }
            }
        }
        self.n_windows = self.n_windows.max(total_windows);
    }

    /// Number of windows covered.
    pub fn n_windows(&self) -> usize {
        self.n_windows
    }

    /// Resident bytes of the correlation table.
    pub fn memory_bytes(&self) -> usize {
        let cells: usize = self.corr.iter().map(Vec::capacity).sum();
        cells * std::mem::size_of::<f64>()
    }

    /// Tightest triangle interval `[lo, hi]` on `c_ij` at window `w`
    /// across all pivots; `(−1, 1)` (no information) when every pivot is
    /// undefined there or the pair involves a pivot-degenerate window.
    ///
    /// The per-pivot `(c_iz, c_jz)` pairs are gathered into stack buffers
    /// and intersected by [`kernel::triangle_interval`] four lanes at a
    /// time; chunked intersection is exact (min/max is associative), so
    /// the result is bit-identical for any chunk boundary and any kernel
    /// backend.
    pub fn interval(&self, i: usize, j: usize, w: usize) -> (f64, f64) {
        /// Gather-buffer capacity; pivot counts above this just flush in
        /// batches.
        const GATHER: usize = 32;
        debug_assert!(i < self.n_series && j < self.n_series && w < self.n_windows);
        let base = w * self.n_series;
        let mut c_iz = [0.0f64; GATHER];
        let mut c_jz = [0.0f64; GATHER];
        let mut fill = 0usize;
        let mut best_lo = -1.0f64;
        let mut best_hi = 1.0f64;
        let flush = |iz: &[f64], jz: &[f64], best_lo: &mut f64, best_hi: &mut f64| {
            let (lo, hi) = kernel::triangle_interval(iz, jz);
            if lo > *best_lo {
                *best_lo = lo;
            }
            if hi < *best_hi {
                *best_hi = hi;
            }
        };
        for (p, row) in self.corr.iter().enumerate() {
            // Using the pivot as one endpoint would be circular; the value
            // is exact in that case, and the walker evaluates it exactly
            // anyway, so skip. NaN marks zero-variance windows, which
            // carry no information.
            if self.pivots[p] == i || self.pivots[p] == j {
                continue;
            }
            let iz = row[base + i];
            let jz = row[base + j];
            if iz.is_nan() || jz.is_nan() {
                continue;
            }
            c_iz[fill] = iz;
            c_jz[fill] = jz;
            fill += 1;
            if fill == GATHER {
                flush(&c_iz, &c_jz, &mut best_lo, &mut best_hi);
                fill = 0;
            }
        }
        if fill > 0 {
            flush(&c_iz[..fill], &c_jz[..fill], &mut best_lo, &mut best_hi);
        }
        (best_lo, best_hi)
    }

    /// Tightest triangle upper bound (see [`PivotSet::interval`]).
    pub fn upper_bound(&self, i: usize, j: usize, w: usize) -> f64 {
        self.interval(i, j, w).1
    }

    /// Pair-level prefilter: true when the triangle upper bound is below
    /// `beta` in **every** window — the pair can be skipped wholesale.
    pub fn pair_always_below(&self, i: usize, j: usize, beta: f64) -> bool {
        (0..self.n_windows).all(|w| self.upper_bound(i, j, w) < beta)
    }

    /// Rule-aware pair-level prefilter over windows `[w0, w1)`: true when
    /// none of those windows can produce an edge under `rule` at `beta` —
    /// the walk over that window range can be skipped wholesale.
    pub fn pair_never_edges_in(
        &self,
        i: usize,
        j: usize,
        beta: f64,
        rule: EdgeRule,
        w0: usize,
        w1: usize,
    ) -> bool {
        debug_assert!(w1 <= self.n_windows);
        (w0..w1).all(|w| {
            let (lo, hi) = self.interval(i, j, w);
            match rule {
                EdgeRule::Positive => hi < beta,
                EdgeRule::Absolute => hi < beta && lo > -beta,
            }
        })
    }

    /// Rule-aware pair-level prefilter over **every** window.
    pub fn pair_never_edges(&self, i: usize, j: usize, beta: f64, rule: EdgeRule) -> bool {
        self.pair_never_edges_in(i, j, beta, rule, 0, self.n_windows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdata::generators;

    fn setup(
        n: usize,
    ) -> (
        TimeSeriesMatrix,
        SketchStore,
        BasicWindowLayout,
        SlidingQuery,
    ) {
        let x = generators::clustered_matrix(n, 240, 2, 0.5, 3).unwrap();
        let query = SlidingQuery {
            start: 0,
            end: 240,
            window: 60,
            step: 20,
            threshold: 0.8,
        };
        let layout = BasicWindowLayout::for_query(&query, 20).unwrap();
        let store = SketchStore::build(&x, layout).unwrap();
        (x, store, layout, query)
    }

    fn build(
        x: &TimeSeriesMatrix,
        store: &SketchStore,
        layout: &BasicWindowLayout,
        query: &SlidingQuery,
        pivots: Vec<usize>,
    ) -> PivotSet {
        PivotSet::build(x, store, layout, query, pivots, None, 1).unwrap()
    }

    #[test]
    fn select_evenly_and_random() {
        let p = select_pivots(&PivotStrategy::Evenly, 3, 12).unwrap();
        assert_eq!(p, vec![0, 4, 8]);
        let p = select_pivots(&PivotStrategy::Random { seed: 5 }, 3, 12).unwrap();
        assert_eq!(p.len(), 3);
        assert!(p.iter().all(|&i| i < 12));
        // Deterministic per seed.
        assert_eq!(
            p,
            select_pivots(&PivotStrategy::Random { seed: 5 }, 3, 12).unwrap()
        );
        // More pivots than series degrades gracefully.
        let p = select_pivots(&PivotStrategy::Evenly, 10, 4).unwrap();
        assert_eq!(p, vec![0, 1, 2, 3]);
    }

    #[test]
    fn select_random_handles_k_near_n() {
        // The old rejection sampler degenerated here; Fisher–Yates must
        // return all indices, distinct, in O(n).
        for n in [1usize, 2, 7, 50] {
            let p = select_pivots(&PivotStrategy::Random { seed: 42 }, n, n).unwrap();
            assert_eq!(p.len(), n, "n={n}");
            assert_eq!(p, (0..n).collect::<Vec<_>>(), "sorted+deduped, n={n}");
            // k = n − 1 is the classic worst case for rejection sampling.
            if n > 1 {
                let p = select_pivots(&PivotStrategy::Random { seed: 42 }, n - 1, n).unwrap();
                assert_eq!(p.len(), n - 1);
                assert!(p.windows(2).all(|w| w[0] < w[1]), "distinct, n={n}");
            }
        }
    }

    #[test]
    fn select_explicit_validates() {
        let p = select_pivots(&PivotStrategy::Explicit(vec![3, 1, 3]), 2, 5).unwrap();
        assert_eq!(p, vec![1, 3]); // sorted, deduped
        assert!(select_pivots(&PivotStrategy::Explicit(vec![9]), 1, 5).is_err());
    }

    #[test]
    fn pivot_correlations_are_exact() {
        let (x, store, layout, query) = setup(6);
        let pv = build(&x, &store, &layout, &query, vec![0]);
        // Check against direct computation for a few (series, window) cells.
        for s in 1..6 {
            for w in 0..query.n_windows() {
                let (ws, we) = query.window_range(w);
                let direct = tsdata::stats::pearson(&x.row(0)[ws..we], &x.row(s)[ws..we]).unwrap();
                let stored = pv.corr[0][w * pv.n_series + s];
                assert!((direct - stored).abs() < 1e-9, "s={s} w={w}");
            }
        }
    }

    #[test]
    fn parallel_build_is_bit_identical_and_reuses_pairs() {
        let (x, store, layout, query) = setup(9);
        let seq = build(&x, &store, &layout, &query, vec![0, 4]);
        for threads in [2, 8] {
            let par =
                PivotSet::build(&x, &store, &layout, &query, vec![0, 4], None, threads).unwrap();
            for (a, b) in seq.corr.iter().zip(&par.corr) {
                assert_eq!(
                    a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "threads={threads}"
                );
            }
        }
        // Building from precomputed pair sketches gives the same table.
        let pairs = sketch::pair::build_all(&layout, &x, 1).unwrap();
        let reused =
            PivotSet::build(&x, &store, &layout, &query, vec![0, 4], Some(&pairs), 2).unwrap();
        for (a, b) in seq.corr.iter().zip(&reused.corr) {
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn append_windows_matches_batch_build() {
        // Growing the table window-by-window from sketches must reproduce
        // the batch build exactly.
        let (x, store, layout, query) = setup(8);
        let batch = build(&x, &store, &layout, &query, vec![0, 4]);
        let pairs = sketch::pair::build_all(&layout, &x, 1).unwrap();
        let ns = layout.windows_per_query(query.window);
        let step_bw = query.step / layout.width;

        let mut grown = PivotSet::empty(vec![0, 4], 8);
        // Two uneven growth steps.
        for total in [2, query.n_windows()] {
            grown.append_windows(total, ns, step_bw, |z, s, b0, b1| {
                let p = &pairs[triangular::rank(z.min(s), z.max(s), 8)];
                combine::window_correlation(&store, p, z, s, b0, b1).unwrap_or(f64::NAN)
            });
        }
        assert_eq!(grown.n_windows(), batch.n_windows());
        for (a, b) in grown.corr.iter().zip(&batch.corr) {
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
        // Idempotent when nothing new completes.
        let before = grown.corr.clone();
        grown.append_windows(query.n_windows(), ns, step_bw, |_, _, _, _| f64::NAN);
        assert_eq!(before, grown.corr);
    }

    #[test]
    fn upper_bound_is_sound_everywhere() {
        let (x, store, layout, query) = setup(8);
        let pv = build(&x, &store, &layout, &query, vec![0, 4]);
        for i in 0..8 {
            for j in (i + 1)..8 {
                for w in 0..query.n_windows() {
                    let (ws, we) = query.window_range(w);
                    let truth =
                        tsdata::stats::pearson(&x.row(i)[ws..we], &x.row(j)[ws..we]).unwrap();
                    let ub = pv.upper_bound(i, j, w);
                    assert!(
                        truth <= ub + 1e-9,
                        "pair ({i},{j}) window {w}: {truth} > {ub}"
                    );
                }
            }
        }
    }

    #[test]
    fn pair_prefilter_agrees_with_bounds() {
        let (x, store, layout, query) = setup(8);
        let pv = build(&x, &store, &layout, &query, vec![0, 4]);
        for i in 0..8 {
            for j in (i + 1)..8 {
                let all_below = pv.pair_always_below(i, j, 0.8);
                let manual = (0..query.n_windows()).all(|w| pv.upper_bound(i, j, w) < 0.8);
                assert_eq!(all_below, manual);
                // The ranged prefilter over the full range agrees with the
                // unranged one.
                assert_eq!(
                    pv.pair_never_edges(i, j, 0.8, EdgeRule::Positive),
                    pv.pair_never_edges_in(i, j, 0.8, EdgeRule::Positive, 0, pv.n_windows())
                );
            }
        }
    }

    #[test]
    fn pruning_actually_fires_on_clustered_data() {
        // Cross-cluster pairs should be prunable with in-cluster pivots.
        let (x, store, layout, query) = setup(10);
        let pv = build(&x, &store, &layout, &query, vec![0, 1]);
        let pruned = (0..10)
            .flat_map(|i| ((i + 1)..10).map(move |j| (i, j)))
            .filter(|&(i, j)| pv.pair_always_below(i, j, 0.95))
            .count();
        assert!(pruned > 0, "expected at least one wholesale-prunable pair");
    }
}
