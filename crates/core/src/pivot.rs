//! Horizontal (triangle-inequality) pruning support.
//!
//! A pivot series `z` is correlated against *every* series once per window
//! (O(N·γ) sketch combines — linear, not quadratic). For any pair `(x, y)`
//! the PSD-ness of correlation matrices then confines `c_xy` to
//! `c_xz·c_yz ± √((1−c_xz²)(1−c_yz²))`; pairs whose upper bound stays below
//! `β` never need an exact evaluation. Unlike the Eq. 2 jump this bound is
//! unconditional, so horizontal pruning never costs accuracy.

use crate::bounds::triangle_bounds;
use crate::config::PivotStrategy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sketch::{combine, BasicWindowLayout, PairSketch, SketchStore, SlidingQuery};
use tsdata::{TimeSeriesMatrix, TsError};

/// Pivot indices plus their per-window correlations to every series.
#[derive(Debug, Clone)]
pub struct PivotSet {
    /// The pivot series indices.
    pub pivots: Vec<usize>,
    n_series: usize,
    n_windows: usize,
    /// `corr[p][s·γ + w]` = corr(pivot p, series s) in window w;
    /// `NaN` marks undefined (zero-variance) windows, which never prune.
    corr: Vec<Vec<f64>>,
}

/// Picks pivot indices for a strategy.
pub fn select_pivots(
    strategy: &PivotStrategy,
    n_pivots: usize,
    n_series: usize,
) -> Result<Vec<usize>, TsError> {
    if n_series == 0 {
        return Err(TsError::Empty);
    }
    let k = n_pivots.min(n_series);
    let mut pivots = match strategy {
        PivotStrategy::Evenly => (0..k).map(|p| p * n_series / k).collect::<Vec<_>>(),
        PivotStrategy::Random { seed } => {
            let mut rng = StdRng::seed_from_u64(*seed);
            let mut chosen = Vec::with_capacity(k);
            while chosen.len() < k {
                let c = rng.gen_range(0..n_series);
                if !chosen.contains(&c) {
                    chosen.push(c);
                }
            }
            chosen
        }
        PivotStrategy::Explicit(list) => {
            for &p in list {
                if p >= n_series {
                    return Err(TsError::OutOfRange {
                        requested: p,
                        available: n_series,
                    });
                }
            }
            list.clone()
        }
    };
    pivots.sort_unstable();
    pivots.dedup();
    if pivots.is_empty() {
        return Err(TsError::InvalidParameter("no pivots selected".into()));
    }
    Ok(pivots)
}

impl PivotSet {
    /// Builds pivot-to-all correlations for every window.
    ///
    /// Cost: `O(n_pivots · N · (L + γ))` — the linear-in-N part of the
    /// horizontal pruning trade.
    pub fn build(
        x: &TimeSeriesMatrix,
        store: &SketchStore,
        layout: &BasicWindowLayout,
        query: &SlidingQuery,
        pivots: Vec<usize>,
    ) -> Result<Self, TsError> {
        let n = x.n_series();
        let n_windows = query.n_windows();
        let mut corr = Vec::with_capacity(pivots.len());
        for &z in &pivots {
            let mut row = vec![f64::NAN; n * n_windows];
            for s in 0..n {
                if s == z {
                    // corr(z, z) = 1 in every window.
                    for w in 0..n_windows {
                        row[s * n_windows + w] = 1.0;
                    }
                    continue;
                }
                let sketch = PairSketch::build(layout, x.row(z), x.row(s))?;
                for w in 0..n_windows {
                    let (ws, we) = query.window_range(w);
                    let (b0, b1) = layout.window_to_basic(ws, we)?;
                    row[s * n_windows + w] =
                        combine::window_correlation(store, &sketch, z, s, b0, b1)
                            .unwrap_or(f64::NAN);
                }
            }
            corr.push(row);
        }
        Ok(Self {
            pivots,
            n_series: n,
            n_windows,
            corr,
        })
    }

    /// Number of windows covered.
    pub fn n_windows(&self) -> usize {
        self.n_windows
    }

    /// Tightest triangle interval `[lo, hi]` on `c_ij` at window `w`
    /// across all pivots; `(−1, 1)` (no information) when every pivot is
    /// undefined there or the pair involves a pivot-degenerate window.
    pub fn interval(&self, i: usize, j: usize, w: usize) -> (f64, f64) {
        debug_assert!(i < self.n_series && j < self.n_series && w < self.n_windows);
        let mut best_lo = -1.0f64;
        let mut best_hi = 1.0f64;
        for (p, row) in self.corr.iter().enumerate() {
            // Using the pivot as one endpoint would be circular; the value
            // is exact in that case, and the walker evaluates it exactly
            // anyway, so skip.
            if self.pivots[p] == i || self.pivots[p] == j {
                continue;
            }
            let c_iz = row[i * self.n_windows + w];
            let c_jz = row[j * self.n_windows + w];
            if c_iz.is_nan() || c_jz.is_nan() {
                continue;
            }
            let (lo, hi) = triangle_bounds(c_iz, c_jz);
            best_lo = best_lo.max(lo);
            best_hi = best_hi.min(hi);
        }
        (best_lo, best_hi)
    }

    /// Tightest triangle upper bound (see [`PivotSet::interval`]).
    pub fn upper_bound(&self, i: usize, j: usize, w: usize) -> f64 {
        self.interval(i, j, w).1
    }

    /// Pair-level prefilter: true when the triangle upper bound is below
    /// `beta` in **every** window — the pair can be skipped wholesale.
    pub fn pair_always_below(&self, i: usize, j: usize, beta: f64) -> bool {
        (0..self.n_windows).all(|w| self.upper_bound(i, j, w) < beta)
    }

    /// Rule-aware pair-level prefilter: true when no window of the pair
    /// can produce an edge under `rule` at `beta`.
    pub fn pair_never_edges(
        &self,
        i: usize,
        j: usize,
        beta: f64,
        rule: sketch::output::EdgeRule,
    ) -> bool {
        use sketch::output::EdgeRule;
        (0..self.n_windows).all(|w| {
            let (lo, hi) = self.interval(i, j, w);
            match rule {
                EdgeRule::Positive => hi < beta,
                EdgeRule::Absolute => hi < beta && lo > -beta,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdata::generators;

    fn setup(
        n: usize,
    ) -> (
        TimeSeriesMatrix,
        SketchStore,
        BasicWindowLayout,
        SlidingQuery,
    ) {
        let x = generators::clustered_matrix(n, 240, 2, 0.5, 3).unwrap();
        let query = SlidingQuery {
            start: 0,
            end: 240,
            window: 60,
            step: 20,
            threshold: 0.8,
        };
        let layout = BasicWindowLayout::for_query(&query, 20).unwrap();
        let store = SketchStore::build(&x, layout).unwrap();
        (x, store, layout, query)
    }

    #[test]
    fn select_evenly_and_random() {
        let p = select_pivots(&PivotStrategy::Evenly, 3, 12).unwrap();
        assert_eq!(p, vec![0, 4, 8]);
        let p = select_pivots(&PivotStrategy::Random { seed: 5 }, 3, 12).unwrap();
        assert_eq!(p.len(), 3);
        assert!(p.iter().all(|&i| i < 12));
        // Deterministic per seed.
        assert_eq!(
            p,
            select_pivots(&PivotStrategy::Random { seed: 5 }, 3, 12).unwrap()
        );
        // More pivots than series degrades gracefully.
        let p = select_pivots(&PivotStrategy::Evenly, 10, 4).unwrap();
        assert_eq!(p, vec![0, 1, 2, 3]);
    }

    #[test]
    fn select_explicit_validates() {
        let p = select_pivots(&PivotStrategy::Explicit(vec![3, 1, 3]), 2, 5).unwrap();
        assert_eq!(p, vec![1, 3]); // sorted, deduped
        assert!(select_pivots(&PivotStrategy::Explicit(vec![9]), 1, 5).is_err());
    }

    #[test]
    fn pivot_correlations_are_exact() {
        let (x, store, layout, query) = setup(6);
        let pv = PivotSet::build(&x, &store, &layout, &query, vec![0]).unwrap();
        // Check against direct computation for a few (series, window) cells.
        for s in 1..6 {
            for w in 0..query.n_windows() {
                let (ws, we) = query.window_range(w);
                let direct = tsdata::stats::pearson(&x.row(0)[ws..we], &x.row(s)[ws..we]).unwrap();
                let stored = pv.corr[0][s * pv.n_windows + w];
                assert!((direct - stored).abs() < 1e-9, "s={s} w={w}");
            }
        }
    }

    #[test]
    fn upper_bound_is_sound_everywhere() {
        let (x, store, layout, query) = setup(8);
        let pv = PivotSet::build(&x, &store, &layout, &query, vec![0, 4]).unwrap();
        for i in 0..8 {
            for j in (i + 1)..8 {
                for w in 0..query.n_windows() {
                    let (ws, we) = query.window_range(w);
                    let truth =
                        tsdata::stats::pearson(&x.row(i)[ws..we], &x.row(j)[ws..we]).unwrap();
                    let ub = pv.upper_bound(i, j, w);
                    assert!(
                        truth <= ub + 1e-9,
                        "pair ({i},{j}) window {w}: {truth} > {ub}"
                    );
                }
            }
        }
    }

    #[test]
    fn pair_prefilter_agrees_with_bounds() {
        let (x, store, layout, query) = setup(8);
        let pv = PivotSet::build(&x, &store, &layout, &query, vec![0, 4]).unwrap();
        for i in 0..8 {
            for j in (i + 1)..8 {
                let all_below = pv.pair_always_below(i, j, 0.8);
                let manual = (0..query.n_windows()).all(|w| pv.upper_bound(i, j, w) < 0.8);
                assert_eq!(all_below, manual);
            }
        }
    }

    #[test]
    fn pruning_actually_fires_on_clustered_data() {
        // Cross-cluster pairs should be prunable with in-cluster pivots.
        let (x, store, layout, query) = setup(10);
        let pv = PivotSet::build(&x, &store, &layout, &query, vec![0, 1]).unwrap();
        let pruned = (0..10)
            .flat_map(|i| ((i + 1)..10).map(move |j| (i, j)))
            .filter(|&(i, j)| pv.pair_always_below(i, j, 0.95))
            .count();
        assert!(pruned > 0, "expected at least one wholesale-prunable pair");
    }
}
