//! The Dangoron engine: preparation (sketch building) and the pruned
//! sliding query.
//!
//! Following the paper's evaluation methodology, the two phases are split:
//! [`Dangoron::prepare`] builds the basic-window sketch store (and, in
//! [`PairStorage::Precomputed`] mode, all pair sketches — the TSUBASA
//! storage model), while [`Dangoron::run`] measures *pure query time*: the
//! walk over `(pair, window)` cells with vertical jumping and horizontal
//! pruning.

use crate::bounds::PairCosts;
use crate::config::{BoundMode, DangoronConfig, PairStorage};
use crate::pivot::{select_pivots, PivotSet};
use crate::stats::PruningStats;
use crate::walker::{pair_costs, walk_pair, WalkGeometry};
use sketch::output::{Edge, EdgeRule};
use sketch::{
    pair, triangular, BasicWindowLayout, PairSketch, SketchStore, SlidingQuery, ThresholdedMatrix,
};
use std::ops::Range;
use tsdata::{TimeSeriesMatrix, TsError};

/// The Dangoron framework, configured once and reusable across datasets.
#[derive(Debug, Clone)]
pub struct Dangoron {
    config: DangoronConfig,
}

/// Everything precomputed before the timed query: sketch store, optional
/// pair sketches, optional pivot correlations.
pub struct Prepared<'a> {
    x: &'a TimeSeriesMatrix,
    /// The validated query.
    pub query: SlidingQuery,
    /// Basic-window layout covering the query range.
    pub layout: BasicWindowLayout,
    /// Per-series basic-window statistics.
    pub store: SketchStore,
    pairs: Option<Vec<PairSketch>>,
    /// Per-pair Eq. 2 departure-cost prefixes, precomputed alongside the
    /// pair sketches (the paper: "we can precompute and store basic window
    /// statistics" — the pairwise `c_j` are part of that sketch state).
    deps: Option<Vec<PairCosts>>,
    pivots: Option<PivotSet>,
    geo: WalkGeometry,
    /// The contiguous pair-rank interval this preparation covers: the full
    /// triangle for [`Dangoron::prepare`], a shard for
    /// [`Dangoron::prepare_shard`]. `pairs`/`deps` are indexed by
    /// `rank − pair_range.start`.
    pair_range: Range<usize>,
}

/// The result of a sliding query: one thresholded matrix per window plus
/// pruning counters.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// `C_0 … C_γ`, finalized (sorted, lookup-ready).
    pub matrices: Vec<ThresholdedMatrix>,
    /// Work/skip accounting.
    pub stats: PruningStats,
}

impl QueryResult {
    /// Total edges across all windows.
    pub fn total_edges(&self) -> usize {
        self.matrices.iter().map(|m| m.n_edges()).sum()
    }
}

/// Minimum pair-chunk a worker steals at once. Small, because vertical
/// jumping makes per-pair cost wildly non-uniform — a large floor would
/// recreate the static-chunk straggler problem the scheduler exists to
/// avoid; going all the way to 1 pays one atomic per pair on cheap
/// workloads.
pub(crate) const WALK_GRAIN: usize = 8;

/// A flat, windows-tagged edge emitted by one worker. The per-worker
/// buffers are merged lock-free and assembled into matrices with a single
/// sort-and-partition ([`ThresholdedMatrix::assemble_windows`]).
type TaggedEdge = (u32, Edge);

impl Dangoron {
    /// Creates an engine after validating the configuration.
    pub fn new(config: DangoronConfig) -> Result<Self, TsError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The engine configuration.
    pub fn config(&self) -> &DangoronConfig {
        &self.config
    }

    /// Builds all query-independent state (offline phase).
    pub fn prepare<'a>(
        &self,
        x: &'a TimeSeriesMatrix,
        query: SlidingQuery,
    ) -> Result<Prepared<'a>, TsError> {
        let n_pairs = triangular::count(x.n_series());
        self.prepare_shard(x, query, 0..n_pairs)
    }

    /// [`Dangoron::prepare`] restricted to a contiguous pair-rank shard
    /// `[pair_range.start, pair_range.end)` of the [`triangular`] rank
    /// space — the distributed tier's worker entry point.
    ///
    /// In [`PairStorage::Precomputed`] mode only the shard's pair sketches
    /// and departure costs are built, so a worker's prepare cost and memory
    /// scale with its shard, not with the full `N·(N−1)/2` triangle. The
    /// per-series [`SketchStore`] and the pivot table (when horizontal
    /// pruning is on) are whole-matrix state and are built in full — they
    /// are O(N), not O(N²), and every shard needs them. Sharded
    /// preparations build the pivot table from raw rows rather than from
    /// the (partial) pair-sketch set; the two paths are bit-identical, so
    /// results never depend on the shard layout.
    pub fn prepare_shard<'a>(
        &self,
        x: &'a TimeSeriesMatrix,
        query: SlidingQuery,
        pair_range: Range<usize>,
    ) -> Result<Prepared<'a>, TsError> {
        let _timer = obs::stages::span(obs::stages::Stage::Prepare);
        let n_pairs = triangular::count(x.n_series());
        if pair_range.start > pair_range.end || pair_range.end > n_pairs {
            return Err(TsError::InvalidParameter(format!(
                "pair range {}..{} outside the {} pair ranks",
                pair_range.start, pair_range.end, n_pairs
            )));
        }
        query.validate(x.len())?;
        if self.config.edge_rule == EdgeRule::Absolute && query.threshold < 0.0 {
            return Err(TsError::InvalidParameter(
                "absolute edge rule requires a non-negative threshold".into(),
            ));
        }
        let layout = BasicWindowLayout::for_query(&query, self.config.basic_window)?;
        let threads = self.config.threads;
        let store = SketchStore::build_with_threads(x, layout, threads)?;
        let n = x.n_series();

        let full_triangle = pair_range == (0..n_pairs);
        let need_dep = matches!(self.config.bound, BoundMode::PaperJump { .. });
        let (pairs, deps) = match self.config.storage {
            PairStorage::Precomputed => {
                // Cache-blocked tiled build of the cross-prefix sketches
                // (the whole triangle, or only the shard's rank interval),
                // then the Eq. 2 departure costs, both with workers
                // stealing chunks — the prepare phase dominates wall time
                // at large N and was previously a serial loop.
                let v = if full_triangle {
                    pair::build_all(&layout, x, threads)?
                } else {
                    pair::build_range(&layout, x, pair_range.clone(), threads)?
                };
                let d = need_dep.then(|| {
                    let rule = self.config.edge_rule;
                    let base = pair_range.start;
                    exec::par_collect_chunks(v.len(), threads, 16, |range| {
                        range
                            .map(|k| {
                                let (i, j) = triangular::unrank(base + k, n);
                                pair_costs(&store, &v[k], i, j, rule)
                            })
                            .collect()
                    })
                });
                (Some(v), d)
            }
            PairStorage::OnDemand => (None, None),
        };

        let pivots = match &self.config.horizontal {
            Some(h) => {
                let chosen = select_pivots(&h.strategy, h.n_pivots, n)?;
                // A sharded pair-sketch set cannot serve arbitrary
                // (pivot, series) ranks, so shard preparations build the
                // table from raw rows — bit-identical to the reuse path.
                let reuse = if full_triangle {
                    pairs.as_deref()
                } else {
                    None
                };
                Some(PivotSet::build(
                    x, &store, &layout, &query, chosen, reuse, threads,
                )?)
            }
            None => None,
        };

        let geo = WalkGeometry {
            n_windows: query.n_windows(),
            ns: layout.windows_per_query(query.window),
            step_bw: query.step / layout.width,
            offset_bw: 0,
        };

        Ok(Prepared {
            x,
            query,
            layout,
            store,
            pairs,
            deps,
            pivots,
            geo,
            pair_range,
        })
    }

    /// Runs the pruned sliding query — the paper's "pure query time".
    ///
    /// Pairs are handed to workers by a work-stealing chunk scheduler
    /// (pruning makes per-pair cost wildly non-uniform, so static chunks
    /// strand cores); every worker appends to a thread-local flat
    /// `(window, Edge)` buffer, and the buffers are merged lock-free at
    /// the end — no mutex anywhere on the query path. The merged buffer
    /// becomes the per-window matrices via one sort-and-partition, which
    /// also makes the result identical for every thread count.
    ///
    /// ```
    /// use dangoron::{Dangoron, DangoronConfig};
    /// use sketch::SlidingQuery;
    /// use tsdata::generators;
    ///
    /// let x = generators::clustered_matrix(6, 120, 2, 0.5, 3).unwrap();
    /// let query = SlidingQuery { start: 0, end: 120, window: 40, step: 20, threshold: 0.7 };
    /// let engine = Dangoron::new(DangoronConfig {
    ///     basic_window: 20,
    ///     ..Default::default()
    /// }).unwrap();
    /// // Prepare once (offline sketch build), run many times (pure query).
    /// let prep = engine.prepare(&x, query).unwrap();
    /// let first = engine.run(&prep);
    /// let again = engine.run(&prep);
    /// assert_eq!(first.matrices.len(), query.n_windows());
    /// assert_eq!(first.total_edges(), again.total_edges());
    /// ```
    pub fn run(&self, prep: &Prepared<'_>) -> QueryResult {
        self.run_range(prep, prep.pair_range.clone())
    }

    /// [`Dangoron::run`] restricted to the pair ranks
    /// `[ranks.start, ranks.end)` — the distributed tier's worker query.
    ///
    /// `ranks` must lie inside the interval the preparation covers
    /// ([`Prepared::pair_range`]). Concatenating the edge buffers of a
    /// partition of the triangle reproduces the unsharded [`Dangoron::run`]
    /// output bit-for-bit (the per-pair walk is independent, and the final
    /// sort-and-partition is keyed uniquely per edge), and the per-shard
    /// [`PruningStats`] sum to the unsharded counters.
    ///
    /// # Panics
    /// Panics when `ranks` is not contained in the prepared interval.
    pub fn run_range(&self, prep: &Prepared<'_>, ranks: Range<usize>) -> QueryResult {
        assert!(
            ranks.start >= prep.pair_range.start && ranks.end <= prep.pair_range.end,
            "pair ranks {}..{} outside the prepared interval {}..{}",
            ranks.start,
            ranks.end,
            prep.pair_range.start,
            prep.pair_range.end,
        );
        let _timer = obs::stages::span(obs::stages::Stage::Walk);
        let n = prep.x.n_series();

        let worker_out = exec::run_partitioned(
            ranks.len(),
            self.config.threads,
            WALK_GRAIN,
            |_| (Vec::<TaggedEdge>::new(), PruningStats::default()),
            |(buf, stats), range| {
                for local in range {
                    let (i, j) = triangular::unrank(ranks.start + local, n);
                    self.walk_one_pair(prep, i, j, buf, stats);
                }
            },
        );

        let mut stats = PruningStats::default();
        let total: usize = worker_out.iter().map(|(buf, _)| buf.len()).sum();
        let mut flat: Vec<TaggedEdge> = Vec::with_capacity(total);
        for (buf, s) in worker_out {
            stats.merge(&s);
            flat.extend(buf);
        }
        let matrices = ThresholdedMatrix::assemble_windows(
            n,
            prep.query.threshold,
            self.config.edge_rule,
            prep.geo.n_windows,
            flat,
        );
        QueryResult { matrices, stats }
    }

    /// Convenience: `prepare` + `run`.
    pub fn execute(
        &self,
        x: &TimeSeriesMatrix,
        query: SlidingQuery,
    ) -> Result<QueryResult, TsError> {
        let prep = self.prepare(x, query)?;
        Ok(self.run(&prep))
    }

    /// Walks one pair, appending its edges to the worker's flat buffer.
    fn walk_one_pair(
        &self,
        prep: &Prepared<'_>,
        i: usize,
        j: usize,
        buf: &mut Vec<TaggedEdge>,
        stats: &mut PruningStats,
    ) {
        let n = prep.x.n_series();
        let beta = prep.query.threshold;
        let n_windows = prep.geo.n_windows;
        let need_dep = matches!(self.config.bound, BoundMode::PaperJump { .. });

        // Pair-level horizontal prefilter: only worthwhile when the pair
        // sketch would have to be built from raw data.
        if prep.pairs.is_none() {
            if let Some(pv) = &prep.pivots {
                if pv.pair_never_edges(i, j, beta, self.config.edge_rule) {
                    stats.n_pairs += 1;
                    stats.total_cells += n_windows as u64;
                    stats.pairs_skipped_entirely += 1;
                    return;
                }
            }
        }

        let owned;
        let pair: &PairSketch = match &prep.pairs {
            Some(all) => &all[triangular::rank(i, j, n) - prep.pair_range.start],
            None => {
                owned = PairSketch::build(&prep.layout, prep.x.row(i), prep.x.row(j))
                    .expect("pair geometry validated in prepare");
                &owned
            }
        };

        // Precomputed deps (sketch state) when available; transient
        // otherwise (OnDemand storage pays it inside the query).
        let dep_owned;
        let dep = match (&prep.deps, need_dep) {
            (Some(all), true) => Some(&all[triangular::rank(i, j, n) - prep.pair_range.start]),
            (None, true) => {
                dep_owned = pair_costs(&prep.store, pair, i, j, self.config.edge_rule);
                Some(&dep_owned)
            }
            (_, false) => None,
        };
        walk_pair(
            &prep.store,
            pair,
            i,
            j,
            prep.geo,
            beta,
            self.config.edge_rule,
            self.config.bound,
            dep,
            prep.pivots.as_ref(),
            stats,
            |w, v| {
                buf.push((
                    w as u32,
                    Edge {
                        i: i as u32,
                        j: j as u32,
                        value: v,
                    },
                ))
            },
        );
    }
}

impl Prepared<'_> {
    /// Approximate bytes held by the prepared state (sketch store + pair
    /// sketches) — the memory axis of the storage-mode trade-off.
    pub fn memory_bytes(&self) -> usize {
        let pair_bytes = self
            .pairs
            .as_ref()
            .map(|v| v.len() * (self.layout.count + 1) * std::mem::size_of::<f64>())
            .unwrap_or(0);
        self.store.memory_bytes() + pair_bytes
    }

    /// The walk geometry (exposed for the experiment harness).
    pub fn geometry(&self) -> WalkGeometry {
        self.geo
    }

    /// The contiguous pair-rank interval this preparation covers — the
    /// full triangle for [`Dangoron::prepare`], the shard for
    /// [`Dangoron::prepare_shard`].
    pub fn pair_range(&self) -> Range<usize> {
        self.pair_range.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HorizontalConfig, PivotStrategy};
    use tsdata::{generators, stats as tstats};

    fn workload(n: usize, len: usize) -> TimeSeriesMatrix {
        generators::clustered_matrix(n, len, 3, 0.8, 42).unwrap()
    }

    fn query(len: usize, beta: f64) -> SlidingQuery {
        SlidingQuery {
            start: 0,
            end: len,
            window: 60,
            step: 20,
            threshold: beta,
        }
    }

    fn naive_matrices(x: &TimeSeriesMatrix, q: &SlidingQuery) -> Vec<ThresholdedMatrix> {
        (0..q.n_windows())
            .map(|w| {
                let (ws, we) = q.window_range(w);
                let mut m = ThresholdedMatrix::new(x.n_series(), q.threshold);
                for i in 0..x.n_series() {
                    for j in (i + 1)..x.n_series() {
                        if let Ok(r) = tstats::pearson(&x.row(i)[ws..we], &x.row(j)[ws..we]) {
                            m.push(i, j, r);
                        }
                    }
                }
                m.finalize();
                m
            })
            .collect()
    }

    fn assert_same(a: &[ThresholdedMatrix], b: &[ThresholdedMatrix]) {
        assert_eq!(a.len(), b.len());
        for (w, (ma, mb)) in a.iter().zip(b).enumerate() {
            assert_eq!(ma.n_edges(), mb.n_edges(), "window {w}");
            for (ea, eb) in ma.edges().iter().zip(mb.edges()) {
                assert_eq!((ea.i, ea.j), (eb.i, eb.j), "window {w}");
                assert!((ea.value - eb.value).abs() < 1e-9, "window {w}");
            }
        }
    }

    #[test]
    fn exhaustive_matches_naive() {
        let x = workload(10, 300);
        let q = query(300, 0.7);
        let engine = Dangoron::new(DangoronConfig {
            basic_window: 20,
            bound: BoundMode::Exhaustive,
            ..Default::default()
        })
        .unwrap();
        let got = engine.execute(&x, q).unwrap();
        assert_same(&got.matrices, &naive_matrices(&x, &q));
        // Exhaustive = every cell evaluated.
        let cells = (10 * 9 / 2) as u64 * q.n_windows() as u64;
        assert_eq!(got.stats.evaluated, cells);
        assert_eq!(got.stats.skip_fraction(), 0.0);
    }

    #[test]
    fn triangle_pruning_preserves_exactness() {
        let x = workload(12, 300);
        let q = query(300, 0.8);
        let plain = Dangoron::new(DangoronConfig {
            basic_window: 20,
            bound: BoundMode::Exhaustive,
            ..Default::default()
        })
        .unwrap();
        let pruned = Dangoron::new(DangoronConfig {
            basic_window: 20,
            bound: BoundMode::Exhaustive,
            horizontal: Some(HorizontalConfig {
                n_pivots: 3,
                strategy: PivotStrategy::Evenly,
            }),
            ..Default::default()
        })
        .unwrap();
        let a = plain.execute(&x, q).unwrap();
        let b = pruned.execute(&x, q).unwrap();
        assert_same(&a.matrices, &b.matrices);
        assert!(
            b.stats.pruned_by_triangle > 0,
            "triangle pruning never fired: {:?}",
            b.stats
        );
    }

    #[test]
    fn paper_jump_has_perfect_precision_and_high_recall() {
        // Noise 0.45 puts in-cluster correlation ≈ 0.83, straddling β.
        let x = generators::clustered_matrix(12, 600, 3, 0.45, 42).unwrap();
        let q = SlidingQuery {
            start: 0,
            end: 600,
            window: 120,
            step: 20,
            threshold: 0.75,
        };
        let exact = Dangoron::new(DangoronConfig {
            basic_window: 20,
            bound: BoundMode::Exhaustive,
            ..Default::default()
        })
        .unwrap()
        .execute(&x, q)
        .unwrap();
        let jumped = Dangoron::new(DangoronConfig {
            basic_window: 20,
            bound: BoundMode::PaperJump { slack: 0.0 },
            ..Default::default()
        })
        .unwrap()
        .execute(&x, q)
        .unwrap();

        let truth: std::collections::HashSet<(usize, usize, usize)> = exact
            .matrices
            .iter()
            .enumerate()
            .flat_map(|(w, m)| m.edge_pairs().map(move |(i, j)| (w, i, j)))
            .collect();
        let found: std::collections::HashSet<(usize, usize, usize)> = jumped
            .matrices
            .iter()
            .enumerate()
            .flat_map(|(w, m)| m.edge_pairs().map(move |(i, j)| (w, i, j)))
            .collect();
        // Precision 1.0: emissions only happen after exact evaluation.
        assert!(found.is_subset(&truth), "jump mode emitted a false edge");
        assert!(!truth.is_empty(), "workload produced no true edges");
        // Recall must be high on clustered (slow-drift) data.
        let recall = found.len() as f64 / truth.len() as f64;
        assert!(recall >= 0.9, "recall = {recall}");
        // And it must actually have skipped something.
        assert!(jumped.stats.skipped_by_jump > 0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let x = workload(14, 300);
        let q = query(300, 0.6);
        let mk = |threads| {
            Dangoron::new(DangoronConfig {
                basic_window: 20,
                threads,
                ..Default::default()
            })
            .unwrap()
            .execute(&x, q)
            .unwrap()
        };
        let seq = mk(1);
        let par = mk(4);
        assert_same(&seq.matrices, &par.matrices);
        assert_eq!(seq.stats.evaluated, par.stats.evaluated);
        assert_eq!(seq.stats.skipped_by_jump, par.stats.skipped_by_jump);
        assert_eq!(seq.stats.edges, par.stats.edges);
    }

    #[test]
    fn ondemand_matches_precomputed() {
        let x = workload(10, 300);
        let q = query(300, 0.7);
        let pre = Dangoron::new(DangoronConfig {
            basic_window: 20,
            storage: PairStorage::Precomputed,
            ..Default::default()
        })
        .unwrap()
        .execute(&x, q)
        .unwrap();
        let od = Dangoron::new(DangoronConfig {
            basic_window: 20,
            storage: PairStorage::OnDemand,
            ..Default::default()
        })
        .unwrap()
        .execute(&x, q)
        .unwrap();
        assert_same(&pre.matrices, &od.matrices);
    }

    #[test]
    fn ondemand_prefilter_skips_pairs_without_losing_edges() {
        let x = workload(12, 300);
        let q = query(300, 0.9);
        let filtered = Dangoron::new(DangoronConfig {
            basic_window: 20,
            bound: BoundMode::Exhaustive,
            storage: PairStorage::OnDemand,
            horizontal: Some(HorizontalConfig {
                n_pivots: 3,
                strategy: PivotStrategy::Evenly,
            }),
            ..Default::default()
        })
        .unwrap()
        .execute(&x, q)
        .unwrap();
        let exact = Dangoron::new(DangoronConfig {
            basic_window: 20,
            bound: BoundMode::Exhaustive,
            ..Default::default()
        })
        .unwrap()
        .execute(&x, q)
        .unwrap();
        assert_same(&exact.matrices, &filtered.matrices);
        assert!(
            filtered.stats.pairs_skipped_entirely > 0,
            "prefilter never fired: {:?}",
            filtered.stats
        );
    }

    #[test]
    fn stats_accounting_is_consistent() {
        let x = workload(10, 300);
        let q = query(300, 0.8);
        let r = Dangoron::new(DangoronConfig {
            basic_window: 20,
            ..Default::default()
        })
        .unwrap()
        .execute(&x, q)
        .unwrap();
        let s = &r.stats;
        assert_eq!(s.n_pairs, 45);
        assert_eq!(s.total_cells, 45 * q.n_windows() as u64);
        assert_eq!(
            s.evaluated + s.skipped_by_jump + s.pruned_by_triangle,
            s.total_cells
        );
        assert_eq!(
            s.edges,
            r.matrices.iter().map(|m| m.n_edges() as u64).sum::<u64>()
        );
    }

    #[test]
    fn prepare_rejects_misaligned_query() {
        let x = workload(4, 300);
        let engine = Dangoron::new(DangoronConfig {
            basic_window: 7, // does not divide window 60 / step 20
            ..Default::default()
        })
        .unwrap();
        assert!(engine.prepare(&x, query(300, 0.5)).is_err());
        // And an out-of-range query.
        let mut q = query(300, 0.5);
        q.end = 400;
        let engine = Dangoron::new(DangoronConfig {
            basic_window: 20,
            ..Default::default()
        })
        .unwrap();
        assert!(engine.prepare(&x, q).is_err());
    }

    #[test]
    fn memory_accounting_reflects_storage_mode() {
        let x = workload(8, 300);
        let q = query(300, 0.5);
        let pre = Dangoron::new(DangoronConfig {
            basic_window: 20,
            storage: PairStorage::Precomputed,
            ..Default::default()
        })
        .unwrap();
        let od = Dangoron::new(DangoronConfig {
            basic_window: 20,
            storage: PairStorage::OnDemand,
            ..Default::default()
        })
        .unwrap();
        let p1 = pre.prepare(&x, q).unwrap();
        let p2 = od.prepare(&x, q).unwrap();
        assert!(p1.memory_bytes() > p2.memory_bytes());
    }

    #[test]
    fn absolute_rule_finds_anticorrelation_edges() {
        // Two anti-correlated clusters: driver and its negation plus noise.
        let driver = generators::white_noise(300, 4);
        let mut rows = Vec::new();
        let mut rng_idx = 0u64;
        for sign in [1.0, 1.0, -1.0, -1.0] {
            rng_idx += 1;
            let noise = generators::white_noise(300, 100 + rng_idx);
            rows.push(
                driver
                    .iter()
                    .zip(&noise)
                    .map(|(&d, &n)| sign * d + 0.2 * n)
                    .collect::<Vec<f64>>(),
            );
        }
        let x = TimeSeriesMatrix::from_rows(rows).unwrap();
        let q = query(300, 0.9);

        for storage in [PairStorage::Precomputed, PairStorage::OnDemand] {
            for bound in [BoundMode::Exhaustive, BoundMode::PaperJump { slack: 0.0 }] {
                let engine = Dangoron::new(DangoronConfig {
                    basic_window: 20,
                    bound,
                    storage,
                    edge_rule: EdgeRule::Absolute,
                    ..Default::default()
                })
                .unwrap();
                let got = engine.execute(&x, q).unwrap();
                let truth = baselines_like_naive_abs(&x, &q);
                // Exhaustive must match exactly; jump must be a subset.
                if bound == BoundMode::Exhaustive {
                    assert_same(&got.matrices, &truth);
                } else {
                    for (g, t) in got.matrices.iter().zip(&truth) {
                        for e in g.edges() {
                            assert!(
                                t.contains(e.i as usize, e.j as usize),
                                "spurious absolute edge"
                            );
                        }
                    }
                }
                // Anticorrelated cross-cluster pairs must be present.
                assert!(
                    got.matrices.iter().any(|m| m.contains(0, 2)),
                    "missing anticorrelation edge ({storage:?}, {bound:?})"
                );
                let sample = got
                    .matrices
                    .iter()
                    .find(|m| m.contains(0, 2))
                    .unwrap()
                    .get(0, 2);
                assert!(sample < -0.9, "edge value should be negative: {sample}");
            }
        }
    }

    fn baselines_like_naive_abs(x: &TimeSeriesMatrix, q: &SlidingQuery) -> Vec<ThresholdedMatrix> {
        (0..q.n_windows())
            .map(|w| {
                let (ws, we) = q.window_range(w);
                let mut m =
                    ThresholdedMatrix::with_rule(x.n_series(), q.threshold, EdgeRule::Absolute);
                for i in 0..x.n_series() {
                    for j in (i + 1)..x.n_series() {
                        if let Ok(r) = tstats::pearson(&x.row(i)[ws..we], &x.row(j)[ws..we]) {
                            m.push(i, j, r);
                        }
                    }
                }
                m.finalize();
                m
            })
            .collect()
    }

    #[test]
    fn absolute_rule_rejects_negative_threshold() {
        let x = workload(4, 300);
        let mut q = query(300, 0.5);
        q.threshold = -0.5;
        let engine = Dangoron::new(DangoronConfig {
            basic_window: 20,
            edge_rule: EdgeRule::Absolute,
            ..Default::default()
        })
        .unwrap();
        assert!(engine.prepare(&x, q).is_err());
    }

    #[test]
    fn sharded_runs_partition_the_full_result() {
        // Any contiguous partition of the rank space, each shard prepared
        // AND run independently (the worker path), must reproduce the
        // unsharded result bit-for-bit once concatenated, and the shard
        // stats must sum to the unsharded counters.
        let x = workload(12, 300);
        let q = query(300, 0.7);
        let n_pairs = 12 * 11 / 2;
        for (storage, horizontal) in [
            (PairStorage::Precomputed, None),
            (
                PairStorage::OnDemand,
                Some(HorizontalConfig {
                    n_pivots: 3,
                    strategy: PivotStrategy::Evenly,
                }),
            ),
        ] {
            let engine = Dangoron::new(DangoronConfig {
                basic_window: 20,
                storage,
                horizontal: horizontal.clone(),
                ..Default::default()
            })
            .unwrap();
            let full_prep = engine.prepare(&x, q).unwrap();
            assert_eq!(full_prep.pair_range(), 0..n_pairs);
            let full = engine.run(&full_prep);

            for cuts in [
                vec![0, n_pairs],
                vec![0, 17, n_pairs],
                vec![0, 1, 2, 40, n_pairs],
            ] {
                let mut flat = Vec::new();
                let mut stats = PruningStats::default();
                for w in cuts.windows(2) {
                    let prep = engine.prepare_shard(&x, q, w[0]..w[1]).unwrap();
                    let part = engine.run_range(&prep, w[0]..w[1]);
                    stats.merge(&part.stats);
                    for (win, m) in part.matrices.iter().enumerate() {
                        flat.extend(m.edges().iter().map(|&e| (win as u32, e)));
                    }
                }
                let merged = ThresholdedMatrix::assemble_windows(
                    12,
                    q.threshold,
                    engine.config().edge_rule,
                    q.n_windows(),
                    flat,
                );
                assert_eq!(merged.len(), full.matrices.len());
                for (a, b) in merged.iter().zip(&full.matrices) {
                    assert_eq!(a.n_edges(), b.n_edges());
                    for (ea, eb) in a.edges().iter().zip(b.edges()) {
                        assert_eq!((ea.i, ea.j), (eb.i, eb.j));
                        assert_eq!(ea.value.to_bits(), eb.value.to_bits());
                    }
                }
                assert_eq!(stats, full.stats, "cuts {cuts:?} ({storage:?})");
            }
        }
    }

    #[test]
    fn run_range_within_one_preparation_matches_shards() {
        // Splitting one full preparation with run_range must agree with
        // the separately-prepared shards (engine-side invariance).
        let x = workload(10, 300);
        let q = query(300, 0.6);
        let engine = Dangoron::new(DangoronConfig {
            basic_window: 20,
            ..Default::default()
        })
        .unwrap();
        let prep = engine.prepare(&x, q).unwrap();
        let n_pairs = 45;
        let a = engine.run_range(&prep, 0..20);
        let b = engine.run_range(&prep, 20..n_pairs);
        let shard_a = engine.run_range(&engine.prepare_shard(&x, q, 0..20).unwrap(), 0..20);
        assert_eq!(a.stats, shard_a.stats);
        assert_eq!(
            a.total_edges() + b.total_edges(),
            engine.run(&prep).total_edges()
        );
    }

    #[test]
    fn prepare_shard_rejects_out_of_triangle_ranges() {
        let x = workload(6, 300);
        let q = query(300, 0.5);
        let engine = Dangoron::new(DangoronConfig {
            basic_window: 20,
            ..Default::default()
        })
        .unwrap();
        assert!(engine.prepare_shard(&x, q, 0..16).is_err()); // 15 pairs
        #[allow(clippy::reversed_empty_ranges)]
        let reversed = 9..3;
        assert!(engine.prepare_shard(&x, q, reversed).is_err());
        assert!(engine.prepare_shard(&x, q, 3..9).is_ok());
    }

    #[test]
    #[should_panic(expected = "outside the prepared interval")]
    fn run_range_outside_prepared_shard_panics() {
        let x = workload(6, 300);
        let q = query(300, 0.5);
        let engine = Dangoron::new(DangoronConfig {
            basic_window: 20,
            ..Default::default()
        })
        .unwrap();
        let prep = engine.prepare_shard(&x, q, 3..9).unwrap();
        let _ = engine.run_range(&prep, 0..9);
    }

    #[test]
    fn pair_rank_is_dense_and_ordered() {
        let n = 7;
        let mut seen = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                seen.push(triangular::rank(i, j, n));
            }
        }
        let expected: Vec<usize> = (0..n * (n - 1) / 2).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn assemble_windows_partitions_and_sorts() {
        let e = |i: u32, j: u32, v: f64| Edge { i, j, value: v };
        // Deliberately unordered, as if produced by racing workers.
        let flat = vec![
            (2u32, e(1, 3, 0.9)),
            (0, e(2, 4, 0.8)),
            (2, e(0, 1, 0.95)),
            (0, e(0, 1, 0.85)),
        ];
        let ms = ThresholdedMatrix::assemble_windows(5, 0.7, EdgeRule::Positive, 4, flat);
        assert_eq!(ms.len(), 4);
        assert_eq!(ms[0].n_edges(), 2);
        assert_eq!(ms[0].get(0, 1), 0.85);
        assert_eq!(ms[0].get(2, 4), 0.8);
        assert_eq!(ms[1].n_edges(), 0);
        assert_eq!(ms[2].n_edges(), 2);
        assert_eq!(ms[2].get(0, 1), 0.95);
        assert_eq!(ms[3].n_edges(), 0);
    }
}
