//! The Dangoron engine: preparation (sketch building) and the pruned
//! sliding query.
//!
//! Following the paper's evaluation methodology, the two phases are split:
//! [`Dangoron::prepare`] builds the basic-window sketch store (and, in
//! [`PairStorage::Precomputed`] mode, all pair sketches — the TSUBASA
//! storage model), while [`Dangoron::run`] measures *pure query time*: the
//! walk over `(pair, window)` cells with vertical jumping and horizontal
//! pruning.

use crate::bounds::PairCosts;
use crate::config::{BoundMode, DangoronConfig, PairStorage};
use crate::pivot::{select_pivots, PivotSet};
use crate::stats::PruningStats;
use crate::walker::{pair_costs, walk_pair, WalkGeometry};
use parking_lot::Mutex;
use sketch::output::{Edge, EdgeRule};
use sketch::{BasicWindowLayout, PairSketch, SketchStore, SlidingQuery, ThresholdedMatrix};
use tsdata::{TimeSeriesMatrix, TsError};

/// The Dangoron framework, configured once and reusable across datasets.
#[derive(Debug, Clone)]
pub struct Dangoron {
    config: DangoronConfig,
}

/// Everything precomputed before the timed query: sketch store, optional
/// pair sketches, optional pivot correlations.
pub struct Prepared<'a> {
    x: &'a TimeSeriesMatrix,
    /// The validated query.
    pub query: SlidingQuery,
    /// Basic-window layout covering the query range.
    pub layout: BasicWindowLayout,
    /// Per-series basic-window statistics.
    pub store: SketchStore,
    pairs: Option<Vec<PairSketch>>,
    /// Per-pair Eq. 2 departure-cost prefixes, precomputed alongside the
    /// pair sketches (the paper: "we can precompute and store basic window
    /// statistics" — the pairwise `c_j` are part of that sketch state).
    deps: Option<Vec<PairCosts>>,
    pivots: Option<PivotSet>,
    geo: WalkGeometry,
}

/// The result of a sliding query: one thresholded matrix per window plus
/// pruning counters.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// `C_0 … C_γ`, finalized (sorted, lookup-ready).
    pub matrices: Vec<ThresholdedMatrix>,
    /// Work/skip accounting.
    pub stats: PruningStats,
}

impl QueryResult {
    /// Total edges across all windows.
    pub fn total_edges(&self) -> usize {
        self.matrices.iter().map(|m| m.n_edges()).sum()
    }
}

#[inline]
fn pair_index(i: usize, j: usize, n: usize) -> usize {
    debug_assert!(i < j && j < n);
    i * (2 * n - i - 1) / 2 + (j - i - 1)
}

impl Dangoron {
    /// Creates an engine after validating the configuration.
    pub fn new(config: DangoronConfig) -> Result<Self, TsError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The engine configuration.
    pub fn config(&self) -> &DangoronConfig {
        &self.config
    }

    /// Builds all query-independent state (offline phase).
    pub fn prepare<'a>(
        &self,
        x: &'a TimeSeriesMatrix,
        query: SlidingQuery,
    ) -> Result<Prepared<'a>, TsError> {
        query.validate(x.len())?;
        if self.config.edge_rule == EdgeRule::Absolute && query.threshold < 0.0 {
            return Err(TsError::InvalidParameter(
                "absolute edge rule requires a non-negative threshold".into(),
            ));
        }
        let layout = BasicWindowLayout::for_query(&query, self.config.basic_window)?;
        let store = SketchStore::build(x, layout)?;
        let n = x.n_series();

        let need_dep = matches!(self.config.bound, BoundMode::PaperJump { .. });
        let (pairs, deps) = match self.config.storage {
            PairStorage::Precomputed => {
                let mut v = Vec::with_capacity(n * (n - 1) / 2);
                let mut d = need_dep.then(|| Vec::with_capacity(n * (n - 1) / 2));
                for i in 0..n {
                    for j in (i + 1)..n {
                        let pair = PairSketch::build(&layout, x.row(i), x.row(j))?;
                        if let Some(d) = d.as_mut() {
                            d.push(pair_costs(&store, &pair, i, j, self.config.edge_rule));
                        }
                        v.push(pair);
                    }
                }
                (Some(v), d)
            }
            PairStorage::OnDemand => (None, None),
        };

        let pivots = match &self.config.horizontal {
            Some(h) => {
                let chosen = select_pivots(&h.strategy, h.n_pivots, n)?;
                Some(PivotSet::build(x, &store, &layout, &query, chosen)?)
            }
            None => None,
        };

        let geo = WalkGeometry {
            n_windows: query.n_windows(),
            ns: layout.windows_per_query(query.window),
            step_bw: query.step / layout.width,
        };

        Ok(Prepared {
            x,
            query,
            layout,
            store,
            pairs,
            deps,
            pivots,
            geo,
        })
    }

    /// Runs the pruned sliding query — the paper's "pure query time".
    pub fn run(&self, prep: &Prepared<'_>) -> QueryResult {
        let n = prep.x.n_series();
        let all_pairs: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|i| ((i + 1)..n as u32).map(move |j| (i, j)))
            .collect();

        let threads = self.config.threads.min(all_pairs.len().max(1));
        let (window_edges, stats) = if threads <= 1 {
            self.process_pairs(prep, &all_pairs)
        } else {
            let results: Mutex<Vec<(Vec<Vec<Edge>>, PruningStats)>> =
                Mutex::new(Vec::with_capacity(threads));
            let chunk = all_pairs.len().div_ceil(threads);
            crossbeam::thread::scope(|scope| {
                for piece in all_pairs.chunks(chunk) {
                    let results = &results;
                    scope.spawn(move |_| {
                        let out = self.process_pairs(prep, piece);
                        results.lock().push(out);
                    });
                }
            })
            .expect("worker thread panicked");
            let mut merged_edges: Vec<Vec<Edge>> = vec![Vec::new(); prep.geo.n_windows];
            let mut merged_stats = PruningStats::default();
            for (edges, stats) in results.into_inner() {
                for (w, mut es) in edges.into_iter().enumerate() {
                    merged_edges[w].append(&mut es);
                }
                merged_stats.merge(&stats);
            }
            (merged_edges, merged_stats)
        };

        let matrices = window_edges
            .into_iter()
            .map(|edges| {
                let mut m = ThresholdedMatrix::with_rule(
                    n,
                    prep.query.threshold,
                    self.config.edge_rule,
                );
                for e in edges {
                    m.push(e.i as usize, e.j as usize, e.value);
                }
                m.finalize();
                m
            })
            .collect();
        QueryResult { matrices, stats }
    }

    /// Convenience: `prepare` + `run`.
    pub fn execute(
        &self,
        x: &TimeSeriesMatrix,
        query: SlidingQuery,
    ) -> Result<QueryResult, TsError> {
        let prep = self.prepare(x, query)?;
        Ok(self.run(&prep))
    }

    fn process_pairs(
        &self,
        prep: &Prepared<'_>,
        pairs: &[(u32, u32)],
    ) -> (Vec<Vec<Edge>>, PruningStats) {
        let n = prep.x.n_series();
        let beta = prep.query.threshold;
        let n_windows = prep.geo.n_windows;
        let mut window_edges: Vec<Vec<Edge>> = vec![Vec::new(); n_windows];
        let mut stats = PruningStats::default();
        let need_dep = matches!(self.config.bound, BoundMode::PaperJump { .. });

        for &(i, j) in pairs {
            let (i, j) = (i as usize, j as usize);

            // Pair-level horizontal prefilter: only worthwhile when the
            // pair sketch would have to be built from raw data.
            if prep.pairs.is_none() {
                if let Some(pv) = &prep.pivots {
                    if pv.pair_never_edges(i, j, beta, self.config.edge_rule) {
                        stats.n_pairs += 1;
                        stats.total_cells += n_windows as u64;
                        stats.pairs_skipped_entirely += 1;
                        continue;
                    }
                }
            }

            let owned;
            let pair: &PairSketch = match &prep.pairs {
                Some(all) => &all[pair_index(i, j, n)],
                None => {
                    owned = PairSketch::build(&prep.layout, prep.x.row(i), prep.x.row(j))
                        .expect("pair geometry validated in prepare");
                    &owned
                }
            };

            // Precomputed deps (sketch state) when available; transient
            // otherwise (OnDemand storage pays it inside the query).
            let dep_owned;
            let dep = match (&prep.deps, need_dep) {
                (Some(all), true) => Some(&all[pair_index(i, j, n)]),
                (None, true) => {
                    dep_owned = pair_costs(&prep.store, pair, i, j, self.config.edge_rule);
                    Some(&dep_owned)
                }
                (_, false) => None,
            };
            walk_pair(
                &prep.store,
                pair,
                i,
                j,
                prep.geo,
                beta,
                self.config.edge_rule,
                self.config.bound,
                dep,
                prep.pivots.as_ref(),
                &mut stats,
                |w, v| {
                    window_edges[w].push(Edge {
                        i: i as u32,
                        j: j as u32,
                        value: v,
                    })
                },
            );
        }
        (window_edges, stats)
    }
}

impl Prepared<'_> {
    /// Approximate bytes held by the prepared state (sketch store + pair
    /// sketches) — the memory axis of the storage-mode trade-off.
    pub fn memory_bytes(&self) -> usize {
        let pair_bytes = self
            .pairs
            .as_ref()
            .map(|v| v.len() * (self.layout.count + 1) * std::mem::size_of::<f64>())
            .unwrap_or(0);
        self.store.memory_bytes() + pair_bytes
    }

    /// The walk geometry (exposed for the experiment harness).
    pub fn geometry(&self) -> WalkGeometry {
        self.geo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HorizontalConfig, PivotStrategy};
    use tsdata::{generators, stats as tstats};

    fn workload(n: usize, len: usize) -> TimeSeriesMatrix {
        generators::clustered_matrix(n, len, 3, 0.8, 42).unwrap()
    }

    fn query(len: usize, beta: f64) -> SlidingQuery {
        SlidingQuery {
            start: 0,
            end: len,
            window: 60,
            step: 20,
            threshold: beta,
        }
    }

    fn naive_matrices(x: &TimeSeriesMatrix, q: &SlidingQuery) -> Vec<ThresholdedMatrix> {
        (0..q.n_windows())
            .map(|w| {
                let (ws, we) = q.window_range(w);
                let mut m = ThresholdedMatrix::new(x.n_series(), q.threshold);
                for i in 0..x.n_series() {
                    for j in (i + 1)..x.n_series() {
                        if let Ok(r) = tstats::pearson(&x.row(i)[ws..we], &x.row(j)[ws..we]) {
                            m.push(i, j, r);
                        }
                    }
                }
                m.finalize();
                m
            })
            .collect()
    }

    fn assert_same(a: &[ThresholdedMatrix], b: &[ThresholdedMatrix]) {
        assert_eq!(a.len(), b.len());
        for (w, (ma, mb)) in a.iter().zip(b).enumerate() {
            assert_eq!(ma.n_edges(), mb.n_edges(), "window {w}");
            for (ea, eb) in ma.edges().iter().zip(mb.edges()) {
                assert_eq!((ea.i, ea.j), (eb.i, eb.j), "window {w}");
                assert!((ea.value - eb.value).abs() < 1e-9, "window {w}");
            }
        }
    }

    #[test]
    fn exhaustive_matches_naive() {
        let x = workload(10, 300);
        let q = query(300, 0.7);
        let engine = Dangoron::new(DangoronConfig {
            basic_window: 20,
            bound: BoundMode::Exhaustive,
            ..Default::default()
        })
        .unwrap();
        let got = engine.execute(&x, q).unwrap();
        assert_same(&got.matrices, &naive_matrices(&x, &q));
        // Exhaustive = every cell evaluated.
        let cells = (10 * 9 / 2) as u64 * q.n_windows() as u64;
        assert_eq!(got.stats.evaluated, cells);
        assert_eq!(got.stats.skip_fraction(), 0.0);
    }

    #[test]
    fn triangle_pruning_preserves_exactness() {
        let x = workload(12, 300);
        let q = query(300, 0.8);
        let plain = Dangoron::new(DangoronConfig {
            basic_window: 20,
            bound: BoundMode::Exhaustive,
            ..Default::default()
        })
        .unwrap();
        let pruned = Dangoron::new(DangoronConfig {
            basic_window: 20,
            bound: BoundMode::Exhaustive,
            horizontal: Some(HorizontalConfig {
                n_pivots: 3,
                strategy: PivotStrategy::Evenly,
            }),
            ..Default::default()
        })
        .unwrap();
        let a = plain.execute(&x, q).unwrap();
        let b = pruned.execute(&x, q).unwrap();
        assert_same(&a.matrices, &b.matrices);
        assert!(
            b.stats.pruned_by_triangle > 0,
            "triangle pruning never fired: {:?}",
            b.stats
        );
    }

    #[test]
    fn paper_jump_has_perfect_precision_and_high_recall() {
        // Noise 0.45 puts in-cluster correlation ≈ 0.83, straddling β.
        let x = generators::clustered_matrix(12, 600, 3, 0.45, 42).unwrap();
        let q = SlidingQuery {
            start: 0,
            end: 600,
            window: 120,
            step: 20,
            threshold: 0.75,
        };
        let exact = Dangoron::new(DangoronConfig {
            basic_window: 20,
            bound: BoundMode::Exhaustive,
            ..Default::default()
        })
        .unwrap()
        .execute(&x, q)
        .unwrap();
        let jumped = Dangoron::new(DangoronConfig {
            basic_window: 20,
            bound: BoundMode::PaperJump { slack: 0.0 },
            ..Default::default()
        })
        .unwrap()
        .execute(&x, q)
        .unwrap();

        let truth: std::collections::HashSet<(usize, usize, usize)> = exact
            .matrices
            .iter()
            .enumerate()
            .flat_map(|(w, m)| m.edge_pairs().map(move |(i, j)| (w, i, j)))
            .collect();
        let found: std::collections::HashSet<(usize, usize, usize)> = jumped
            .matrices
            .iter()
            .enumerate()
            .flat_map(|(w, m)| m.edge_pairs().map(move |(i, j)| (w, i, j)))
            .collect();
        // Precision 1.0: emissions only happen after exact evaluation.
        assert!(found.is_subset(&truth), "jump mode emitted a false edge");
        assert!(!truth.is_empty(), "workload produced no true edges");
        // Recall must be high on clustered (slow-drift) data.
        let recall = found.len() as f64 / truth.len() as f64;
        assert!(recall >= 0.9, "recall = {recall}");
        // And it must actually have skipped something.
        assert!(jumped.stats.skipped_by_jump > 0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let x = workload(14, 300);
        let q = query(300, 0.6);
        let mk = |threads| {
            Dangoron::new(DangoronConfig {
                basic_window: 20,
                threads,
                ..Default::default()
            })
            .unwrap()
            .execute(&x, q)
            .unwrap()
        };
        let seq = mk(1);
        let par = mk(4);
        assert_same(&seq.matrices, &par.matrices);
        assert_eq!(seq.stats.evaluated, par.stats.evaluated);
        assert_eq!(seq.stats.skipped_by_jump, par.stats.skipped_by_jump);
        assert_eq!(seq.stats.edges, par.stats.edges);
    }

    #[test]
    fn ondemand_matches_precomputed() {
        let x = workload(10, 300);
        let q = query(300, 0.7);
        let pre = Dangoron::new(DangoronConfig {
            basic_window: 20,
            storage: PairStorage::Precomputed,
            ..Default::default()
        })
        .unwrap()
        .execute(&x, q)
        .unwrap();
        let od = Dangoron::new(DangoronConfig {
            basic_window: 20,
            storage: PairStorage::OnDemand,
            ..Default::default()
        })
        .unwrap()
        .execute(&x, q)
        .unwrap();
        assert_same(&pre.matrices, &od.matrices);
    }

    #[test]
    fn ondemand_prefilter_skips_pairs_without_losing_edges() {
        let x = workload(12, 300);
        let q = query(300, 0.9);
        let filtered = Dangoron::new(DangoronConfig {
            basic_window: 20,
            bound: BoundMode::Exhaustive,
            storage: PairStorage::OnDemand,
            horizontal: Some(HorizontalConfig {
                n_pivots: 3,
                strategy: PivotStrategy::Evenly,
            }),
            ..Default::default()
        })
        .unwrap()
        .execute(&x, q)
        .unwrap();
        let exact = Dangoron::new(DangoronConfig {
            basic_window: 20,
            bound: BoundMode::Exhaustive,
            ..Default::default()
        })
        .unwrap()
        .execute(&x, q)
        .unwrap();
        assert_same(&exact.matrices, &filtered.matrices);
        assert!(
            filtered.stats.pairs_skipped_entirely > 0,
            "prefilter never fired: {:?}",
            filtered.stats
        );
    }

    #[test]
    fn stats_accounting_is_consistent() {
        let x = workload(10, 300);
        let q = query(300, 0.8);
        let r = Dangoron::new(DangoronConfig {
            basic_window: 20,
            ..Default::default()
        })
        .unwrap()
        .execute(&x, q)
        .unwrap();
        let s = &r.stats;
        assert_eq!(s.n_pairs, 45);
        assert_eq!(s.total_cells, 45 * q.n_windows() as u64);
        assert_eq!(
            s.evaluated + s.skipped_by_jump + s.pruned_by_triangle,
            s.total_cells
        );
        assert_eq!(
            s.edges,
            r.matrices.iter().map(|m| m.n_edges() as u64).sum::<u64>()
        );
    }

    #[test]
    fn prepare_rejects_misaligned_query() {
        let x = workload(4, 300);
        let engine = Dangoron::new(DangoronConfig {
            basic_window: 7, // does not divide window 60 / step 20
            ..Default::default()
        })
        .unwrap();
        assert!(engine.prepare(&x, query(300, 0.5)).is_err());
        // And an out-of-range query.
        let mut q = query(300, 0.5);
        q.end = 400;
        let engine = Dangoron::new(DangoronConfig {
            basic_window: 20,
            ..Default::default()
        })
        .unwrap();
        assert!(engine.prepare(&x, q).is_err());
    }

    #[test]
    fn memory_accounting_reflects_storage_mode() {
        let x = workload(8, 300);
        let q = query(300, 0.5);
        let pre = Dangoron::new(DangoronConfig {
            basic_window: 20,
            storage: PairStorage::Precomputed,
            ..Default::default()
        })
        .unwrap();
        let od = Dangoron::new(DangoronConfig {
            basic_window: 20,
            storage: PairStorage::OnDemand,
            ..Default::default()
        })
        .unwrap();
        let p1 = pre.prepare(&x, q).unwrap();
        let p2 = od.prepare(&x, q).unwrap();
        assert!(p1.memory_bytes() > p2.memory_bytes());
    }

    #[test]
    fn absolute_rule_finds_anticorrelation_edges() {
        // Two anti-correlated clusters: driver and its negation plus noise.
        let driver = generators::white_noise(300, 4);
        let mut rows = Vec::new();
        let mut rng_idx = 0u64;
        for sign in [1.0, 1.0, -1.0, -1.0] {
            rng_idx += 1;
            let noise = generators::white_noise(300, 100 + rng_idx);
            rows.push(
                driver
                    .iter()
                    .zip(&noise)
                    .map(|(&d, &n)| sign * d + 0.2 * n)
                    .collect::<Vec<f64>>(),
            );
        }
        let x = TimeSeriesMatrix::from_rows(rows).unwrap();
        let q = query(300, 0.9);

        for storage in [PairStorage::Precomputed, PairStorage::OnDemand] {
            for bound in [BoundMode::Exhaustive, BoundMode::PaperJump { slack: 0.0 }] {
                let engine = Dangoron::new(DangoronConfig {
                    basic_window: 20,
                    bound,
                    storage,
                    edge_rule: EdgeRule::Absolute,
                    ..Default::default()
                })
                .unwrap();
                let got = engine.execute(&x, q).unwrap();
                let truth = baselines_like_naive_abs(&x, &q);
                // Exhaustive must match exactly; jump must be a subset.
                if bound == BoundMode::Exhaustive {
                    assert_same(&got.matrices, &truth);
                } else {
                    for (g, t) in got.matrices.iter().zip(&truth) {
                        for e in g.edges() {
                            assert!(
                                t.contains(e.i as usize, e.j as usize),
                                "spurious absolute edge"
                            );
                        }
                    }
                }
                // Anticorrelated cross-cluster pairs must be present.
                assert!(
                    got.matrices.iter().any(|m| m.contains(0, 2)),
                    "missing anticorrelation edge ({storage:?}, {bound:?})"
                );
                let sample = got
                    .matrices
                    .iter()
                    .find(|m| m.contains(0, 2))
                    .unwrap()
                    .get(0, 2);
                assert!(sample < -0.9, "edge value should be negative: {sample}");
            }
        }
    }

    fn baselines_like_naive_abs(
        x: &TimeSeriesMatrix,
        q: &SlidingQuery,
    ) -> Vec<ThresholdedMatrix> {
        (0..q.n_windows())
            .map(|w| {
                let (ws, we) = q.window_range(w);
                let mut m =
                    ThresholdedMatrix::with_rule(x.n_series(), q.threshold, EdgeRule::Absolute);
                for i in 0..x.n_series() {
                    for j in (i + 1)..x.n_series() {
                        if let Ok(r) = tstats::pearson(&x.row(i)[ws..we], &x.row(j)[ws..we]) {
                            m.push(i, j, r);
                        }
                    }
                }
                m.finalize();
                m
            })
            .collect()
    }

    #[test]
    fn absolute_rule_rejects_negative_threshold() {
        let x = workload(4, 300);
        let mut q = query(300, 0.5);
        q.threshold = -0.5;
        let engine = Dangoron::new(DangoronConfig {
            basic_window: 20,
            edge_rule: EdgeRule::Absolute,
            ..Default::default()
        })
        .unwrap();
        assert!(engine.prepare(&x, q).is_err());
    }

    #[test]
    fn pair_index_is_dense_and_ordered() {
        let n = 7;
        let mut seen = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                seen.push(pair_index(i, j, n));
            }
        }
        let expected: Vec<usize> = (0..n * (n - 1) / 2).collect();
        assert_eq!(seen, expected);
    }
}
