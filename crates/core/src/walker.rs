//! The per-pair window walker — Figure 2's state machine.
//!
//! For one pair the walker visits windows left to right. At each visited
//! window it obtains a correlation estimate (triangle bound if pruning
//! fires, exact sketch combine otherwise). Above-threshold windows emit an
//! edge and advance by one (the network needs the exact value, so no
//! skipping there). Below-threshold windows attempt an Eq. 2 jump: binary
//! search for the largest `k` whose bound stays below `β`, skip those `k`
//! windows (Fig. 2's green blocks), land on the next (red block) and
//! re-evaluate exactly.

use crate::bounds::{max_jump, max_jump_absolute, DepartureCost, PairCosts};
use crate::config::BoundMode;
use crate::pivot::PivotSet;
use crate::stats::PruningStats;
use sketch::output::EdgeRule;
use sketch::{combine, PairSketch, SketchStore};

/// Window-to-basic-window geometry shared by every pair of a query.
///
/// `offset_bw` shifts the whole walk into a global basic-window frame:
/// batch queries walk from the layout origin (`offset_bw = 0`), while a
/// streaming drain walks only the suffix of newly completed windows
/// (`offset_bw = first_new_window · step_bw`). One walker serves both.
#[derive(Debug, Clone, Copy)]
pub struct WalkGeometry {
    /// Number of sliding windows to walk (`γ + 1`, or the suffix length).
    pub n_windows: usize,
    /// Basic windows per query window (`n_s`).
    pub ns: usize,
    /// Basic windows departed per slide (`η / B`).
    pub step_bw: usize,
    /// Basic-window index of local window 0 — a multiple of `step_bw`.
    pub offset_bw: usize,
}

impl WalkGeometry {
    /// First basic-window index of (local) window `w`.
    #[inline]
    pub fn first_bw(&self, w: usize) -> usize {
        self.offset_bw + w * self.step_bw
    }

    /// Basic-window range `[b0, b1)` of (local) window `w`.
    #[inline]
    pub fn bw_range(&self, w: usize) -> (usize, usize) {
        let b0 = self.first_bw(w);
        (b0, b0 + self.ns)
    }

    /// Global window index of local window `w` — the index pivot tables
    /// and emitted matrices are keyed by.
    #[inline]
    pub fn global_window(&self, w: usize) -> usize {
        debug_assert!(self.offset_bw.is_multiple_of(self.step_bw));
        self.offset_bw / self.step_bw + w
    }
}

/// Builds the Eq. 2 departure-cost prefix for a pair over the whole layout.
pub fn departure_cost(store: &SketchStore, pair: &PairSketch, i: usize, j: usize) -> DepartureCost {
    let nb = store.layout().count;
    DepartureCost::from_correlations((0..nb).map(|b| pair.basic_correlation(store, i, j, b)))
}

/// Builds the full [`PairCosts`] for a pair: always the upper-bound
/// prefix, plus the lower-bound prefix when the edge rule needs it.
pub fn pair_costs(
    store: &SketchStore,
    pair: &PairSketch,
    i: usize,
    j: usize,
    rule: EdgeRule,
) -> PairCosts {
    let nb = store.layout().count;
    let upper = departure_cost(store, pair, i, j);
    let lower = (rule == EdgeRule::Absolute).then(|| {
        DepartureCost::from_correlations_lower(
            (0..nb).map(|b| pair.basic_correlation(store, i, j, b)),
        )
    });
    PairCosts { upper, lower }
}

/// Extends stored [`PairCosts`] to cover the store's current basic-window
/// count, reading only the new windows' correlations — the streaming
/// maintenance path (bit-identical to a fresh [`pair_costs`] build).
pub fn extend_pair_costs(
    costs: &mut PairCosts,
    store: &SketchStore,
    pair: &PairSketch,
    i: usize,
    j: usize,
) {
    let from = costs.upper.n_basic();
    let nb = store.layout().count;
    costs
        .upper
        .extend_from_correlations((from..nb).map(|b| pair.basic_correlation(store, i, j, b)));
    if let Some(lower) = &mut costs.lower {
        lower.extend_from_correlations_lower(
            (from..nb).map(|b| pair.basic_correlation(store, i, j, b)),
        );
    }
}

/// Walks all windows of one pair, calling `emit(window, value)` for every
/// window whose correlation passes `rule` at `beta`. Counters are recorded
/// into `stats`.
#[allow(clippy::too_many_arguments)]
pub fn walk_pair(
    store: &SketchStore,
    pair: &PairSketch,
    i: usize,
    j: usize,
    geo: WalkGeometry,
    beta: f64,
    rule: EdgeRule,
    mode: BoundMode,
    dep: Option<&PairCosts>,
    pivots: Option<&PivotSet>,
    stats: &mut PruningStats,
    mut emit: impl FnMut(usize, f64),
) {
    stats.n_pairs += 1;
    stats.total_cells += geo.n_windows as u64;

    let mut w = 0usize;
    while w < geo.n_windows {
        // Horizontal pruning: a sound interval excluding every edge value
        // settles the window without an exact combine.
        let mut bracket: Option<(f64, f64)> = None; // (lo, hi) on c_ij
        if let Some(pv) = pivots {
            let (lo, hi) = pv.interval(i, j, geo.global_window(w));
            let settled = match rule {
                EdgeRule::Positive => hi < beta,
                EdgeRule::Absolute => hi < beta && lo > -beta,
            };
            if settled {
                stats.pruned_by_triangle += 1;
                bracket = Some((lo, hi));
            }
        }
        if bracket.is_none() {
            let (b0, b1) = geo.bw_range(w);
            stats.evaluated += 1;
            match combine::window_correlation(store, pair, i, j, b0, b1) {
                Ok(c) => {
                    if rule.keeps(c, beta) {
                        stats.edges += 1;
                        emit(w, c);
                        w += 1;
                        continue;
                    }
                    bracket = Some((c, c));
                }
                Err(_) => {
                    // Zero-variance window: correlation undefined, no edge,
                    // and no jump (the Eq. 2 model does not apply).
                    w += 1;
                    continue;
                }
            }
        }
        let (corr_lo, corr_hi) = bracket.unwrap();

        // Below threshold (exactly, or via a sound bracket): jump.
        match mode {
            BoundMode::Exhaustive => w += 1,
            BoundMode::PaperJump { slack } => {
                let dep = dep.expect("PaperJump mode requires departure costs");
                let k_max = geo.n_windows - 1 - w;
                let k = match rule {
                    EdgeRule::Positive => max_jump(
                        corr_hi,
                        beta,
                        slack,
                        geo.ns,
                        geo.step_bw,
                        geo.first_bw(w),
                        k_max,
                        &dep.upper,
                    ),
                    EdgeRule::Absolute => max_jump_absolute(
                        corr_hi,
                        corr_lo,
                        beta,
                        slack,
                        geo.ns,
                        geo.step_bw,
                        geo.first_bw(w),
                        k_max,
                        &dep.upper,
                        dep.lower
                            .as_ref()
                            .expect("absolute rule requires the lower-bound cost"),
                    ),
                };
                if k == 0 {
                    w += 1;
                } else {
                    stats.record_jump(k);
                    w += k + 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketch::{BasicWindowLayout, SlidingQuery};
    use tsdata::{generators, stats as tstats, TimeSeriesMatrix};

    struct Fixture {
        x: TimeSeriesMatrix,
        store: SketchStore,
        pair: PairSketch,
        query: SlidingQuery,
        geo: WalkGeometry,
    }

    fn fixture(rho: f64, beta: f64) -> Fixture {
        let (a, b) = generators::correlated_pair(400, rho, 21);
        let x = TimeSeriesMatrix::from_rows(vec![a, b]).unwrap();
        let query = SlidingQuery {
            start: 0,
            end: 400,
            window: 80,
            step: 20,
            threshold: beta,
        };
        let layout = BasicWindowLayout::for_query(&query, 20).unwrap();
        let store = SketchStore::build(&x, layout).unwrap();
        let pair = PairSketch::build(&layout, x.row(0), x.row(1)).unwrap();
        let geo = WalkGeometry {
            n_windows: query.n_windows(),
            ns: layout.windows_per_query(query.window),
            step_bw: query.step / layout.width,
            offset_bw: 0,
        };
        Fixture {
            x,
            store,
            pair,
            query,
            geo,
        }
    }

    fn naive_edges(f: &Fixture) -> Vec<(usize, f64)> {
        (0..f.query.n_windows())
            .filter_map(|w| {
                let (ws, we) = f.query.window_range(w);
                let r = tstats::pearson(&f.x.row(0)[ws..we], &f.x.row(1)[ws..we]).ok()?;
                (r >= f.query.threshold).then_some((w, r))
            })
            .collect()
    }

    #[test]
    fn exhaustive_walk_matches_naive_exactly() {
        for &(rho, beta) in &[(0.9, 0.8), (0.3, 0.5), (0.0, 0.9), (0.95, 0.2)] {
            let f = fixture(rho, beta);
            let mut got = Vec::new();
            let mut stats = PruningStats::default();
            walk_pair(
                &f.store,
                &f.pair,
                0,
                1,
                f.geo,
                beta,
                EdgeRule::Positive,
                BoundMode::Exhaustive,
                None,
                None,
                &mut stats,
                |w, v| got.push((w, v)),
            );
            let expected = naive_edges(&f);
            assert_eq!(got.len(), expected.len(), "rho={rho} beta={beta}");
            for ((gw, gv), (ew, ev)) in got.iter().zip(&expected) {
                assert_eq!(gw, ew);
                assert!((gv - ev).abs() < 1e-9);
            }
            assert_eq!(stats.evaluated, f.geo.n_windows as u64);
            assert_eq!(stats.skipped_by_jump, 0);
        }
    }

    #[test]
    fn jump_mode_emits_subset_with_exact_values() {
        let f = fixture(0.4, 0.85);
        let dep = pair_costs(&f.store, &f.pair, 0, 1, EdgeRule::Positive);
        let mut got = Vec::new();
        let mut stats = PruningStats::default();
        walk_pair(
            &f.store,
            &f.pair,
            0,
            1,
            f.geo,
            0.85,
            EdgeRule::Positive,
            BoundMode::PaperJump { slack: 0.0 },
            Some(&dep),
            None,
            &mut stats,
            |w, v| got.push((w, v)),
        );
        let expected = naive_edges(&f);
        // Every emission must be a true edge with the exact value.
        for (w, v) in &got {
            let found = expected.iter().find(|(ew, _)| ew == w);
            assert!(found.is_some(), "spurious edge at window {w}");
            assert!((found.unwrap().1 - v).abs() < 1e-9);
        }
        // Work accounting must be consistent.
        assert_eq!(
            stats.evaluated + stats.skipped_by_jump,
            f.geo.n_windows as u64
        );
    }

    #[test]
    fn jump_mode_skips_on_uncorrelated_pair() {
        let f = fixture(0.0, 0.9);
        let dep = pair_costs(&f.store, &f.pair, 0, 1, EdgeRule::Positive);
        let mut stats = PruningStats::default();
        walk_pair(
            &f.store,
            &f.pair,
            0,
            1,
            f.geo,
            0.9,
            EdgeRule::Positive,
            BoundMode::PaperJump { slack: 0.0 },
            Some(&dep),
            None,
            &mut stats,
            |_, _| {},
        );
        assert!(
            stats.skipped_by_jump > 0,
            "uncorrelated pair at high β should produce jumps: {stats:?}"
        );
        assert!(stats.jumps > 0);
        assert!(stats.mean_jump_length() >= 1.0);
    }

    #[test]
    fn perfectly_correlated_pair_emits_everywhere() {
        let f = fixture(0.999, 0.9);
        let dep = pair_costs(&f.store, &f.pair, 0, 1, EdgeRule::Positive);
        let mut got = Vec::new();
        let mut stats = PruningStats::default();
        walk_pair(
            &f.store,
            &f.pair,
            0,
            1,
            f.geo,
            0.9,
            EdgeRule::Positive,
            BoundMode::PaperJump { slack: 0.0 },
            Some(&dep),
            None,
            &mut stats,
            |w, v| got.push((w, v)),
        );
        assert_eq!(got.len(), f.geo.n_windows);
        assert_eq!(stats.edges, f.geo.n_windows as u64);
        assert_eq!(stats.skipped_by_jump, 0);
    }

    #[test]
    fn zero_variance_pair_is_silent() {
        let flat = vec![5.0; 400];
        let (a, _) = generators::correlated_pair(400, 0.5, 3);
        let x = TimeSeriesMatrix::from_rows(vec![flat, a]).unwrap();
        let query = SlidingQuery {
            start: 0,
            end: 400,
            window: 80,
            step: 40,
            threshold: 0.5,
        };
        let layout = BasicWindowLayout::for_query(&query, 40).unwrap();
        let store = SketchStore::build(&x, layout).unwrap();
        let pair = PairSketch::build(&layout, x.row(0), x.row(1)).unwrap();
        let geo = WalkGeometry {
            n_windows: query.n_windows(),
            ns: 2,
            step_bw: 1,
            offset_bw: 0,
        };
        let dep = pair_costs(&store, &pair, 0, 1, EdgeRule::Positive);
        let mut stats = PruningStats::default();
        let mut emitted = 0;
        walk_pair(
            &store,
            &pair,
            0,
            1,
            geo,
            0.5,
            EdgeRule::Positive,
            BoundMode::PaperJump { slack: 0.0 },
            Some(&dep),
            None,
            &mut stats,
            |_, _| emitted += 1,
        );
        assert_eq!(emitted, 0);
        assert_eq!(stats.edges, 0);
    }

    #[test]
    fn offset_walk_equals_suffix_of_full_walk() {
        // The streaming drain walks only new windows via `offset_bw`; its
        // emissions must be exactly the full walk's, shifted. (Exhaustive
        // mode: jump state does not carry across the suffix boundary.)
        let f = fixture(0.85, 0.8);
        let mut full = Vec::new();
        let mut stats = PruningStats::default();
        walk_pair(
            &f.store,
            &f.pair,
            0,
            1,
            f.geo,
            0.8,
            EdgeRule::Positive,
            BoundMode::Exhaustive,
            None,
            None,
            &mut stats,
            |w, v| full.push((w, v)),
        );
        for skip in [1usize, 3, 7] {
            let geo = WalkGeometry {
                n_windows: f.geo.n_windows - skip,
                offset_bw: skip * f.geo.step_bw,
                ..f.geo
            };
            assert_eq!(geo.global_window(0), skip);
            let mut got = Vec::new();
            let mut stats = PruningStats::default();
            walk_pair(
                &f.store,
                &f.pair,
                0,
                1,
                geo,
                0.8,
                EdgeRule::Positive,
                BoundMode::Exhaustive,
                None,
                None,
                &mut stats,
                |w, v| got.push((w + skip, v)),
            );
            let expected: Vec<(usize, f64)> =
                full.iter().filter(|(w, _)| *w >= skip).cloned().collect();
            assert_eq!(got, expected, "skip={skip}");
        }
    }

    #[test]
    fn larger_slack_never_skips_more() {
        let f = fixture(0.5, 0.8);
        let dep = pair_costs(&f.store, &f.pair, 0, 1, EdgeRule::Positive);
        let mut skipped = Vec::new();
        for &slack in &[0.0, 0.1, 0.3] {
            let mut stats = PruningStats::default();
            walk_pair(
                &f.store,
                &f.pair,
                0,
                1,
                f.geo,
                0.8,
                EdgeRule::Positive,
                BoundMode::PaperJump { slack },
                Some(&dep),
                None,
                &mut stats,
                |_, _| {},
            );
            skipped.push(stats.skipped_by_jump);
        }
        assert!(skipped[0] >= skipped[1]);
        assert!(skipped[1] >= skipped[2]);
    }
}
