//! Pruning statistics — the observability layer behind Figure 2 and the
//! E3/E7 experiments.

use serde::{Deserialize, Serialize};

/// Number of log₂ buckets in the jump-length histogram (bucket `b` counts
/// jumps of length in `[2^b, 2^{b+1})`).
pub const JUMP_BUCKETS: usize = 24;

/// Counters describing how much work a query skipped.
///
/// Batch queries produce one record per run; streaming sessions merge
/// every drain's per-worker counters into a cumulative record
/// (`StreamingDangoron::stats`) and keep the latest drain separately
/// (`last_drain_stats`). In the cumulative view `n_pairs` counts
/// (pair, drain) encounters — each drain walks every pair over its new
/// windows — so `total_cells` still sums to pairs × windows overall.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PruningStats {
    /// Pairs processed.
    pub n_pairs: u64,
    /// Total `(pair, window)` cells of the problem (`pairs × windows`).
    pub total_cells: u64,
    /// Cells where the exact correlation was computed.
    pub evaluated: u64,
    /// Cells skipped by the Eq. 2 jump.
    pub skipped_by_jump: u64,
    /// Cells where the triangle bound replaced the exact evaluation.
    pub pruned_by_triangle: u64,
    /// Pairs eliminated wholesale by the pair-level triangle prefilter
    /// (all windows bounded below `β`); their cells are *not* in
    /// `pruned_by_triangle`.
    pub pairs_skipped_entirely: u64,
    /// Number of jumps taken.
    pub jumps: u64,
    /// log₂ histogram of jump lengths.
    pub jump_length_hist: Vec<u64>,
    /// Edges emitted across all windows.
    pub edges: u64,
}

impl Default for PruningStats {
    fn default() -> Self {
        Self {
            n_pairs: 0,
            total_cells: 0,
            evaluated: 0,
            skipped_by_jump: 0,
            pruned_by_triangle: 0,
            pairs_skipped_entirely: 0,
            jumps: 0,
            jump_length_hist: vec![0; JUMP_BUCKETS],
            edges: 0,
        }
    }
}

impl PruningStats {
    /// Record one jump of `len` skipped windows.
    pub fn record_jump(&mut self, len: usize) {
        debug_assert!(len >= 1);
        self.jumps += 1;
        self.skipped_by_jump += len as u64;
        let bucket = (usize::BITS - 1 - len.leading_zeros()) as usize;
        self.jump_length_hist[bucket.min(JUMP_BUCKETS - 1)] += 1;
    }

    /// Fold another worker's counters into this one.
    pub fn merge(&mut self, other: &PruningStats) {
        self.n_pairs += other.n_pairs;
        self.total_cells += other.total_cells;
        self.evaluated += other.evaluated;
        self.skipped_by_jump += other.skipped_by_jump;
        self.pruned_by_triangle += other.pruned_by_triangle;
        self.pairs_skipped_entirely += other.pairs_skipped_entirely;
        self.jumps += other.jumps;
        self.edges += other.edges;
        for (a, b) in self
            .jump_length_hist
            .iter_mut()
            .zip(&other.jump_length_hist)
        {
            *a += b;
        }
    }

    /// Fraction of cells *not* exactly evaluated — jumped, triangle-pruned
    /// or wholesale-skipped — in `[0, 1]`. The headline number of the
    /// Figure 2 experiment.
    pub fn skip_fraction(&self) -> f64 {
        if self.total_cells == 0 {
            return 0.0;
        }
        1.0 - self.evaluated as f64 / self.total_cells as f64
    }

    /// Mean jump length (0 when no jumps happened).
    pub fn mean_jump_length(&self) -> f64 {
        if self.jumps == 0 {
            0.0
        } else {
            self.skipped_by_jump as f64 / self.jumps as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_jump_buckets() {
        let mut s = PruningStats::default();
        s.record_jump(1);
        s.record_jump(2);
        s.record_jump(3);
        s.record_jump(8);
        assert_eq!(s.jumps, 4);
        assert_eq!(s.skipped_by_jump, 14);
        assert_eq!(s.jump_length_hist[0], 1); // len 1
        assert_eq!(s.jump_length_hist[1], 2); // len 2–3
        assert_eq!(s.jump_length_hist[3], 1); // len 8–15
        assert_eq!(s.mean_jump_length(), 3.5);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = PruningStats {
            n_pairs: 3,
            total_cells: 30,
            evaluated: 10,
            ..Default::default()
        };
        a.record_jump(4);
        let mut b = PruningStats {
            n_pairs: 2,
            total_cells: 20,
            evaluated: 20,
            edges: 7,
            ..Default::default()
        };
        b.record_jump(4);
        a.merge(&b);
        assert_eq!(a.n_pairs, 5);
        assert_eq!(a.total_cells, 50);
        assert_eq!(a.evaluated, 30);
        assert_eq!(a.edges, 7);
        assert_eq!(a.jumps, 2);
        assert_eq!(a.jump_length_hist[2], 2);
    }

    #[test]
    fn skip_fraction_bounds() {
        let mut s = PruningStats::default();
        assert_eq!(s.skip_fraction(), 0.0);
        s.total_cells = 100;
        s.evaluated = 25;
        assert!((s.skip_fraction() - 0.75).abs() < 1e-12);
        s.evaluated = 100;
        assert_eq!(s.skip_fraction(), 0.0);
        assert_eq!(s.mean_jump_length(), 0.0);
    }
}
