//! Real-time operation: a session that ingests new columns and emits the
//! newly completed windows' networks.
//!
//! The problem statement's first challenge is "efficiency of network
//! construction **and updates**". [`StreamingDangoron`] owns the growing
//! history, maintains the basic-window sketch store incrementally
//! (`SketchStore::append` / `PairSketch::append` touch only the new
//! columns — history is never rescanned), and answers each
//! [`StreamingDangoron::append`] with the thresholded matrices of every
//! window that became complete.

use crate::config::{BoundMode, DangoronConfig};
use crate::stats::PruningStats;
use crate::walker::{pair_costs, WalkGeometry};
use sketch::output::Edge;
use sketch::{
    pair, triangular, BasicWindowLayout, PairSketch, SketchStore, SlidingQuery, ThresholdedMatrix,
};
use tsdata::{TimeSeriesMatrix, TsError};

/// A long-lived streaming session.
///
/// Restrictions relative to the batch engine: pair sketches are always
/// materialised (the streaming state *is* the precomputed sketch set), and
/// horizontal pruning is not applied (pivot tables are per-query; a
/// streaming variant would rebuild them each step for little gain).
pub struct StreamingDangoron {
    config: DangoronConfig,
    window: usize,
    step: usize,
    threshold: f64,
    data: TimeSeriesMatrix,
    store: SketchStore,
    pairs: Vec<PairSketch>,
    /// Departure costs are extended lazily: rebuilt per emission batch
    /// from the (cheap) per-basic-window correlations of the whole layout.
    emitted_windows: usize,
}

/// One newly completed window: its global index and its network.
#[derive(Debug, Clone)]
pub struct CompletedWindow {
    /// Global window index (consistent with the equivalent batch query).
    pub index: usize,
    /// The thresholded correlation matrix.
    pub matrix: ThresholdedMatrix,
}

impl StreamingDangoron {
    /// Opens a session over the initial history.
    ///
    /// `window`, `step` and `config.basic_window` must satisfy the usual
    /// alignment rules; the initial history may be shorter than one window
    /// (windows start flowing once enough data arrives).
    pub fn new(
        initial: TimeSeriesMatrix,
        window: usize,
        step: usize,
        threshold: f64,
        config: DangoronConfig,
    ) -> Result<Self, TsError> {
        config.validate()?;
        if config.horizontal.is_some() {
            return Err(TsError::InvalidParameter(
                "horizontal pruning is not supported in streaming sessions".into(),
            ));
        }
        let b = config.basic_window;
        if window < 2 || !window.is_multiple_of(b) {
            return Err(TsError::InvalidParameter(format!(
                "window {window} must be a positive multiple of basic window {b}"
            )));
        }
        if step == 0 || !step.is_multiple_of(b) {
            return Err(TsError::InvalidParameter(format!(
                "step {step} must be a positive multiple of basic window {b}"
            )));
        }
        if !(-1.0..=1.0).contains(&threshold) {
            return Err(TsError::InvalidParameter(format!(
                "threshold must be in [-1, 1], got {threshold}"
            )));
        }
        // Cover whatever full basic windows already exist; the layout must
        // exist even before a full window of data has arrived, so cover at
        // least one basic window lazily by padding the wait: if not even
        // one basic window fits, defer the build with an empty cover over
        // the first width columns once they arrive.
        if initial.len() < b {
            return Err(TsError::TooShort {
                need: b,
                got: initial.len(),
            });
        }
        let layout = BasicWindowLayout::cover(0, initial.len(), b)?;
        let store = SketchStore::build_with_threads(&initial, layout, config.threads)?;
        let pairs = pair::build_all(&layout, &initial, config.threads)?;
        Ok(Self {
            config,
            window,
            step,
            threshold,
            data: initial,
            store,
            pairs,
            emitted_windows: 0,
        })
    }

    /// Number of windows fully contained in the current history.
    pub fn available_windows(&self) -> usize {
        let covered = self.store.layout().end();
        if covered < self.window {
            0
        } else {
            (covered - self.window) / self.step + 1
        }
    }

    /// Current history length in columns.
    pub fn history_len(&self) -> usize {
        self.data.len()
    }

    /// Windows already emitted.
    pub fn emitted_windows(&self) -> usize {
        self.emitted_windows
    }

    /// Ingests new columns and returns every window that became complete,
    /// in order. Sketches are extended incrementally (only the new columns
    /// are read); the walk runs only over the new windows.
    pub fn append(&mut self, new_cols: &TimeSeriesMatrix) -> Result<Vec<CompletedWindow>, TsError> {
        self.data.append_columns(new_cols)?;
        self.store.append(&self.data)?;
        let layout = *self.store.layout();
        let n = self.data.n_series();
        // Every pair ingests the same Δ columns — uniform cost — so static
        // per-worker slices are the right schedule here (no stealing
        // overhead). The preconditions of `PairSketch::append` hold by
        // construction once `store.append` succeeded: all rows share the
        // grown length and the layout only ever grows.
        let data = &self.data;
        exec::par_chunks_mut(&mut self.pairs, self.config.threads, |offset, piece| {
            for (k, pair) in piece.iter_mut().enumerate() {
                let (i, j) = triangular::unrank(offset + k, n);
                pair.append(&layout, data.row(i), data.row(j))
                    .expect("pair/store layouts kept in lockstep");
            }
        });
        self.drain_completed()
    }

    /// Emits any already-complete windows that have not been emitted yet
    /// (useful right after opening a session over a long history).
    pub fn drain_completed(&mut self) -> Result<Vec<CompletedWindow>, TsError> {
        let total = self.available_windows();
        if total <= self.emitted_windows {
            return Ok(Vec::new());
        }
        let first_new = self.emitted_windows;
        let n = self.data.n_series();
        let b = self.config.basic_window;
        let ns = self.window / b;
        let step_bw = self.step / b;
        let n_new = total - first_new;

        // Walk only the new suffix: a geometry whose window 0 is global
        // window `first_new`.
        let geo = WalkGeometry {
            n_windows: n_new,
            ns,
            step_bw,
        };
        let offset_bw = first_new * step_bw;
        let need_dep = matches!(self.config.bound, BoundMode::PaperJump { .. });

        // Same executor as the batch engine: workers steal pair chunks,
        // accumulate flat (window, edge) buffers, merged lock-free and
        // assembled with one sort-and-partition.
        let n_pairs = self.pairs.len();
        let worker_out = exec::run_partitioned(
            n_pairs,
            self.config.threads,
            crate::engine::WALK_GRAIN,
            |_| (Vec::<(u32, Edge)>::new(), PruningStats::default()),
            |(buf, stats), range| {
                for p in range {
                    let (i, j) = triangular::unrank(p, n);
                    let pair = &self.pairs[p];
                    let dep = need_dep
                        .then(|| pair_costs(&self.store, pair, i, j, self.config.edge_rule));
                    // Shift the walk into the global basic-window frame by
                    // walking a sub-geometry against a shifted first window.
                    walk_shifted(
                        &self.store,
                        pair,
                        i,
                        j,
                        geo,
                        offset_bw,
                        self.threshold,
                        &self.config,
                        dep.as_ref(),
                        stats,
                        buf,
                    );
                }
            },
        );
        let mut flat = Vec::new();
        for (buf, _stats) in worker_out {
            flat.extend(buf);
        }
        let matrices = ThresholdedMatrix::assemble_windows(
            n,
            self.threshold,
            self.config.edge_rule,
            n_new,
            flat,
        );
        let out = matrices
            .into_iter()
            .enumerate()
            .map(|(k, matrix)| CompletedWindow {
                index: first_new + k,
                matrix,
            })
            .collect();
        self.emitted_windows = total;
        Ok(out)
    }

    /// The equivalent batch query over the whole current history — for
    /// verification and for re-running with different parameters.
    pub fn batch_query(&self) -> SlidingQuery {
        SlidingQuery {
            start: 0,
            end: self.store.layout().end(),
            window: self.window,
            step: self.step,
            threshold: self.threshold,
        }
    }
}

/// Walks a suffix of windows whose basic-window frame starts at
/// `offset_bw`, reusing the standard walker on a shifted pair view.
#[allow(clippy::too_many_arguments)]
fn walk_shifted(
    store: &SketchStore,
    pair: &PairSketch,
    i: usize,
    j: usize,
    geo: WalkGeometry,
    offset_bw: usize,
    beta: f64,
    config: &DangoronConfig,
    dep: Option<&crate::bounds::PairCosts>,
    stats: &mut PruningStats,
    buf: &mut Vec<(u32, Edge)>,
) {
    // The standard walker indexes basic windows as w·step_bw; emulate the
    // shift by walking with an offset geometry: window w here is global
    // window w + offset_bw/step_bw, so its first basic window is
    // offset_bw + w·step_bw. The walker's `first_bw` has no offset, so we
    // use a local closure-based re-implementation kept in lockstep with
    // `walker::walk_pair` semantics via the shared bound/evaluation calls.
    let shifted_geo = ShiftedGeometry { geo, offset_bw };
    let mut w = 0usize;
    stats.n_pairs += 1;
    stats.total_cells += geo.n_windows as u64;
    while w < geo.n_windows {
        let (b0, b1) = shifted_geo.bw_range(w);
        stats.evaluated += 1;
        let corr = match sketch::combine::window_correlation(store, pair, i, j, b0, b1) {
            Ok(c) => c,
            Err(_) => {
                w += 1;
                continue;
            }
        };
        if config.edge_rule.keeps(corr, beta) {
            stats.edges += 1;
            buf.push((
                w as u32,
                Edge {
                    i: i as u32,
                    j: j as u32,
                    value: corr,
                },
            ));
            w += 1;
            continue;
        }
        match config.bound {
            BoundMode::Exhaustive => w += 1,
            BoundMode::PaperJump { slack } => {
                let dep = dep.expect("PaperJump requires departure costs");
                let k_max = geo.n_windows - 1 - w;
                let k = match config.edge_rule {
                    sketch::output::EdgeRule::Positive => crate::bounds::max_jump(
                        corr,
                        beta,
                        slack,
                        geo.ns,
                        geo.step_bw,
                        shifted_geo.first_bw(w),
                        k_max,
                        &dep.upper,
                    ),
                    sketch::output::EdgeRule::Absolute => crate::bounds::max_jump_absolute(
                        corr,
                        corr,
                        beta,
                        slack,
                        geo.ns,
                        geo.step_bw,
                        shifted_geo.first_bw(w),
                        k_max,
                        &dep.upper,
                        dep.lower.as_ref().expect("absolute rule needs lower costs"),
                    ),
                };
                if k == 0 {
                    w += 1;
                } else {
                    stats.record_jump(k);
                    w += k + 1;
                }
            }
        }
    }
}

#[derive(Clone, Copy)]
struct ShiftedGeometry {
    geo: WalkGeometry,
    offset_bw: usize,
}

impl ShiftedGeometry {
    #[inline]
    fn first_bw(&self, w: usize) -> usize {
        self.offset_bw + w * self.geo.step_bw
    }

    #[inline]
    fn bw_range(&self, w: usize) -> (usize, usize) {
        let b0 = self.first_bw(w);
        (b0, b0 + self.geo.ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Dangoron;
    use tsdata::generators;

    fn config(bound: BoundMode) -> DangoronConfig {
        DangoronConfig {
            basic_window: 10,
            bound,
            ..Default::default()
        }
    }

    fn assert_same_windows(streamed: &[CompletedWindow], batch: &[ThresholdedMatrix]) {
        for cw in streamed {
            let b = &batch[cw.index];
            assert_eq!(cw.matrix.n_edges(), b.n_edges(), "window {}", cw.index);
            for (ea, eb) in cw.matrix.edges().iter().zip(b.edges()) {
                assert_eq!((ea.i, ea.j), (eb.i, eb.j));
                assert!((ea.value - eb.value).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn streaming_matches_batch_exhaustive() {
        let full = generators::clustered_matrix(8, 400, 2, 0.5, 3).unwrap();
        let initial = full.slice_columns(0, 150).unwrap();
        let mut session =
            StreamingDangoron::new(initial, 80, 20, 0.7, config(BoundMode::Exhaustive)).unwrap();

        let mut collected = session.drain_completed().unwrap();
        // Stream the rest in uneven chunks.
        for (a, b) in [(150usize, 175usize), (175, 280), (280, 297), (297, 400)] {
            let chunk = full.slice_columns(a, b).unwrap();
            collected.extend(session.append(&chunk).unwrap());
        }
        // Indices must be contiguous from 0.
        let idxs: Vec<usize> = collected.iter().map(|c| c.index).collect();
        let expected: Vec<usize> = (0..idxs.len()).collect();
        assert_eq!(idxs, expected);

        // And equal to the batch engine over the full history.
        let engine = Dangoron::new(config(BoundMode::Exhaustive)).unwrap();
        let batch = engine.execute(&full, session.batch_query()).unwrap();
        assert_eq!(collected.len(), batch.matrices.len());
        assert_same_windows(&collected, &batch.matrices);
    }

    #[test]
    fn streaming_jump_mode_emits_subset_of_truth() {
        let full = generators::clustered_matrix(6, 400, 2, 0.5, 9).unwrap();
        let initial = full.slice_columns(0, 100).unwrap();
        let mut session = StreamingDangoron::new(
            initial,
            80,
            20,
            0.85,
            config(BoundMode::PaperJump { slack: 0.0 }),
        )
        .unwrap();
        let mut collected = session.drain_completed().unwrap();
        let chunk = full.slice_columns(100, 400).unwrap();
        collected.extend(session.append(&chunk).unwrap());

        let engine = Dangoron::new(config(BoundMode::Exhaustive)).unwrap();
        let truth = engine.execute(&full, session.batch_query()).unwrap();
        for cw in &collected {
            for e in cw.matrix.edges() {
                assert!(
                    truth.matrices[cw.index].contains(e.i as usize, e.j as usize),
                    "spurious streamed edge at window {}",
                    cw.index
                );
            }
        }
    }

    #[test]
    fn no_emission_before_first_full_window() {
        let full = generators::clustered_matrix(4, 200, 2, 0.5, 5).unwrap();
        let initial = full.slice_columns(0, 30).unwrap();
        let mut session =
            StreamingDangoron::new(initial, 80, 20, 0.7, config(BoundMode::Exhaustive)).unwrap();
        assert_eq!(session.available_windows(), 0);
        assert!(session.drain_completed().unwrap().is_empty());
        // 30 + 40 = 70 < 80: still nothing.
        let out = session
            .append(&full.slice_columns(30, 70).unwrap())
            .unwrap();
        assert!(out.is_empty());
        // Crossing 80 emits window 0.
        let out = session
            .append(&full.slice_columns(70, 100).unwrap())
            .unwrap();
        assert_eq!(out[0].index, 0);
        assert_eq!(session.emitted_windows(), out.len());
    }

    #[test]
    fn partial_basic_windows_wait() {
        // Appending 7 columns (less than a basic window) completes nothing
        // new but must not corrupt state.
        let full = generators::clustered_matrix(4, 300, 2, 0.5, 7).unwrap();
        let initial = full.slice_columns(0, 100).unwrap();
        let mut session =
            StreamingDangoron::new(initial, 80, 20, 0.7, config(BoundMode::Exhaustive)).unwrap();
        let before = session.drain_completed().unwrap().len();
        let out = session
            .append(&full.slice_columns(100, 107).unwrap())
            .unwrap();
        assert!(out.is_empty());
        // Completing the basic window continues cleanly.
        let out = session
            .append(&full.slice_columns(107, 140).unwrap())
            .unwrap();
        assert!(!out.is_empty());
        assert_eq!(out[0].index, before);
    }

    #[test]
    fn construction_validation() {
        let x = generators::clustered_matrix(4, 100, 2, 0.5, 1).unwrap();
        // Misaligned window.
        assert!(
            StreamingDangoron::new(x.clone(), 75, 20, 0.5, config(BoundMode::Exhaustive)).is_err()
        );
        // Misaligned step.
        assert!(
            StreamingDangoron::new(x.clone(), 80, 15, 0.5, config(BoundMode::Exhaustive)).is_err()
        );
        // Horizontal pruning unsupported.
        let mut c = config(BoundMode::Exhaustive);
        c.horizontal = Some(crate::config::HorizontalConfig {
            n_pivots: 1,
            strategy: crate::config::PivotStrategy::Evenly,
        });
        assert!(StreamingDangoron::new(x.clone(), 80, 20, 0.5, c).is_err());
        // Too little initial data.
        let tiny = x.slice_columns(0, 5).unwrap();
        assert!(StreamingDangoron::new(tiny, 80, 20, 0.5, config(BoundMode::Exhaustive)).is_err());
    }
}
