//! Real-time operation: a session that ingests new columns and emits the
//! newly completed windows' networks.
//!
//! The problem statement's first challenge is "efficiency of network
//! construction **and updates**". [`StreamingDangoron`] owns the growing
//! sketch state — per-series and per-pair prefixes plus, in jump mode,
//! the Eq. 2 departure-cost prefixes — and maintains all of it
//! incrementally (`SketchStore::append_tail` / `PairSketch::append_tail`
//! / `extend_pair_costs` touch only the new columns — history is never
//! rescanned), answering each [`StreamingDangoron::append`] with the
//! thresholded matrices of every window that became complete.
//!
//! Both pruning mechanisms of the batch engine apply:
//!
//! * **vertical jumping** (Eq. 2) over each drain's window suffix, and
//! * **horizontal (triangle) pruning** via an incrementally maintained
//!   [`PivotSet`]: new windows' pivot-to-all correlations are extended
//!   column-by-column from the already-updated sketches
//!   ([`PivotSet::append_windows`]), so enabling
//!   [`DangoronConfig::horizontal`] costs O(n_pivots · N · Δwindows) per
//!   append — never a rebuild. The triangle bound is unconditional, so
//!   streamed results stay bit-identical to the exhaustive batch engine.
//!
//! The walk itself is the batch walker ([`crate::walker::walk_pair`])
//! shifted into the global window frame by [`WalkGeometry::offset_bw`]; no
//! parallel streaming implementation exists. Raw history is evicted as
//! soon as it is absorbed into the sketch prefixes, so a long-lived
//! session holds O(N·n_b) sketch state plus less than one basic window of
//! raw columns — not the full stream.

use crate::bounds::PairCosts;
use crate::config::{BoundMode, DangoronConfig};
use crate::pivot::{select_pivots, PivotSet};
use crate::stats::PruningStats;
use crate::walker::{extend_pair_costs, pair_costs, walk_pair, WalkGeometry};
use sketch::output::Edge;
use sketch::{
    combine, pair, triangular, BasicWindowLayout, PairSketch, SketchStore, SlidingQuery,
    ThresholdedMatrix,
};
use std::ops::Range;
use tsdata::{TimeSeriesMatrix, TsError};

/// A long-lived streaming session.
///
/// Restrictions relative to the batch engine: pair sketches are always
/// materialised (the streaming state *is* the precomputed sketch set).
/// Horizontal pruning is supported — the pivot table is grown
/// incrementally alongside the sketches.
///
/// ```
/// use dangoron::{DangoronConfig, StreamingDangoron};
/// use tsdata::generators;
///
/// let full = generators::clustered_matrix(6, 200, 2, 0.5, 9).unwrap();
/// let mut session = StreamingDangoron::new(
///     full.slice_columns(0, 80).unwrap(), // initial history
///     60,                                 // window
///     20,                                 // step
///     0.7,                                // threshold β
///     DangoronConfig { basic_window: 20, ..Default::default() },
/// ).unwrap();
/// let mut windows = session.drain_completed().unwrap();
/// windows.extend(session.append(&full.slice_columns(80, 200).unwrap()).unwrap());
/// // Every window the equivalent batch query would emit has streamed out,
/// // and its history buffer stayed below one basic window of raw columns.
/// assert_eq!(windows.len(), session.batch_query().n_windows());
/// assert!(session.history_len() < 20);
/// ```
pub struct StreamingDangoron {
    config: DangoronConfig,
    window: usize,
    step: usize,
    threshold: f64,
    n_series: usize,
    /// Raw columns not yet absorbed into the sketches: global indices
    /// `[tail_start, tail_start + len)`. `None` ⇔ nothing retained.
    /// Invariant: `tail_start + len == total_cols`, and after every
    /// append `len < basic_window` (absorbed history is evicted).
    tail: Option<TimeSeriesMatrix>,
    tail_start: usize,
    total_cols: usize,
    store: SketchStore,
    /// The contiguous pair-rank interval this session walks — the full
    /// triangle for [`StreamingDangoron::new`], a shard for
    /// [`StreamingDangoron::new_sharded`]. `pairs`/`deps` are indexed by
    /// `rank − pair_range.start`.
    pair_range: Range<usize>,
    pairs: Vec<PairSketch>,
    /// Per-pair Eq. 2 departure-cost prefixes, maintained incrementally
    /// alongside the pair sketches; empty unless the bound mode jumps.
    deps: Vec<PairCosts>,
    /// Pivot-pair sketches whose ranks fall **outside** `pair_range`,
    /// sorted by rank — sharded sessions still need every (pivot, series)
    /// correlation to grow the pivot table. Empty when the session is
    /// unsharded (the main pair set covers them) or horizontal pruning is
    /// off. Built and appended with the same kernels as the main set, so
    /// the table stays bit-identical to an unsharded session's.
    pivot_pairs: Vec<(usize, PairSketch)>,
    pivots: Option<PivotSet>,
    /// Cumulative pruning counters across all drains.
    stats: PruningStats,
    /// Counters of the most recent non-empty drain.
    last_drain_stats: PruningStats,
    emitted_windows: usize,
}

/// One newly completed window: its global index and its network.
#[derive(Debug, Clone)]
pub struct CompletedWindow {
    /// Global window index (consistent with the equivalent batch query).
    pub index: usize,
    /// The thresholded correlation matrix.
    pub matrix: ThresholdedMatrix,
}

impl StreamingDangoron {
    /// Opens a session over the initial history.
    ///
    /// `window`, `step` and `config.basic_window` must satisfy the usual
    /// alignment rules; the initial history may be shorter than one window
    /// (windows start flowing once enough data arrives).
    pub fn new(
        initial: TimeSeriesMatrix,
        window: usize,
        step: usize,
        threshold: f64,
        config: DangoronConfig,
    ) -> Result<Self, TsError> {
        let n_pairs = triangular::count(initial.n_series());
        Self::new_sharded(initial, window, step, threshold, config, 0..n_pairs)
    }

    /// [`StreamingDangoron::new`] restricted to a contiguous pair-rank
    /// shard of the [`triangular`] rank space — the distributed tier's
    /// streaming worker. The session materialises (and incrementally
    /// maintains) only the shard's pair sketches plus, when horizontal
    /// pruning is on, the out-of-shard pivot pairs; drains walk the shard
    /// only. Concatenating the drained edges of a partition of the
    /// triangle is bit-identical to an unsharded session's drains, and the
    /// per-shard stats sum to the unsharded counters.
    pub fn new_sharded(
        initial: TimeSeriesMatrix,
        window: usize,
        step: usize,
        threshold: f64,
        config: DangoronConfig,
        pair_range: Range<usize>,
    ) -> Result<Self, TsError> {
        config.validate()?;
        let n_pairs_total = triangular::count(initial.n_series());
        if pair_range.start > pair_range.end || pair_range.end > n_pairs_total {
            return Err(TsError::InvalidParameter(format!(
                "pair range {}..{} outside the {} pair ranks",
                pair_range.start, pair_range.end, n_pairs_total
            )));
        }
        let b = config.basic_window;
        if window < 2 || !window.is_multiple_of(b) {
            return Err(TsError::InvalidParameter(format!(
                "window {window} must be a positive multiple of basic window {b}"
            )));
        }
        if step == 0 || !step.is_multiple_of(b) {
            return Err(TsError::InvalidParameter(format!(
                "step {step} must be a positive multiple of basic window {b}"
            )));
        }
        if !(-1.0..=1.0).contains(&threshold) {
            return Err(TsError::InvalidParameter(format!(
                "threshold must be in [-1, 1], got {threshold}"
            )));
        }
        if initial.len() < b {
            return Err(TsError::TooShort {
                need: b,
                got: initial.len(),
            });
        }
        let layout = BasicWindowLayout::cover(0, initial.len(), b)?;
        let store = SketchStore::build_with_threads(&initial, layout, config.threads)?;
        let n = initial.n_series();
        let full_triangle = pair_range == (0..n_pairs_total);
        let pairs = if full_triangle {
            pair::build_all(&layout, &initial, config.threads)?
        } else {
            pair::build_range(&layout, &initial, pair_range.clone(), config.threads)?
        };
        let total_cols = initial.len();

        // Sharded sessions with horizontal pruning additionally keep the
        // out-of-shard pivot-pair sketches, so the pivot table can keep
        // growing without the full triangle.
        let mut pivot_ranks: Vec<usize> = Vec::new();
        let chosen = match &config.horizontal {
            Some(h) => {
                let chosen = select_pivots(&h.strategy, h.n_pivots, n)?;
                for &z in &chosen {
                    for s in 0..n {
                        if s != z {
                            let p = triangular::rank(z.min(s), z.max(s), n);
                            if !pair_range.contains(&p) {
                                pivot_ranks.push(p);
                            }
                        }
                    }
                }
                pivot_ranks.sort_unstable();
                pivot_ranks.dedup();
                Some(chosen)
            }
            None => None,
        };
        let pivot_pairs: Vec<(usize, PairSketch)> =
            exec::par_collect_chunks(pivot_ranks.len(), config.threads, 8, |range| {
                range
                    .map(|k| {
                        let p = pivot_ranks[k];
                        let (i, j) = triangular::unrank(p, n);
                        let sketch = PairSketch::build(&layout, initial.row(i), initial.row(j))
                            .expect("layout covers the initial history");
                        (p, sketch)
                    })
                    .collect()
            });

        // Jump mode: precompute the Eq. 2 cost prefixes once; appends
        // extend them from the new basic windows only.
        let deps = if matches!(config.bound, BoundMode::PaperJump { .. }) {
            let rule = config.edge_rule;
            let base = pair_range.start;
            exec::par_collect_chunks(pairs.len(), config.threads, 16, |range| {
                range
                    .map(|k| {
                        let (i, j) = triangular::unrank(base + k, n);
                        pair_costs(&store, &pairs[k], i, j, rule)
                    })
                    .collect()
            })
        } else {
            Vec::new()
        };

        // Keep only the raw columns the sketches have not absorbed yet.
        let covered = store.layout().end();
        let (tail, tail_start) = if covered < total_cols {
            (Some(initial.slice_columns(covered, total_cols)?), covered)
        } else {
            (None, total_cols)
        };

        let mut session = Self {
            config,
            window,
            step,
            threshold,
            n_series: n,
            tail,
            tail_start,
            total_cols,
            store,
            pair_range,
            pairs,
            deps,
            pivot_pairs,
            pivots: None,
            stats: PruningStats::default(),
            last_drain_stats: PruningStats::default(),
            emitted_windows: 0,
        };
        if let Some(chosen) = chosen {
            session.pivots = Some(PivotSet::empty(chosen, n));
            session.extend_pivots();
        }
        Ok(session)
    }

    /// The contiguous pair-rank interval this session walks.
    pub fn pair_range(&self) -> Range<usize> {
        self.pair_range.clone()
    }

    /// Number of windows fully contained in the current history.
    pub fn available_windows(&self) -> usize {
        let covered = self.store.layout().end();
        if covered < self.window {
            0
        } else {
            (covered - self.window) / self.step + 1
        }
    }

    /// Raw columns currently buffered — only the (partial basic window)
    /// tail the sketches have not absorbed yet, so this stays below
    /// `basic_window` no matter how much data has streamed through.
    pub fn history_len(&self) -> usize {
        self.tail.as_ref().map_or(0, |t| t.len())
    }

    /// Total columns ingested since the session opened (the length of the
    /// equivalent batch history, including any evicted raw columns).
    pub fn ingested_cols(&self) -> usize {
        self.total_cols
    }

    /// Windows already emitted.
    pub fn emitted_windows(&self) -> usize {
        self.emitted_windows
    }

    /// Cumulative pruning counters across every drain so far.
    pub fn stats(&self) -> &PruningStats {
        &self.stats
    }

    /// Pruning counters of the most recent drain that walked new windows.
    pub fn last_drain_stats(&self) -> &PruningStats {
        &self.last_drain_stats
    }

    /// Ingests new columns and returns every window that became complete,
    /// in order. Sketches and the pivot table are extended incrementally
    /// (only the new columns are read); the walk runs only over the new
    /// windows.
    pub fn append(&mut self, new_cols: &TimeSeriesMatrix) -> Result<Vec<CompletedWindow>, TsError> {
        if new_cols.n_series() != self.n_series {
            return Err(TsError::DimensionMismatch {
                expected: self.n_series,
                found: new_cols.n_series(),
            });
        }
        match &mut self.tail {
            Some(t) => t.append_columns(new_cols)?,
            None => self.tail = Some(new_cols.clone()),
        }
        self.total_cols += new_cols.len();
        let tail = self.tail.as_ref().expect("tail was just filled");
        self.store.append_tail(tail, self.tail_start)?;
        let layout = *self.store.layout();
        let n = self.n_series;
        // Every pair ingests the same Δ columns — uniform cost — so static
        // per-worker slices are the right schedule here (no stealing
        // overhead). The preconditions of `PairSketch::append_tail` hold
        // by construction once `store.append_tail` succeeded: all rows
        // share the grown length and the layout only ever grows.
        let base = self.pair_range.start;
        exec::par_chunks_mut(&mut self.pairs, self.config.threads, |offset, piece| {
            for (k, pair) in piece.iter_mut().enumerate() {
                let (i, j) = triangular::unrank(base + offset + k, n);
                pair.append_tail(&layout, tail.row(i), tail.row(j), self.tail_start)
                    .expect("pair/store layouts kept in lockstep");
            }
        });
        // Out-of-shard pivot pairs grow by the same columns.
        exec::par_chunks_mut(&mut self.pivot_pairs, self.config.threads, |_, piece| {
            for (rank, sketch) in piece.iter_mut() {
                let (i, j) = triangular::unrank(*rank, n);
                sketch
                    .append_tail(&layout, tail.row(i), tail.row(j), self.tail_start)
                    .expect("pivot-pair/store layouts kept in lockstep");
            }
        });
        // Jump mode: extend the Eq. 2 cost prefixes over the new basic
        // windows only (an extended prefix is bit-identical to a fresh
        // build, so drains keep matching the batch engine).
        let (store, pairs) = (&self.store, &self.pairs);
        exec::par_chunks_mut(&mut self.deps, self.config.threads, |offset, piece| {
            for (k, costs) in piece.iter_mut().enumerate() {
                let (i, j) = triangular::unrank(base + offset + k, n);
                extend_pair_costs(costs, store, &pairs[offset + k], i, j);
            }
        });
        self.extend_pivots();
        self.evict_absorbed();
        self.drain_completed()
    }

    /// Grows the pivot table to cover every currently available window,
    /// reading correlations straight from the session's own sketches.
    fn extend_pivots(&mut self) {
        let total = self.available_windows();
        let (ns, step_bw) = (
            self.window / self.config.basic_window,
            self.step / self.config.basic_window,
        );
        let (pairs, pivot_pairs, store, n) =
            (&self.pairs, &self.pivot_pairs, &self.store, self.n_series);
        let range = &self.pair_range;
        if let Some(pv) = &mut self.pivots {
            pv.append_windows(total, ns, step_bw, |z, s, b0, b1| {
                let rank = triangular::rank(z.min(s), z.max(s), n);
                let p = if range.contains(&rank) {
                    &pairs[rank - range.start]
                } else {
                    let k = pivot_pairs
                        .binary_search_by_key(&rank, |(r, _)| *r)
                        .expect("out-of-shard pivot pairs are all materialised");
                    &pivot_pairs[k].1
                };
                combine::window_correlation(store, p, z, s, b0, b1).unwrap_or(f64::NAN)
            });
        }
    }

    /// Drops raw columns the sketch prefixes have absorbed; global column
    /// indices stay stable because the layout keeps its origin.
    fn evict_absorbed(&mut self) {
        let covered = self.store.layout().end();
        if covered <= self.tail_start {
            return;
        }
        self.tail = match self.tail.take() {
            Some(t) if covered < self.tail_start + t.len() => Some(
                t.slice_columns(covered - self.tail_start, t.len())
                    .expect("non-empty remainder"),
            ),
            _ => None,
        };
        self.tail_start = covered.min(self.total_cols);
    }

    /// Emits any already-complete windows that have not been emitted yet
    /// (useful right after opening a session over a long history).
    pub fn drain_completed(&mut self) -> Result<Vec<CompletedWindow>, TsError> {
        let total = self.available_windows();
        if total <= self.emitted_windows {
            return Ok(Vec::new());
        }
        let _timer = obs::stages::span(obs::stages::Stage::Drain);
        let first_new = self.emitted_windows;
        let n = self.n_series;
        let b = self.config.basic_window;
        let ns = self.window / b;
        let step_bw = self.step / b;
        let n_new = total - first_new;

        // Walk only the new suffix with the shared batch walker: a
        // geometry whose local window 0 sits at global window `first_new`.
        let geo = WalkGeometry {
            n_windows: n_new,
            ns,
            step_bw,
            offset_bw: first_new * step_bw,
        };
        let need_dep = matches!(self.config.bound, BoundMode::PaperJump { .. });
        let beta = self.threshold;
        let rule = self.config.edge_rule;
        let pivots = self.pivots.as_ref();

        // Same executor as the batch engine: workers steal pair chunks,
        // accumulate flat (window, edge) buffers, merged lock-free and
        // assembled with one sort-and-partition.
        let n_pairs = self.pairs.len();
        let base = self.pair_range.start;
        let worker_out = exec::run_partitioned(
            n_pairs,
            self.config.threads,
            crate::engine::WALK_GRAIN,
            |_| (Vec::<(u32, Edge)>::new(), PruningStats::default()),
            |(buf, stats), range| {
                for p in range {
                    let (i, j) = triangular::unrank(base + p, n);
                    // Pair-level wholesale prefilter: when no new window of
                    // this pair can produce an edge, skip its walk entirely.
                    if let Some(pv) = pivots {
                        if pv.pair_never_edges_in(i, j, beta, rule, first_new, total) {
                            stats.n_pairs += 1;
                            stats.total_cells += n_new as u64;
                            stats.pairs_skipped_entirely += 1;
                            continue;
                        }
                    }
                    let pair = &self.pairs[p];
                    let dep = need_dep.then(|| &self.deps[p]);
                    walk_pair(
                        &self.store,
                        pair,
                        i,
                        j,
                        geo,
                        beta,
                        rule,
                        self.config.bound,
                        dep,
                        pivots,
                        stats,
                        |w, v| {
                            buf.push((
                                w as u32,
                                Edge {
                                    i: i as u32,
                                    j: j as u32,
                                    value: v,
                                },
                            ))
                        },
                    );
                }
            },
        );
        // Merge the per-worker counters (previously discarded) exactly
        // like the batch engine does, keeping both the per-drain view and
        // the session-cumulative one.
        let mut drain_stats = PruningStats::default();
        let total_edges: usize = worker_out.iter().map(|(buf, _)| buf.len()).sum();
        let mut flat = Vec::with_capacity(total_edges);
        for (buf, s) in worker_out {
            drain_stats.merge(&s);
            flat.extend(buf);
        }
        self.stats.merge(&drain_stats);
        self.last_drain_stats = drain_stats;
        let matrices = ThresholdedMatrix::assemble_windows(n, self.threshold, rule, n_new, flat);
        let out = matrices
            .into_iter()
            .enumerate()
            .map(|(k, matrix)| CompletedWindow {
                index: first_new + k,
                matrix,
            })
            .collect();
        self.emitted_windows = total;
        Ok(out)
    }

    /// The equivalent batch query over the whole current history — for
    /// verification and for re-running with different parameters.
    pub fn batch_query(&self) -> SlidingQuery {
        SlidingQuery {
            start: 0,
            end: self.store.layout().end(),
            window: self.window,
            step: self.step,
            threshold: self.threshold,
        }
    }

    /// The window length this session drains with.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The step this session drains with.
    pub fn step(&self) -> usize {
        self.step
    }

    /// The threshold `β` this session drains with.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Number of series in the session's matrix.
    pub fn n_series(&self) -> usize {
        self.n_series
    }

    /// The engine configuration the session was opened with.
    pub fn config(&self) -> &DangoronConfig {
        &self.config
    }

    /// Bytes of resident state: sketch prefixes, pair sketches, Eq. 2
    /// cost prefixes, the pivot table, and the unabsorbed raw tail. This
    /// is what a serving tier accounts against its memory budget — it is
    /// the part of the session that grows with the stream.
    pub fn memory_bytes(&self) -> usize {
        let pairs: usize = self.pairs.iter().map(PairSketch::memory_bytes).sum();
        let pivot_pairs: usize = self
            .pivot_pairs
            .iter()
            .map(|(_, p)| p.memory_bytes() + std::mem::size_of::<usize>())
            .sum();
        let deps: usize = self.deps.iter().map(PairCosts::memory_bytes).sum();
        let pivots = self.pivots.as_ref().map_or(0, PivotSet::memory_bytes);
        let tail = self
            .tail
            .as_ref()
            .map_or(0, |t| t.n_series() * t.len() * std::mem::size_of::<f64>());
        self.store.memory_bytes() + pairs + pivot_pairs + deps + pivots + tail
    }

    /// Answers an **ad-hoc** `(window, step, threshold)` query from the
    /// resident sketch state — the serving tier's shared-prepare path.
    ///
    /// Sketch prefixes are query-independent, so a resident session can
    /// answer any aligned query without touching the raw history or
    /// re-paying the prepare phase: this walks the full current history
    /// with the same pruned pair walker the batch engine uses, and the
    /// result is bit-identical to a fresh [`crate::Dangoron`] run over
    /// the equivalent prefix (both pruning mechanisms are lossless).
    ///
    /// What is reused from the resident state:
    ///
    /// * the [`SketchStore`] and every pair sketch — always;
    /// * the Eq. 2 departure-cost prefixes — always in jump mode (they
    ///   depend only on the sketches and the edge rule, not the query
    ///   geometry);
    /// * the pivot table — only when `(window, step)` equal the session's
    ///   own geometry (its intervals are keyed by the session's window
    ///   frame); other geometries simply walk without horizontal pruning.
    ///
    /// `window` and `step` must be multiples of the session's basic
    /// window; sharded sessions (a partial pair range) cannot answer
    /// shared queries — open the session unsharded.
    pub fn query_shared(
        &self,
        window: usize,
        step: usize,
        threshold: f64,
    ) -> Result<crate::engine::QueryResult, TsError> {
        let b = self.config.basic_window;
        if window < 2 || !window.is_multiple_of(b) {
            return Err(TsError::InvalidParameter(format!(
                "query window {window} must be a positive multiple of basic window {b}"
            )));
        }
        if step == 0 || !step.is_multiple_of(b) {
            return Err(TsError::InvalidParameter(format!(
                "query step {step} must be a positive multiple of basic window {b}"
            )));
        }
        if !(-1.0..=1.0).contains(&threshold) {
            return Err(TsError::InvalidParameter(format!(
                "threshold must be in [-1, 1], got {threshold}"
            )));
        }
        let rule = self.config.edge_rule;
        if rule == sketch::output::EdgeRule::Absolute && threshold < 0.0 {
            return Err(TsError::InvalidParameter(format!(
                "absolute edge rule needs a non-negative threshold, got {threshold}"
            )));
        }
        let n = self.n_series;
        if self.pair_range != (0..triangular::count(n)) {
            return Err(TsError::InvalidParameter(format!(
                "shared queries need the full pair triangle; this session holds ranks {}..{}",
                self.pair_range.start, self.pair_range.end
            )));
        }
        let covered = self.store.layout().end();
        let n_windows = if covered < window {
            0
        } else {
            (covered - window) / step + 1
        };
        let ns = window / b;
        let step_bw = step / b;
        let geo = WalkGeometry {
            n_windows,
            ns,
            step_bw,
            offset_bw: 0,
        };
        let need_dep = matches!(self.config.bound, BoundMode::PaperJump { .. });
        // The pivot table's intervals are keyed by the *session's* window
        // geometry; reuse it only when the query matches. Skipping it for
        // other geometries is safe — horizontal pruning is lossless, so
        // the edges come out identical either way.
        let pivots = if window == self.window && step == self.step {
            self.pivots.as_ref()
        } else {
            None
        };

        let n_pairs = self.pairs.len();
        let worker_out = exec::run_partitioned(
            n_pairs,
            self.config.threads,
            crate::engine::WALK_GRAIN,
            |_| (Vec::<(u32, Edge)>::new(), PruningStats::default()),
            |(buf, stats), range| {
                for p in range {
                    let (i, j) = triangular::unrank(p, n);
                    if let Some(pv) = pivots {
                        if pv.pair_never_edges_in(i, j, threshold, rule, 0, n_windows) {
                            stats.n_pairs += 1;
                            stats.total_cells += n_windows as u64;
                            stats.pairs_skipped_entirely += 1;
                            continue;
                        }
                    }
                    let pair = &self.pairs[p];
                    let dep = need_dep.then(|| &self.deps[p]);
                    walk_pair(
                        &self.store,
                        pair,
                        i,
                        j,
                        geo,
                        threshold,
                        rule,
                        self.config.bound,
                        dep,
                        pivots,
                        stats,
                        |w, v| {
                            buf.push((
                                w as u32,
                                Edge {
                                    i: i as u32,
                                    j: j as u32,
                                    value: v,
                                },
                            ))
                        },
                    );
                }
            },
        );
        let mut stats = PruningStats::default();
        let total_edges: usize = worker_out.iter().map(|(buf, _)| buf.len()).sum();
        let mut flat = Vec::with_capacity(total_edges);
        for (buf, s) in worker_out {
            stats.merge(&s);
            flat.extend(buf);
        }
        let matrices = ThresholdedMatrix::assemble_windows(n, threshold, rule, n_windows, flat);
        Ok(crate::engine::QueryResult { matrices, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HorizontalConfig, PivotStrategy};
    use crate::engine::Dangoron;
    use tsdata::generators;

    fn config(bound: BoundMode) -> DangoronConfig {
        DangoronConfig {
            basic_window: 10,
            bound,
            ..Default::default()
        }
    }

    fn config_with_pivots(bound: BoundMode, n_pivots: usize) -> DangoronConfig {
        DangoronConfig {
            horizontal: Some(HorizontalConfig {
                n_pivots,
                strategy: PivotStrategy::Evenly,
            }),
            ..config(bound)
        }
    }

    fn assert_same_windows(streamed: &[CompletedWindow], batch: &[ThresholdedMatrix]) {
        for cw in streamed {
            let b = &batch[cw.index];
            assert_eq!(cw.matrix.n_edges(), b.n_edges(), "window {}", cw.index);
            for (ea, eb) in cw.matrix.edges().iter().zip(b.edges()) {
                assert_eq!((ea.i, ea.j), (eb.i, eb.j));
                assert_eq!(
                    ea.value.to_bits(),
                    eb.value.to_bits(),
                    "window {} edge ({}, {})",
                    cw.index,
                    ea.i,
                    ea.j
                );
            }
        }
    }

    #[test]
    fn streaming_matches_batch_exhaustive() {
        let full = generators::clustered_matrix(8, 400, 2, 0.5, 3).unwrap();
        let initial = full.slice_columns(0, 150).unwrap();
        let mut session =
            StreamingDangoron::new(initial, 80, 20, 0.7, config(BoundMode::Exhaustive)).unwrap();

        let mut collected = session.drain_completed().unwrap();
        // Stream the rest in uneven chunks.
        for (a, b) in [(150usize, 175usize), (175, 280), (280, 297), (297, 400)] {
            let chunk = full.slice_columns(a, b).unwrap();
            collected.extend(session.append(&chunk).unwrap());
        }
        // Indices must be contiguous from 0.
        let idxs: Vec<usize> = collected.iter().map(|c| c.index).collect();
        let expected: Vec<usize> = (0..idxs.len()).collect();
        assert_eq!(idxs, expected);

        // And equal to the batch engine over the full history.
        let engine = Dangoron::new(config(BoundMode::Exhaustive)).unwrap();
        let batch = engine.execute(&full, session.batch_query()).unwrap();
        assert_eq!(collected.len(), batch.matrices.len());
        assert_same_windows(&collected, &batch.matrices);
    }

    #[test]
    fn streaming_with_pivots_matches_batch_exhaustive() {
        // Horizontal pruning is lossless: with pivots enabled the streamed
        // windows must still be bit-identical to the exhaustive batch
        // truth, while the triangle counter actually fires.
        let full = generators::clustered_matrix(10, 400, 2, 0.4, 11).unwrap();
        let initial = full.slice_columns(0, 150).unwrap();
        let mut session = StreamingDangoron::new(
            initial,
            80,
            20,
            0.9,
            config_with_pivots(BoundMode::Exhaustive, 2),
        )
        .unwrap();
        let mut collected = session.drain_completed().unwrap();
        for (a, b) in [(150usize, 163usize), (163, 240), (240, 400)] {
            let chunk = full.slice_columns(a, b).unwrap();
            collected.extend(session.append(&chunk).unwrap());
        }
        let engine = Dangoron::new(config(BoundMode::Exhaustive)).unwrap();
        let batch = engine.execute(&full, session.batch_query()).unwrap();
        assert_eq!(collected.len(), batch.matrices.len());
        assert_same_windows(&collected, &batch.matrices);
        let s = session.stats();
        assert!(
            s.pruned_by_triangle > 0 || s.pairs_skipped_entirely > 0,
            "horizontal pruning never fired on clustered data: {s:?}"
        );
    }

    #[test]
    fn streaming_stats_accumulate_across_drains() {
        let full = generators::clustered_matrix(8, 400, 2, 0.5, 3).unwrap();
        let initial = full.slice_columns(0, 150).unwrap();
        let mut session =
            StreamingDangoron::new(initial, 80, 20, 0.7, config(BoundMode::Exhaustive)).unwrap();
        let mut collected = session.drain_completed().unwrap();
        let after_open = session.stats().clone();
        assert!(after_open.n_pairs > 0, "first drain recorded nothing");
        for (a, b) in [(150usize, 250usize), (250, 400)] {
            let chunk = full.slice_columns(a, b).unwrap();
            collected.extend(session.append(&chunk).unwrap());
        }
        let s = session.stats();
        let n_pairs = 8 * 7 / 2;
        let total_windows = session.available_windows();
        // Cumulative accounting: every (pair, new-window) cell of every
        // drain is recorded exactly once.
        assert_eq!(s.total_cells, (n_pairs * total_windows) as u64);
        assert_eq!(s.evaluated, s.total_cells, "exhaustive without pivots");
        assert_eq!(
            s.edges,
            collected
                .iter()
                .map(|c| c.matrix.n_edges() as u64)
                .sum::<u64>()
        );
        // The last-drain view is a component of the cumulative one.
        assert!(session.last_drain_stats().total_cells <= s.total_cells);
        assert!(session.last_drain_stats().total_cells > 0);
    }

    #[test]
    fn raw_history_is_evicted() {
        // Raw columns must be dropped once absorbed into the sketches:
        // the buffered history stays below one basic window while the
        // ingested total keeps growing — and the emitted networks still
        // match the batch engine over the full history.
        let full = generators::clustered_matrix(6, 600, 2, 0.5, 5).unwrap();
        let initial = full.slice_columns(0, 100).unwrap();
        let mut session =
            StreamingDangoron::new(initial, 80, 20, 0.7, config(BoundMode::Exhaustive)).unwrap();
        assert!(session.history_len() < 10, "open did not evict");
        let mut collected = session.drain_completed().unwrap();
        let mut t = 100;
        for chunk_len in [7usize, 23, 40, 104, 13, 96, 200, 17] {
            let chunk = full.slice_columns(t, t + chunk_len).unwrap();
            collected.extend(session.append(&chunk).unwrap());
            t += chunk_len;
            assert!(
                session.history_len() < 10,
                "retained {} raw columns after ingesting {}",
                session.history_len(),
                session.ingested_cols()
            );
            assert_eq!(session.ingested_cols(), t);
        }
        assert_eq!(t, 600);
        let engine = Dangoron::new(config(BoundMode::Exhaustive)).unwrap();
        let batch = engine.execute(&full, session.batch_query()).unwrap();
        assert_eq!(collected.len(), batch.matrices.len());
        assert_same_windows(&collected, &batch.matrices);
    }

    #[test]
    fn streaming_jump_mode_emits_subset_of_truth() {
        let full = generators::clustered_matrix(6, 400, 2, 0.5, 9).unwrap();
        let initial = full.slice_columns(0, 100).unwrap();
        let mut session = StreamingDangoron::new(
            initial,
            80,
            20,
            0.85,
            config(BoundMode::PaperJump { slack: 0.0 }),
        )
        .unwrap();
        let mut collected = session.drain_completed().unwrap();
        let chunk = full.slice_columns(100, 400).unwrap();
        collected.extend(session.append(&chunk).unwrap());

        let engine = Dangoron::new(config(BoundMode::Exhaustive)).unwrap();
        let truth = engine.execute(&full, session.batch_query()).unwrap();
        for cw in &collected {
            for e in cw.matrix.edges() {
                assert!(
                    truth.matrices[cw.index].contains(e.i as usize, e.j as usize),
                    "spurious streamed edge at window {}",
                    cw.index
                );
            }
        }
    }

    #[test]
    fn sharded_sessions_partition_the_unsharded_drains() {
        // Replay the same chunked stream through k sharded sessions; the
        // concatenated drains must be bit-identical to the unsharded
        // session's and the shard stats must sum to its counters — with
        // horizontal pruning on, exercising the out-of-shard pivot pairs.
        let full = generators::clustered_matrix(9, 400, 2, 0.45, 13).unwrap();
        let n_pairs = 9 * 8 / 2;
        let chunks = [(150usize, 190usize), (190, 300), (300, 400)];
        let cfg = config_with_pivots(BoundMode::Exhaustive, 2);

        let replay = |range: std::ops::Range<usize>| {
            let initial = full.slice_columns(0, 150).unwrap();
            let mut s =
                StreamingDangoron::new_sharded(initial, 80, 20, 0.85, cfg.clone(), range).unwrap();
            let mut out = s.drain_completed().unwrap();
            for (a, b) in chunks {
                out.extend(s.append(&full.slice_columns(a, b).unwrap()).unwrap());
            }
            let stats = s.stats().clone();
            (out, stats)
        };

        let (whole, whole_stats) = replay(0..n_pairs);
        for cuts in [vec![0, 11, n_pairs], vec![0, 1, 12, 13, n_pairs]] {
            let mut flat: Vec<(u32, sketch::output::Edge)> = Vec::new();
            let mut stats = PruningStats::default();
            let mut n_windows = 0;
            for w in cuts.windows(2) {
                let (part, part_stats) = replay(w[0]..w[1]);
                stats.merge(&part_stats);
                n_windows = part.len();
                for cw in part {
                    flat.extend(cw.matrix.edges().iter().map(|&e| (cw.index as u32, e)));
                }
            }
            assert_eq!(n_windows, whole.len(), "cuts {cuts:?}");
            let merged =
                ThresholdedMatrix::assemble_windows(9, 0.85, cfg.edge_rule, whole.len(), flat);
            for (m, cw) in merged.iter().zip(&whole) {
                assert_eq!(m.n_edges(), cw.matrix.n_edges(), "window {}", cw.index);
                for (ea, eb) in m.edges().iter().zip(cw.matrix.edges()) {
                    assert_eq!((ea.i, ea.j), (eb.i, eb.j));
                    assert_eq!(ea.value.to_bits(), eb.value.to_bits());
                }
            }
            assert_eq!(stats, whole_stats, "cuts {cuts:?}");
        }
        // Out-of-triangle shard ranges are rejected.
        let initial = full.slice_columns(0, 150).unwrap();
        assert!(
            StreamingDangoron::new_sharded(initial, 80, 20, 0.85, cfg, 0..n_pairs + 1).is_err()
        );
    }

    #[test]
    fn no_emission_before_first_full_window() {
        let full = generators::clustered_matrix(4, 200, 2, 0.5, 5).unwrap();
        let initial = full.slice_columns(0, 30).unwrap();
        let mut session =
            StreamingDangoron::new(initial, 80, 20, 0.7, config(BoundMode::Exhaustive)).unwrap();
        assert_eq!(session.available_windows(), 0);
        assert!(session.drain_completed().unwrap().is_empty());
        // 30 + 40 = 70 < 80: still nothing.
        let out = session
            .append(&full.slice_columns(30, 70).unwrap())
            .unwrap();
        assert!(out.is_empty());
        // Crossing 80 emits window 0.
        let out = session
            .append(&full.slice_columns(70, 100).unwrap())
            .unwrap();
        assert_eq!(out[0].index, 0);
        assert_eq!(session.emitted_windows(), out.len());
    }

    #[test]
    fn partial_basic_windows_wait() {
        // Appending 7 columns (less than a basic window) completes nothing
        // new but must not corrupt state.
        let full = generators::clustered_matrix(4, 300, 2, 0.5, 7).unwrap();
        let initial = full.slice_columns(0, 100).unwrap();
        let mut session =
            StreamingDangoron::new(initial, 80, 20, 0.7, config(BoundMode::Exhaustive)).unwrap();
        let before = session.drain_completed().unwrap().len();
        let out = session
            .append(&full.slice_columns(100, 107).unwrap())
            .unwrap();
        assert!(out.is_empty());
        // Completing the basic window continues cleanly.
        let out = session
            .append(&full.slice_columns(107, 140).unwrap())
            .unwrap();
        assert!(!out.is_empty());
        assert_eq!(out[0].index, before);
    }

    fn assert_bitwise(a: &[ThresholdedMatrix], b: &[ThresholdedMatrix]) {
        assert_eq!(a.len(), b.len());
        for (w, (ma, mb)) in a.iter().zip(b).enumerate() {
            assert_eq!(ma.n_edges(), mb.n_edges(), "window {w}");
            for (ea, eb) in ma.edges().iter().zip(mb.edges()) {
                assert_eq!((ea.i, ea.j), (eb.i, eb.j), "window {w}");
                assert_eq!(ea.value.to_bits(), eb.value.to_bits(), "window {w}");
            }
        }
    }

    #[test]
    fn shared_queries_match_fresh_batch_runs() {
        // The serving tier's contract: any aligned (window, step, β) query
        // answered from the resident sketches is bit-identical to a fresh
        // one-shot engine run over the same prefix — including geometries
        // and thresholds the session was never opened with.
        let full = generators::clustered_matrix(8, 400, 2, 0.5, 3).unwrap();
        let initial = full.slice_columns(0, 150).unwrap();
        let cfg = config_with_pivots(BoundMode::Exhaustive, 2);
        let mut session = StreamingDangoron::new(initial, 80, 20, 0.7, cfg.clone()).unwrap();
        session.drain_completed().unwrap();
        for (a, b) in [(150usize, 290usize), (290, 400)] {
            session.append(&full.slice_columns(a, b).unwrap()).unwrap();
            let covered = session.batch_query().end;
            let prefix = full.slice_columns(0, covered).unwrap();
            for (w, s, t) in [(80, 20, 0.7), (60, 20, 0.9), (100, 40, 0.5), (40, 40, 0.8)] {
                let shared = session.query_shared(w, s, t).unwrap();
                let engine = Dangoron::new(cfg.clone()).unwrap();
                let query = SlidingQuery {
                    start: 0,
                    end: covered,
                    window: w,
                    step: s,
                    threshold: t,
                };
                let truth = engine.execute(&prefix, query).unwrap();
                assert_bitwise(&shared.matrices, &truth.matrices);
            }
        }
    }

    #[test]
    fn shared_queries_match_in_jump_mode() {
        // Jump mode is approximate vs the exhaustive truth, but the shared
        // query reuses the resident Eq. 2 cost prefixes — which extend
        // bit-identically to a fresh build — so it must equal a fresh
        // jump-mode engine run exactly.
        let full = generators::clustered_matrix(7, 300, 2, 0.5, 9).unwrap();
        let cfg = config(BoundMode::PaperJump { slack: 0.0 });
        let mut session = StreamingDangoron::new(
            full.slice_columns(0, 120).unwrap(),
            80,
            20,
            0.85,
            cfg.clone(),
        )
        .unwrap();
        session.drain_completed().unwrap();
        session
            .append(&full.slice_columns(120, 300).unwrap())
            .unwrap();
        let covered = session.batch_query().end;
        let prefix = full.slice_columns(0, covered).unwrap();
        for (w, s, t) in [(80, 20, 0.85), (60, 60, 0.7)] {
            let shared = session.query_shared(w, s, t).unwrap();
            let engine = Dangoron::new(cfg.clone()).unwrap();
            let query = SlidingQuery {
                start: 0,
                end: covered,
                window: w,
                step: s,
                threshold: t,
            };
            let truth = engine.execute(&prefix, query).unwrap();
            assert_bitwise(&shared.matrices, &truth.matrices);
        }
    }

    #[test]
    fn shared_query_validation_and_memory_accounting() {
        let full = generators::clustered_matrix(6, 200, 2, 0.5, 5).unwrap();
        let mut session = StreamingDangoron::new(
            full.slice_columns(0, 100).unwrap(),
            80,
            20,
            0.7,
            config(BoundMode::Exhaustive),
        )
        .unwrap();
        // Misaligned or out-of-range parameters are structured errors.
        assert!(session.query_shared(75, 20, 0.5).is_err());
        assert!(session.query_shared(80, 15, 0.5).is_err());
        assert!(session.query_shared(80, 0, 0.5).is_err());
        assert!(session.query_shared(80, 20, 1.5).is_err());
        // A query longer than the history yields zero windows, not an error.
        assert!(session
            .query_shared(200, 20, 0.5)
            .unwrap()
            .matrices
            .is_empty());
        // Memory accounting grows with the stream.
        let before = session.memory_bytes();
        assert!(before > 0);
        session
            .append(&full.slice_columns(100, 200).unwrap())
            .unwrap();
        assert!(session.memory_bytes() > before);
        // Sharded sessions cannot answer shared queries.
        let sharded = StreamingDangoron::new_sharded(
            full.slice_columns(0, 100).unwrap(),
            80,
            20,
            0.7,
            config(BoundMode::Exhaustive),
            0..5,
        )
        .unwrap();
        assert!(sharded.query_shared(80, 20, 0.7).is_err());
    }

    #[test]
    fn construction_validation() {
        let x = generators::clustered_matrix(4, 100, 2, 0.5, 1).unwrap();
        // Misaligned window.
        assert!(
            StreamingDangoron::new(x.clone(), 75, 20, 0.5, config(BoundMode::Exhaustive)).is_err()
        );
        // Misaligned step.
        assert!(
            StreamingDangoron::new(x.clone(), 80, 15, 0.5, config(BoundMode::Exhaustive)).is_err()
        );
        // Horizontal pruning is supported in sessions.
        let c = config_with_pivots(BoundMode::Exhaustive, 1);
        assert!(StreamingDangoron::new(x.clone(), 80, 20, 0.5, c).is_ok());
        // Mismatched series count on append is rejected.
        let mut session =
            StreamingDangoron::new(x.clone(), 80, 20, 0.5, config(BoundMode::Exhaustive)).unwrap();
        let other = generators::clustered_matrix(3, 40, 1, 0.5, 1).unwrap();
        assert!(session.append(&other).is_err());
        // Too little initial data.
        let tiny = x.slice_columns(0, 5).unwrap();
        assert!(StreamingDangoron::new(tiny, 80, 20, 0.5, config(BoundMode::Exhaustive)).is_err());
    }
}
