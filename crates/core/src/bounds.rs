//! Correlation bounds: the temporal Eq. 2 bound and the horizontal
//! triangle-inequality bound.
//!
//! ## Eq. 2 (temporal / vertical)
//!
//! Under the paper's assumption that every basic window is drawn from one
//! sample distribution (window means and variances roughly stationary), the
//! query-window correlation is approximately the average of its basic
//! windows' correlations: `Corr ≈ (1/n_s)·Σ c_j`. Sliding the window by `m`
//! basic windows removes the `m` oldest terms (whose `c` values are *known*
//! from the sketches) and adds `m` new ones (bounded above by 1), giving
//!
//! ```text
//! Corr_{i+k} ≤ Corr_i + (1/n_s)·(m·k − Σ_{departing} c_b)   (Eq. 2)
//! ```
//!
//! Each summand `1 − c_b ≥ 0`, so the bound is **monotone non-decreasing in
//! `k`** — which is what makes the paper's binary search for the jump
//! length valid ([`max_jump`]).
//!
//! Because Eq. 2 is exact only under the stationarity assumption, jumping
//! with it trades recall for speed; the engine's `slack` knob widens the
//! margin for a controllable trade-off (paper §4: "accuracy above 90
//! percent").
//!
//! ## Triangle (horizontal)
//!
//! Correlation matrices are PSD, so for any pivot `z`:
//! `c_xz·c_yz − √((1−c_xz²)(1−c_yz²)) ≤ c_xy ≤ c_xz·c_yz + √(…)`.
//! This bound is unconditional (a theorem, not a heuristic).

/// Prefix sums of `(1 − c_b)` over all basic windows of a pair; the jump
/// bound for any departure range is then O(1).
#[derive(Debug, Clone)]
pub struct DepartureCost {
    /// `prefix[b] = Σ_{t<b} (1 − c_t)`, length `n_b + 1`.
    prefix: Vec<f64>,
}

impl DepartureCost {
    /// Builds from per-basic-window correlations (`None` ⇒ undefined
    /// correlation, treated as 0 — a neutral value; see module docs).
    pub fn from_correlations(cs: impl Iterator<Item = Option<f64>>) -> Self {
        let mut prefix = vec![0.0];
        let mut acc = 0.0;
        for c in cs {
            acc += 1.0 - c.unwrap_or(0.0); // lint:allow(float-reduction-outside-kernel) -- prefix-sum build: every partial is stored; extension resumes from the stored tail bit-identically
            prefix.push(acc);
        }
        Self { prefix }
    }

    /// Builds the *lower-bound* cost prefix `Σ (1 + c_b)` — how fast the
    /// Eq. 2 lower bound can fall as those basic windows depart.
    pub fn from_correlations_lower(cs: impl Iterator<Item = Option<f64>>) -> Self {
        let mut prefix = vec![0.0];
        let mut acc = 0.0;
        for c in cs {
            acc += 1.0 + c.unwrap_or(0.0); // lint:allow(float-reduction-outside-kernel) -- prefix-sum build: every partial is stored; extension resumes from the stored tail bit-identically
            prefix.push(acc);
        }
        Self { prefix }
    }

    /// Extends a [`DepartureCost::from_correlations`] prefix with further
    /// basic windows' correlations. The accumulation continues from the
    /// stored tail, so an extended prefix is bit-identical to a fresh
    /// build over the concatenated sequence — the streaming-session
    /// maintenance path.
    pub fn extend_from_correlations(&mut self, cs: impl Iterator<Item = Option<f64>>) {
        let mut acc = *self.prefix.last().expect("prefix is never empty");
        for c in cs {
            acc += 1.0 - c.unwrap_or(0.0); // lint:allow(float-reduction-outside-kernel) -- prefix-sum build: every partial is stored; extension resumes from the stored tail bit-identically
            self.prefix.push(acc);
        }
    }

    /// The [`DepartureCost::from_correlations_lower`] counterpart of
    /// [`DepartureCost::extend_from_correlations`].
    pub fn extend_from_correlations_lower(&mut self, cs: impl Iterator<Item = Option<f64>>) {
        let mut acc = *self.prefix.last().expect("prefix is never empty");
        for c in cs {
            acc += 1.0 + c.unwrap_or(0.0); // lint:allow(float-reduction-outside-kernel) -- prefix-sum build: every partial is stored; extension resumes from the stored tail bit-identically
            self.prefix.push(acc);
        }
    }

    /// Number of basic windows covered.
    pub fn n_basic(&self) -> usize {
        self.prefix.len() - 1
    }

    /// Resident bytes of the prefix's backing store.
    pub fn memory_bytes(&self) -> usize {
        self.prefix.capacity() * std::mem::size_of::<f64>()
    }

    /// `Σ_{b in [b0, b1)} (1 − c_b)` — the growth of the Eq. 2 bound when
    /// those basic windows depart.
    #[inline]
    pub fn cost(&self, b0: usize, b1: usize) -> f64 {
        debug_assert!(b0 <= b1 && b1 < self.prefix.len());
        self.prefix[b1] - self.prefix[b0]
    }
}

/// The Eq. 2 upper bound on `Corr_{i+k}` given `Corr_i`, when window `i`
/// starts at basic window `bw0`, each slide departs `step_bw` basic
/// windows, and the query window spans `ns` basic windows.
#[inline]
pub fn eq2_upper_bound(
    corr_i: f64,
    ns: usize,
    step_bw: usize,
    bw0: usize,
    k: usize,
    dep: &DepartureCost,
) -> f64 {
    corr_i + dep.cost(bw0, bw0 + k * step_bw) / ns as f64
}

/// The symmetric Eq. 2 lower bound (arriving windows bounded below by −1):
/// `Corr_{i+k} ≥ Corr_i − (1/n_s)·Σ_departing (1 + c_b)`. Exposed for
/// completeness and for the negative-threshold use-case.
#[inline]
pub fn eq2_lower_bound(
    corr_i: f64,
    ns: usize,
    step_bw: usize,
    bw0: usize,
    k: usize,
    dep_lower: &DepartureCost,
) -> f64 {
    // `dep_lower` must be built with `1 + c_b` costs; reuse the same
    // prefix structure by negating correlations at construction.
    corr_i - dep_lower.cost(bw0, bw0 + k * step_bw) / ns as f64
}

/// Largest `k ∈ [1, k_max]` such that the Eq. 2 bound stays strictly below
/// `beta − slack` — i.e. windows `i+1 … i+k` can all be skipped. Returns 0
/// when even `k = 1` cannot be ruled out.
///
/// Runs the paper's binary search; validity rests on the bound's
/// monotonicity in `k`.
#[allow(clippy::too_many_arguments)]
pub fn max_jump(
    corr_i: f64,
    beta: f64,
    slack: f64,
    ns: usize,
    step_bw: usize,
    bw0: usize,
    k_max: usize,
    dep: &DepartureCost,
) -> usize {
    if k_max == 0 {
        return 0;
    }
    let below = |k: usize| eq2_upper_bound(corr_i, ns, step_bw, bw0, k, dep) < beta - slack;
    if !below(1) {
        return 0;
    }
    if below(k_max) {
        return k_max;
    }
    // Invariant: below(lo) is true, below(hi) is false.
    let (mut lo, mut hi) = (1usize, k_max);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if below(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// The per-pair departure-cost prefixes an engine needs: the upper-bound
/// cost always, the lower-bound cost only for absolute-threshold queries.
#[derive(Debug, Clone)]
pub struct PairCosts {
    /// `Σ (1 − c_b)` prefix — drives the Eq. 2 *upper* bound.
    pub upper: DepartureCost,
    /// `Σ (1 + c_b)` prefix — drives the lower bound (anticorrelation
    /// edges); `None` for positive-threshold queries.
    pub lower: Option<DepartureCost>,
}

impl PairCosts {
    /// Resident bytes of both prefixes.
    pub fn memory_bytes(&self) -> usize {
        self.upper.memory_bytes() + self.lower.as_ref().map_or(0, DepartureCost::memory_bytes)
    }
}

/// Largest `k ∈ [1, k_max]` such that **both** Eq. 2 bounds confine the
/// correlation strictly inside `(−(β−slack), β−slack)` — i.e. windows
/// `i+1 … i+k` cannot produce an edge under [`sketch::output::EdgeRule::Absolute`].
///
/// `corr_hi`/`corr_lo` bracket the current correlation (equal after an
/// exact evaluation; a triangle interval after horizontal pruning). Both
/// bounds are monotone in `k`, so their conjunction is binary-searchable.
#[allow(clippy::too_many_arguments)]
pub fn max_jump_absolute(
    corr_hi: f64,
    corr_lo: f64,
    beta: f64,
    slack: f64,
    ns: usize,
    step_bw: usize,
    bw0: usize,
    k_max: usize,
    up: &DepartureCost,
    low: &DepartureCost,
) -> usize {
    if k_max == 0 {
        return 0;
    }
    let margin = beta - slack;
    let inside = |k: usize| {
        eq2_upper_bound(corr_hi, ns, step_bw, bw0, k, up) < margin
            && eq2_lower_bound(corr_lo, ns, step_bw, bw0, k, low) > -margin
    };
    if !inside(1) {
        return 0;
    }
    if inside(k_max) {
        return k_max;
    }
    let (mut lo_k, mut hi_k) = (1usize, k_max);
    while hi_k - lo_k > 1 {
        let mid = lo_k + (hi_k - lo_k) / 2;
        if inside(mid) {
            lo_k = mid;
        } else {
            hi_k = mid;
        }
    }
    lo_k
}

/// Triangle-inequality bounds on `c_xy` from pivot correlations.
///
/// Returns `(lower, upper)`. Requires both inputs in `[-1, 1]`. The
/// single-pair convenience form of [`kernel::triangle_interval`], so the
/// scalar bound and the vectorised pivot-table scan share one definition
/// (and one rounding behaviour) by construction.
#[inline]
pub fn triangle_bounds(c_xz: f64, c_yz: f64) -> (f64, f64) {
    debug_assert!((-1.0..=1.0).contains(&c_xz) && (-1.0..=1.0).contains(&c_yz));
    kernel::triangle_interval(&[c_xz], &[c_yz])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tsdata::stats::pearson;

    #[test]
    fn departure_cost_prefix() {
        let dep = DepartureCost::from_correlations(
            vec![Some(1.0), Some(0.5), Some(-1.0), None].into_iter(),
        );
        assert_eq!(dep.n_basic(), 4);
        assert_eq!(dep.cost(0, 1), 0.0); // 1 − 1
        assert_eq!(dep.cost(1, 2), 0.5);
        assert_eq!(dep.cost(2, 3), 2.0);
        assert_eq!(dep.cost(3, 4), 1.0); // None → c = 0
        assert_eq!(dep.cost(0, 4), 3.5);
        assert_eq!(dep.cost(2, 2), 0.0);
    }

    #[test]
    fn extended_prefix_is_bit_identical_to_fresh_build() {
        let cs: Vec<Option<f64>> = vec![Some(0.9), Some(-0.3), None, Some(0.47), Some(0.99)];
        let fresh = DepartureCost::from_correlations(cs.iter().cloned());
        let mut grown = DepartureCost::from_correlations(cs[..2].iter().cloned());
        grown.extend_from_correlations(cs[2..].iter().cloned());
        assert_eq!(grown.n_basic(), fresh.n_basic());
        for b in 0..=fresh.n_basic() {
            assert_eq!(grown.cost(0, b).to_bits(), fresh.cost(0, b).to_bits());
        }
        let fresh = DepartureCost::from_correlations_lower(cs.iter().cloned());
        let mut grown = DepartureCost::from_correlations_lower(cs[..3].iter().cloned());
        grown.extend_from_correlations_lower(cs[3..].iter().cloned());
        for b in 0..=fresh.n_basic() {
            assert_eq!(grown.cost(0, b).to_bits(), fresh.cost(0, b).to_bits());
        }
    }

    #[test]
    fn eq2_bound_is_monotone_in_k() {
        let mut rng = StdRng::seed_from_u64(3);
        let cs: Vec<Option<f64>> = (0..50)
            .map(|_| Some(rng.gen::<f64>() * 2.0 - 1.0))
            .collect();
        let dep = DepartureCost::from_correlations(cs.into_iter());
        let mut prev = f64::NEG_INFINITY;
        for k in 0..=10 {
            let b = eq2_upper_bound(0.3, 7, 2, 5, k, &dep);
            assert!(b >= prev - 1e-12, "bound decreased at k={k}");
            prev = b;
        }
    }

    #[test]
    fn max_jump_matches_linear_scan() {
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..200 {
            let nb = rng.gen_range(10..60);
            let cs: Vec<Option<f64>> = (0..nb)
                .map(|_| Some(rng.gen::<f64>() * 2.0 - 1.0))
                .collect();
            let dep = DepartureCost::from_correlations(cs.into_iter());
            let ns = rng.gen_range(2..8usize);
            let step_bw = rng.gen_range(1..3usize);
            let bw0 = rng.gen_range(0..3usize);
            let k_cap = (nb - bw0) / step_bw;
            if k_cap == 0 {
                continue;
            }
            let k_max = rng.gen_range(1..=k_cap);
            let corr = rng.gen::<f64>() * 2.0 - 1.0;
            let beta = rng.gen::<f64>();
            let fast = max_jump(corr, beta, 0.0, ns, step_bw, bw0, k_max, &dep);
            // Linear reference.
            let mut slow = 0;
            for k in 1..=k_max {
                if eq2_upper_bound(corr, ns, step_bw, bw0, k, &dep) < beta {
                    slow = k;
                } else {
                    break;
                }
            }
            assert_eq!(fast, slow, "trial {trial}");
        }
    }

    #[test]
    fn max_jump_zero_cases() {
        let dep = DepartureCost::from_correlations((0..10).map(|_| Some(0.0)));
        // Already at/above threshold → bound(1) ≥ β → no jump.
        assert_eq!(max_jump(0.9, 0.8, 0.0, 4, 1, 0, 5, &dep), 0);
        // k_max = 0.
        assert_eq!(max_jump(0.0, 0.9, 0.0, 4, 1, 0, 0, &dep), 0);
        // Slack can suppress a jump that bare Eq. 2 would take.
        let with = max_jump(0.5, 0.8, 0.0, 4, 1, 0, 5, &dep);
        let without = max_jump(0.5, 0.8, 0.5, 4, 1, 0, 5, &dep);
        assert!(with > without);
    }

    #[test]
    fn eq2_is_exact_under_paper_assumption() {
        // When every basic window is z-normalised (mean 0, std 1), the
        // pooled correlation IS the average of the c_j, so the bound with
        // c_arriving = actual values would be tight; with c ≤ 1 it must
        // hold as a true upper bound.
        let mut rng = StdRng::seed_from_u64(17);
        let b = 16usize; // basic window width
        let nb = 40usize;
        // Build pairs of z-normalised basic windows with varying c.
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut cs = Vec::new();
        for _ in 0..nb {
            let raw_x: Vec<f64> = (0..b).map(|_| rng.gen::<f64>() - 0.5).collect();
            let raw_e: Vec<f64> = (0..b).map(|_| rng.gen::<f64>() - 0.5).collect();
            let rho: f64 = rng.gen::<f64>() * 2.0 - 1.0;
            let raw_y: Vec<f64> = raw_x
                .iter()
                .zip(&raw_e)
                .map(|(&a, &e)| rho * a + (1.0 - rho * rho).sqrt() * e)
                .collect();
            let zx = tsdata::stats::z_normalized(&raw_x).unwrap();
            let zy = tsdata::stats::z_normalized(&raw_y).unwrap();
            cs.push(Some(pearson(&zx, &zy).unwrap()));
            x.extend(zx);
            y.extend(zy);
        }
        let ns = 8usize;
        let dep = DepartureCost::from_correlations(cs.iter().copied());
        // Window starting at basic window w: correlation over ns windows.
        let win_corr =
            |w: usize| pearson(&x[w * b..(w + ns) * b], &y[w * b..(w + ns) * b]).unwrap();
        for w0 in 0..8 {
            let c0 = win_corr(w0);
            for k in 1..=6 {
                let bound = eq2_upper_bound(c0, ns, 1, w0, k, &dep);
                let actual = win_corr(w0 + k);
                assert!(
                    actual <= bound + 1e-9,
                    "w0={w0} k={k}: actual {actual} > bound {bound}"
                );
            }
        }
    }

    #[test]
    fn lower_cost_prefix() {
        let dep =
            DepartureCost::from_correlations_lower(vec![Some(1.0), Some(-1.0), None].into_iter());
        assert_eq!(dep.cost(0, 1), 2.0);
        assert_eq!(dep.cost(1, 2), 0.0);
        assert_eq!(dep.cost(2, 3), 1.0);
    }

    #[test]
    fn max_jump_absolute_matches_linear_scan() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..200 {
            let nb = rng.gen_range(10..40);
            let cs: Vec<Option<f64>> = (0..nb)
                .map(|_| Some(rng.gen::<f64>() * 2.0 - 1.0))
                .collect();
            let up = DepartureCost::from_correlations(cs.iter().copied());
            let low = DepartureCost::from_correlations_lower(cs.iter().copied());
            let ns = rng.gen_range(2..6usize);
            let bw0 = rng.gen_range(0..3usize);
            let k_max = (nb - bw0).min(12);
            let corr = rng.gen::<f64>() * 2.0 - 1.0;
            let beta: f64 = rng.gen();
            let fast = max_jump_absolute(corr, corr, beta, 0.0, ns, 1, bw0, k_max, &up, &low);
            let mut slow = 0;
            for k in 1..=k_max {
                let ub = eq2_upper_bound(corr, ns, 1, bw0, k, &up);
                let lb = eq2_lower_bound(corr, ns, 1, bw0, k, &low);
                if ub < beta && lb > -beta {
                    slow = k;
                } else {
                    break;
                }
            }
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn absolute_jump_never_exceeds_positive_jump() {
        // The absolute predicate adds a constraint, so its jumps are a
        // subset of the positive-rule jumps.
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let cs: Vec<Option<f64>> = (0..30)
                .map(|_| Some(rng.gen::<f64>() * 2.0 - 1.0))
                .collect();
            let up = DepartureCost::from_correlations(cs.iter().copied());
            let low = DepartureCost::from_correlations_lower(cs.iter().copied());
            let corr = rng.gen::<f64>() * 1.6 - 0.8;
            let beta = 0.85;
            let pos = max_jump(corr, beta, 0.0, 4, 1, 0, 20, &up);
            let abs = max_jump_absolute(corr, corr, beta, 0.0, 4, 1, 0, 20, &up, &low);
            assert!(abs <= pos, "abs {abs} > pos {pos}");
        }
    }

    #[test]
    fn triangle_bounds_known_values() {
        // Orthogonal pivot tells nothing: bounds are [−1, 1].
        let (lo, hi) = triangle_bounds(0.0, 0.0);
        assert_eq!((lo, hi), (-1.0, 1.0));
        // Perfect pivot correlation pins the value.
        let (lo, hi) = triangle_bounds(1.0, 0.6);
        assert!((lo - 0.6).abs() < 1e-12 && (hi - 0.6).abs() < 1e-12);
        // Symmetric case.
        let (lo, hi) = triangle_bounds(0.9, 0.9);
        assert!((hi - (0.81 + 0.19)).abs() < 1e-12);
        assert!((lo - (0.81 - 0.19)).abs() < 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The triangle bound always contains the true correlation — tested
        /// against actual data triples, since PSD-ness of correlation
        /// matrices is the underlying theorem.
        #[test]
        fn triangle_bound_contains_truth(seed in 0u64..2_000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 64;
            let x: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
            let y: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
            let z: Vec<f64> = x
                .iter()
                .zip(&y)
                .map(|(&a, &b)| 0.4 * a + 0.3 * b + 0.3 * (rng.gen::<f64>() - 0.5))
                .collect();
            let cxy = pearson(&x, &y).unwrap();
            let cxz = pearson(&x, &z).unwrap();
            let cyz = pearson(&y, &z).unwrap();
            let (lo, hi) = triangle_bounds(cxz, cyz);
            prop_assert!(cxy >= lo - 1e-9 && cxy <= hi + 1e-9,
                "c_xy={cxy} outside [{lo}, {hi}]");
        }

        /// Bounds are always ordered and inside [−1, 1].
        #[test]
        fn triangle_bounds_are_sane(a in -1.0f64..=1.0, b in -1.0f64..=1.0) {
            let (lo, hi) = triangle_bounds(a, b);
            prop_assert!(lo <= hi + 1e-12);
            prop_assert!((-1.0..=1.0).contains(&lo));
            prop_assert!((-1.0..=1.0).contains(&hi));
        }
    }
}
