//! # dangoron — pruned correlation-network construction across sliding windows
//!
//! The paper's primary contribution: compute the sequence of thresholded
//! correlation matrices `C_0 … C_γ` over sliding windows while skipping as
//! much work as the threshold `β` allows.
//!
//! The framework combines three ideas:
//!
//! 1. **Basic-window sketches (Eq. 1)** — per-window statistics are
//!    precomputed once; the exact correlation of any aligned window is
//!    reconstructed in O(1) (crate `sketch`).
//! 2. **Vertical pruning / jumping (Eq. 2, Fig. 2)** — correlation drifts
//!    slowly between adjacent windows. When the current correlation is
//!    below `β`, an upper bound on future windows is derived from the
//!    *departing* basic windows' correlations; binary search over the
//!    monotone bound yields the number of safely skippable windows
//!    ([`bounds`], [`walker`]).
//! 3. **Horizontal pruning** — for a pivot series `z`, the two known
//!    correlations `c_xz`, `c_yz` confine `c_xy` to
//!    `c_xz·c_yz ± √((1−c_xz²)(1−c_yz²))`; pairs whose upper bound stays
//!    below `β` skip exact evaluation entirely ([`pivot`]).
//!
//! Two execution surfaces share one pruned walker ([`walker`]): the batch
//! engine [`Dangoron`] (`prepare` + `run`) and the real-time session
//! [`StreamingDangoron`] (`append` + drain). Results are **deterministic
//! three ways**: bit-identical across thread counts (the `exec`
//! scheduler's ordered merge), across batch and streaming (shared walker +
//! incrementally maintained sketches), and across SIMD/scalar builds (the
//! `kernel` crate's bit-identical backends). `ARCHITECTURE.md` at the
//! repository root walks the full crate graph and data flow.
//!
//! ```
//! use dangoron::{Dangoron, DangoronConfig};
//! use sketch::SlidingQuery;
//! use tsdata::generators;
//!
//! let x = generators::clustered_matrix(8, 256, 2, 0.4, 7).unwrap();
//! let query = SlidingQuery { start: 0, end: 256, window: 64, step: 16, threshold: 0.8 };
//! let engine = Dangoron::new(DangoronConfig { basic_window: 16, ..Default::default() }).unwrap();
//! let result = engine.execute(&x, query).unwrap();
//! assert_eq!(result.matrices.len(), query.n_windows());
//! println!("skip fraction: {:.2}", result.stats.skip_fraction());
//! ```

pub mod bounds;
pub mod config;
pub mod engine;
pub mod pivot;
pub mod stats;
pub mod streaming;
pub mod walker;

pub use config::{BoundMode, DangoronConfig, PairStorage, PivotStrategy};
pub use engine::{Dangoron, Prepared, QueryResult};
pub use stats::PruningStats;
pub use streaming::{CompletedWindow, StreamingDangoron};
