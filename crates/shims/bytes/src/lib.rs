//! Minimal `Buf`/`BufMut`: exactly the little-endian accessors the sketch
//! store's binary frame format uses.

/// Read side: consuming little-endian reads over a shrinking slice.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Pop `n` bytes off the front.
    fn advance(&mut self, n: usize);
    /// Borrow the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Read a little-endian `u64`, consuming 8 bytes.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f64`, consuming 8 bytes.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write side: appending little-endian writes.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        buf.put_u64_le(0xDEAD_BEEF_u64);
        buf.put_f64_le(-1.5);
        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 16);
        assert_eq!(r.get_u64_le(), 0xDEAD_BEEF_u64);
        assert_eq!(r.get_f64_le(), -1.5);
        assert_eq!(r.remaining(), 0);
    }
}
