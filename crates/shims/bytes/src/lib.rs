//! Minimal `Buf`/`BufMut`: the little-endian accessors the sketch store's
//! binary frame format and the distributed tier's wire protocol use, plus
//! a tiny length-prefixed framing module ([`frame`]) for the
//! coordinator/worker streams.

/// Read side: consuming little-endian reads over a shrinking slice.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Pop `n` bytes off the front.
    fn advance(&mut self, n: usize);
    /// Borrow the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a little-endian `u32`, consuming 4 bytes.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`, consuming 8 bytes.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f64`, consuming 8 bytes.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write side: appending little-endian writes.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Length-prefixed framing over byte streams: every frame is a
/// little-endian `u32` payload length followed by the payload.
///
/// This is the wire format of the distributed shard tier's
/// coordinator/worker protocol (`crates/dist`). It is a shim extension —
/// the real `bytes` crate carries no I/O; when the registry becomes
/// reachable and the shim is swapped out, this module moves verbatim into
/// `dist::proto` (see `crates/shims/README.md`).
pub mod frame {
    use std::io::{self, Read, Write};

    /// Bytes of the length prefix.
    pub const HEADER_LEN: usize = 4;

    /// Largest payload the `u32` length prefix can carry. Writers must
    /// refuse anything bigger — a silent wrap would corrupt the stream.
    pub const MAX_PAYLOAD: usize = u32::MAX as usize;

    /// Encodes one frame (length prefix + payload) into a fresh buffer.
    ///
    /// # Panics
    /// Panics when the payload exceeds [`MAX_PAYLOAD`] (the prefix would
    /// wrap); fallible callers should use [`write_to`].
    pub fn encode(payload: &[u8]) -> Vec<u8> {
        assert!(
            payload.len() <= MAX_PAYLOAD,
            "frame payload of {} bytes exceeds the u32 length prefix",
            payload.len()
        );
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(payload);
        out
    }

    /// Writes one frame to `w` and flushes it. Fails fast (nothing
    /// written) when the payload exceeds [`MAX_PAYLOAD`] — wrapping the
    /// prefix would corrupt the stream mid-frame.
    pub fn write_to(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
        if payload.len() > MAX_PAYLOAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "frame payload of {} bytes exceeds the u32 length prefix",
                    payload.len()
                ),
            ));
        }
        w.write_all(&(payload.len() as u32).to_le_bytes())?;
        w.write_all(payload)?;
        w.flush()
    }

    /// Largest chunk the reader commits memory to ahead of the bytes
    /// actually arriving (see [`read_from`]).
    const READ_CHUNK: usize = 1 << 20;

    /// Reads one frame's payload from `r`.
    ///
    /// Returns `Ok(None)` on a clean end-of-stream (EOF before any header
    /// byte); a stream that ends mid-frame is an error, as is a declared
    /// length above `max_len` (protects against garbage prefixes).
    ///
    /// The length prefix is never trusted with an allocation: the payload
    /// buffer grows in at-most-1-MiB steps as bytes actually
    /// arrive, so a hostile peer that declares `max_len` and then stalls
    /// (or disconnects) costs one chunk of memory, not `max_len`.
    pub fn read_from(r: &mut impl Read, max_len: usize) -> io::Result<Option<Vec<u8>>> {
        let mut header = [0u8; HEADER_LEN];
        let mut got = 0;
        while got < HEADER_LEN {
            match r.read(&mut header[got..])? {
                0 if got == 0 => return Ok(None),
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "stream ended inside a frame header",
                    ))
                }
                n => got += n,
            }
        }
        let len = u32::from_le_bytes(header) as usize;
        if len > max_len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds the {max_len}-byte limit"),
            ));
        }
        let mut payload = Vec::with_capacity(len.min(READ_CHUNK));
        while payload.len() < len {
            let step = (len - payload.len()).min(READ_CHUNK);
            let at = payload.len();
            payload.resize(at + step, 0);
            r.read_exact(&mut payload[at..])?;
        }
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u32_le(0xAB_CD_EF_01);
        buf.put_u64_le(0xDEAD_BEEF_u64);
        buf.put_f64_le(-1.5);
        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 21);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xAB_CD_EF_01);
        assert_eq!(r.get_u64_le(), 0xDEAD_BEEF_u64);
        assert_eq!(r.get_f64_le(), -1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn frame_roundtrip_over_a_stream() {
        let mut stream = Vec::new();
        frame::write_to(&mut stream, b"hello").unwrap();
        frame::write_to(&mut stream, b"").unwrap();
        frame::write_to(&mut stream, &[9u8; 300]).unwrap();
        let mut r: &[u8] = &stream;
        assert_eq!(frame::read_from(&mut r, 1024).unwrap().unwrap(), b"hello");
        assert_eq!(frame::read_from(&mut r, 1024).unwrap().unwrap(), b"");
        assert_eq!(frame::read_from(&mut r, 1024).unwrap().unwrap(), [9u8; 300]);
        // Clean EOF after the last frame.
        assert!(frame::read_from(&mut r, 1024).unwrap().is_none());
    }

    #[test]
    fn frame_encode_matches_write_to() {
        let mut stream = Vec::new();
        frame::write_to(&mut stream, b"abc").unwrap();
        assert_eq!(frame::encode(b"abc"), stream);
    }

    #[test]
    fn frames_larger_than_one_read_chunk_roundtrip() {
        // Exercises the incremental-allocation path (payload > READ_CHUNK).
        let payload: Vec<u8> = (0..(1 << 20) * 2 + 12345).map(|k| k as u8).collect();
        let mut stream = Vec::new();
        frame::write_to(&mut stream, &payload).unwrap();
        let mut r: &[u8] = &stream;
        assert_eq!(
            frame::read_from(&mut r, usize::MAX).unwrap().unwrap(),
            payload
        );
    }

    #[test]
    fn frame_errors_on_damage() {
        // Truncated mid-header.
        let mut r: &[u8] = &[1u8, 0];
        assert!(frame::read_from(&mut r, 1024).is_err());
        // Truncated mid-payload.
        let full = frame::encode(b"hello");
        let mut r: &[u8] = &full[..full.len() - 2];
        assert!(frame::read_from(&mut r, 1024).is_err());
        // Oversized declared length.
        let mut r: &[u8] = &frame::encode(&[0u8; 64]);
        assert!(frame::read_from(&mut r, 16).is_err());
    }
}
