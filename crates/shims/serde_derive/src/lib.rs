//! No-op `Serialize`/`Deserialize` derives.
//!
//! The workspace decorates its config and output types with serde derives
//! but never serialises through serde (JSON is hand-rolled in `eval` and
//! `bench`), so empty expansions are sufficient. The `attributes(serde)`
//! declarations keep `#[serde(default)]`-style field attributes legal.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
