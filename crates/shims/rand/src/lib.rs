//! Deterministic stand-in for `rand` 0.8.
//!
//! Provides `Rng` (`gen`, `gen_range`, `gen_bool`, `fill`),
//! `SeedableRng::seed_from_u64` and `rngs::StdRng`. The core generator is
//! SplitMix64 — excellent statistical quality for simulation workloads,
//! deterministic per seed, **not** cryptographic, and not stream-compatible
//! with upstream rand's ChaCha12 `StdRng`. Workspace code only ever
//! compares engines against each other over the same generated data, so
//! stream compatibility is irrelevant.

use std::ops::{Range, RangeInclusive};

/// Raw 64-bit generator — the only method an engine must provide.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of an inferable type (`f64` in `[0,1)`, `bool`, ints).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`). The output
    /// is a direct type parameter (as in upstream rand) so integer-literal
    /// ranges infer their type from the call site.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fill a byte slice with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types samplable via `rng.gen()`.
pub trait Standard: Sized {
    /// Draw one value from the generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable via `rng.gen_range(..)` producing `T`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Seeding interface (only the `u64` convenience path is provided).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-scramble so small seeds don't start in a weak region.
            let mut rng = StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            };
            rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Alias kept for API parity.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_uniform_ish() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(3..=5u64);
            assert!((3..=5).contains(&v));
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn works_through_unsized_refs() {
        fn takes_dynish<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let v = takes_dynish(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
