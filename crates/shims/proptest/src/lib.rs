//! Deterministic property-test runner with proptest's macro surface.
//!
//! Supports what the workspace's property tests use: the `proptest!` macro
//! (with optional `#![proptest_config(...)]`), range strategies over ints
//! and floats, `prop::collection::vec`, and `prop_assert!`/
//! `prop_assert_eq!`. Cases are generated from a seed derived from the
//! test's module path, name and case index, so failures reproduce exactly.
//! There is no shrinking: a failure reports its case index instead.

use std::ops::{Range, RangeInclusive};

/// Test-case generator state (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derive the RNG for one (test, case) pair.
    pub fn for_case(module: &str, name: &str, case: u32) -> Self {
        // FNV-1a over the identifying strings, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in module.bytes().chain(name.bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut rng = Self {
            state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        rng.next_u64();
        rng
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.unit_f64() * (hi - lo)
    }
}

/// A constant strategy (`Just(v)` always yields a clone of `v`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies of one value type (the
/// `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Build from the alternatives (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

/// Boxes one `prop_oneof!` alternative; a free function so the value type
/// unifies across all alternatives during inference.
#[doc(hidden)]
pub fn __push_oneof<T, S: Strategy<Value = T> + 'static>(
    options: &mut Vec<Box<dyn Strategy<Value = T>>>,
    s: S,
) {
    options.push(Box::new(s));
}

/// Uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {{
        let mut __options = ::std::vec::Vec::new();
        $($crate::__push_oneof(&mut __options, $option);)+
        $crate::Union::new(__options)
    }};
}

macro_rules! strategy_tuple {
    ($(($($s:ident $idx:tt),+);)+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
strategy_tuple! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding either boolean with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// `prop_map` support: a strategy post-processed by a function.
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

/// Extension methods mirroring proptest's `Strategy` combinators.
pub trait StrategyExt: Strategy + Sized {
    /// Transform generated values.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F> {
        Map { source: self, f }
    }
}
impl<S: Strategy + Sized> StrategyExt for S {}

/// The `prop::` namespace.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy producing `Vec`s with lengths drawn from a range.
        pub struct VecStrategy<S> {
            elem: S,
            size: Range<usize>,
        }

        /// `vec(elem_strategy, len_range)`.
        pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.clone().generate(rng);
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property case.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Construct from a rendered assertion message.
    pub fn fail(message: String) -> Self {
        Self { message }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
        StrategyExt, TestCaseError,
    };
}

/// proptest's main macro: expands each contained function into a `#[test]`
/// that loops over deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    { ($cfg:expr) } => {};
    {
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    } => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                $(
                    let $arg = $crate::Strategy::generate(
                        &($strat),
                        &mut $crate::TestRng::for_case(
                            ::core::module_path!(),
                            concat!(stringify!($name), "/", stringify!($arg)),
                            __case,
                        ),
                    );
                )+
                let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = __outcome {
                    panic!("proptest: {} case {} failed: {}", stringify!($name), __case, e);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fallible assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fallible equality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} (left: {:?}, right: {:?})",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Generated ints respect their range.
        #[test]
        fn ranges_respected(n in 1usize..10, x in -5.0f64..5.0) {
            prop_assert!((1..10).contains(&n));
            prop_assert!((-5.0..5.0).contains(&x));
        }

        #[test]
        fn vectors_have_bounded_len(v in prop::collection::vec(0u64..100, 2..8)) {
            prop_assert!(v.len() >= 2 && v.len() < 8);
            prop_assert!(v.iter().all(|&e| e < 100));
        }
    }

    #[test]
    fn determinism() {
        let mut a = TestRng::for_case("m", "t", 3);
        let mut b = TestRng::for_case("m", "t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("m", "t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
