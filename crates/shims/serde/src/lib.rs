//! serde façade: re-exports the no-op derives and declares the two traits
//! so `use serde::{Deserialize, Serialize}` resolves in both the macro and
//! trait namespaces. Blanket impls keep any `T: Serialize` bound satisfied.

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker standing in for `serde::de::DeserializeOwned`.
pub mod de {
    /// Owned-deserialisation marker.
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}
