//! Minimal criterion-compatible bench runner.
//!
//! Supports the subset the workspace's `benches/` use: groups, per-input
//! benchmarks, sample sizes, throughput annotation, and the
//! `criterion_group!`/`criterion_main!` entry points. Each benchmark runs a
//! short warm-up, then `sample_size` timed iterations, and prints the
//! median, min and max. No statistics beyond that — the real trend data
//! lives in the harness's `BENCH_*.json` files.

use std::time::{Duration, Instant};

/// Throughput annotation (printed alongside the timing).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name + parameter display.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("dangoron", 64)` → `dangoron/64`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// The per-benchmark timing driver handed to the closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `sample_size` runs of `routine` (after one warm-up run).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed run (fills caches, triggers lazy init).
        let _ = std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            let _ = std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark with an input parameter.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b.samples);
        self
    }

    /// Run a benchmark without an input parameter.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id.to_string(), &b.samples);
        self
    }

    /// Close the group (prints a trailing newline).
    pub fn finish(&mut self) {
        println!();
    }

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let mut sorted = samples.to_vec();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        let tp = match self.throughput {
            Some(Throughput::Elements(n)) => {
                let per_s = n as f64 / median.as_secs_f64();
                format!("  [{per_s:.0} elem/s]")
            }
            Some(Throughput::Bytes(n)) => {
                let per_s = n as f64 / median.as_secs_f64() / (1024.0 * 1024.0);
                format!("  [{per_s:.1} MiB/s]")
            }
            None => String::new(),
        };
        println!(
            "{}/{id}: median {median:?}  (min {min:?}, max {max:?}, n={}){tp}",
            self.name,
            sorted.len()
        );
    }
}

/// Top-level bench context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            throughput: None,
            _parent: self,
        }
    }

    /// Ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(name.clone()).bench_function("", f);
        self
    }
}

/// Re-export for `use criterion::black_box` compatibility.
pub use std::hint::black_box;

/// Bundle benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
