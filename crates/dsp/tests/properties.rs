//! Property-based tests for the DSP substrate: the invariants every
//! transform must satisfy for arbitrary inputs.

use dsp::complex::Complex64;
use dsp::dft::{dft_naive, fft_any, fft_any_real};
use dsp::fft::Direction;
use dsp::projection::{SlidingSketch, TimeIndexedProjection};
use dsp::real_fourier;
use proptest::prelude::*;

fn signal_strategy(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, 2..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FFT of any length inverts exactly (complex roundtrip).
    #[test]
    fn fft_any_roundtrip(re in signal_strategy(64), seed in 0u64..100) {
        let im: Vec<f64> = re.iter().map(|x| (x * seed as f64).sin()).collect();
        let signal: Vec<Complex64> = re
            .iter()
            .zip(&im)
            .map(|(&r, &i)| Complex64::new(r, i))
            .collect();
        let spec = fft_any(&signal, Direction::Forward);
        let back = fft_any(&spec, Direction::Inverse);
        for (a, b) in back.iter().zip(&signal) {
            prop_assert!((a.re - b.re).abs() < 1e-6);
            prop_assert!((a.im - b.im).abs() < 1e-6);
        }
    }

    /// fft_any agrees with the O(n²) reference for arbitrary lengths.
    #[test]
    fn fft_any_matches_naive(re in signal_strategy(48)) {
        let signal: Vec<Complex64> = re.iter().map(|&r| Complex64::new(r, 0.0)).collect();
        let fast = fft_any(&signal, Direction::Forward);
        let slow = dft_naive(&signal, Direction::Forward);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((a.re - b.re).abs() < 1e-6, "{a:?} vs {b:?}");
            prop_assert!((a.im - b.im).abs() < 1e-6);
        }
    }

    /// Real-signal spectra are Hermitian-symmetric.
    #[test]
    fn real_spectrum_hermitian(x in signal_strategy(50)) {
        let spec = fft_any_real(&x);
        let n = spec.len();
        for k in 1..n {
            let a = spec[k];
            let b = spec[n - k].conj();
            prop_assert!((a.re - b.re).abs() < 1e-6);
            prop_assert!((a.im - b.im).abs() < 1e-6);
        }
    }

    /// The real Fourier basis preserves norms and inner products exactly
    /// (the Parseval property Tomborg relies on).
    #[test]
    fn real_fourier_is_isometric(x in signal_strategy(40), shift in -5.0f64..5.0) {
        let y: Vec<f64> = x.iter().map(|v| v * 0.7 + shift).collect();
        let fx = real_fourier::forward(&x);
        let fy = real_fourier::forward(&y);
        let ip_t: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        let ip_f: f64 = fx.iter().zip(&fy).map(|(a, b)| a * b).sum();
        prop_assert!((ip_t - ip_f).abs() < 1e-6 * (1.0 + ip_t.abs()));
        // Roundtrip.
        let back = real_fourier::inverse(&fx);
        for (a, b) in back.iter().zip(&x) {
            prop_assert!((a - b).abs() < 1e-7);
        }
    }

    /// Incremental sliding sketches always equal a fresh rebuild.
    #[test]
    fn sliding_sketch_incremental_equals_rebuild(
        x in prop::collection::vec(-10.0f64..10.0, 120..200),
        dim in 1usize..16,
        seed in 0u64..1_000,
        steps in prop::collection::vec(1usize..20, 1..6),
    ) {
        let len = 50;
        let proj = TimeIndexedProjection::new(dim, seed);
        let mut inc = SlidingSketch::init(proj, &x, 0, len);
        let mut t0 = 0usize;
        for s in steps {
            if t0 + s + len > x.len() {
                break;
            }
            t0 += s;
            inc.advance(&x, t0);
            let fresh = SlidingSketch::init(proj, &x, t0, len);
            match (inc.normalized(), fresh.normalized()) {
                (Some(a), Some(b)) => {
                    for (u, v) in a.iter().zip(&b) {
                        prop_assert!((u - v).abs() < 1e-6);
                    }
                }
                (None, None) => {}
                other => prop_assert!(false, "divergent variance handling: {other:?}"),
            }
        }
    }
}
