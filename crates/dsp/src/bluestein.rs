//! Bluestein's chirp-z algorithm: FFT of arbitrary length via a
//! power-of-two convolution.
//!
//! `X_k = Σ_t x_t ω^{tk}` with `ω = e^{∓2πi/n}` is rewritten using
//! `tk = (t² + k² − (k−t)²)/2`, turning the transform into a linear
//! convolution of the chirped signal `a_t = x_t·ω^{t²/2}` with the chirp
//! `b_t = ω^{−t²/2}`, which is evaluated with the radix-2 FFT at the next
//! power of two ≥ `2n − 1`.

use crate::complex::Complex64;
use crate::fft::{fft_in_place, next_power_of_two, Direction};

/// FFT of arbitrary length `n` in O(n log n).
///
/// Matches [`crate::dft::dft_naive`] for both directions, including the
/// inverse `1/n` normalisation.
pub fn bluestein(signal: &[Complex64], dir: Direction) -> Vec<Complex64> {
    let n = signal.len();
    if n <= 1 {
        return signal.to_vec();
    }
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };

    // Chirp phases ω^{t²/2} = e^{sign·πi·t²/n}. Reduce t² mod 2n before the
    // trig call to keep the argument small for long signals.
    let chirp: Vec<Complex64> = (0..n)
        .map(|t| {
            let t2 = ((t as u128 * t as u128) % (2 * n as u128)) as f64;
            Complex64::cis(sign * std::f64::consts::PI * t2 / n as f64)
        })
        .collect();

    let m = next_power_of_two(2 * n - 1);
    let mut a = vec![Complex64::zero(); m];
    let mut b = vec![Complex64::zero(); m];
    for t in 0..n {
        a[t] = signal[t] * chirp[t];
    }
    // b is the conjugate chirp, symmetric around 0 (wrapped at m).
    b[0] = chirp[0].conj();
    for t in 1..n {
        let c = chirp[t].conj();
        b[t] = c;
        b[m - t] = c;
    }

    fft_in_place(&mut a, Direction::Forward);
    fft_in_place(&mut b, Direction::Forward);
    for (x, y) in a.iter_mut().zip(&b) {
        *x *= *y;
    }
    fft_in_place(&mut a, Direction::Inverse);

    let mut out: Vec<Complex64> = (0..n).map(|k| a[k] * chirp[k]).collect();
    if dir == Direction::Inverse {
        let inv = 1.0 / n as f64;
        for v in out.iter_mut() {
            *v = v.scale(inv);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft_naive;

    fn assert_close(a: &[Complex64], b: &[Complex64], eps: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x.re - y.re).abs() < eps && (x.im - y.im).abs() < eps,
                "bin {i}: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn matches_naive_on_primes_and_composites() {
        for &n in &[2usize, 3, 5, 6, 7, 11, 13, 21, 50, 97] {
            let signal: Vec<Complex64> = (0..n)
                .map(|t| Complex64::new((t as f64 * 0.31).sin(), (t as f64 * 1.7).cos()))
                .collect();
            let fast = bluestein(&signal, Direction::Forward);
            let slow = dft_naive(&signal, Direction::Forward);
            assert_close(&fast, &slow, 1e-8);
        }
    }

    #[test]
    fn inverse_roundtrip_odd_length() {
        let signal: Vec<Complex64> = (0..101)
            .map(|t| Complex64::new(t as f64, (t as f64).sqrt()))
            .collect();
        let spec = bluestein(&signal, Direction::Forward);
        let back = bluestein(&spec, Direction::Inverse);
        assert_close(&back, &signal, 1e-7);
    }

    #[test]
    fn handles_power_of_two_consistently() {
        // Bluestein must agree with radix-2 even when n happens to be 2^k.
        let signal: Vec<Complex64> = (0..16)
            .map(|t| Complex64::new((t as f64).cos(), 0.0))
            .collect();
        let via_bluestein = bluestein(&signal, Direction::Forward);
        let mut via_radix2 = signal.clone();
        fft_in_place(&mut via_radix2, Direction::Forward);
        assert_close(&via_bluestein, &via_radix2, 1e-9);
    }

    #[test]
    fn long_length_is_numerically_stable() {
        // 8760 = hours per year, the paper's natural series length.
        let n = 8_760;
        let signal: Vec<Complex64> = (0..n)
            .map(|t| Complex64::new((t as f64 * 0.001).sin(), 0.0))
            .collect();
        let spec = bluestein(&signal, Direction::Forward);
        let back = bluestein(&spec, Direction::Inverse);
        let max_err = back
            .iter()
            .zip(&signal)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 1e-6, "max roundtrip error {max_err}");
    }

    #[test]
    fn degenerate_inputs() {
        assert!(bluestein(&[], Direction::Forward).is_empty());
        let one = [Complex64::new(1.0, 2.0)];
        assert_eq!(bluestein(&one, Direction::Forward), one.to_vec());
    }
}
