//! Minimal double-precision complex numbers.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// `re + im·i`.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Additive identity.
    #[inline]
    pub const fn zero() -> Self {
        Self::new(0.0, 0.0)
    }

    /// Multiplicative identity.
    #[inline]
    pub const fn one() -> Self {
        Self::new(1.0, 0.0)
    }

    /// The imaginary unit.
    #[inline]
    pub const fn i() -> Self {
        Self::new(0.0, 1.0)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared modulus `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument in `(−π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{iθ}` — the unit phasor every transform here is built from.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, o: Self) -> Self {
        Self::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, o: Self) -> Self {
        Self::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, o: Self) -> Self {
        Self::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Self;
    #[inline]
    fn div(self, o: Self) -> Self {
        let d = o.norm_sqr();
        Self::new(
            (self.re * o.re + self.im * o.im) / d,
            (self.im * o.re - self.re * o.im) / d,
        )
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, o: Self) {
        *self = *self + o;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, o: Self) {
        *self = *self - o;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, o: Self) {
        *self = *self * o;
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Self::new(re, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn arithmetic_identities() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        assert_eq!(a + b, Complex64::new(-2.0, 2.5));
        assert_eq!(a - b, Complex64::new(4.0, 1.5));
        // (1+2i)(−3+0.5i) = −3 + 0.5i − 6i + i² = −4 − 5.5i
        assert_eq!(a * b, Complex64::new(-4.0, -5.5));
        assert_eq!(-a, Complex64::new(-1.0, -2.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(1.3, -0.7);
        let b = Complex64::new(-2.1, 0.4);
        let q = (a * b) / b;
        assert!((q.re - a.re).abs() < EPS && (q.im - a.im).abs() < EPS);
    }

    #[test]
    fn i_squares_to_minus_one() {
        let m = Complex64::i() * Complex64::i();
        assert_eq!(m, Complex64::new(-1.0, 0.0));
    }

    #[test]
    fn conj_and_norm() {
        let a = Complex64::new(3.0, 4.0);
        assert_eq!(a.conj(), Complex64::new(3.0, -4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        let p = a * a.conj();
        assert!((p.re - 25.0).abs() < EPS && p.im.abs() < EPS);
    }

    #[test]
    fn polar_roundtrip() {
        let a = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!((a.abs() - 2.0).abs() < EPS);
        assert!((a.arg() - std::f64::consts::FRAC_PI_3).abs() < EPS);
        let unit = Complex64::cis(1.234);
        assert!((unit.abs() - 1.0).abs() < EPS);
    }

    #[test]
    fn assign_ops() {
        let mut a = Complex64::one();
        a += Complex64::i();
        a -= Complex64::new(0.5, 0.0);
        a *= Complex64::new(2.0, 0.0);
        assert_eq!(a, Complex64::new(1.0, 2.0));
        assert_eq!(Complex64::from(2.5), Complex64::new(2.5, 0.0));
    }
}
