//! Reference DFT and the any-length dispatcher.

use crate::bluestein;
use crate::complex::Complex64;
use crate::fft::{self, Direction};

/// Naive O(n²) DFT — the correctness oracle for the fast transforms.
pub fn dft_naive(signal: &[Complex64], dir: Direction) -> Vec<Complex64> {
    let n = signal.len();
    if n == 0 {
        return Vec::new();
    }
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut out = vec![Complex64::zero(); n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex64::zero();
        for (t, &x) in signal.iter().enumerate() {
            let ang = sign * std::f64::consts::TAU * (k as f64) * (t as f64) / n as f64;
            acc += x * Complex64::cis(ang);
        }
        *o = acc;
    }
    if dir == Direction::Inverse {
        let inv = 1.0 / n as f64;
        for v in out.iter_mut() {
            *v = v.scale(inv);
        }
    }
    out
}

/// FFT for *any* length: radix-2 when the length is a power of two,
/// Bluestein's chirp-z algorithm otherwise. O(n log n) in both cases.
pub fn fft_any(signal: &[Complex64], dir: Direction) -> Vec<Complex64> {
    let n = signal.len();
    if n <= 1 {
        return signal.to_vec();
    }
    if fft::is_power_of_two(n) {
        let mut buf = signal.to_vec();
        fft::fft_in_place(&mut buf, dir);
        buf
    } else {
        bluestein::bluestein(signal, dir)
    }
}

/// Forward transform of a real signal of any length.
pub fn fft_any_real(signal: &[f64]) -> Vec<Complex64> {
    let buf: Vec<Complex64> = signal.iter().map(|&x| Complex64::new(x, 0.0)).collect();
    fft_any(&buf, Direction::Forward)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex64], b: &[Complex64], eps: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x.re - y.re).abs() < eps && (x.im - y.im).abs() < eps,
                "bin {i}: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn naive_inverse_roundtrip() {
        let signal: Vec<Complex64> = (0..12)
            .map(|t| Complex64::new(t as f64 * 0.5, (t as f64).cos()))
            .collect();
        let spec = dft_naive(&signal, Direction::Forward);
        let back = dft_naive(&spec, Direction::Inverse);
        assert_close(&back, &signal, 1e-10);
    }

    #[test]
    fn fft_any_matches_naive_for_awkward_lengths() {
        for &n in &[2usize, 3, 5, 7, 12, 15, 17, 33, 100] {
            let signal: Vec<Complex64> = (0..n)
                .map(|t| Complex64::new((t as f64 * 1.3).sin(), (t as f64 * 0.9).cos()))
                .collect();
            let fast = fft_any(&signal, Direction::Forward);
            let slow = dft_naive(&signal, Direction::Forward);
            assert_close(&fast, &slow, 1e-8);
            let back = fft_any(&fast, Direction::Inverse);
            assert_close(&back, &signal, 1e-8);
        }
    }

    #[test]
    fn fft_any_real_dc_component_is_sum() {
        let signal = [1.0, 2.0, 3.0, 4.0, 5.0];
        let spec = fft_any_real(&signal);
        assert!((spec[0].re - 15.0).abs() < 1e-9);
        assert!(spec[0].im.abs() < 1e-9);
    }

    #[test]
    fn real_signal_spectrum_is_hermitian() {
        let signal = [0.3, -1.0, 2.2, 0.7, -0.4, 1.1, 0.0];
        let spec = fft_any_real(&signal);
        let n = spec.len();
        for k in 1..n {
            let a = spec[k];
            let b = spec[n - k].conj();
            assert!((a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn degenerate_lengths() {
        assert!(fft_any(&[], Direction::Forward).is_empty());
        let one = [Complex64::new(4.2, -1.0)];
        assert_eq!(fft_any(&one, Direction::Forward), one.to_vec());
    }
}
