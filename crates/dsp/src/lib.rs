//! # dsp — signal-processing substrate (from scratch)
//!
//! Everything spectral that Tomborg and the frequency-transform baselines
//! need, with no external numeric dependencies:
//!
//! * [`complex`] — a minimal `Complex64`;
//! * [`fft`] — iterative radix-2 Cooley–Tukey FFT;
//! * [`bluestein`] — chirp-z FFT for arbitrary lengths;
//! * [`dft`] — naive reference DFT and the `fft_any` dispatcher;
//! * [`real_fourier`] — the paper's *real-valued inverse DFT*: an
//!   orthonormal map between ℝⁿ time series and ℝⁿ real Fourier
//!   coefficients, so distances are preserved exactly (Parseval) — the
//!   property step (2) of Tomborg relies on;
//! * [`projection`] — time-indexed ±1 random projections (the ParCorr
//!   sketch primitive, incrementally updatable across sliding windows).

pub mod bluestein;
pub mod complex;
pub mod dft;
pub mod fft;
pub mod projection;
pub mod real_fourier;

pub use complex::Complex64;
