//! Time-indexed random projections — the ParCorr sketch primitive.
//!
//! ParCorr [Yagoubi et al., DMKD 2018] sketches each sliding window with a
//! random ±1 projection whose columns are indexed by *absolute time*, so a
//! window slide updates the sketch incrementally: subtract the leaving
//! terms, add the entering terms. Because z-normalisation changes with the
//! window, the incremental state tracks the *raw* projections plus the
//! window sums, and normalises lazily:
//!
//! `sketch_r = (Σ_t R[r,t]·x_t − mean·Σ_t R[r,t]) / (std·√d)`
//!
//! For z-normalised windows `x̂, ŷ` of length `l`, `corr = ⟨x̂, ŷ⟩ / l`, and
//! the Johnson–Lindenstrauss property gives `⟨sketch_x, sketch_y⟩ ≈ ⟨x̂, ŷ⟩/l`
//! with the scaling chosen here.

/// A ±1 random projection with columns indexed by absolute time, generated
/// on the fly from a seed (nothing is materialised).
#[derive(Debug, Clone, Copy)]
pub struct TimeIndexedProjection {
    /// Number of sketch dimensions `d`.
    pub dim: usize,
    seed: u64,
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TimeIndexedProjection {
    /// A projection with `dim` rows derived from `seed`.
    pub fn new(dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "projection dimension must be positive");
        Self { dim, seed }
    }

    /// The ±1 entry `R[row, t]`.
    #[inline]
    pub fn entry(&self, row: usize, t: usize) -> f64 {
        let h = splitmix64(
            self.seed
                ^ (row as u64).wrapping_mul(0xA076_1D64_78BD_642F)
                ^ (t as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB),
        );
        if h & 1 == 0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Sketch of the z-normalised window `x[t0 .. t0+len)` computed from
    /// scratch (no incremental state). Returns `None` when the window has
    /// zero variance.
    pub fn sketch_window(&self, series: &[f64], t0: usize, len: usize) -> Option<Vec<f64>> {
        let state = SlidingSketch::init(*self, series, t0, len);
        state.normalized()
    }

    /// Estimate `corr(x, y)` from two sketches of z-normalised windows of
    /// length `len`.
    pub fn estimate_correlation(sx: &[f64], sy: &[f64], len: usize) -> f64 {
        debug_assert_eq!(sx.len(), sy.len());
        let dot: f64 = kernel::dot(sx, sy);
        (dot / len as f64).clamp(-1.0, 1.0)
    }
}

/// Incremental sketch state for one series and a sliding window.
#[derive(Debug, Clone)]
pub struct SlidingSketch {
    proj: TimeIndexedProjection,
    /// Current window start (absolute time index).
    pub t0: usize,
    /// Window length.
    pub len: usize,
    raw_dot: Vec<f64>,
    row_sum: Vec<f64>,
    sum: f64,
    sum_sq: f64,
}

impl SlidingSketch {
    /// Build the state for the window `series[t0 .. t0+len)`.
    ///
    /// # Panics
    /// Panics when the window exceeds the series.
    pub fn init(proj: TimeIndexedProjection, series: &[f64], t0: usize, len: usize) -> Self {
        assert!(t0 + len <= series.len(), "window out of range");
        assert!(len >= 2, "window must contain at least 2 points");
        let mut raw_dot = vec![0.0; proj.dim];
        let mut row_sum = vec![0.0; proj.dim];
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for (off, &x) in series[t0..t0 + len].iter().enumerate() {
            let t = t0 + off;
            sum += x; // lint:allow(float-reduction-outside-kernel) -- incremental sliding state: init and slide share one sequential update order so a slid window equals a fresh build exactly
            sum_sq += x * x; // lint:allow(float-reduction-outside-kernel) -- incremental sliding state: init and slide share one sequential update order so a slid window equals a fresh build exactly
            for r in 0..proj.dim {
                let e = proj.entry(r, t);
                raw_dot[r] += e * x;
                row_sum[r] += e;
            }
        }
        Self {
            proj,
            t0,
            len,
            raw_dot,
            row_sum,
            sum,
            sum_sq,
        }
    }

    /// Slide the window to start at `new_t0 >= t0`, updating incrementally
    /// in O(dim · step) rather than O(dim · len).
    ///
    /// # Panics
    /// Panics when the new window exceeds the series or moves backwards.
    pub fn advance(&mut self, series: &[f64], new_t0: usize) {
        assert!(new_t0 >= self.t0, "sliding sketch cannot move backwards");
        assert!(new_t0 + self.len <= series.len(), "window out of range");
        if new_t0 == self.t0 {
            return;
        }
        let step = new_t0 - self.t0;
        if step >= self.len {
            // Disjoint windows: rebuild is cheaper and exact.
            *self = Self::init(self.proj, series, new_t0, self.len);
            return;
        }
        // Remove leaving points, add entering points. (`t` is the global
        // time index — it seeds `entry(r, t)` — so an indexed loop it is.)
        #[allow(clippy::needless_range_loop)]
        for t in self.t0..new_t0 {
            let x = series[t];
            self.sum -= x;
            self.sum_sq -= x * x;
            for r in 0..self.proj.dim {
                let e = self.proj.entry(r, t);
                self.raw_dot[r] -= e * x;
                self.row_sum[r] -= e;
            }
        }
        #[allow(clippy::needless_range_loop)]
        for t in self.t0 + self.len..new_t0 + self.len {
            let x = series[t];
            self.sum += x; // lint:allow(float-reduction-outside-kernel) -- incremental sliding state: init and slide share one sequential update order so a slid window equals a fresh build exactly
            self.sum_sq += x * x; // lint:allow(float-reduction-outside-kernel) -- incremental sliding state: init and slide share one sequential update order so a slid window equals a fresh build exactly
            for r in 0..self.proj.dim {
                let e = self.proj.entry(r, t);
                self.raw_dot[r] += e * x;
                self.row_sum[r] += e;
            }
        }
        self.t0 = new_t0;
    }

    /// The normalised sketch of the current window, or `None` when the
    /// window has (numerically) zero variance.
    pub fn normalized(&self) -> Option<Vec<f64>> {
        let n = self.len as f64;
        let mean = self.sum / n;
        let var = (self.sum_sq / n - mean * mean).max(0.0);
        if var <= 1e-24 {
            return None;
        }
        let inv = 1.0 / (var.sqrt() * (self.proj.dim as f64).sqrt());
        Some(
            self.raw_dot
                .iter()
                .zip(&self.row_sum)
                .map(|(&d, &s)| (d - mean * s) * inv)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn series(len: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = 0.0;
        (0..len)
            .map(|_| {
                x = 0.9 * x + rng.gen::<f64>() - 0.5;
                x
            })
            .collect()
    }

    #[test]
    fn entries_are_deterministic_signs() {
        let p = TimeIndexedProjection::new(8, 42);
        for r in 0..8 {
            for t in 0..100 {
                let e = p.entry(r, t);
                assert!(e == 1.0 || e == -1.0);
                assert_eq!(e, p.entry(r, t));
            }
        }
        // A different seed flips a decent fraction of entries.
        let q = TimeIndexedProjection::new(8, 43);
        let diff = (0..800)
            .filter(|&i| p.entry(i / 100, i % 100) != q.entry(i / 100, i % 100))
            .count();
        assert!(diff > 200, "only {diff} of 800 entries differ");
    }

    #[test]
    fn incremental_advance_matches_rebuild() {
        let x = series(500, 1);
        let p = TimeIndexedProjection::new(16, 7);
        let mut inc = SlidingSketch::init(p, &x, 0, 100);
        for t0 in [1usize, 5, 30, 31, 95, 200, 400] {
            inc.advance(&x, t0);
            let fresh = SlidingSketch::init(p, &x, t0, 100);
            let a = inc.normalized().unwrap();
            let b = fresh.normalized().unwrap();
            for (u, v) in a.iter().zip(&b) {
                assert!((u - v).abs() < 1e-8, "t0={t0}: {u} vs {v}");
            }
        }
    }

    #[test]
    fn disjoint_advance_rebuilds() {
        let x = series(500, 2);
        let p = TimeIndexedProjection::new(8, 3);
        let mut inc = SlidingSketch::init(p, &x, 0, 50);
        inc.advance(&x, 300); // step > len
        let fresh = SlidingSketch::init(p, &x, 300, 50);
        assert_eq!(inc.normalized().unwrap(), fresh.normalized().unwrap());
    }

    #[test]
    fn correlation_estimate_is_accurate_for_high_dim() {
        // JL: with d = 512 the estimate should be within ~0.1 of truth.
        let n = 256;
        let mut rng = StdRng::seed_from_u64(9);
        let x: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
        let rho = 0.8;
        let y: Vec<f64> = x
            .iter()
            .map(|&v| rho * v + (1.0 - rho * rho).sqrt() * (rng.gen::<f64>() - 0.5))
            .collect();
        let exact = {
            let mx = x.iter().sum::<f64>() / n as f64;
            let my = y.iter().sum::<f64>() / n as f64;
            let cov: f64 = x.iter().zip(&y).map(|(a, b)| (a - mx) * (b - my)).sum();
            let vx: f64 = x.iter().map(|a| (a - mx) * (a - mx)).sum();
            let vy: f64 = y.iter().map(|b| (b - my) * (b - my)).sum();
            cov / (vx * vy).sqrt()
        };
        let p = TimeIndexedProjection::new(512, 11);
        let sx = p.sketch_window(&x, 0, n).unwrap();
        let sy = p.sketch_window(&y, 0, n).unwrap();
        let est = TimeIndexedProjection::estimate_correlation(&sx, &sy, n);
        assert!((est - exact).abs() < 0.12, "exact {exact}, estimated {est}");
    }

    #[test]
    fn self_correlation_estimates_near_one() {
        let x = series(300, 5);
        let p = TimeIndexedProjection::new(256, 13);
        let s = p.sketch_window(&x, 10, 128).unwrap();
        let est = TimeIndexedProjection::estimate_correlation(&s, &s, 128);
        assert!(est > 0.8, "self-estimate {est}");
    }

    #[test]
    fn zero_variance_window_is_none() {
        let x = vec![3.0; 100];
        let p = TimeIndexedProjection::new(8, 1);
        assert!(p.sketch_window(&x, 0, 50).is_none());
    }

    #[test]
    #[should_panic(expected = "cannot move backwards")]
    fn backwards_advance_panics() {
        let x = series(100, 1);
        let p = TimeIndexedProjection::new(4, 1);
        let mut s = SlidingSketch::init(p, &x, 10, 20);
        s.advance(&x, 5);
    }

    #[test]
    #[should_panic(expected = "window out of range")]
    fn overlong_window_panics() {
        let x = series(100, 1);
        let p = TimeIndexedProjection::new(4, 1);
        SlidingSketch::init(p, &x, 90, 20);
    }
}
