//! The paper's *real-valued inverse DFT*: an orthonormal real Fourier basis.
//!
//! Tomborg step (2) generates series in frequency space and relies on the
//! fact that "DFT preserves the distance between coefficients and the
//! original time series"; step (3) needs an inverse transform that maps a
//! *real* coefficient vector to a *real* series (the classical inverse DFT
//! maps complex to complex). The paper's "real-value variant" is realised
//! here as the orthonormal real Fourier basis of ℝⁿ:
//!
//! * `u_0(t) = 1/√n`,
//! * `u_{2k−1}(t) = √(2/n)·cos(2πkt/n)`, `u_{2k}(t) = √(2/n)·sin(2πkt/n)`
//!   for `k = 1 … ⌈n/2⌉−1`,
//! * for even `n`, `u_{n−1}(t) = (−1)^t/√n` (the Nyquist row).
//!
//! The basis is orthonormal, so both directions preserve inner products and
//! distances *exactly* (Parseval) — property-tested below. Forward and
//! inverse are computed in O(n log n) through the complex FFT.

use crate::complex::Complex64;
use crate::dft::fft_any;
use crate::fft::Direction;

/// Forward transform: real series → real Fourier coefficients
/// (orthonormal, same length).
pub fn forward(signal: &[f64]) -> Vec<f64> {
    let n = signal.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![signal[0]];
    }
    let buf: Vec<Complex64> = signal.iter().map(|&x| Complex64::new(x, 0.0)).collect();
    let spec = fft_any(&buf, Direction::Forward);

    let mut out = vec![0.0; n];
    let sqrt_n = (n as f64).sqrt();
    let sqrt_half = (n as f64 / 2.0).sqrt();
    out[0] = spec[0].re / sqrt_n;
    let k_max = (n - 1) / 2;
    for k in 1..=k_max {
        // Σ x cos = Re X_k, Σ x sin = −Im X_k.
        out[2 * k - 1] = spec[k].re / sqrt_half;
        out[2 * k] = -spec[k].im / sqrt_half;
    }
    if n.is_multiple_of(2) {
        out[n - 1] = spec[n / 2].re / sqrt_n;
    }
    out
}

/// Inverse transform: real Fourier coefficients → real series.
///
/// This is the paper's real-valued inverse DFT — it never leaves ℝⁿ.
pub fn inverse(coeffs: &[f64]) -> Vec<f64> {
    let n = coeffs.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![coeffs[0]];
    }
    let sqrt_n = (n as f64).sqrt();
    let sqrt_half = (n as f64 / 2.0).sqrt();
    let mut spec = vec![Complex64::zero(); n];
    spec[0] = Complex64::new(coeffs[0] * sqrt_n, 0.0);
    let k_max = (n - 1) / 2;
    for k in 1..=k_max {
        let re = coeffs[2 * k - 1] * sqrt_half;
        let im = -coeffs[2 * k] * sqrt_half;
        spec[k] = Complex64::new(re, im);
        spec[n - k] = Complex64::new(re, -im);
    }
    if n.is_multiple_of(2) {
        spec[n / 2] = Complex64::new(coeffs[n - 1] * sqrt_n, 0.0);
    }
    let time = fft_any(&spec, Direction::Inverse);
    time.into_iter().map(|c| c.re).collect()
}

/// Naive O(n²) forward transform — the correctness oracle for [`forward`].
pub fn forward_naive(signal: &[f64]) -> Vec<f64> {
    let n = signal.len();
    let mut out = vec![0.0; n];
    if n == 0 {
        return out;
    }
    let nf = n as f64;
    for (c, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (t, &x) in signal.iter().enumerate() {
            acc += x * basis_value(n, c, t); // lint:allow(float-reduction-outside-kernel) -- naive O(n^2) oracle, deliberately independent of the kernels it checks
        }
        *o = acc;
        let _ = nf;
    }
    out
}

/// Naive O(n²) inverse transform — the correctness oracle for [`inverse`].
pub fn inverse_naive(coeffs: &[f64]) -> Vec<f64> {
    let n = coeffs.len();
    let mut out = vec![0.0; n];
    for (t, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (c, &a) in coeffs.iter().enumerate() {
            acc += a * basis_value(n, c, t); // lint:allow(float-reduction-outside-kernel) -- naive O(n^2) oracle, deliberately independent of the kernels it checks
        }
        *o = acc;
    }
    out
}

/// Value of orthonormal basis row `c` at time `t` for length `n`.
pub fn basis_value(n: usize, c: usize, t: usize) -> f64 {
    debug_assert!(c < n && t < n);
    let nf = n as f64;
    if c == 0 {
        return 1.0 / nf.sqrt();
    }
    if n.is_multiple_of(2) && c == n - 1 {
        return if t.is_multiple_of(2) { 1.0 } else { -1.0 } / nf.sqrt();
    }
    let k = c.div_ceil(2); // c = 2k−1 → cos, c = 2k → sin
    let ang = std::f64::consts::TAU * (k * t) as f64 / nf;
    let scale = (2.0 / nf).sqrt();
    if c % 2 == 1 {
        scale * ang.cos()
    } else {
        scale * ang.sin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], eps: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < eps, "index {i}: {x} vs {y}");
        }
    }

    fn test_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| (t as f64 * 0.37).sin() + 0.5 * (t as f64 * 1.7).cos() + 0.1 * t as f64)
            .collect()
    }

    #[test]
    fn fast_matches_naive_both_directions() {
        for &n in &[1usize, 2, 3, 4, 5, 8, 9, 16, 17, 30, 31] {
            let x = test_signal(n);
            assert_close(&forward(&x), &forward_naive(&x), 1e-9);
            let a = forward(&x);
            assert_close(&inverse(&a), &inverse_naive(&a), 1e-9);
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        for &n in &[2usize, 3, 7, 12, 64, 100] {
            let x = test_signal(n);
            let back = inverse(&forward(&x));
            assert_close(&back, &x, 1e-9);
            // And the other composition order.
            let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
            let fwd = forward(&inverse(&a));
            assert_close(&fwd, &a, 1e-9);
        }
    }

    #[test]
    fn basis_is_orthonormal() {
        for &n in &[4usize, 5, 8, 9] {
            for c1 in 0..n {
                for c2 in 0..n {
                    let dot: f64 = (0..n)
                        .map(|t| basis_value(n, c1, t) * basis_value(n, c2, t))
                        .sum();
                    let expected = if c1 == c2 { 1.0 } else { 0.0 };
                    assert!(
                        (dot - expected).abs() < 1e-10,
                        "n={n} ⟨u{c1}, u{c2}⟩ = {dot}"
                    );
                }
            }
        }
    }

    #[test]
    fn parseval_distances_preserved() {
        // The property Tomborg step (2) depends on.
        for &n in &[6usize, 13, 32] {
            let x = test_signal(n);
            let y: Vec<f64> = (0..n).map(|t| (t as f64 * 0.91).cos() - 0.2).collect();
            let fx = forward(&x);
            let fy = forward(&y);
            let d_time: f64 = x.iter().zip(&y).map(|(a, b)| (a - b) * (a - b)).sum();
            let d_freq: f64 = fx.iter().zip(&fy).map(|(a, b)| (a - b) * (a - b)).sum();
            assert!(
                (d_time - d_freq).abs() < 1e-9,
                "n={n}: {d_time} vs {d_freq}"
            );
            // Inner products too.
            let ip_time: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            let ip_freq: f64 = fx.iter().zip(&fy).map(|(a, b)| a * b).sum();
            assert!((ip_time - ip_freq).abs() < 1e-9);
        }
    }

    #[test]
    fn output_is_always_real_from_real_coefficients() {
        // Feed arbitrary real coefficient vectors — the inverse must be a
        // real series whose forward transform returns the coefficients.
        let coeffs = vec![0.5, -1.2, 3.3, 0.0, 2.2, -0.7, 1.05];
        let x = inverse(&coeffs);
        assert_eq!(x.len(), coeffs.len());
        assert!(x.iter().all(|v| v.is_finite()));
        assert_close(&forward(&x), &coeffs, 1e-9);
    }

    #[test]
    fn dc_coefficient_is_scaled_mean() {
        let x = vec![2.0; 16];
        let a = forward(&x);
        assert!((a[0] - 2.0 * 4.0).abs() < 1e-12); // 2·√16
        for &c in &a[1..] {
            assert!(c.abs() < 1e-10);
        }
    }

    #[test]
    fn nyquist_row_even_length_only() {
        let x: Vec<f64> = (0..8)
            .map(|t| if t % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let a = forward(&x);
        // Alternating signal is exactly the Nyquist basis row times √8.
        assert!((a[7] - 8.0f64.sqrt()).abs() < 1e-10);
        for &c in &a[..7] {
            assert!(c.abs() < 1e-10);
        }
    }
}
