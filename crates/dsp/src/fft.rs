//! Iterative radix-2 Cooley–Tukey FFT.
//!
//! Sign convention: the *forward* transform computes
//! `X_k = Σ_t x_t · e^{−2πi·kt/n}` and the *inverse* transform divides by
//! `n`, so `inverse(forward(x)) == x`.

use crate::complex::Complex64;

/// Whether the transform is forward or inverse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `e^{−2πi·kt/n}` kernel.
    Forward,
    /// `e^{+2πi·kt/n}` kernel with the `1/n` normalisation.
    Inverse,
}

/// Returns true when `n` is a power of two (and nonzero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Smallest power of two `>= n`.
pub fn next_power_of_two(n: usize) -> usize {
    n.next_power_of_two()
}

/// In-place radix-2 FFT.
///
/// # Panics
/// Panics when `data.len()` is not a power of two — callers that need
/// arbitrary lengths should use [`crate::dft::fft_any`].
pub fn fft_in_place(data: &mut [Complex64], dir: Direction) {
    let n = data.len();
    assert!(
        is_power_of_two(n),
        "radix-2 FFT requires power-of-two length, got {n}"
    );
    if n == 1 {
        return;
    }

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }

    // Butterflies.
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let wlen = Complex64::cis(ang);
        let half = len / 2;
        let mut i = 0;
        while i < n {
            let mut w = Complex64::one();
            for k in 0..half {
                let u = data[i + k];
                let v = data[i + k + half] * w;
                data[i + k] = u + v;
                data[i + k + half] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }

    if dir == Direction::Inverse {
        let inv = 1.0 / n as f64;
        for v in data.iter_mut() {
            *v = v.scale(inv);
        }
    }
}

/// Forward FFT of a real signal (power-of-two length), returning the full
/// complex spectrum.
pub fn fft_real(signal: &[f64]) -> Vec<Complex64> {
    let mut buf: Vec<Complex64> = signal.iter().map(|&x| Complex64::new(x, 0.0)).collect();
    fft_in_place(&mut buf, Direction::Forward);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft_naive;

    fn assert_close(a: &[Complex64], b: &[Complex64], eps: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x.re - y.re).abs() < eps && (x.im - y.im).abs() < eps,
                "bin {i}: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn matches_naive_dft() {
        for &n in &[1usize, 2, 4, 8, 16, 64] {
            let signal: Vec<Complex64> = (0..n)
                .map(|t| Complex64::new((t as f64 * 0.7).sin(), (t as f64 * 0.3).cos()))
                .collect();
            let mut fast = signal.clone();
            fft_in_place(&mut fast, Direction::Forward);
            let slow = dft_naive(&signal, Direction::Forward);
            assert_close(&fast, &slow, 1e-9);
        }
    }

    #[test]
    fn forward_then_inverse_is_identity() {
        let signal: Vec<Complex64> = (0..128)
            .map(|t| Complex64::new((t as f64).sin(), (t as f64 * 2.0).cos()))
            .collect();
        let mut buf = signal.clone();
        fft_in_place(&mut buf, Direction::Forward);
        fft_in_place(&mut buf, Direction::Inverse);
        assert_close(&buf, &signal, 1e-10);
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut buf = vec![Complex64::zero(); 8];
        buf[0] = Complex64::one();
        fft_in_place(&mut buf, Direction::Forward);
        for v in &buf {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 32;
        let k = 5;
        let signal: Vec<f64> = (0..n)
            .map(|t| (std::f64::consts::TAU * k as f64 * t as f64 / n as f64).cos())
            .collect();
        let spec = fft_real(&signal);
        // cos tone of frequency k splits into bins k and n−k, each n/2.
        for (bin, v) in spec.iter().enumerate() {
            let expected = if bin == k || bin == n - k {
                n as f64 / 2.0
            } else {
                0.0
            };
            assert!(
                (v.abs() - expected).abs() < 1e-9,
                "bin {bin}: |X| = {}",
                v.abs()
            );
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let signal: Vec<f64> = (0..64).map(|t| ((t * t) as f64 * 0.1).sin()).collect();
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let spec = fft_real(&signal);
        let freq_energy: f64 = spec.iter().map(|c| c.norm_sqr()).sum::<f64>() / 64.0;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn linearity() {
        let n = 16;
        let a: Vec<Complex64> = (0..n).map(|t| Complex64::new(t as f64, 0.0)).collect();
        let b: Vec<Complex64> = (0..n)
            .map(|t| Complex64::new(0.0, (t as f64).cos()))
            .collect();
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fs = sum.clone();
        fft_in_place(&mut fa, Direction::Forward);
        fft_in_place(&mut fb, Direction::Forward);
        fft_in_place(&mut fs, Direction::Forward);
        let combined: Vec<Complex64> = fa.iter().zip(&fb).map(|(&x, &y)| x + y).collect();
        assert_close(&fs, &combined, 1e-10);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two() {
        let mut buf = vec![Complex64::zero(); 6];
        fft_in_place(&mut buf, Direction::Forward);
    }

    #[test]
    fn power_of_two_helpers() {
        assert!(is_power_of_two(1));
        assert!(is_power_of_two(64));
        assert!(!is_power_of_two(0));
        assert!(!is_power_of_two(48));
        assert_eq!(next_power_of_two(48), 64);
        assert_eq!(next_power_of_two(64), 64);
    }
}
