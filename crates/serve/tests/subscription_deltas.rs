//! Subscription deltas reassemble the full matrices, bit-exactly.
//!
//! A subscription never re-emits whole matrices: each closed window
//! arrives once, as its edge list. The contract proved here:
//!
//! * reassembling the deltas window-by-window reproduces the session's
//!   own query answer **and** a fresh one-shot run, bit for bit;
//! * a mid-stream disconnect loses nothing — the re-subscribe ack says
//!   which window deltas resume at, and a query back-fills the gap with
//!   the same bit-exact edges;
//! * a subscriber that vanishes without unsubscribing is shed by the
//!   daemon and never fails, poisons, or stalls the session.

use dangoron::{Dangoron, DangoronConfig};
use serve::{Registry, ServeClient};
use sketch::output::Edge;
use sketch::{SlidingQuery, ThresholdedMatrix};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;
use tsdata::{generators, TimeSeriesMatrix};

const N: usize = 8;
const TOTAL: usize = 500;
const WINDOW: usize = 80;
const STEP: usize = 20;
const BETA: f64 = 0.7;

fn cfg() -> DangoronConfig {
    DangoronConfig {
        basic_window: 20,
        ..Default::default()
    }
}

fn dataset() -> TimeSeriesMatrix {
    generators::clustered_matrix(N, TOTAL, 2, 0.5, 13).expect("dataset")
}

fn fresh_matrices(full: &TimeSeriesMatrix, end: usize) -> Vec<ThresholdedMatrix> {
    Dangoron::new(cfg())
        .expect("config")
        .execute(
            &full.slice_columns(0, end).expect("prefix"),
            SlidingQuery {
                start: 0,
                end,
                window: WINDOW,
                step: STEP,
                threshold: BETA,
            },
        )
        .expect("one-shot run")
        .matrices
}

fn assert_bitwise(a: &ThresholdedMatrix, b: &ThresholdedMatrix, w: usize) {
    assert_eq!(a.n_edges(), b.n_edges(), "window {w}: edge count");
    for (ea, eb) in a.edges().iter().zip(b.edges()) {
        assert_eq!((ea.i, ea.j), (eb.i, eb.j), "window {w}: edge endpoints");
        assert_eq!(
            ea.value.to_bits(),
            eb.value.to_bits(),
            "window {w}: edge ({}, {}) value not bit-identical",
            ea.i,
            ea.j
        );
    }
}

fn matrix_of(edges: Vec<Edge>) -> ThresholdedMatrix {
    ThresholdedMatrix::from_sorted_edges(N, BETA, cfg().edge_rule, edges)
}

#[test]
fn reassembled_deltas_match_the_full_matrices_across_disconnect_and_reconnect() {
    let full = dataset();
    let addr = serve::spawn_local(Arc::new(Registry::new(None)), None)
        .expect("daemon")
        .to_string();
    let mut appender = ServeClient::connect(&addr, Duration::from_secs(10)).expect("connect");
    appender
        .open(
            "sub",
            &full.slice_columns(0, 100).expect("initial"),
            WINDOW,
            STEP,
            BETA,
            &cfg(),
        )
        .expect("open");

    // Phase 1: subscribe before anything is emitted.
    let mut sub = ServeClient::connect(&addr, Duration::from_secs(10)).expect("connect");
    let (sub_id, next) = sub.subscribe("sub").expect("subscribe");
    assert_eq!(next, 0, "nothing emitted yet");

    let mut collected: BTreeMap<usize, ThresholdedMatrix> = BTreeMap::new();
    let ack = appender
        .append("sub", &full.slice_columns(100, 260).expect("chunk"))
        .expect("append");
    assert_eq!(ack.windows_closed, 10, "windows complete at 260 columns");
    for _ in 0..ack.windows_closed {
        let d = sub.next_delta().expect("delta");
        assert_eq!(d.sub_id, sub_id);
        collected.insert(d.window, matrix_of(d.edges));
    }

    // Phase 2: the subscriber vanishes mid-stream, the appender keeps
    // going. The daemon sheds the dead sink; the append must still ack.
    sub.disconnect();
    let ack = appender
        .append("sub", &full.slice_columns(260, 380).expect("chunk"))
        .expect("append survives a dead subscriber");
    assert_eq!(ack.windows_closed, 6);

    // Phase 3: reconnect. The ack names the resume window; a query
    // back-fills the disconnect gap from the shared sketches.
    let mut sub = ServeClient::connect(&addr, Duration::from_secs(10)).expect("reconnect");
    let (_, next) = sub.subscribe("sub").expect("re-subscribe");
    assert_eq!(next, 16, "deltas resume after the missed drain");
    let backfill = sub.query("sub", WINDOW, STEP, BETA).expect("backfill");
    assert_eq!(backfill.covered_cols, 380);
    for (w, m) in backfill
        .matrices(N, BETA, cfg().edge_rule)
        .into_iter()
        .enumerate()
        .take(next)
        .skip(10)
    {
        collected.insert(w, m);
    }

    // Phase 4: the rest of the stream arrives as deltas again.
    let ack = appender
        .append("sub", &full.slice_columns(380, TOTAL).expect("chunk"))
        .expect("append");
    assert_eq!(ack.windows_closed, 6);
    for _ in 0..ack.windows_closed {
        let d = sub.next_delta().expect("delta");
        collected.insert(d.window, matrix_of(d.edges));
    }

    // The reassembled sequence covers every window exactly once and is
    // bit-identical to a fresh one-shot run over the whole stream.
    let fresh = fresh_matrices(&full, TOTAL);
    assert_eq!(fresh.len(), 22);
    assert_eq!(collected.len(), fresh.len(), "no window lost or duplicated");
    for (w, fresh_m) in fresh.iter().enumerate() {
        let got = collected.get(&w).expect("window present");
        assert_bitwise(got, fresh_m, w);
    }

    // And the resident session itself is still healthy and exact.
    let final_q = appender.query("sub", WINDOW, STEP, BETA).expect("query");
    let final_m = final_q.matrices(N, BETA, cfg().edge_rule);
    for (w, (a, b)) in final_m.iter().zip(&fresh).enumerate() {
        assert_bitwise(a, b, w);
    }
}

#[test]
fn deltas_carry_only_new_windows_never_reemitted_matrices() {
    let full = dataset();
    let addr = serve::spawn_local(Arc::new(Registry::new(None)), None)
        .expect("daemon")
        .to_string();
    let mut client = ServeClient::connect(&addr, Duration::from_secs(10)).expect("connect");
    client
        .open(
            "delta-only",
            &full.slice_columns(0, 100).expect("initial"),
            WINDOW,
            STEP,
            BETA,
            &cfg(),
        )
        .expect("open");
    client.subscribe("delta-only").expect("subscribe");
    let mut seen: Vec<usize> = Vec::new();
    for (from, to) in [(100, 200), (200, 300), (300, 400)] {
        let ack = client
            .append("delta-only", &full.slice_columns(from, to).expect("chunk"))
            .expect("append");
        for _ in 0..ack.windows_closed {
            seen.push(client.next_delta().expect("delta").window);
        }
    }
    let expected: Vec<usize> = (0..seen.len()).collect();
    assert_eq!(
        seen, expected,
        "each window index arrives exactly once, in order"
    );
}
