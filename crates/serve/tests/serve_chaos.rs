//! Seeded chaos storms over serve links.
//!
//! Clients speak the session protocol through [`dist::chaos`]'s
//! fault-injecting transport — links are killed mid-conversation, frames
//! delayed, duplicated, and truncated, all on a deterministic per-seed
//! schedule. The contract: the daemon sheds every damaged link with a
//! structured `ServeError` or an EOF — **never a panic, a poisoned
//! lock, or a wedged session** — and after each storm it still serves
//! bit-exact answers to clean clients, including on sessions the storm
//! touched.

use dangoron::{Dangoron, DangoronConfig};
use dist::chaos::{ChaosTransport, FaultPlan};
use dist::transport::{TcpTransport, Transport};
use serve::proto::{self, ServeMessage};
use serve::{Registry, ServeClient};
use sketch::SlidingQuery;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use tsdata::{generators, TimeSeriesMatrix};

const N: usize = 6;
const WINDOW: usize = 60;
const STEP: usize = 20;
const BETA: f64 = 0.7;

fn cfg() -> DangoronConfig {
    DangoronConfig {
        basic_window: 20,
        ..Default::default()
    }
}

/// Drives one storm link: handshake, open, appends, queries, all through
/// the chaos transport. Send errors (a killed link) just end the
/// conversation — that *is* the fault being injected.
fn storm_link(addr: &str, seed: u64, link: usize, full: &TimeSeriesMatrix) {
    let faults = FaultPlan::from_seed(seed).for_link(link);
    let stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(_) => return,
    };
    // Replies are read (with a short patience) purely to keep the socket
    // drained; the daemon's health is asserted by the clean pass after.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let inner = match TcpTransport::new(stream) {
        Ok(t) => Box::new(t) as Box<dyn Transport>,
        Err(_) => return,
    };
    let mut link_t = ChaosTransport::new(inner, faults);
    let mut reader = link_t.take_reader().expect("read half");

    let name = format!("storm-{seed}-{link}");
    let frames = [
        ServeMessage::Hello(dist::proto::Hello::local()),
        ServeMessage::Open {
            name: name.clone(),
            window: WINDOW,
            step: STEP,
            threshold: BETA,
            config: cfg(),
            data: full.slice_columns(0, 80).expect("initial"),
        },
        ServeMessage::Append {
            name: name.clone(),
            data: full.slice_columns(80, 160).expect("chunk"),
        },
        ServeMessage::Query {
            id: 1,
            name: name.clone(),
            window: WINDOW,
            step: STEP,
            threshold: BETA,
        },
        ServeMessage::Append {
            name: name.clone(),
            data: full.slice_columns(160, 240).expect("chunk"),
        },
        ServeMessage::Query {
            id: 2,
            name,
            window: 40,
            step: 20,
            threshold: 0.9,
        },
    ];
    for msg in &frames {
        if link_t.send(&proto::encode(msg)).is_err() {
            break; // the injected kill; nothing more to do on this link
        }
        // Drain whatever reply (or chaos-mangled silence) comes back.
        let _ = bytes::frame::read_from(&mut reader, proto::MAX_FRAME);
    }
    link_t.kill();
}

/// After the storm: the daemon must still open, append, query, and
/// answer bit-exactly, and the storm's sessions must either answer or
/// fail structurally.
fn verify_daemon_health(addr: &str, seed: u64, n_links: usize, full: &TimeSeriesMatrix) {
    let mut clean = ServeClient::connect(addr, Duration::from_secs(10)).expect("clean connect");
    // Storm sessions: whatever state the chaos left them in, the answer
    // is a QueryResult or a structured ServeError — the daemon is alive
    // to say so either way.
    for link in 0..n_links {
        let name = format!("storm-{seed}-{link}");
        match clean.query(&name, WINDOW, STEP, BETA) {
            Ok(reply) => {
                // A duplicated Append fault makes the session cover more
                // columns than the source stream holds — the daemon
                // dutifully absorbed the duplicate frame. The prefix is
                // then unreconstructable here; a well-formed answer is
                // the health signal.
                if reply.covered_cols > full.len() {
                    let expected = (reply.covered_cols - WINDOW) / STEP + 1;
                    assert_eq!(reply.n_windows, expected, "{name}: window count");
                    continue;
                }
                // The session survived undamaged: its answer must be
                // exact for its covered prefix.
                let fresh = Dangoron::new(cfg())
                    .expect("config")
                    .execute(
                        &full.slice_columns(0, reply.covered_cols).expect("prefix"),
                        SlidingQuery {
                            start: 0,
                            end: reply.covered_cols,
                            window: WINDOW,
                            step: STEP,
                            threshold: BETA,
                        },
                    )
                    .expect("one-shot");
                let mut fresh_edges = Vec::new();
                for (w, m) in fresh.matrices.iter().enumerate() {
                    fresh_edges.extend(m.edges().iter().map(|e| (w as u32, *e)));
                }
                assert_eq!(reply.edges.len(), fresh_edges.len(), "{name}: edge count");
                for (a, b) in reply.edges.iter().zip(&fresh_edges) {
                    assert_eq!((a.0, a.1.i, a.1.j), (b.0, b.1.i, b.1.j), "{name}");
                    assert_eq!(a.1.value.to_bits(), b.1.value.to_bits(), "{name}");
                }
            }
            Err(e) => {
                // Structured failure only: a serve error, not a dead link.
                assert!(
                    e.to_string().contains("serve error"),
                    "{name}: expected a structured error, got: {e}"
                );
            }
        }
    }
    // A brand-new session on the same daemon: full round trip, bit-exact.
    let name = format!("clean-{seed}");
    clean
        .open(
            &name,
            &full.slice_columns(0, 80).expect("initial"),
            WINDOW,
            STEP,
            BETA,
            &cfg(),
        )
        .expect("open after the storm");
    clean
        .append(&name, &full.slice_columns(80, 240).expect("rest"))
        .expect("append after the storm");
    let reply = clean.query(&name, WINDOW, STEP, BETA).expect("query");
    assert_eq!(reply.covered_cols, 240);
    let fresh = Dangoron::new(cfg())
        .expect("config")
        .execute(
            &full.slice_columns(0, 240).expect("prefix"),
            SlidingQuery {
                start: 0,
                end: 240,
                window: WINDOW,
                step: STEP,
                threshold: BETA,
            },
        )
        .expect("one-shot");
    let n_fresh: usize = fresh.matrices.iter().map(|m| m.n_edges()).sum();
    assert_eq!(reply.edges.len(), n_fresh, "clean session is exact");
}

fn run_storm(seed: u64) {
    let full = generators::clustered_matrix(N, 240, 2, 0.5, seed).expect("dataset");
    let addr = serve::spawn_local(Arc::new(Registry::new(None)), None)
        .expect("daemon")
        .to_string();
    const LINKS: usize = 4;
    let threads: Vec<_> = (0..LINKS)
        .map(|link| {
            let addr = addr.clone();
            let full = full.clone();
            std::thread::spawn(move || storm_link(&addr, seed, link, &full))
        })
        .collect();
    for t in threads {
        t.join().expect("storm link thread must not panic");
    }
    verify_daemon_health(&addr, seed, LINKS, &full);
}

#[test]
fn seeded_storm_1_daemon_survives() {
    run_storm(1);
}

#[test]
fn seeded_storm_2_daemon_survives() {
    run_storm(2);
}

#[test]
fn seeded_storm_3_daemon_survives() {
    run_storm(3);
}
