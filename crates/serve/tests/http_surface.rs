//! The read-only HTTP surface answers with the daemon's own bits.
//!
//! * `/sessions/<name>/edges` must be byte-identical to what a
//!   [`ServeClient`] query reassembles — `to_temporal_json` round-trips
//!   `f64` exactly, so string equality is bitwise edge equality;
//! * hammering `/metrics`, `/stats.json`, and the edges route from four
//!   threads during an append/query interleaving must not change a
//!   single answered bit versus the same interleaving unscraped, and
//!   counters observed across scrapes never decrease.

use dangoron::DangoronConfig;
use serve::{Registry, ServeClient};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tsdata::{generators, TimeSeriesMatrix};

const N: usize = 8;
const TOTAL: usize = 400;
const WINDOW: usize = 80;
const STEP: usize = 20;
const BETA: f64 = 0.7;
const PATIENCE: Duration = Duration::from_secs(10);

fn cfg() -> DangoronConfig {
    DangoronConfig {
        basic_window: 20,
        ..Default::default()
    }
}

fn dataset() -> TimeSeriesMatrix {
    generators::clustered_matrix(N, TOTAL, 2, 0.5, 13).expect("dataset")
}

/// A daemon plus its metrics server with the edges route mounted.
fn daemon() -> (Arc<Registry>, String, obs::MetricsServer) {
    let registry = Arc::new(Registry::new(None));
    let addr = serve::spawn_local(Arc::clone(&registry), None).expect("spawn daemon");
    let srv = obs::MetricsServer::bind(
        "127.0.0.1:0",
        vec![obs::stages::global(), registry.obs_registry()],
        Some(serve::http::routes(Arc::clone(&registry))),
    )
    .expect("bind metrics server");
    (registry, addr.to_string(), srv)
}

fn http_get(addr: &str, path_query: &str) -> Option<(u16, String)> {
    let mut s = TcpStream::connect(addr).ok()?;
    s.set_read_timeout(Some(Duration::from_secs(10))).ok()?;
    s.write_all(format!("GET {path_query} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .ok()?;
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).ok()?;
    let text = String::from_utf8_lossy(&raw).into_owned();
    let status: u16 = text
        .lines()
        .next()?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()?;
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string())?;
    Some((status, body))
}

/// Retries over the scrape-slot cap: a 503 under load is back-pressure,
/// not an answer.
fn http_get_ok(addr: &str, path_query: &str) -> (u16, String) {
    let t0 = std::time::Instant::now();
    loop {
        match http_get(addr, path_query) {
            Some((503, _)) | None if t0.elapsed() < Duration::from_secs(10) => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Some(got) => return got,
            None => panic!("metrics server unreachable for 10 s"),
        }
    }
}

#[test]
fn edges_route_matches_serve_client_bitwise() {
    let (_registry, addr, srv) = daemon();
    let scrape = srv.addr().to_string();
    let data = dataset();

    let mut client = ServeClient::connect(&addr, PATIENCE).expect("connect");
    client
        .open("s", &data, WINDOW, STEP, BETA, &cfg())
        .expect("open");

    // Native parameters, defaulted by the route vs explicit in the client.
    let reply = client.query("s", WINDOW, STEP, BETA).expect("query");
    let expect = network::export::to_temporal_json(&reply.matrices(N, BETA, cfg().edge_rule));
    let (status, body) = http_get_ok(&scrape, "/sessions/s/edges");
    assert_eq!(status, 200);
    assert_eq!(body, expect, "HTTP edges differ from the client's bits");

    // Explicit non-native parameters on both sides.
    let reply = client.query("s", 60, 20, 0.5).expect("query");
    let expect = network::export::to_temporal_json(&reply.matrices(N, 0.5, cfg().edge_rule));
    let (status, body) = http_get_ok(&scrape, "/sessions/s/edges?window=60&step=20&threshold=0.5");
    assert_eq!(status, 200);
    assert_eq!(body, expect, "parameterised HTTP edges differ");

    // Error surface: unknown session and malformed parameters.
    assert_eq!(http_get_ok(&scrape, "/sessions/nope/edges").0, 404);
    assert_eq!(
        http_get_ok(&scrape, "/sessions/s/edges?window=banana").0,
        400
    );
    assert_eq!(http_get_ok(&scrape, "/sessions/s/edges?window=7").0, 400);
    client.disconnect();
}

#[test]
fn concurrent_scrapes_never_change_answered_bits() {
    let data = dataset();
    let chunk = TOTAL / 4;

    // Baseline: the same open/append/query interleaving, never scraped.
    let (_reg_base, addr_base, _srv_base) = daemon();
    let mut base = ServeClient::connect(&addr_base, PATIENCE).expect("connect");
    base.open(
        "s",
        &data.slice_columns(0, chunk).expect("prefix"),
        WINDOW,
        STEP,
        BETA,
        &cfg(),
    )
    .expect("open");
    let mut baseline = Vec::new();
    for k in 1..4 {
        base.append(
            "s",
            &data
                .slice_columns(k * chunk, (k + 1) * chunk)
                .expect("chunk"),
        )
        .expect("append");
        let reply = base.query("s", WINDOW, STEP, BETA).expect("query");
        baseline.push(network::export::to_temporal_json(&reply.matrices(
            N,
            BETA,
            cfg().edge_rule,
        )));
    }
    base.disconnect();

    // Scraped run: identical interleaving with 4 hammer threads.
    let (_registry, addr, srv) = daemon();
    let scrape = srv.addr().to_string();
    let mut client = ServeClient::connect(&addr, PATIENCE).expect("connect");
    client
        .open(
            "s",
            &data.slice_columns(0, chunk).expect("prefix"),
            WINDOW,
            STEP,
            BETA,
            &cfg(),
        )
        .expect("open");

    let stop = Arc::new(AtomicBool::new(false));
    let hammers: Vec<_> = (0..4)
        .map(|k| {
            let stop = Arc::clone(&stop);
            let scrape = scrape.clone();
            std::thread::spawn(move || {
                let path = match k {
                    0 => "/metrics",
                    1 => "/stats.json",
                    _ => "/sessions/s/edges",
                };
                let mut landed = 0u64;
                let mut last_appends = 0.0f64;
                while !stop.load(Ordering::Relaxed) {
                    let Some((status, body)) = http_get(&scrape, path) else {
                        continue;
                    };
                    if status != 200 {
                        continue; // 503 back-pressure under the hammer
                    }
                    landed += 1;
                    if path == "/metrics" {
                        let fams = obs::expo::parse_prometheus(&body)
                            .unwrap_or_else(|e| panic!("bad exposition: {e}"));
                        let appends = fams
                            .iter()
                            .flat_map(|f| &f.samples)
                            .find(|s| s.name == "dangoron_serve_appends_total")
                            .map(|s| s.value)
                            .unwrap_or(0.0);
                        assert!(
                            appends >= last_appends,
                            "appends counter went backwards: {last_appends} -> {appends}"
                        );
                        last_appends = appends;
                    }
                }
                landed
            })
        })
        .collect();

    let mut scraped = Vec::new();
    for k in 1..4 {
        client
            .append(
                "s",
                &data
                    .slice_columns(k * chunk, (k + 1) * chunk)
                    .expect("chunk"),
            )
            .expect("append");
        let reply = client.query("s", WINDOW, STEP, BETA).expect("query");
        scraped.push(network::export::to_temporal_json(&reply.matrices(
            N,
            BETA,
            cfg().edge_rule,
        )));
    }
    stop.store(true, Ordering::Relaxed);
    let landed: u64 = hammers.into_iter().map(|h| h.join().expect("hammer")).sum();
    client.disconnect();

    assert!(landed > 0, "the hammer never landed a scrape");
    assert_eq!(
        scraped, baseline,
        "concurrent scraping changed an answered query"
    );
}
