//! The resident session daemon.
//!
//! ```text
//! dangoron-serve --listen ADDR        # accept serve-protocol clients
//!          [--mem-budget-mb N]        # summed resident session bytes;
//!                                     # idle-LRU eviction + append
//!                                     # backpressure keep under it
//!          [--max-links N]            # exit after N links close (CI)
//!          [--metrics-addr ADDR]      # embedded HTTP: /metrics,
//!                                     # /stats.json, /sessions/*/edges
//! ```
//!
//! Each accepted link is served on its own thread; sessions are shared
//! across links by name, so one client can append while others query or
//! subscribe. See `crates/serve` for the protocol and the concurrency
//! model. With `--metrics-addr`, the daemon also serves read-only
//! telemetry over HTTP (`serve::http`, `docs/metrics.md`) — scrapes are
//! wait-free and never perturb session state.

use serve::Registry;
use std::net::TcpListener;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut listen: Option<String> = None;
    let mut mem_budget_mb: Option<u64> = None;
    let mut max_links: Option<u64> = None;
    let mut metrics_addr: Option<String> = None;
    let value = |args: &[String], k: usize, flag: &str| -> String {
        match args.get(k + 1) {
            Some(v) => v.clone(),
            None => {
                eprintln!("dangoron-serve: {flag} requires a value");
                std::process::exit(2);
            }
        }
    };
    let parse = |text: String, flag: &str| -> u64 {
        match text.parse() {
            Ok(v) => v,
            Err(e) => {
                eprintln!("dangoron-serve: bad {flag}: {e}");
                std::process::exit(2);
            }
        }
    };
    let mut k = 0;
    while k < args.len() {
        match args[k].as_str() {
            "--listen" => listen = Some(value(&args, k, "--listen")),
            "--mem-budget-mb" => {
                mem_budget_mb = Some(parse(value(&args, k, "--mem-budget-mb"), "--mem-budget-mb"))
            }
            "--max-links" => max_links = Some(parse(value(&args, k, "--max-links"), "--max-links")),
            "--metrics-addr" => metrics_addr = Some(value(&args, k, "--metrics-addr")),
            other => {
                eprintln!("dangoron-serve: unknown flag {other}");
                std::process::exit(2);
            }
        }
        k += 2;
    }
    let Some(addr) = listen else {
        eprintln!(
            "usage: dangoron-serve --listen ADDR [--mem-budget-mb N] [--max-links N] [--metrics-addr ADDR]"
        );
        std::process::exit(2);
    };
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("dangoron-serve: cannot listen on {addr}: {e}");
            std::process::exit(1);
        }
    };
    let budget = mem_budget_mb.map(|mb| (mb as usize) << 20);
    eprintln!(
        "dangoron-serve: listening on {addr} (budget: {})",
        match budget {
            Some(b) => format!("{b} bytes"),
            None => "unbounded".to_string(),
        }
    );
    let registry = Arc::new(Registry::new(budget));
    let _metrics_server = match &metrics_addr {
        Some(maddr) => {
            let mounts = vec![obs::stages::global(), registry.obs_registry()];
            let routes = serve::http::routes(Arc::clone(&registry));
            match obs::MetricsServer::bind(maddr, mounts, Some(routes)) {
                Ok(srv) => {
                    eprintln!("dangoron-serve: metrics on http://{}/metrics", srv.addr());
                    Some(srv)
                }
                Err(e) => {
                    eprintln!("dangoron-serve: cannot bind --metrics-addr {maddr}: {e}");
                    std::process::exit(2);
                }
            }
        }
        None => None,
    };
    if let Err(e) = serve::serve(listener, registry, max_links) {
        eprintln!("dangoron-serve: {e}");
        std::process::exit(1);
    }
}
