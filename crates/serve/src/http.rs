//! Read-only HTTP surface of the serve daemon.
//!
//! `dangoron-serve --metrics-addr` mounts this route handler into its
//! [`obs::MetricsServer`] next to `/metrics` and `/stats.json`:
//!
//! * `GET /sessions/<name>/edges?window=W[&step=S&threshold=T]` — answers
//!   an ad-hoc shared query against the named resident session and
//!   returns the per-window edge lists as JSON
//!   ([`network::export::to_temporal_json`]). Omitted parameters default
//!   to the session engine's native window/step/threshold. The JSON
//!   round-trips `f64` exactly, so the body is **bit-identical** to what
//!   a [`crate::client::ServeClient`] query reassembles — the HTTP
//!   surface is an observer, never a second answer path.
//!
//! Session names are used verbatim (no percent-decoding); names that
//! need URL escaping are not reachable over this surface. Unknown
//! sessions get 404, malformed parameters 400 — the handler never
//! panics and holds only a read lock for the duration of the walk.

use crate::server::Registry;
use obs::{Response, RouteHandler};
use std::sync::Arc;

/// Builds the serve daemon's extra-route handler over `registry`.
pub fn routes(registry: Arc<Registry>) -> RouteHandler {
    Arc::new(move |path, query| handle(&registry, path, query))
}

fn handle(registry: &Registry, path: &str, query: &str) -> Option<Response> {
    let rest = path.strip_prefix("/sessions/")?;
    let name = rest.strip_suffix("/edges")?;
    if name.is_empty() || name.contains('/') {
        return None;
    }
    let Some(slot) = registry.get(name) else {
        return Some(Response::text(404, &format!("no session '{name}'\n")));
    };

    let mut window = None;
    let mut step = None;
    let mut threshold = None;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, val) = match pair.split_once('=') {
            Some(kv) => kv,
            None => return Some(bad_param(pair, "expected key=value")),
        };
        match key {
            "window" => match val.parse::<usize>() {
                Ok(v) if v > 0 => window = Some(v),
                _ => return Some(bad_param(key, "expected a positive integer")),
            },
            "step" => match val.parse::<usize>() {
                Ok(v) if v > 0 => step = Some(v),
                _ => return Some(bad_param(key, "expected a positive integer")),
            },
            "threshold" => match val.parse::<f64>() {
                Ok(v) if v.is_finite() => threshold = Some(v),
                _ => return Some(bad_param(key, "expected a finite number")),
            },
            other => return Some(bad_param(other, "unknown parameter")),
        }
    }

    let t0 = std::time::Instant::now();
    let answer = slot.read_session(|session| {
        let engine = session.engine();
        let window = window.unwrap_or_else(|| engine.window());
        let step = step.unwrap_or_else(|| engine.step());
        let threshold = threshold.unwrap_or_else(|| engine.threshold());
        session.query(window, step, threshold)
    });
    registry
        .metrics()
        .query_us
        .observe(t0.elapsed().as_micros().min(u64::MAX as u128) as u64);

    match answer {
        Ok((_covered, result)) => {
            registry.metrics().queries.inc();
            Some(Response::json(network::export::to_temporal_json(
                &result.matrices,
            )))
        }
        Err(e) => Some(Response::text(400, &format!("bad query: {e}\n"))),
    }
}

fn bad_param(what: &str, why: &str) -> Response {
    Response::text(400, &format!("bad parameter '{what}': {why}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdata::generators;

    fn registry_with_session(name: &str) -> Arc<Registry> {
        let registry = Arc::new(Registry::new(None));
        let data = generators::clustered_matrix(6, 120, 2, 0.5, 11).unwrap();
        let cfg = dangoron::DangoronConfig {
            basic_window: 20,
            ..Default::default()
        };
        let session = crate::session::Session::open(data, 60, 20, 0.5, cfg).unwrap();
        registry.open(name, session).unwrap();
        registry
    }

    #[test]
    fn edges_route_answers_and_misses() {
        let registry = registry_with_session("s1");
        let handler = routes(Arc::clone(&registry));
        let ok = handler("/sessions/s1/edges", "").expect("route matches");
        assert_eq!(ok.status, 200);
        assert!(ok.body.starts_with(b"["));
        let missing = handler("/sessions/nope/edges", "").expect("route matches");
        assert_eq!(missing.status, 404);
        assert!(handler("/other", "").is_none());
        assert!(handler("/sessions//edges", "").is_none());
    }

    #[test]
    fn edges_route_rejects_bad_params() {
        let registry = registry_with_session("s1");
        let handler = routes(registry);
        for q in ["window=0", "window=x", "threshold=nan", "bogus=1", "free"] {
            let resp = handler("/sessions/s1/edges", q).expect("route matches");
            assert_eq!(resp.status, 400, "query {q:?}");
        }
        // Explicit params matching the session's natives still answer.
        let resp = handler("/sessions/s1/edges", "window=60&step=20&threshold=0.5");
        assert_eq!(resp.expect("route matches").status, 200);
    }
}
