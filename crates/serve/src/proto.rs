//! The serving tier's session frames: protocol v4, tags 11+.
//!
//! Serve frames ride the same length-prefixed `bytes::frame` transport as
//! the shard protocol and reuse its handshake (`Hello`, tag 4), its
//! heartbeats (`Ping`/`Pong`, tags 6–7), and its decode-hardening helpers
//! (`dist::proto::take_*`). A peer advertises the session frames with
//! [`dist::proto::CAP_SERVE`]; `dangoron-serve` requires the bit of every
//! client, while coordinators simply never see these tags.
//!
//! | tag | message       | direction       | body |
//! |-----|---------------|-----------------|------|
//! | 11  | `Open`        | client → daemon | session name, `(window, step, threshold)`, engine config, the initial history matrix |
//! | 12  | `Opened`      | daemon → client | echoed name, columns covered by the sketches, resident bytes |
//! | 13  | `Append`      | client → daemon | session name, the new columns |
//! | 14  | `Appended`    | daemon → client | echoed name, covered columns, windows closed by this append, resident bytes — the ack **is** the backpressure: a client that waits for it can never run ahead of the daemon's memory budget |
//! | 15  | `Query`       | client → daemon | query id, session name, ad-hoc `(window, step, threshold)` |
//! | 16  | `QueryResult` | daemon → client | echoed id, the covered-column prefix the answer is exact for, window count, `(window, edge)` list |
//! | 17  | `Subscribe`   | client → daemon | subscription id, session name |
//! | 18  | `Subscribed`  | daemon → client | echoed id, the first global window index the subscription will deliver (back-fill `0..next_window` with a `Query`) |
//! | 19  | `Delta`       | daemon → client | subscription id, one closed window's index and its edge list — never a whole matrix re-emit |
//! | 20  | `Evict`       | client → daemon | session name |
//! | 21  | `Evicted`     | daemon → client | echoed name, whether it existed |
//! | 22  | `ServeError`  | daemon → client | the query/subscription id it answers (0 = the link itself), UTF-8 message |
//!
//! Decoding is defensive to the same standard as the shard protocol:
//! every count and length is validated against the bytes actually present
//! before any allocation it sizes, unknown tags and truncated bodies are
//! `Err` (never a panic), and trailing bytes are rejected.

use bytes::{Buf, BufMut};
use dangoron::DangoronConfig;
use dist::proto::{self, Hello, Message};
use sketch::output::Edge;
use tsdata::TimeSeriesMatrix;

pub use dist::proto::{CAP_SERVE, MAX_FRAME, MAX_HELLO_FRAME};

/// Longest session name accepted on the wire — names are map keys, not
/// payloads.
pub const MAX_NAME: usize = 128;

/// Longest `ServeError` text accepted on the wire.
pub const MAX_ERROR_TEXT: usize = 1 << 16;

const TAG_OPEN: u8 = 11;
const TAG_OPENED: u8 = 12;
const TAG_APPEND: u8 = 13;
const TAG_APPENDED: u8 = 14;
const TAG_QUERY: u8 = 15;
const TAG_QUERY_RESULT: u8 = 16;
const TAG_SUBSCRIBE: u8 = 17;
const TAG_SUBSCRIBED: u8 = 18;
const TAG_DELTA: u8 = 19;
const TAG_EVICT: u8 = 20;
const TAG_EVICTED: u8 = 21;
const TAG_SERVE_ERROR: u8 = 22;

/// A serving-tier protocol message.
#[derive(Debug, Clone)]
pub enum ServeMessage {
    /// The link handshake, shared with the shard protocol (tag 4).
    Hello(Hello),
    /// Liveness probe, shared with the shard protocol (tag 6).
    Ping(u64),
    /// Probe echo, shared with the shard protocol (tag 7).
    Pong(u64),
    /// Client → daemon: open a named resident session.
    Open {
        /// Session name (the registry key).
        name: String,
        /// Session window length (columns).
        window: usize,
        /// Session step (columns).
        step: usize,
        /// Session threshold β.
        threshold: f64,
        /// Engine configuration.
        config: DangoronConfig,
        /// The initial history.
        data: TimeSeriesMatrix,
    },
    /// Daemon → client: the session is resident.
    Opened {
        /// Echoed session name.
        name: String,
        /// Columns the resident sketches cover.
        covered_cols: u64,
        /// Resident bytes charged against the memory budget.
        memory_bytes: u64,
    },
    /// Client → daemon: append columns to a named session.
    Append {
        /// Session name.
        name: String,
        /// The new columns.
        data: TimeSeriesMatrix,
    },
    /// Daemon → client: the append is absorbed (the backpressure ack).
    Appended {
        /// Echoed session name.
        name: String,
        /// Columns the resident sketches now cover.
        covered_cols: u64,
        /// Windows this append closed (each also pushed as a `Delta` to
        /// every subscriber).
        windows_closed: u64,
        /// Resident bytes after the append.
        memory_bytes: u64,
    },
    /// Client → daemon: an ad-hoc query against the resident sketches.
    Query {
        /// Client-chosen id echoed in the answer.
        id: u64,
        /// Session name.
        name: String,
        /// Query window (columns).
        window: usize,
        /// Query step (columns).
        step: usize,
        /// Query threshold β.
        threshold: f64,
    },
    /// Daemon → client: a query answer.
    QueryResult {
        /// Echoed query id.
        id: u64,
        /// The column prefix the answer is exact for — verify against a
        /// one-shot run over exactly these columns.
        covered_cols: u64,
        /// Windows in the answer.
        n_windows: u64,
        /// `(window, edge)` pairs, sorted by `(window, i, j)`.
        edges: Vec<(u32, Edge)>,
    },
    /// Client → daemon: push every subsequently closed window's edges.
    Subscribe {
        /// Client-chosen subscription id echoed in every `Delta`.
        id: u64,
        /// Session name.
        name: String,
    },
    /// Daemon → client: the subscription is live.
    Subscribed {
        /// Echoed subscription id.
        id: u64,
        /// First global window index the subscription will deliver;
        /// back-fill `0..next_window` with a `Query`.
        next_window: u64,
    },
    /// Daemon → client: one closed window, as an edge delta.
    Delta {
        /// The subscription this delta belongs to.
        id: u64,
        /// Global window index.
        window: u64,
        /// The window's thresholded edges.
        edges: Vec<Edge>,
    },
    /// Client → daemon: drop a named session.
    Evict {
        /// Session name.
        name: String,
    },
    /// Daemon → client: eviction outcome.
    Evicted {
        /// Echoed session name.
        name: String,
        /// Whether a session by that name was resident.
        existed: bool,
    },
    /// Daemon → client: a structured failure.
    ServeError {
        /// The query/subscription id being answered; 0 when the error is
        /// about the link or a name-addressed frame.
        context: u64,
        /// Human-readable cause.
        message: String,
    },
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.put_u64_le(s.len() as u64);
    out.put_slice(s.as_bytes());
}

fn put_matrix(out: &mut Vec<u8>, data: &TimeSeriesMatrix) {
    out.put_u64_le(data.n_series() as u64);
    out.put_u64_le(data.len() as u64);
    for v in data.as_slice() {
        out.put_f64_le(*v);
    }
}

fn take_str(buf: &mut &[u8], cap: usize, what: &str) -> Result<String, String> {
    let len = proto::take_u64(buf, what)? as usize;
    if len > cap {
        return Err(format!("{what} of {len} bytes exceeds the {cap}-byte cap"));
    }
    proto::need(buf, len, what)?;
    let s = String::from_utf8(buf.chunk()[..len].to_vec())
        .map_err(|_| format!("{what} is not UTF-8"))?;
    buf.advance(len);
    Ok(s)
}

fn take_matrix(buf: &mut &[u8]) -> Result<TimeSeriesMatrix, String> {
    let n = proto::take_u64(buf, "n_series")? as usize;
    let cols = proto::take_u64(buf, "n_cols")? as usize;
    let cells = n
        .checked_mul(cols)
        .ok_or_else(|| "matrix dimensions overflow".to_string())?;
    let data = proto::take_f64s(buf, cells, "matrix")?;
    TimeSeriesMatrix::from_flat(n, cols, data).map_err(|e| format!("bad matrix: {e:?}"))
}

/// Encodes a serve message into a frame payload (no length prefix).
/// `Hello`/`Ping`/`Pong` delegate to the shard protocol so the bytes are
/// identical on both protocols.
pub fn encode(msg: &ServeMessage) -> Vec<u8> {
    let mut out = Vec::new();
    match msg {
        ServeMessage::Hello(h) => return proto::encode(&Message::Hello(*h)),
        ServeMessage::Ping(seq) => return proto::encode(&Message::Ping(*seq)),
        ServeMessage::Pong(seq) => return proto::encode(&Message::Pong(*seq)),
        ServeMessage::Open {
            name,
            window,
            step,
            threshold,
            config,
            data,
        } => {
            out.put_u8(TAG_OPEN);
            put_str(&mut out, name);
            out.put_u64_le(*window as u64);
            out.put_u64_le(*step as u64);
            out.put_f64_le(*threshold);
            proto::encode_config(&mut out, config);
            put_matrix(&mut out, data);
        }
        ServeMessage::Opened {
            name,
            covered_cols,
            memory_bytes,
        } => {
            out.put_u8(TAG_OPENED);
            put_str(&mut out, name);
            out.put_u64_le(*covered_cols);
            out.put_u64_le(*memory_bytes);
        }
        ServeMessage::Append { name, data } => {
            out.put_u8(TAG_APPEND);
            put_str(&mut out, name);
            put_matrix(&mut out, data);
        }
        ServeMessage::Appended {
            name,
            covered_cols,
            windows_closed,
            memory_bytes,
        } => {
            out.put_u8(TAG_APPENDED);
            put_str(&mut out, name);
            out.put_u64_le(*covered_cols);
            out.put_u64_le(*windows_closed);
            out.put_u64_le(*memory_bytes);
        }
        ServeMessage::Query {
            id,
            name,
            window,
            step,
            threshold,
        } => {
            out.put_u8(TAG_QUERY);
            out.put_u64_le(*id);
            put_str(&mut out, name);
            out.put_u64_le(*window as u64);
            out.put_u64_le(*step as u64);
            out.put_f64_le(*threshold);
        }
        ServeMessage::QueryResult {
            id,
            covered_cols,
            n_windows,
            edges,
        } => {
            out.put_u8(TAG_QUERY_RESULT);
            out.put_u64_le(*id);
            out.put_u64_le(*covered_cols);
            out.put_u64_le(*n_windows);
            out.put_u64_le(edges.len() as u64);
            for (w, e) in edges {
                out.put_u32_le(*w);
                out.put_u32_le(e.i);
                out.put_u32_le(e.j);
                out.put_f64_le(e.value);
            }
        }
        ServeMessage::Subscribe { id, name } => {
            out.put_u8(TAG_SUBSCRIBE);
            out.put_u64_le(*id);
            put_str(&mut out, name);
        }
        ServeMessage::Subscribed { id, next_window } => {
            out.put_u8(TAG_SUBSCRIBED);
            out.put_u64_le(*id);
            out.put_u64_le(*next_window);
        }
        ServeMessage::Delta { id, window, edges } => {
            out.put_u8(TAG_DELTA);
            out.put_u64_le(*id);
            out.put_u64_le(*window);
            out.put_u64_le(edges.len() as u64);
            for e in edges {
                out.put_u32_le(e.i);
                out.put_u32_le(e.j);
                out.put_f64_le(e.value);
            }
        }
        ServeMessage::Evict { name } => {
            out.put_u8(TAG_EVICT);
            put_str(&mut out, name);
        }
        ServeMessage::Evicted { name, existed } => {
            out.put_u8(TAG_EVICTED);
            put_str(&mut out, name);
            out.put_u8(u8::from(*existed));
        }
        ServeMessage::ServeError { context, message } => {
            out.put_u8(TAG_SERVE_ERROR);
            out.put_u64_le(*context);
            put_str(&mut out, message);
        }
    }
    out
}

/// Decodes a frame payload into a serve message.
///
/// Tags ≤ 10 are delegated to [`dist::proto::decode`]; of those, only the
/// shared frames (`Hello`/`Ping`/`Pong`) are legal on a serve link — a
/// shard frame such as `Assign` decodes but is rejected here.
pub fn decode(payload: &[u8]) -> Result<ServeMessage, String> {
    if payload.len() > MAX_FRAME {
        return Err(format!(
            "payload of {} bytes exceeds the {MAX_FRAME}-byte frame limit",
            payload.len()
        ));
    }
    let mut buf = payload;
    let tag = proto::take_u8(&mut buf, "tag")?;
    if tag <= 10 {
        return match proto::decode(payload)? {
            Message::Hello(h) => Ok(ServeMessage::Hello(h)),
            Message::Ping(seq) => Ok(ServeMessage::Ping(seq)),
            Message::Pong(seq) => Ok(ServeMessage::Pong(seq)),
            _ => Err(format!("tag {tag} is a shard frame, not a serve frame")),
        };
    }
    let msg = match tag {
        TAG_OPEN => {
            let name = take_str(&mut buf, MAX_NAME, "session name")?;
            let window = proto::take_u64(&mut buf, "window")? as usize;
            let step = proto::take_u64(&mut buf, "step")? as usize;
            let threshold = proto::take_f64(&mut buf, "threshold")?;
            let config = proto::decode_config(&mut buf)?;
            let data = take_matrix(&mut buf)?;
            ServeMessage::Open {
                name,
                window,
                step,
                threshold,
                config,
                data,
            }
        }
        TAG_OPENED => ServeMessage::Opened {
            name: take_str(&mut buf, MAX_NAME, "session name")?,
            covered_cols: proto::take_u64(&mut buf, "covered_cols")?,
            memory_bytes: proto::take_u64(&mut buf, "memory_bytes")?,
        },
        TAG_APPEND => ServeMessage::Append {
            name: take_str(&mut buf, MAX_NAME, "session name")?,
            data: take_matrix(&mut buf)?,
        },
        TAG_APPENDED => ServeMessage::Appended {
            name: take_str(&mut buf, MAX_NAME, "session name")?,
            covered_cols: proto::take_u64(&mut buf, "covered_cols")?,
            windows_closed: proto::take_u64(&mut buf, "windows_closed")?,
            memory_bytes: proto::take_u64(&mut buf, "memory_bytes")?,
        },
        TAG_QUERY => ServeMessage::Query {
            id: proto::take_u64(&mut buf, "query id")?,
            name: take_str(&mut buf, MAX_NAME, "session name")?,
            window: proto::take_u64(&mut buf, "window")? as usize,
            step: proto::take_u64(&mut buf, "step")? as usize,
            threshold: proto::take_f64(&mut buf, "threshold")?,
        },
        TAG_QUERY_RESULT => {
            let id = proto::take_u64(&mut buf, "query id")?;
            let covered_cols = proto::take_u64(&mut buf, "covered_cols")?;
            let n_windows = proto::take_u64(&mut buf, "n_windows")?;
            let n_edges = proto::take_u64(&mut buf, "n_edges")? as usize;
            proto::need(
                &buf,
                n_edges.checked_mul(20).ok_or("edge bytes overflow")?,
                "edges",
            )?;
            let mut edges = Vec::with_capacity(n_edges);
            for _ in 0..n_edges {
                let w = buf.get_u32_le();
                let i = buf.get_u32_le();
                let j = buf.get_u32_le();
                let value = buf.get_f64_le();
                edges.push((w, Edge { i, j, value }));
            }
            ServeMessage::QueryResult {
                id,
                covered_cols,
                n_windows,
                edges,
            }
        }
        TAG_SUBSCRIBE => ServeMessage::Subscribe {
            id: proto::take_u64(&mut buf, "subscription id")?,
            name: take_str(&mut buf, MAX_NAME, "session name")?,
        },
        TAG_SUBSCRIBED => ServeMessage::Subscribed {
            id: proto::take_u64(&mut buf, "subscription id")?,
            next_window: proto::take_u64(&mut buf, "next_window")?,
        },
        TAG_DELTA => {
            let id = proto::take_u64(&mut buf, "subscription id")?;
            let window = proto::take_u64(&mut buf, "window index")?;
            let n_edges = proto::take_u64(&mut buf, "n_edges")? as usize;
            proto::need(
                &buf,
                n_edges.checked_mul(16).ok_or("edge bytes overflow")?,
                "edges",
            )?;
            let mut edges = Vec::with_capacity(n_edges);
            for _ in 0..n_edges {
                let i = buf.get_u32_le();
                let j = buf.get_u32_le();
                let value = buf.get_f64_le();
                edges.push(Edge { i, j, value });
            }
            ServeMessage::Delta { id, window, edges }
        }
        TAG_EVICT => ServeMessage::Evict {
            name: take_str(&mut buf, MAX_NAME, "session name")?,
        },
        TAG_EVICTED => ServeMessage::Evicted {
            name: take_str(&mut buf, MAX_NAME, "session name")?,
            existed: proto::take_u8(&mut buf, "existed flag")? != 0,
        },
        TAG_SERVE_ERROR => ServeMessage::ServeError {
            context: proto::take_u64(&mut buf, "error context")?,
            message: take_str(&mut buf, MAX_ERROR_TEXT, "error text")?,
        },
        t => return Err(format!("unknown serve message tag {t}")),
    };
    if !buf.is_empty() {
        return Err(format!(
            "{} trailing bytes after a well-formed serve message",
            buf.len()
        ));
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketch::output::EdgeRule;
    use tsdata::generators;

    fn sample_edges() -> Vec<(u32, Edge)> {
        vec![
            (
                0,
                Edge {
                    i: 0,
                    j: 3,
                    value: 0.912345678901,
                },
            ),
            (
                2,
                Edge {
                    i: 1,
                    j: 2,
                    value: -0.5,
                },
            ),
        ]
    }

    #[test]
    fn open_roundtrips_bitwise() {
        let data = generators::clustered_matrix(6, 120, 2, 0.5, 11).unwrap();
        let config = DangoronConfig {
            basic_window: 20,
            edge_rule: EdgeRule::Absolute,
            ..Default::default()
        };
        let msg = ServeMessage::Open {
            name: "climate".into(),
            window: 60,
            step: 20,
            threshold: 0.75,
            config: config.clone(),
            data: data.clone(),
        };
        match decode(&encode(&msg)).unwrap() {
            ServeMessage::Open {
                name,
                window,
                step,
                threshold,
                config: c,
                data: d,
            } => {
                assert_eq!(name, "climate");
                assert_eq!((window, step), (60, 20));
                assert_eq!(threshold.to_bits(), 0.75f64.to_bits());
                assert_eq!(c, config);
                assert_eq!(
                    d.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    data.as_slice()
                        .iter()
                        .map(|v| v.to_bits())
                        .collect::<Vec<_>>()
                );
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn replies_and_control_frames_roundtrip() {
        let msgs = [
            ServeMessage::Opened {
                name: "s".into(),
                covered_cols: 200,
                memory_bytes: 4096,
            },
            ServeMessage::Appended {
                name: "s".into(),
                covered_cols: 240,
                windows_closed: 2,
                memory_bytes: 5000,
            },
            ServeMessage::Query {
                id: 7,
                name: "s".into(),
                window: 60,
                step: 20,
                threshold: 0.7,
            },
            ServeMessage::Subscribe {
                id: 9,
                name: "s".into(),
            },
            ServeMessage::Subscribed {
                id: 9,
                next_window: 4,
            },
            ServeMessage::Evict { name: "s".into() },
            ServeMessage::Evicted {
                name: "s".into(),
                existed: true,
            },
            ServeMessage::ServeError {
                context: 7,
                message: "no such session".into(),
            },
        ];
        for msg in msgs {
            let reencoded = encode(&decode(&encode(&msg)).unwrap());
            assert_eq!(encode(&msg), reencoded, "{msg:?} roundtrip changed bytes");
        }
    }

    #[test]
    fn query_result_and_delta_roundtrip_bitwise() {
        let msg = ServeMessage::QueryResult {
            id: 3,
            covered_cols: 400,
            n_windows: 17,
            edges: sample_edges(),
        };
        match decode(&encode(&msg)).unwrap() {
            ServeMessage::QueryResult {
                id,
                covered_cols,
                n_windows,
                edges,
            } => {
                assert_eq!((id, covered_cols, n_windows), (3, 400, 17));
                for ((wa, ea), (wb, eb)) in sample_edges().iter().zip(&edges) {
                    assert_eq!(wa, wb);
                    assert_eq!((ea.i, ea.j), (eb.i, eb.j));
                    assert_eq!(ea.value.to_bits(), eb.value.to_bits());
                }
            }
            other => panic!("wrong message: {other:?}"),
        }
        let msg = ServeMessage::Delta {
            id: 9,
            window: 12,
            edges: sample_edges().into_iter().map(|(_, e)| e).collect(),
        };
        match decode(&encode(&msg)).unwrap() {
            ServeMessage::Delta { id, window, edges } => {
                assert_eq!((id, window), (9, 12));
                assert_eq!(edges.len(), 2);
                assert_eq!(edges[0].value.to_bits(), 0.912345678901f64.to_bits());
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn shared_frames_delegate_to_the_shard_protocol() {
        let hello = ServeMessage::Hello(Hello::local());
        let payload = encode(&hello);
        assert_eq!(payload, proto::encode(&Message::Hello(Hello::local())));
        assert!(payload.len() <= MAX_HELLO_FRAME);
        match decode(&payload).unwrap() {
            ServeMessage::Hello(h) => {
                assert_eq!(h, Hello::local());
                assert_eq!(h.caps & CAP_SERVE, CAP_SERVE);
            }
            other => panic!("wrong message: {other:?}"),
        }
        for (msg, seq) in [(ServeMessage::Ping(5), 5), (ServeMessage::Pong(6), 6)] {
            match (decode(&encode(&msg)).unwrap(), seq) {
                (ServeMessage::Ping(a), s) | (ServeMessage::Pong(a), s) => assert_eq!(a, s),
                (other, _) => panic!("wrong message: {other:?}"),
            }
        }
    }

    #[test]
    fn shard_frames_are_rejected_on_a_serve_link() {
        let assignish = proto::encode(&Message::Error(1, "boom".into()));
        assert!(decode(&assignish).is_err());
        let load = proto::encode(&Message::Load(
            generators::clustered_matrix(4, 40, 2, 0.5, 1).unwrap(),
        ));
        assert!(decode(&load).is_err());
    }

    #[test]
    fn truncated_and_trailing_frames_are_rejected_not_panicked() {
        let data = generators::clustered_matrix(4, 60, 2, 0.5, 2).unwrap();
        let full = encode(&ServeMessage::Open {
            name: "x".into(),
            window: 40,
            step: 20,
            threshold: 0.5,
            config: DangoronConfig {
                basic_window: 20,
                ..Default::default()
            },
            data,
        });
        for cut in [0usize, 1, 5, 9, 20, full.len() - 1] {
            assert!(decode(&full[..cut]).is_err(), "cut={cut}");
        }
        let mut trailing = encode(&ServeMessage::Evict { name: "x".into() });
        trailing.push(0);
        assert!(decode(&trailing).is_err());
        assert!(decode(&[200]).is_err(), "unknown tag");
    }

    #[test]
    fn hostile_lengths_never_size_allocations() {
        // A name length of 2^40: rejected by the cap before allocation.
        let mut payload = vec![TAG_EVICT];
        payload.put_u64_le(1 << 40);
        assert!(decode(&payload).is_err());
        // A delta with 2^60 claimed edges and no bytes behind them.
        let mut payload = vec![TAG_DELTA];
        payload.put_u64_le(1);
        payload.put_u64_le(0);
        payload.put_u64_le(1 << 60);
        assert!(decode(&payload).is_err());
        // An Open whose matrix claims 2^30 × 2^30 cells.
        let mut payload = vec![TAG_APPEND];
        payload.put_u64_le(1);
        payload.put_slice(b"x");
        payload.put_u64_le(1 << 30);
        payload.put_u64_le(1 << 30);
        assert!(decode(&payload).is_err());
        // A non-UTF-8 name.
        let mut payload = vec![TAG_EVICT];
        payload.put_u64_le(2);
        payload.put_slice(&[0xff, 0xfe]);
        assert!(decode(&payload).is_err());
    }
}
