//! Daemon telemetry: per-session gauges and daemon-wide counters.
//!
//! Every [`crate::server::Registry`] owns an [`obs::Registry`] and
//! records into it as frames are dispatched — opens, appends, queries,
//! evictions, budget refusals, drain and query wall times, and one gauge
//! triple per named session (resident bytes, covered columns, live
//! subscribers). `dangoron-serve --metrics-addr` mounts the same obs
//! registry into its HTTP server, so a scrape reads exactly what the
//! dispatch path wrote — wait-free on both sides.
//!
//! The obs registry is insert-only, so the gauges of an evicted session
//! stay exposed (zeroed) until the process exits; re-opening the name
//! reuses them. Metric names are documented in `docs/metrics.md`.

use obs::{Counter, Gauge, Histogram};
use std::sync::Arc;

/// Daemon-wide metric handles (per-session gauges are registered lazily
/// by name through [`ServeMetrics::session`]).
pub struct ServeMetrics {
    registry: Arc<obs::Registry>,
    /// `dangoron_serve_sessions` — resident session count.
    pub sessions: Gauge,
    /// `dangoron_serve_resident_bytes` — summed resident bytes.
    pub resident_bytes: Gauge,
    /// `dangoron_serve_opens_total` — sessions opened.
    pub opens: Counter,
    /// `dangoron_serve_appends_total` — appends applied.
    pub appends: Counter,
    /// `dangoron_serve_queries_total` — ad-hoc queries answered.
    pub queries: Counter,
    /// `dangoron_serve_subscribes_total` — subscriptions registered.
    pub subscribes: Counter,
    /// `dangoron_serve_evictions_total{reason}` — explicit evictions.
    pub evictions_explicit: Counter,
    /// `dangoron_serve_evictions_total{reason}` — LRU budget evictions.
    pub evictions_lru: Counter,
    /// `dangoron_serve_refusals_total` — budget backpressure refusals.
    pub refusals: Counter,
    /// `dangoron_serve_drain_us` — append wall time (drain + delta push).
    pub drain_us: Histogram,
    /// `dangoron_serve_query_us` — shared-query wall time.
    pub query_us: Histogram,
}

/// The gauge triple of one named session.
pub struct SessionMetrics {
    /// `dangoron_serve_session_resident_bytes{session}`.
    pub resident_bytes: Gauge,
    /// `dangoron_serve_session_covered_cols{session}`.
    pub covered_cols: Gauge,
    /// `dangoron_serve_session_subscribers{session}`.
    pub subscribers: Gauge,
}

impl SessionMetrics {
    /// Zeroes the triple (the session was evicted).
    pub fn clear(&self) {
        self.resident_bytes.set(0);
        self.covered_cols.set(0);
        self.subscribers.set(0);
    }
}

impl ServeMetrics {
    /// Registers the daemon-wide families in a fresh obs registry.
    pub fn new() -> Self {
        let registry = Arc::new(obs::Registry::new());
        Self {
            sessions: registry.gauge("dangoron_serve_sessions", "Resident session count"),
            resident_bytes: registry.gauge(
                "dangoron_serve_resident_bytes",
                "Summed resident bytes across all sessions",
            ),
            opens: registry.counter("dangoron_serve_opens_total", "Sessions opened"),
            appends: registry.counter("dangoron_serve_appends_total", "Appends applied"),
            queries: registry.counter("dangoron_serve_queries_total", "Ad-hoc queries answered"),
            subscribes: registry.counter(
                "dangoron_serve_subscribes_total",
                "Delta subscriptions registered",
            ),
            evictions_explicit: registry.counter_with(
                "dangoron_serve_evictions_total",
                "Sessions evicted, by reason",
                &[("reason", "explicit")],
            ),
            evictions_lru: registry.counter_with(
                "dangoron_serve_evictions_total",
                "Sessions evicted, by reason",
                &[("reason", "lru")],
            ),
            refusals: registry.counter(
                "dangoron_serve_refusals_total",
                "Opens/appends refused by the memory budget",
            ),
            drain_us: registry.histogram(
                "dangoron_serve_drain_us",
                "Append wall time (engine drain + delta push), microseconds",
            ),
            query_us: registry.histogram(
                "dangoron_serve_query_us",
                "Shared-query wall time, microseconds",
            ),
            registry,
        }
    }

    /// The backing obs registry — mount this into a
    /// [`obs::MetricsServer`] to expose the daemon.
    pub fn registry(&self) -> Arc<obs::Registry> {
        Arc::clone(&self.registry)
    }

    /// The gauge triple for session `name` (registered on first use,
    /// shared afterwards).
    pub fn session(&self, name: &str) -> SessionMetrics {
        let labels = [("session", name)];
        SessionMetrics {
            resident_bytes: self.registry.gauge_with(
                "dangoron_serve_session_resident_bytes",
                "Resident bytes of one session",
                &labels,
            ),
            covered_cols: self.registry.gauge_with(
                "dangoron_serve_session_covered_cols",
                "Columns the session's sketches cover",
                &labels,
            ),
            subscribers: self.registry.gauge_with(
                "dangoron_serve_session_subscribers",
                "Live delta subscriptions of one session",
                &labels,
            ),
        }
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_gauges_share_state_by_name() {
        let m = ServeMetrics::new();
        m.session("a").resident_bytes.set(100);
        assert_eq!(m.session("a").resident_bytes.get(), 100);
        assert_eq!(m.session("b").resident_bytes.get(), 0);
        m.session("a").clear();
        assert_eq!(m.session("a").resident_bytes.get(), 0);
    }

    #[test]
    fn eviction_reasons_are_distinct_series_of_one_family() {
        let m = ServeMetrics::new();
        m.evictions_explicit.inc();
        m.evictions_lru.add(2);
        let snaps = m.registry().snapshot();
        let evs: Vec<_> = snaps
            .iter()
            .filter(|s| s.name == "dangoron_serve_evictions_total")
            .collect();
        assert_eq!(evs.len(), 2);
    }
}
