//! A synchronous client for a `dangoron-serve` daemon.
//!
//! One TCP link, one outstanding request at a time — but `Delta` frames
//! are *pushed* by the daemon whenever an append (from any client of the
//! session) closes windows, so they can arrive interleaved with request
//! replies. The client queues out-of-band deltas while waiting for a
//! reply and hands them out through [`ServeClient::next_delta`].
//!
//! Dialing reuses the shared [`dist::transport::WorkerIo::connect`]
//! backoff loop, and long-lived clients that must survive a daemon
//! restart wrap their whole conversation in
//! [`dist::transport::serve_with_reconnect`] — the same loop
//! `dangoron-shard --reconnect` uses; the serving tier adds no third
//! copy of it.

use crate::proto::{self, ServeMessage};
use bytes::frame;
use dangoron::DangoronConfig;
use dist::proto::Hello;
use dist::transport::WorkerIo;
use sketch::output::{Edge, EdgeRule};
use sketch::ThresholdedMatrix;
use std::collections::VecDeque;
use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// The `Opened` ack.
#[derive(Debug, Clone, Copy)]
pub struct OpenAck {
    /// Columns the resident sketches cover.
    pub covered_cols: usize,
    /// Resident bytes the session holds.
    pub memory_bytes: usize,
}

/// The `Appended` backpressure ack.
#[derive(Debug, Clone, Copy)]
pub struct AppendAck {
    /// Columns the resident sketches now cover.
    pub covered_cols: usize,
    /// Windows the append closed.
    pub windows_closed: usize,
    /// Resident bytes after the append.
    pub memory_bytes: usize,
}

/// A query answer, still in wire form.
#[derive(Debug, Clone)]
pub struct QueryReply {
    /// The column prefix the answer is exact for.
    pub covered_cols: usize,
    /// Windows in the answer.
    pub n_windows: usize,
    /// `(window, edge)` pairs, sorted by `(window, i, j)`.
    pub edges: Vec<(u32, Edge)>,
}

impl QueryReply {
    /// Reassembles the per-window [`ThresholdedMatrix`] list — bit-
    /// identical to the daemon's, since edge values cross the wire as
    /// `f64` bit patterns.
    pub fn matrices(
        &self,
        n_series: usize,
        threshold: f64,
        rule: EdgeRule,
    ) -> Vec<ThresholdedMatrix> {
        ThresholdedMatrix::assemble_windows(
            n_series,
            threshold,
            rule,
            self.n_windows,
            self.edges.clone(),
        )
    }
}

/// One pushed window delta.
#[derive(Debug, Clone)]
pub struct WindowDelta {
    /// The subscription it belongs to.
    pub sub_id: u64,
    /// Global window index.
    pub window: usize,
    /// The window's edges.
    pub edges: Vec<Edge>,
}

/// A synchronous serve-protocol client.
pub struct ServeClient {
    reader: TcpStream,
    writer: TcpStream,
    next_id: u64,
    pending: VecDeque<WindowDelta>,
}

impl ServeClient {
    /// Dials the daemon (shared backoff loop) and sends the handshake.
    pub fn connect(addr: &str, patience: Duration) -> io::Result<Self> {
        let link = WorkerIo::connect(addr, patience, std::process::id() as u64)?;
        Self::over(link.input, link.output)
    }

    /// Wraps an established stream pair (tests and chaos wrappers) and
    /// sends the handshake.
    pub fn over(reader: TcpStream, writer: TcpStream) -> io::Result<Self> {
        let mut client = Self {
            reader,
            writer,
            next_id: 0,
            pending: VecDeque::new(),
        };
        client.send(&ServeMessage::Hello(Hello::local()))?;
        Ok(client)
    }

    fn send(&mut self, msg: &ServeMessage) -> io::Result<()> {
        frame::write_to(&mut self.writer, &proto::encode(msg))
    }

    /// Writes raw bytes as one frame — the test suites' malformed-frame
    /// injector.
    pub fn send_raw_frame(&mut self, payload: &[u8]) -> io::Result<()> {
        frame::write_to(&mut self.writer, payload)
    }

    /// Reads the next non-delta frame, queueing any `Delta`s that arrive
    /// first; a `ServeError` reply becomes an `Err`.
    pub fn read_reply(&mut self) -> io::Result<ServeMessage> {
        loop {
            let Some(payload) = frame::read_from(&mut self.reader, proto::MAX_FRAME)? else {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "daemon closed the link",
                ));
            };
            let msg = proto::decode(&payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            match msg {
                ServeMessage::Delta { id, window, edges } => {
                    self.pending.push_back(WindowDelta {
                        sub_id: id,
                        window: window as usize,
                        edges,
                    });
                }
                ServeMessage::ServeError { context, message } => {
                    return Err(io::Error::other(format!(
                        "serve error (context {context}): {message}"
                    )));
                }
                other => return Ok(other),
            }
        }
    }

    fn request(&mut self, msg: &ServeMessage) -> io::Result<ServeMessage> {
        self.send(msg)?;
        self.read_reply()
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    /// Opens a named resident session over `data`.
    pub fn open(
        &mut self,
        name: &str,
        data: &tsdata::TimeSeriesMatrix,
        window: usize,
        step: usize,
        threshold: f64,
        config: &DangoronConfig,
    ) -> io::Result<OpenAck> {
        let reply = self.request(&ServeMessage::Open {
            name: name.to_string(),
            window,
            step,
            threshold,
            config: config.clone(),
            data: data.clone(),
        })?;
        match reply {
            ServeMessage::Opened {
                covered_cols,
                memory_bytes,
                ..
            } => Ok(OpenAck {
                covered_cols: covered_cols as usize,
                memory_bytes: memory_bytes as usize,
            }),
            other => Err(unexpected("Opened", &other)),
        }
    }

    /// Appends columns and waits for the backpressure ack.
    pub fn append(&mut self, name: &str, data: &tsdata::TimeSeriesMatrix) -> io::Result<AppendAck> {
        let reply = self.request(&ServeMessage::Append {
            name: name.to_string(),
            data: data.clone(),
        })?;
        match reply {
            ServeMessage::Appended {
                covered_cols,
                windows_closed,
                memory_bytes,
                ..
            } => Ok(AppendAck {
                covered_cols: covered_cols as usize,
                windows_closed: windows_closed as usize,
                memory_bytes: memory_bytes as usize,
            }),
            other => Err(unexpected("Appended", &other)),
        }
    }

    /// Runs an ad-hoc query against a resident session.
    pub fn query(
        &mut self,
        name: &str,
        window: usize,
        step: usize,
        threshold: f64,
    ) -> io::Result<QueryReply> {
        let id = self.fresh_id();
        let reply = self.request(&ServeMessage::Query {
            id,
            name: name.to_string(),
            window,
            step,
            threshold,
        })?;
        match reply {
            ServeMessage::QueryResult {
                id: got,
                covered_cols,
                n_windows,
                edges,
            } => {
                if got != id {
                    return Err(io::Error::other(format!(
                        "query id mismatch: sent {id}, got {got}"
                    )));
                }
                Ok(QueryReply {
                    covered_cols: covered_cols as usize,
                    n_windows: n_windows as usize,
                    edges,
                })
            }
            other => Err(unexpected("QueryResult", &other)),
        }
    }

    /// Subscribes to a session's window deltas. Returns the subscription
    /// id and the first window index the subscription will deliver (back-
    /// fill earlier windows with [`ServeClient::query`]).
    pub fn subscribe(&mut self, name: &str) -> io::Result<(u64, usize)> {
        let id = self.fresh_id();
        let reply = self.request(&ServeMessage::Subscribe {
            id,
            name: name.to_string(),
        })?;
        match reply {
            ServeMessage::Subscribed {
                id: got,
                next_window,
            } => {
                if got != id {
                    return Err(io::Error::other(format!(
                        "subscription id mismatch: sent {id}, got {got}"
                    )));
                }
                Ok((id, next_window as usize))
            }
            other => Err(unexpected("Subscribed", &other)),
        }
    }

    /// The next pushed window delta: a queued one if any, else blocks
    /// reading the link until a `Delta` arrives.
    pub fn next_delta(&mut self) -> io::Result<WindowDelta> {
        if let Some(d) = self.pending.pop_front() {
            return Ok(d);
        }
        loop {
            let Some(payload) = frame::read_from(&mut self.reader, proto::MAX_FRAME)? else {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "daemon closed the link",
                ));
            };
            let msg = proto::decode(&payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            if let ServeMessage::Delta { id, window, edges } = msg {
                return Ok(WindowDelta {
                    sub_id: id,
                    window: window as usize,
                    edges,
                });
            }
            // Any non-delta frame here is unsolicited; skip it.
        }
    }

    /// Drops a named session on the daemon.
    pub fn evict(&mut self, name: &str) -> io::Result<bool> {
        let reply = self.request(&ServeMessage::Evict {
            name: name.to_string(),
        })?;
        match reply {
            ServeMessage::Evicted { existed, .. } => Ok(existed),
            other => Err(unexpected("Evicted", &other)),
        }
    }

    /// Severs the link (both directions) — the test suites' mid-stream
    /// disconnect.
    pub fn disconnect(self) {
        let _ = self.writer.shutdown(std::net::Shutdown::Both);
        drop(self.reader);
    }

    /// Detaches the raw read half (chaos wrappers that need to own the
    /// socket directly).
    pub fn into_streams(self) -> (TcpStream, TcpStream) {
        (self.reader, self.writer)
    }

    /// Reads one raw frame off the link (protocol-level tests).
    pub fn read_raw_frame(&mut self, max_len: usize) -> io::Result<Option<Vec<u8>>> {
        frame::read_from(&mut self.reader, max_len)
    }

    /// Direct access to the read half (timeout control in tests).
    pub fn reader(&self) -> &TcpStream {
        &self.reader
    }
}

fn unexpected(wanted: &str, got: &ServeMessage) -> io::Error {
    io::Error::other(format!("expected {wanted}, got {got:?}"))
}
