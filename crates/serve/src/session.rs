//! A resident session: one [`StreamingDangoron`] plus its subscribers.
//!
//! The session is the unit the daemon keeps warm. Its engine owns the
//! sketch prefixes, which are query-independent — every concurrent
//! `(window, step, threshold)` query against the session shares them via
//! [`StreamingDangoron::query_shared`] (`&self`, so readers run in
//! parallel under the daemon's `RwLock`), paying only the walk and never
//! the prepare phase. Appends go through [`Session::append`], which
//! drains the newly completed windows and pushes each one to every
//! subscriber as a per-window *delta*; a subscriber whose sink fails is
//! dropped on the spot and can never poison the session or starve the
//! other tenants.

use dangoron::{CompletedWindow, StreamingDangoron};
use tsdata::{TimeSeriesMatrix, TsError};

/// What an append changed — the body of the `Appended` backpressure ack.
#[derive(Debug, Clone, Copy)]
pub struct AppendOutcome {
    /// Columns the resident sketches now cover.
    pub covered_cols: usize,
    /// Windows this append completed (and pushed to subscribers).
    pub windows_closed: usize,
    /// Resident bytes after the append.
    pub memory_bytes: usize,
}

/// A delta sink: called once per completed window with the subscription
/// id and the window; returns `false` to drop the subscription (a failed
/// or disconnected sink).
pub type DeltaSink = Box<dyn FnMut(u64, &CompletedWindow) -> bool + Send + Sync>;

struct Subscriber {
    sub_id: u64,
    conn_id: u64,
    sink: DeltaSink,
}

/// One resident engine plus its delta subscribers.
pub struct Session {
    engine: StreamingDangoron,
    subscribers: Vec<Subscriber>,
}

impl Session {
    /// Opens a resident session over the initial history. The engine must
    /// hold the full pair triangle (shared queries reject shards), which
    /// [`StreamingDangoron::new`] guarantees.
    pub fn open(
        initial: TimeSeriesMatrix,
        window: usize,
        step: usize,
        threshold: f64,
        config: dangoron::DangoronConfig,
    ) -> Result<Self, TsError> {
        let engine = StreamingDangoron::new(initial, window, step, threshold, config)?;
        Ok(Self {
            engine,
            subscribers: Vec::new(),
        })
    }

    /// The resident engine (read-only).
    pub fn engine(&self) -> &StreamingDangoron {
        &self.engine
    }

    /// Columns the resident sketches cover — the prefix shared queries
    /// answer exactly.
    pub fn covered_cols(&self) -> usize {
        self.engine.batch_query().end
    }

    /// Resident bytes, charged against the daemon's memory budget.
    pub fn memory_bytes(&self) -> usize {
        self.engine.memory_bytes()
    }

    /// Appends columns, then pushes each newly completed window to every
    /// subscriber. A sink returning `false` unsubscribes itself; the
    /// append itself never fails because of a subscriber.
    pub fn append(&mut self, new_cols: &TimeSeriesMatrix) -> Result<AppendOutcome, TsError> {
        let windows = self.engine.append(new_cols)?;
        for w in &windows {
            self.subscribers.retain_mut(|s| (s.sink)(s.sub_id, w));
        }
        Ok(AppendOutcome {
            covered_cols: self.covered_cols(),
            windows_closed: windows.len(),
            memory_bytes: self.memory_bytes(),
        })
    }

    /// Answers an ad-hoc query from the shared sketches. Returns the
    /// covered-column prefix the answer is exact for alongside the result.
    pub fn query(
        &self,
        window: usize,
        step: usize,
        threshold: f64,
    ) -> Result<(usize, dangoron::QueryResult), TsError> {
        let result = self.engine.query_shared(window, step, threshold)?;
        Ok((self.covered_cols(), result))
    }

    /// Registers a delta sink and returns the first global window index
    /// it will deliver — windows already emitted before the subscription
    /// are back-filled by the client with a query, never replayed.
    pub fn subscribe(&mut self, sub_id: u64, conn_id: u64, sink: DeltaSink) -> usize {
        self.subscribers.push(Subscriber {
            sub_id,
            conn_id,
            sink,
        });
        self.engine.emitted_windows()
    }

    /// Drops every subscription owned by a closed link.
    pub fn drop_conn(&mut self, conn_id: u64) {
        self.subscribers.retain(|s| s.conn_id != conn_id);
    }

    /// Live subscriptions (diagnostics and tests).
    pub fn n_subscribers(&self) -> usize {
        self.subscribers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dangoron::DangoronConfig;
    use std::sync::{Arc, Mutex};
    use tsdata::generators;

    fn session_over(cols: usize) -> (Session, TimeSeriesMatrix) {
        let full = generators::clustered_matrix(6, 400, 2, 0.5, 21).unwrap();
        let s = Session::open(
            full.slice_columns(0, cols).unwrap(),
            60,
            20,
            0.7,
            DangoronConfig {
                basic_window: 20,
                ..Default::default()
            },
        )
        .unwrap();
        (s, full)
    }

    #[test]
    fn append_pushes_window_deltas_and_failed_sinks_unsubscribe() {
        let (mut s, full) = session_over(80);
        let seen: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_seen = Arc::clone(&seen);
        let next = s.subscribe(
            1,
            10,
            Box::new(move |id, w| {
                assert_eq!(id, 1);
                sink_seen.lock().unwrap().push(w.index);
                true
            }),
        );
        assert_eq!(next, 0, "nothing emitted before the first append");
        // A sink that dies after the first delta.
        let mut fed = 0;
        s.subscribe(
            2,
            11,
            Box::new(move |_, _| {
                fed += 1;
                fed < 2
            }),
        );
        assert_eq!(s.n_subscribers(), 2);
        let out = s.append(&full.slice_columns(80, 200).unwrap()).unwrap();
        assert_eq!(out.covered_cols, 200);
        assert!(out.windows_closed > 1);
        assert!(out.memory_bytes > 0);
        let seen = seen.lock().unwrap();
        assert_eq!(
            *seen,
            (0..out.windows_closed).collect::<Vec<_>>(),
            "subscriber saw every closed window in order"
        );
        assert_eq!(s.n_subscribers(), 1, "the failed sink was dropped");
    }

    #[test]
    fn drop_conn_removes_only_that_links_subscriptions() {
        let (mut s, _) = session_over(80);
        s.subscribe(1, 10, Box::new(|_, _| true));
        s.subscribe(2, 10, Box::new(|_, _| true));
        s.subscribe(3, 11, Box::new(|_, _| true));
        s.drop_conn(10);
        assert_eq!(s.n_subscribers(), 1);
    }

    #[test]
    fn subscribe_after_appends_reports_the_backfill_boundary() {
        let (mut s, full) = session_over(80);
        let out = s.append(&full.slice_columns(80, 160).unwrap()).unwrap();
        let next = s.subscribe(1, 10, Box::new(|_, _| true));
        assert_eq!(next, out.windows_closed, "deltas resume after the drain");
    }
}
