//! The daemon side: a registry of named sessions and the per-link frame
//! loop.
//!
//! Concurrency model: the registry's map is behind a `Mutex` held only
//! for map operations; each session sits behind its own `RwLock`, so
//! queries against one session run concurrently (shared queries borrow
//! the engine immutably) while appends and subscriptions take the write
//! half. No lock is ever poisoned-fatal — every acquisition recovers the
//! guard with [`std::sync::PoisonError::into_inner`], so a panicking
//! client thread can never wedge the daemon (`serve_chaos` proves it).
//!
//! Memory accounting: every session's resident bytes
//! ([`crate::session::Session::memory_bytes`]) are cached on its slot;
//! when a budget is set, `Open`/`Append` first evict **idle**
//! least-recently-used sessions to make room, and if the frame still
//! cannot fit it is refused with a structured `ServeError` — that refusal
//! (and the `Appended` ack on success) is the backpressure: a client that
//! waits for its ack can never run the daemon past its budget.

use crate::metrics::ServeMetrics;
use crate::proto::{self, ServeMessage};
use crate::session::Session;
use bytes::frame;
use dist::proto::{Hello, CAP_SERVE, MAX_HELLO_FRAME, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION};
use std::collections::HashMap;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::Duration;

/// Socket write patience for replies and deltas: a subscriber that stops
/// draining its socket is cut loose after this long, so one stuck reader
/// can delay — but never indefinitely stall — its session's appends, and
/// never touches other sessions at all.
const WRITE_PATIENCE: Duration = Duration::from_secs(5);

/// Handshake read patience on a not-yet-trusted link.
const HANDSHAKE_PATIENCE: Duration = Duration::from_secs(10);

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn read_guard<'a, T>(l: &'a RwLock<T>) -> std::sync::RwLockReadGuard<'a, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

fn write_guard<'a, T>(l: &'a RwLock<T>) -> std::sync::RwLockWriteGuard<'a, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// One registry entry: the session, its LRU stamp, and its cached
/// resident size (readable without touching the session lock).
pub struct Slot {
    session: RwLock<Session>,
    last_used: AtomicU64,
    mem: AtomicUsize,
}

impl Slot {
    /// Cached resident bytes (updated after every open/append).
    pub fn memory_bytes(&self) -> usize {
        self.mem.load(Ordering::Relaxed)
    }

    /// Runs `f` under the session's read lock — the shared-query path
    /// used by the read-only HTTP surface ([`crate::http`]).
    pub fn read_session<R>(&self, f: impl FnOnce(&Session) -> R) -> R {
        f(&read_guard(&self.session))
    }
}

/// The daemon's session table: named slots, an LRU clock, and an optional
/// memory budget.
pub struct Registry {
    slots: Mutex<HashMap<String, Arc<Slot>>>,
    clock: AtomicU64,
    mem_budget: Option<usize>,
    metrics: ServeMetrics,
}

impl Registry {
    /// An empty registry; `mem_budget` bounds the summed resident bytes
    /// of all sessions (`None` = unbounded).
    pub fn new(mem_budget: Option<usize>) -> Self {
        Self {
            slots: Mutex::new(HashMap::new()),
            clock: AtomicU64::new(0),
            mem_budget,
            metrics: ServeMetrics::new(),
        }
    }

    /// The daemon's metric handles.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The obs registry behind [`Registry::metrics`] — mount it into a
    /// [`obs::MetricsServer`] to expose the daemon.
    pub fn obs_registry(&self) -> Arc<obs::Registry> {
        self.metrics.registry()
    }

    /// Refreshes the daemon-wide totals gauges (cheap relaxed stores).
    fn refresh_totals(&self) {
        let slots = lock(&self.slots);
        self.metrics.sessions.set(slots.len() as i64);
        let total: usize = slots.values().map(|s| s.memory_bytes()).sum();
        self.metrics.resident_bytes.set(total as i64);
    }

    fn touch(&self, slot: &Slot) {
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        slot.last_used.store(now, Ordering::Relaxed);
    }

    /// Looks up a session and stamps its LRU clock.
    pub fn get(&self, name: &str) -> Option<Arc<Slot>> {
        let slot = lock(&self.slots).get(name).cloned()?;
        self.touch(&slot);
        Some(slot)
    }

    /// Summed cached resident bytes across all sessions.
    pub fn total_memory(&self) -> usize {
        lock(&self.slots).values().map(|s| s.memory_bytes()).sum()
    }

    /// Resident session count.
    pub fn n_sessions(&self) -> usize {
        lock(&self.slots).len()
    }

    /// Every resident slot (for the link-teardown subscriber sweep).
    pub fn all_slots(&self) -> Vec<Arc<Slot>> {
        lock(&self.slots).values().cloned().collect()
    }

    /// Removes a session by name.
    pub fn evict(&self, name: &str) -> bool {
        let existed = lock(&self.slots).remove(name).is_some();
        if existed {
            self.metrics.evictions_explicit.inc();
            self.metrics.session(name).clear();
            self.refresh_totals();
        }
        existed
    }

    /// Evicts idle least-recently-used sessions (never `keep`) until the
    /// total fits `need` more bytes inside the budget, or nothing idle is
    /// left. Returns whether `need` now fits. A session whose write lock
    /// is held (an in-flight append or subscribe) is busy, not idle, and
    /// is skipped rather than waited on.
    fn make_room(&self, keep: &str, need: usize) -> bool {
        let Some(budget) = self.mem_budget else {
            return true;
        };
        loop {
            let mut slots = lock(&self.slots);
            let total: usize = slots.values().map(|s| s.memory_bytes()).sum();
            if total.saturating_add(need) <= budget {
                return true;
            }
            let victim = slots
                .iter()
                .filter(|(name, slot)| {
                    // Busy means the write lock is *held* right now; a
                    // poisoned-but-free lock is still evictable.
                    name.as_str() != keep
                        && !matches!(
                            slot.session.try_write(),
                            Err(std::sync::TryLockError::WouldBlock)
                        )
                })
                .min_by_key(|(_, slot)| slot.last_used.load(Ordering::Relaxed))
                .map(|(name, _)| name.clone());
            match victim {
                Some(name) => {
                    if let Some(slot) = slots.remove(&name) {
                        self.metrics.evictions_lru.inc();
                        self.metrics.session(&name).clear();
                        eprintln!(
                            "dangoron-serve: evicted idle session '{name}' ({} bytes) for the memory budget",
                            slot.memory_bytes()
                        );
                    }
                }
                None => return false,
            }
        }
    }

    /// Admits a freshly opened session, evicting idle LRU sessions to fit
    /// it under the budget. Refuses duplicates and sessions that cannot
    /// fit even with every idle tenant evicted.
    pub fn open(&self, name: &str, session: Session) -> Result<Arc<Slot>, String> {
        if lock(&self.slots).contains_key(name) {
            return Err(format!("session '{name}' already exists; Evict it first"));
        }
        let mem = session.memory_bytes();
        if !self.make_room(name, mem) {
            self.metrics.refusals.inc();
            return Err(format!(
                "memory budget exhausted: session '{name}' needs {mem} bytes; evict a session or retry later"
            ));
        }
        let covered = session.covered_cols();
        let slot = Arc::new(Slot {
            session: RwLock::new(session),
            last_used: AtomicU64::new(0),
            mem: AtomicUsize::new(mem),
        });
        self.touch(&slot);
        let mut slots = lock(&self.slots);
        if slots.contains_key(name) {
            return Err(format!("session '{name}' already exists; Evict it first"));
        }
        slots.insert(name.to_string(), Arc::clone(&slot));
        drop(slots);
        self.metrics.opens.inc();
        let sm = self.metrics.session(name);
        sm.resident_bytes.set(mem as i64);
        sm.covered_cols.set(covered as i64);
        sm.subscribers.set(0);
        self.refresh_totals();
        Ok(slot)
    }

    /// Pre-append backpressure check: make room for roughly the incoming
    /// columns' bytes. The engine grows by O(incoming) sketch state per
    /// append, so the raw column size is the accounting proxy.
    pub fn admit_append(&self, name: &str, incoming_bytes: usize) -> Result<(), String> {
        if self.make_room(name, incoming_bytes) {
            Ok(())
        } else {
            self.metrics.refusals.inc();
            Err(format!(
                "memory budget exhausted: append of {incoming_bytes} bytes to '{name}' refused; evict a session or retry later"
            ))
        }
    }
}

/// Writes one framed serve message through the link's shared writer.
fn write_frame(writer: &Mutex<TcpStream>, msg: &ServeMessage) -> io::Result<()> {
    let payload = proto::encode(msg);
    let mut out = lock(writer);
    frame::write_to(&mut *out, &payload)
}

/// Validates the first frame of a link: a `Hello` inside the supported
/// version range that advertises [`CAP_SERVE`].
fn check_handshake(payload: &[u8]) -> Result<Hello, String> {
    match proto::decode(payload) {
        Ok(ServeMessage::Hello(h)) => {
            if h.version < MIN_PROTOCOL_VERSION || h.version > PROTOCOL_VERSION {
                Err(format!(
                    "unsupported protocol version {} (serving {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION})",
                    h.version
                ))
            } else if h.caps & CAP_SERVE == 0 {
                Err("peer does not advertise CAP_SERVE".to_string())
            } else {
                Ok(h)
            }
        }
        Ok(other) => Err(format!("expected Hello, got {other:?}")),
        Err(e) => Err(format!("bad handshake frame: {e}")),
    }
}

/// One client frame, dispatched against the registry. Returns the reply
/// to write, or `Err` only for faults of the *link* (a reply that cannot
/// be encoded does not exist; session-level failures become
/// [`ServeMessage::ServeError`] replies).
fn dispatch(
    registry: &Registry,
    conn_id: u64,
    writer: &Arc<Mutex<TcpStream>>,
    msg: ServeMessage,
) -> ServeMessage {
    let fail = |context: u64, message: String| ServeMessage::ServeError { context, message };
    match msg {
        ServeMessage::Open {
            name,
            window,
            step,
            threshold,
            config,
            data,
        } => match Session::open(data, window, step, threshold, config) {
            Ok(session) => match registry.open(&name, session) {
                Ok(slot) => {
                    let s = read_guard(&slot.session);
                    ServeMessage::Opened {
                        name,
                        covered_cols: s.covered_cols() as u64,
                        memory_bytes: s.memory_bytes() as u64,
                    }
                }
                Err(e) => fail(0, e),
            },
            Err(e) => fail(0, format!("open '{name}': {e:?}")),
        },
        ServeMessage::Append { name, data } => {
            let incoming = data.n_series() * data.len() * std::mem::size_of::<f64>();
            if let Err(e) = registry.admit_append(&name, incoming) {
                return fail(0, e);
            }
            match registry.get(&name) {
                Some(slot) => {
                    let t0 = std::time::Instant::now();
                    let outcome = write_guard(&slot.session).append(&data);
                    registry
                        .metrics
                        .drain_us
                        .observe(t0.elapsed().as_micros().min(u64::MAX as u128) as u64);
                    match outcome {
                        Ok(out) => {
                            slot.mem.store(out.memory_bytes, Ordering::Relaxed);
                            registry.metrics.appends.inc();
                            let sm = registry.metrics.session(&name);
                            sm.resident_bytes.set(out.memory_bytes as i64);
                            sm.covered_cols.set(out.covered_cols as i64);
                            registry.refresh_totals();
                            ServeMessage::Appended {
                                name,
                                covered_cols: out.covered_cols as u64,
                                windows_closed: out.windows_closed as u64,
                                memory_bytes: out.memory_bytes as u64,
                            }
                        }
                        Err(e) => fail(0, format!("append to '{name}': {e:?}")),
                    }
                }
                None => fail(0, format!("no session named '{name}'")),
            }
        }
        ServeMessage::Query {
            id,
            name,
            window,
            step,
            threshold,
        } => match registry.get(&name) {
            Some(slot) => {
                let t0 = std::time::Instant::now();
                let answer = read_guard(&slot.session).query(window, step, threshold);
                registry
                    .metrics
                    .query_us
                    .observe(t0.elapsed().as_micros().min(u64::MAX as u128) as u64);
                match answer {
                    Ok((covered, result)) => {
                        registry.metrics.queries.inc();
                        let n_windows = result.matrices.len();
                        let mut edges = Vec::new();
                        for (w, m) in result.matrices.iter().enumerate() {
                            edges.extend(m.edges().iter().map(|e| (w as u32, *e)));
                        }
                        ServeMessage::QueryResult {
                            id,
                            covered_cols: covered as u64,
                            n_windows: n_windows as u64,
                            edges,
                        }
                    }
                    Err(e) => fail(id, format!("query '{name}': {e:?}")),
                }
            }
            None => fail(id, format!("no session named '{name}'")),
        },
        ServeMessage::Subscribe { id, name } => match registry.get(&name) {
            Some(slot) => {
                let sink_writer = Arc::clone(writer);
                let next_window = write_guard(&slot.session).subscribe(
                    id,
                    conn_id,
                    Box::new(move |sub_id, w| {
                        let delta = ServeMessage::Delta {
                            id: sub_id,
                            window: w.index as u64,
                            edges: w.matrix.edges().to_vec(),
                        };
                        write_frame(&sink_writer, &delta).is_ok()
                    }),
                );
                registry.metrics.subscribes.inc();
                registry
                    .metrics
                    .session(&name)
                    .subscribers
                    .set(read_guard(&slot.session).n_subscribers() as i64);
                ServeMessage::Subscribed {
                    id,
                    next_window: next_window as u64,
                }
            }
            None => fail(id, format!("no session named '{name}'")),
        },
        ServeMessage::Evict { name } => {
            let existed = registry.evict(&name);
            ServeMessage::Evicted { name, existed }
        }
        ServeMessage::Ping(seq) => ServeMessage::Pong(seq),
        other => fail(0, format!("frame not valid client→daemon: {other:?}")),
    }
}

/// Serves one accepted link: handshake, then the frame loop. A frame that
/// fails to decode gets a `ServeError` and the loop continues — frames
/// are length-delimited, so the stream stays in sync. On link end, every
/// subscription owned by this connection is dropped.
fn handle_link(stream: TcpStream, registry: &Registry, conn_id: u64) -> io::Result<()> {
    stream.set_read_timeout(Some(HANDSHAKE_PATIENCE))?;
    stream.set_write_timeout(Some(WRITE_PATIENCE))?;
    let mut reader = stream.try_clone()?;
    let writer = Arc::new(Mutex::new(stream));

    let Some(first) = frame::read_from(&mut reader, MAX_HELLO_FRAME)? else {
        return Ok(()); // peer connected and left; nothing to tear down
    };
    if let Err(e) = check_handshake(&first) {
        let _ = write_frame(
            &writer,
            &ServeMessage::ServeError {
                context: 0,
                message: e.clone(),
            },
        );
        return Err(io::Error::other(e));
    }
    // The link is trusted; only the write patience stays.
    reader.set_read_timeout(None)?;

    let result = loop {
        match frame::read_from(&mut reader, proto::MAX_FRAME) {
            Ok(Some(payload)) => {
                let reply = match proto::decode(&payload) {
                    Ok(msg) => dispatch(registry, conn_id, &writer, msg),
                    Err(e) => ServeMessage::ServeError {
                        context: 0,
                        message: format!("bad frame: {e}"),
                    },
                };
                if let Err(e) = write_frame(&writer, &reply) {
                    break Err(e); // the link itself is gone
                }
            }
            Ok(None) => break Ok(()), // clean EOF
            Err(e) => break Err(e),
        }
    };
    for slot in registry.all_slots() {
        write_guard(&slot.session).drop_conn(conn_id);
    }
    result
}

/// Accepts links forever (or until `max_links` links have been accepted,
/// then drains them — the CI smoke mode), serving each on its own thread.
/// Per-link faults are logged and never take the daemon down.
pub fn serve(
    listener: TcpListener,
    registry: Arc<Registry>,
    max_links: Option<u64>,
) -> io::Result<()> {
    let mut handles = Vec::new();
    let mut accepted: u64 = 0;
    loop {
        if let Some(max) = max_links {
            if accepted >= max {
                break;
            }
        }
        let (stream, peer) = listener.accept()?;
        accepted += 1;
        let conn_id = accepted;
        let registry = Arc::clone(&registry);
        handles.push(std::thread::spawn(move || {
            if let Err(e) = handle_link(stream, &registry, conn_id) {
                eprintln!("dangoron-serve: link {conn_id} ({peer}): {e}");
            }
        }));
        handles.retain(|h| !h.is_finished());
    }
    for h in handles {
        let _ = h.join();
    }
    Ok(())
}

/// Binds an ephemeral local port and serves a registry on a background
/// thread — the in-process daemon used by the test suites and the bench
/// harness. Returns the bound address; the thread runs until the process
/// exits (or `max_links` links have come and gone).
pub fn spawn_local(
    registry: Arc<Registry>,
    max_links: Option<u64>,
) -> io::Result<std::net::SocketAddr> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    std::thread::spawn(move || {
        if let Err(e) = serve(listener, registry, max_links) {
            eprintln!("dangoron-serve: accept loop: {e}");
        }
    });
    Ok(addr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ServeClient;
    use dangoron::DangoronConfig;
    use tsdata::generators;

    fn cfg() -> DangoronConfig {
        DangoronConfig {
            basic_window: 20,
            ..Default::default()
        }
    }

    #[test]
    fn open_query_append_evict_roundtrip_over_tcp() {
        let registry = Arc::new(Registry::new(None));
        let addr = spawn_local(Arc::clone(&registry), None).unwrap();
        let mut client = ServeClient::connect(&addr.to_string(), Duration::from_secs(5)).unwrap();

        let full = generators::clustered_matrix(6, 200, 2, 0.5, 33).unwrap();
        let opened = client
            .open(
                "t",
                &full.slice_columns(0, 80).unwrap(),
                60,
                20,
                0.7,
                &cfg(),
            )
            .unwrap();
        assert_eq!(opened.covered_cols, 80);
        assert!(opened.memory_bytes > 0);
        assert_eq!(registry.n_sessions(), 1);

        let ack = client
            .append("t", &full.slice_columns(80, 200).unwrap())
            .unwrap();
        assert_eq!(ack.covered_cols, 200);
        assert!(ack.windows_closed > 0);

        let reply = client.query("t", 60, 20, 0.7).unwrap();
        assert_eq!(reply.covered_cols, 200);
        let fresh = dangoron::Dangoron::new(cfg())
            .unwrap()
            .execute(
                &full,
                sketch::SlidingQuery {
                    start: 0,
                    end: 200,
                    window: 60,
                    step: 20,
                    threshold: 0.7,
                },
            )
            .unwrap();
        let matrices = reply.matrices(6, 0.7, cfg().edge_rule);
        assert_eq!(matrices.len(), fresh.matrices.len());
        for (a, b) in matrices.iter().zip(&fresh.matrices) {
            assert_eq!(a.n_edges(), b.n_edges());
            for (ea, eb) in a.edges().iter().zip(b.edges()) {
                assert_eq!((ea.i, ea.j), (eb.i, eb.j));
                assert_eq!(ea.value.to_bits(), eb.value.to_bits());
            }
        }

        assert!(client.evict("t").unwrap());
        assert!(!client.evict("t").unwrap());
        assert!(client.query("t", 60, 20, 0.7).is_err());
    }

    #[test]
    fn duplicate_open_and_unknown_session_yield_structured_errors() {
        let registry = Arc::new(Registry::new(None));
        let addr = spawn_local(registry, None).unwrap();
        let mut client = ServeClient::connect(&addr.to_string(), Duration::from_secs(5)).unwrap();
        let data = generators::clustered_matrix(4, 80, 2, 0.5, 5).unwrap();
        client.open("dup", &data, 60, 20, 0.7, &cfg()).unwrap();
        let again = client.open("dup", &data, 60, 20, 0.7, &cfg());
        assert!(again.is_err());
        assert!(again.unwrap_err().to_string().contains("already exists"));
        let missing = client.append("ghost", &data);
        assert!(missing.unwrap_err().to_string().contains("no session"));
    }

    #[test]
    fn lru_eviction_frees_idle_sessions_and_backpressure_refuses_the_rest() {
        let data = generators::clustered_matrix(6, 120, 2, 0.5, 7).unwrap();
        let one = Session::open(data.clone(), 60, 20, 0.7, cfg())
            .unwrap()
            .memory_bytes();
        // Budget fits two sessions but not three.
        let registry = Arc::new(Registry::new(Some(one * 2 + one / 2)));
        let addr = spawn_local(Arc::clone(&registry), None).unwrap();
        let mut client = ServeClient::connect(&addr.to_string(), Duration::from_secs(5)).unwrap();
        client.open("a", &data, 60, 20, 0.7, &cfg()).unwrap();
        client.open("b", &data, 60, 20, 0.7, &cfg()).unwrap();
        // Touch "b" so "a" is the LRU victim.
        client.query("b", 60, 20, 0.7).unwrap();
        client.open("c", &data, 60, 20, 0.7, &cfg()).unwrap();
        assert_eq!(registry.n_sessions(), 2, "the LRU session was evicted");
        assert!(registry.get("a").is_none());
        assert!(registry.get("b").is_some());
        // A budget smaller than one session: open is refused outright.
        let tiny = Arc::new(Registry::new(Some(one / 4)));
        let addr = spawn_local(tiny, None).unwrap();
        let mut client = ServeClient::connect(&addr.to_string(), Duration::from_secs(5)).unwrap();
        let refused = client.open("x", &data, 60, 20, 0.7, &cfg());
        assert!(refused.unwrap_err().to_string().contains("memory budget"));
    }

    #[test]
    fn handshakes_without_cap_serve_or_bad_frames_are_rejected() {
        let registry = Arc::new(Registry::new(None));
        let addr = spawn_local(registry, None).unwrap();
        // A v4 Hello without CAP_SERVE: refused with a structured error.
        let stream = TcpStream::connect(addr).unwrap();
        let mut io = (stream.try_clone().unwrap(), stream);
        let hello = proto::encode(&ServeMessage::Hello(Hello {
            version: PROTOCOL_VERSION,
            caps: 0,
        }));
        frame::write_to(&mut io.1, &hello).unwrap();
        let reply = frame::read_from(&mut io.0, proto::MAX_FRAME)
            .unwrap()
            .unwrap();
        match proto::decode(&reply).unwrap() {
            ServeMessage::ServeError { message, .. } => assert!(message.contains("CAP_SERVE")),
            other => panic!("expected ServeError, got {other:?}"),
        }
        // A garbage post-handshake frame: ServeError, and the link lives on.
        let mut client = ServeClient::connect(&addr.to_string(), Duration::from_secs(5)).unwrap();
        client.send_raw_frame(&[250, 1, 2, 3]).unwrap();
        let err = client.read_reply().unwrap_err();
        assert!(err.to_string().contains("bad frame"));
        assert!(
            client.evict("nothing").is_ok(),
            "link survived the bad frame"
        );
    }
}
