//! The serving tier: resident multi-tenant correlation sessions.
//!
//! A one-shot `dangoron` run pays the prepare phase — sketch prefixes,
//! pair sketches, Eq. 2 cost prefixes, the pivot table — for every
//! query. But that state is *query-independent*: it depends on the data
//! and the engine config, never on `(window, step, threshold)`. This
//! crate keeps it resident: a [`session::Session`] owns one
//! [`dangoron::StreamingDangoron`], accepts appends, and answers any
//! number of concurrent ad-hoc queries from the shared sketches
//! ([`dangoron::StreamingDangoron::query_shared`]) — each paying only
//! the pruned walk. Subscriptions push per-window edge *deltas* as
//! appends close windows, never re-emitting whole matrices.
//!
//! The `dangoron-serve` daemon ([`server`]) hosts many named sessions
//! with per-session memory accounting, idle-LRU eviction under a budget,
//! and append backpressure (the `Appended` ack). The wire format
//! ([`proto`]) is protocol v4: session frames (tags 11+) behind
//! [`dist::proto::CAP_SERVE`], layered on the shard tier's transport,
//! handshake, heartbeats, and decode hardening. [`client::ServeClient`]
//! is the synchronous client; it shares the shard tier's dial/backoff
//! and reconnect loops.
//!
//! Determinism contract: a shared query's edges are **bit-identical** to
//! a fresh one-shot run over the covered column prefix, and a
//! subscription's reassembled deltas are bit-identical to the full
//! per-window matrices — `tests/serve_determinism.rs` and this crate's
//! test suites enforce both under concurrency, disconnects, and seeded
//! link chaos.

pub mod client;
pub mod http;
pub mod metrics;
pub mod proto;
pub mod server;
pub mod session;

pub use client::{AppendAck, OpenAck, QueryReply, ServeClient, WindowDelta};
pub use metrics::{ServeMetrics, SessionMetrics};
pub use proto::ServeMessage;
pub use server::{serve, spawn_local, Registry, Slot};
pub use session::{AppendOutcome, Session};
