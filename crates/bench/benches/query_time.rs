//! Criterion version of E1: pure query time, Dangoron vs TSUBASA.
//!
//! Preparation (sketch building) happens outside the measured closure,
//! matching the paper's "pure query time" methodology.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dangoron::BoundMode;
use eval::workloads;

fn bench_query_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_query_time");
    group.sample_size(10);
    for n in [16usize, 32] {
        let w = workloads::climate(n, 24 * 60, 0.9, 2020).expect("workload");

        let engine = bench::common::dangoron_engine(&w, BoundMode::PaperJump { slack: 0.0 });
        let prep = engine.prepare(&w.data, w.query).expect("prepare");
        group.bench_with_input(BenchmarkId::new("dangoron", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(engine.run(&prep)))
        });

        let tsubasa = bench::common::tsubasa_engine(&w);
        let tprep = tsubasa.prepare(&w.data, w.query).expect("prepare");
        group.bench_with_input(BenchmarkId::new("tsubasa", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(tsubasa.run(&tprep)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_time);
criterion_main!(benches);
