//! Criterion version of E7: pruning-mechanism ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use dangoron::config::{HorizontalConfig, PivotStrategy};
use dangoron::{BoundMode, Dangoron, DangoronConfig};
use eval::workloads;

fn bench_ablation(c: &mut Criterion) {
    let w = workloads::climate(16, 24 * 60, 0.9, 2020).expect("workload");
    let mut group = c.benchmark_group("e7_ablation");
    group.sample_size(10);

    let variants: Vec<(&str, DangoronConfig)> = vec![
        (
            "exhaustive",
            DangoronConfig {
                basic_window: w.basic_window,
                bound: BoundMode::Exhaustive,
                ..Default::default()
            },
        ),
        (
            "jump",
            DangoronConfig {
                basic_window: w.basic_window,
                bound: BoundMode::PaperJump { slack: 0.0 },
                ..Default::default()
            },
        ),
        (
            "jump_triangle",
            DangoronConfig {
                basic_window: w.basic_window,
                bound: BoundMode::PaperJump { slack: 0.0 },
                horizontal: Some(HorizontalConfig {
                    n_pivots: 2,
                    strategy: PivotStrategy::Evenly,
                }),
                ..Default::default()
            },
        ),
    ];
    for (name, config) in variants {
        let engine = Dangoron::new(config).expect("valid config");
        let prep = engine.prepare(&w.data, w.query).expect("prepare");
        group.bench_function(name, |b| b.iter(|| std::hint::black_box(engine.run(&prep))));
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
