//! Criterion version of E6's costs: Tomborg generation plus a Dangoron run
//! over a generated case.

use criterion::{criterion_group, criterion_main, Criterion};
use dangoron::BoundMode;
use eval::workloads;
use tomborg::suite::smoke_suite;

fn bench_tomborg(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_tomborg");
    group.sample_size(10);
    let cases = smoke_suite(10, 512, 42);

    group.bench_function("generate_block_concentrated", |b| {
        b.iter(|| std::hint::black_box(cases[0].generate().unwrap()))
    });

    let w = workloads::from_tomborg(&cases[0], 0.8).expect("workload");
    let engine = bench::common::dangoron_engine(&w, BoundMode::PaperJump { slack: 0.0 });
    let prep = engine.prepare(&w.data, w.query).expect("prepare");
    group.bench_function("dangoron_on_tomborg", |b| {
        b.iter(|| std::hint::black_box(engine.run(&prep)))
    });
    group.finish();
}

criterion_group!(benches, bench_tomborg);
criterion_main!(benches);
