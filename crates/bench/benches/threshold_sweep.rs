//! Criterion version of E4: Dangoron query time across thresholds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dangoron::BoundMode;
use eval::workloads;

fn bench_threshold_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_threshold");
    group.sample_size(10);
    for beta in [0.5f64, 0.7, 0.9, 0.95] {
        let w = workloads::climate(16, 24 * 60, beta, 2020).expect("workload");
        let engine = bench::common::dangoron_engine(&w, BoundMode::PaperJump { slack: 0.0 });
        let prep = engine.prepare(&w.data, w.query).expect("prepare");
        group.bench_with_input(
            BenchmarkId::new("dangoron", format!("beta{beta}")),
            &beta,
            |b, _| b.iter(|| std::hint::black_box(engine.run(&prep))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_threshold_sweep);
criterion_main!(benches);
