//! Criterion version of E2's engine costs: full execute of the
//! accuracy-comparison engines on one climate workload.

use baselines::parcorr::ParCorr;
use baselines::statstream::StatStream;
use baselines::SlidingEngine;
use criterion::{criterion_group, criterion_main, Criterion};
use dangoron::BoundMode;
use eval::engines::DangoronEngine;
use eval::workloads;

fn bench_accuracy_engines(c: &mut Criterion) {
    let w = workloads::climate(12, 24 * 60, 0.85, 2020).expect("workload");
    let mut group = c.benchmark_group("e2_engines");
    group.sample_size(10);

    let dang = DangoronEngine {
        config: dangoron::DangoronConfig {
            basic_window: w.basic_window,
            bound: BoundMode::PaperJump { slack: 0.0 },
            ..Default::default()
        },
    };
    group.bench_function("dangoron_execute", |b| {
        b.iter(|| std::hint::black_box(dang.execute(&w.data, w.query).unwrap()))
    });

    let pc = ParCorr {
        dim: 128,
        seed: 7,
        margin: 0.05,
        verify: true,
    };
    group.bench_function("parcorr_execute", |b| {
        b.iter(|| std::hint::black_box(pc.execute(&w.data, w.query).unwrap()))
    });

    let ss = StatStream {
        coeffs: 16,
        margin: 0.05,
        verify: true,
    };
    group.bench_function("statstream_execute", |b| {
        b.iter(|| std::hint::black_box(ss.execute(&w.data, w.query).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_accuracy_engines);
criterion_main!(benches);
