//! Criterion version of E9: basic-window width ablation, including the
//! sketch-build (prepare) cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dangoron::{BoundMode, Dangoron, DangoronConfig};
use eval::workloads;

fn bench_basic_window(c: &mut Criterion) {
    let w = workloads::climate(12, 24 * 60, 0.9, 2020).expect("workload");
    let mut group = c.benchmark_group("e9_basic_window");
    group.sample_size(10);
    for b_width in [6usize, 12, 24] {
        let engine = Dangoron::new(DangoronConfig {
            basic_window: b_width,
            bound: BoundMode::PaperJump { slack: 0.0 },
            ..Default::default()
        })
        .expect("valid config");

        group.bench_with_input(BenchmarkId::new("prepare", b_width), &b_width, |b, _| {
            b.iter(|| std::hint::black_box(engine.prepare(&w.data, w.query).unwrap()))
        });

        let prep = engine.prepare(&w.data, w.query).expect("prepare");
        group.bench_with_input(BenchmarkId::new("query", b_width), &b_width, |b, _| {
            b.iter(|| std::hint::black_box(engine.run(&prep)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_basic_window);
criterion_main!(benches);
