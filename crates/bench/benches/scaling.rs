//! Criterion version of E8: scaling with N.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dangoron::BoundMode;
use eval::workloads;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_scaling");
    group.sample_size(10);
    for n in [8usize, 16, 32] {
        let w = workloads::climate(n, 24 * 60, 0.9, 2020).expect("workload");
        let engine = bench::common::dangoron_engine(&w, BoundMode::PaperJump { slack: 0.0 });
        let prep = engine.prepare(&w.data, w.query).expect("prepare");
        group.throughput(Throughput::Elements((n * (n - 1) / 2) as u64));
        group.bench_with_input(BenchmarkId::new("dangoron", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(engine.run(&prep)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
