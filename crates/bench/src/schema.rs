//! Validation of `dangoron-bench-v1` perf records.
//!
//! The workspace has no JSON-parsing dependency (see `crates/shims`), so
//! the perf JSON is emitted by hand in [`crate::perf`]; this module is the
//! matching consumer-side check the CI smoke job runs against the records
//! it produces. It is a structural validator, not a full JSON parser: it
//! checks bracket balance outside strings, the schema tag, and the
//! presence + rough type of every required key — enough to catch emitter
//! regressions (a dropped comma, a renamed key, a missing section) without
//! pretending to be serde.

/// Keys every `dangoron-bench-v1` record must carry at the top level.
const TOP_LEVEL_KEYS: [(&str, ValueKind); 6] = [
    ("workload", ValueKind::String),
    ("n_series", ValueKind::Number),
    ("n_cols", ValueKind::Number),
    ("n_windows", ValueKind::Number),
    ("hardware_threads", ValueKind::Number),
    ("samples", ValueKind::Array),
];

/// Keys every entry of `samples` must carry.
const SAMPLE_KEYS: [(&str, ValueKind); 5] = [
    ("threads", ValueKind::Number),
    ("prepare_ms", ValueKind::Object),
    ("query_ms", ValueKind::Object),
    ("skip_fraction", ValueKind::Number),
    ("total_edges", ValueKind::Number),
];

/// Keys the `kernels` section must carry when present.
const KERNEL_KEYS: [(&str, ValueKind); 5] = [
    ("backend", ValueKind::String),
    ("len", ValueKind::Number),
    ("dot_speedup", ValueKind::Number),
    ("moments_speedup", ValueKind::Number),
    ("prefix_build_speedup", ValueKind::Number),
];

/// Keys the `streaming_pivots` section must carry when present.
const STREAMING_KEYS: [(&str, ValueKind); 8] = [
    ("threads", ValueKind::Number),
    ("open_ms", ValueKind::Object),
    ("drain_ms", ValueKind::Object),
    ("windows", ValueKind::Number),
    ("skip_fraction", ValueKind::Number),
    ("pruned_by_triangle", ValueKind::Number),
    ("pairs_skipped_entirely", ValueKind::Number),
    ("total_edges", ValueKind::Number),
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ValueKind {
    String,
    Number,
    Array,
    Object,
}

impl ValueKind {
    fn matches(&self, first: char) -> bool {
        match self {
            ValueKind::String => first == '"',
            ValueKind::Number => first.is_ascii_digit() || first == '-',
            ValueKind::Array => first == '[',
            ValueKind::Object => first == '{',
        }
    }

    fn name(&self) -> &'static str {
        match self {
            ValueKind::String => "string",
            ValueKind::Number => "number",
            ValueKind::Array => "array",
            ValueKind::Object => "object",
        }
    }
}

/// Validates a perf record against the `dangoron-bench-v1` schema.
///
/// `require_streaming` additionally demands the `streaming_pivots`
/// section (records written before the streaming-pivots experiment lack
/// it), and `require_kernels` the `kernels` section (absent before the
/// SIMD-kernel experiment); present sections are always checked.
pub fn validate(json: &str, require_streaming: bool, require_kernels: bool) -> Result<(), String> {
    check_balance(json)?;
    let schema =
        string_value(json, "schema").ok_or_else(|| "missing \"schema\" tag".to_string())?;
    if schema != "dangoron-bench-v1" {
        return Err(format!("unknown schema {schema:?}"));
    }
    for (key, kind) in TOP_LEVEL_KEYS {
        check_key(json, key, kind)?;
    }
    // At least one sample object, carrying every per-sample key.
    let samples = after_key(json, "samples").expect("checked above");
    if !samples.trim_start().starts_with("[")
        || samples.trim_start()[1..].trim_start().starts_with(']')
    {
        return Err("\"samples\" must be a non-empty array".to_string());
    }
    for (key, kind) in SAMPLE_KEYS {
        check_key(samples, key, kind)?;
    }
    match after_key(json, "streaming_pivots") {
        Some(section) => {
            // Confine the key checks to the section's own object — the
            // later `samples` entries share key names (`skip_fraction`,
            // `total_edges`) and must not satisfy them by accident.
            let body = object_body(section)
                .ok_or_else(|| "\"streaming_pivots\" must be an object".to_string())?;
            for (key, kind) in STREAMING_KEYS {
                check_key(body, key, kind)?;
            }
        }
        None if require_streaming => {
            return Err("missing required \"streaming_pivots\" section".to_string())
        }
        None => {}
    }
    match after_key(json, "kernels") {
        Some(section) => {
            let body =
                object_body(section).ok_or_else(|| "\"kernels\" must be an object".to_string())?;
            for (key, kind) in KERNEL_KEYS {
                check_key(body, key, kind)?;
            }
        }
        None if require_kernels => return Err("missing required \"kernels\" section".to_string()),
        None => {}
    }
    Ok(())
}

/// Everything after `"key":`, or `None` when the key never appears.
fn after_key<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let marker = format!("\"{key}\":");
    json.find(&marker).map(|at| &json[at + marker.len()..])
}

/// The string value of `"key": "…"`.
fn string_value<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let rest = after_key(json, key)?.trim_start();
    let rest = rest.strip_prefix('"')?;
    rest.split('"').next()
}

/// The text of the object starting at the first non-space character of
/// `rest` (which must be `{`), up to and including its matching `}`.
fn object_body(rest: &str) -> Option<&str> {
    let rest = rest.trim_start();
    if !rest.starts_with('{') {
        return None;
    }
    let mut depth = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    for (at, c) in rest.char_indices() {
        if in_string {
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[..=at]);
                }
            }
            _ => {}
        }
    }
    None
}

fn check_key(json: &str, key: &str, kind: ValueKind) -> Result<(), String> {
    let rest = after_key(json, key).ok_or_else(|| format!("missing key \"{key}\""))?;
    let first = rest
        .trim_start()
        .chars()
        .next()
        .ok_or_else(|| format!("key \"{key}\" has no value"))?;
    if !kind.matches(first) {
        return Err(format!(
            "key \"{key}\" should be a {}, found {first:?}",
            kind.name()
        ));
    }
    Ok(())
}

/// Brace/bracket balance outside string literals.
fn check_balance(json: &str) -> Result<(), String> {
    let (mut depth_obj, mut depth_arr) = (0i64, 0i64);
    let mut in_string = false;
    let mut escaped = false;
    for c in json.chars() {
        if in_string {
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => depth_obj += 1,
            '}' => depth_obj -= 1,
            '[' => depth_arr += 1,
            ']' => depth_arr -= 1,
            _ => {}
        }
        if depth_obj < 0 || depth_arr < 0 {
            return Err("unbalanced brackets".to_string());
        }
    }
    if depth_obj != 0 || depth_arr != 0 || in_string {
        return Err("unterminated object, array or string".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal(streaming: bool, kernels: bool) -> String {
        let streaming_section = if streaming {
            "\"streaming_pivots\": {\"threads\": 1, \
             \"open_ms\": {\"median\": 1.0, \"min\": 1.0, \"max\": 1.0}, \
             \"drain_ms\": {\"median\": 2.0, \"min\": 2.0, \"max\": 2.0}, \
             \"windows\": 3, \"skip_fraction\": 0.25, \"pruned_by_triangle\": 7, \
             \"pairs_skipped_entirely\": 2, \"total_edges\": 9},"
        } else {
            ""
        };
        let kernels_section = if kernels {
            "\"kernels\": {\"backend\": \"avx2+fma\", \"len\": 16384, \
             \"dot_speedup\": 9.1, \"moments_speedup\": 2.0, \
             \"prefix_build_speedup\": 13.0},"
        } else {
            ""
        };
        format!(
            "{{\"schema\": \"dangoron-bench-v1\", \"workload\": \"w\", \
             \"n_series\": 4, \"n_cols\": 100, \"n_windows\": 3, \
             \"hardware_threads\": 1, {streaming_section} {kernels_section} \
             \"samples\": [{{\"threads\": 1, \
             \"prepare_ms\": {{\"median\": 1.0, \"min\": 1.0, \"max\": 1.0}}, \
             \"query_ms\": {{\"median\": 1.0, \"min\": 1.0, \"max\": 1.0}}, \
             \"skip_fraction\": 0.5, \"total_edges\": 4}}]}}"
        )
    }

    #[test]
    fn accepts_valid_records() {
        validate(&minimal(false, false), false, false).unwrap();
        validate(&minimal(true, false), false, false).unwrap();
        validate(&minimal(true, false), true, false).unwrap();
        validate(&minimal(true, true), true, true).unwrap();
        validate(&minimal(false, true), false, true).unwrap();
    }

    #[test]
    fn rejects_missing_streaming_when_required() {
        let err = validate(&minimal(false, true), true, false).unwrap_err();
        assert!(err.contains("streaming_pivots"), "{err}");
    }

    #[test]
    fn rejects_missing_kernels_when_required() {
        let err = validate(&minimal(true, false), false, true).unwrap_err();
        assert!(err.contains("kernels"), "{err}");
        // Damaged kernels section is caught even when not required.
        let bad = minimal(false, true).replace("\"dot_speedup\": 9.1,", "");
        assert!(validate(&bad, false, false).is_err());
        // Wrong type in the section.
        let bad = minimal(false, true).replace("\"len\": 16384", "\"len\": \"big\"");
        assert!(validate(&bad, false, false).is_err());
    }

    #[test]
    fn rejects_structural_damage() {
        // Bad schema tag.
        let bad = minimal(false, false).replace("dangoron-bench-v1", "v0");
        assert!(validate(&bad, false, false).is_err());
        // Dropped key.
        let bad = minimal(false, false).replace("\"n_windows\": 3,", "");
        assert!(validate(&bad, false, false).is_err());
        // Wrong type.
        let bad = minimal(false, false).replace("\"n_series\": 4", "\"n_series\": \"four\"");
        assert!(validate(&bad, false, false).is_err());
        // Unbalanced braces.
        let full = minimal(false, false);
        assert!(validate(&full[..full.len() - 1], false, false).is_err());
        // Empty samples.
        let bad = "{\"schema\": \"dangoron-bench-v1\", \"workload\": \"w\", \
                   \"n_series\": 1, \"n_cols\": 1, \"n_windows\": 1, \
                   \"hardware_threads\": 1, \"samples\": []}";
        assert!(validate(bad, false, false).is_err());
        // Damaged streaming section is caught even when not required.
        let bad = minimal(true, false).replace("\"pruned_by_triangle\": 7,", "");
        assert!(validate(&bad, false, false).is_err());
    }

    #[test]
    fn streaming_keys_cannot_be_satisfied_by_samples() {
        // `skip_fraction` and `total_edges` also appear in every samples
        // entry; dropping them from the streaming section must still fail
        // (the check is confined to the section's own object).
        let bad = minimal(true, false)
            .replace("\"skip_fraction\": 0.25, ", "")
            .replace(
                "\"pairs_skipped_entirely\": 2, \"total_edges\": 9",
                "\"pairs_skipped_entirely\": 2",
            );
        let err = validate(&bad, true, false).unwrap_err();
        assert!(
            err.contains("skip_fraction") || err.contains("total_edges"),
            "{err}"
        );
    }

    #[test]
    fn real_emitter_output_validates() {
        // The actual perf emitter and this validator must stay in sync.
        use crate::perf::{KernelsPerf, PerfRecord, StreamingPerf, ThreadSample};
        use eval::timing::TimingSummary;
        use std::time::Duration;
        let t = TimingSummary {
            reps: 1,
            median: Duration::from_millis(5),
            min: Duration::from_millis(4),
            max: Duration::from_millis(6),
        };
        let mut r = PerfRecord {
            workload: "unit \"test\"".to_string(),
            n_series: 4,
            n_cols: 128,
            n_windows: 5,
            hardware_threads: 2,
            samples: vec![ThreadSample {
                threads: 1,
                prepare: t,
                query: t,
                skip_fraction: 0.5,
                total_edges: 10,
            }],
            streaming: None,
            kernels: None,
        };
        validate(&r.to_json(), false, false).unwrap();
        assert!(validate(&r.to_json(), true, false).is_err());
        assert!(validate(&r.to_json(), false, true).is_err());
        r.streaming = Some(StreamingPerf {
            threads: 2,
            open: t,
            drain: t,
            windows: 5,
            skip_fraction: 0.25,
            pruned_by_triangle: 3,
            pairs_skipped_entirely: 1,
            total_edges: 10,
        });
        r.kernels = Some(KernelsPerf {
            backend: "avx2+fma".to_string(),
            len: 16384,
            dot_speedup: 9.2,
            moments_speedup: 2.0,
            prefix_build_speedup: 13.1,
        });
        validate(&r.to_json(), true, true).unwrap();
    }
}
