//! Validation of `dangoron-bench-v1` perf records.
//!
//! The workspace has no JSON-parsing dependency (see `crates/shims`), so
//! the perf JSON is emitted by hand in [`crate::perf`]; this module is the
//! matching consumer-side check the CI smoke job runs against the records
//! it produces. It is a structural validator, not a full JSON parser: it
//! checks bracket balance outside strings, the schema tag, and the
//! presence + rough type of every required key — enough to catch emitter
//! regressions (a dropped comma, a renamed key, a missing section) without
//! pretending to be serde.

/// Keys every `dangoron-bench-v1` record must carry at the top level.
const TOP_LEVEL_KEYS: [(&str, ValueKind); 7] = [
    ("workload", ValueKind::String),
    ("n_series", ValueKind::Number),
    ("n_cols", ValueKind::Number),
    ("n_windows", ValueKind::Number),
    ("hardware_threads", ValueKind::Number),
    ("hardware", ValueKind::Object),
    ("samples", ValueKind::Array),
];

/// Keys the `hardware` context section must carry (required since the
/// distributed-tier records; see `docs/bench-schema.md`).
const HARDWARE_KEYS: [(&str, ValueKind); 2] = [
    ("n_physical_cores", ValueKind::Number),
    ("flags", ValueKind::Array),
];

/// Keys the `shards` section must carry when present (written by the
/// distributed E13 run and by `harness merge`).
const SHARDS_KEYS: [(&str, ValueKind); 7] = [
    ("n_shards", ValueKind::Number),
    ("evaluated", ValueKind::Number),
    ("total_cells", ValueKind::Number),
    ("merged_edges", ValueKind::Number),
    ("prepare_ms_max", ValueKind::Number),
    ("query_ms_max", ValueKind::Number),
    ("replans", ValueKind::Number),
];

/// Keys the `shards` section *may* carry — introduced after PR 4, so
/// older records legitimately lack them, but when present they must have
/// the right shape. `transport`/`assign_bytes`/`load_bytes`/
/// `fat_assign_bytes` arrived with the TCP transport + `Load` frame;
/// `late_joins`/`steals`/`heartbeats` with the elastic tier (PR 6);
/// `hardware_mismatch` is written by `harness merge` when per-shard
/// records disagree on their `hardware` sections.
const SHARDS_OPTIONAL_KEYS: [(&str, ValueKind); 12] = [
    ("workers", ValueKind::Number),
    ("mode", ValueKind::String),
    ("transport", ValueKind::String),
    ("assignments", ValueKind::Number),
    ("assign_bytes", ValueKind::Number),
    ("load_bytes", ValueKind::Number),
    ("fat_assign_bytes", ValueKind::Number),
    ("late_joins", ValueKind::Number),
    ("steals", ValueKind::Number),
    ("heartbeats", ValueKind::Number),
    ("bit_identical", ValueKind::Bool),
    ("hardware_mismatch", ValueKind::Bool),
];

/// Keys the per-shard `shard` section must carry when present (records
/// written by one worker's shard, the inputs of `harness merge`).
const SHARD_KEYS: [(&str, ValueKind); 10] = [
    ("index", ValueKind::Number),
    ("n_shards", ValueKind::Number),
    ("pair_start", ValueKind::Number),
    ("pair_end", ValueKind::Number),
    ("evaluated", ValueKind::Number),
    ("total_cells", ValueKind::Number),
    ("edges", ValueKind::Number),
    ("attempt", ValueKind::Number),
    ("prepare_ms", ValueKind::Number),
    ("query_ms", ValueKind::Number),
];

/// Keys every entry of `samples` must carry.
const SAMPLE_KEYS: [(&str, ValueKind); 5] = [
    ("threads", ValueKind::Number),
    ("prepare_ms", ValueKind::Object),
    ("query_ms", ValueKind::Object),
    ("skip_fraction", ValueKind::Number),
    ("total_edges", ValueKind::Number),
];

/// Keys the `kernels` section must carry when present.
const KERNEL_KEYS: [(&str, ValueKind); 5] = [
    ("backend", ValueKind::String),
    ("len", ValueKind::Number),
    ("dot_speedup", ValueKind::Number),
    ("moments_speedup", ValueKind::Number),
    ("prefix_build_speedup", ValueKind::Number),
];

/// Keys the `streaming_pivots` section must carry when present.
const STREAMING_KEYS: [(&str, ValueKind); 8] = [
    ("threads", ValueKind::Number),
    ("open_ms", ValueKind::Object),
    ("drain_ms", ValueKind::Object),
    ("windows", ValueKind::Number),
    ("skip_fraction", ValueKind::Number),
    ("pruned_by_triangle", ValueKind::Number),
    ("pairs_skipped_entirely", ValueKind::Number),
    ("total_edges", ValueKind::Number),
];

/// Keys the `obs` section must carry when present (written by every
/// `harness bench` run since the telemetry PR: a scrape of the process-
/// wide stage registry after the timed runs, proving the exposition
/// renders, parses strictly, and saw the engine's stage observations).
const OBS_KEYS: [(&str, ValueKind); 8] = [
    ("families", ValueKind::Number),
    ("series", ValueKind::Number),
    ("scrape_ms", ValueKind::Number),
    ("exposition_bytes", ValueKind::Number),
    ("exposition_valid", ValueKind::Bool),
    ("walk_observations", ValueKind::Number),
    ("exec_chunks", ValueKind::Number),
    ("steal_attempts", ValueKind::Number),
];

/// Keys the `serve` section must carry when present (written by `harness
/// bench --serve`: the serving tier's shared-prepare amortisation panel).
const SERVE_KEYS: [(&str, ValueKind); 8] = [
    ("queries", ValueKind::Number),
    ("open_ms", ValueKind::Number),
    ("resident_ms", ValueKind::Number),
    ("one_shot_ms", ValueKind::Number),
    ("shared_prepare_speedup", ValueKind::Number),
    ("memory_bytes", ValueKind::Number),
    ("total_edges", ValueKind::Number),
    ("bit_identical", ValueKind::Bool),
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ValueKind {
    String,
    Number,
    Array,
    Object,
    Bool,
}

impl ValueKind {
    fn matches(&self, first: char) -> bool {
        match self {
            ValueKind::String => first == '"',
            ValueKind::Number => first.is_ascii_digit() || first == '-',
            ValueKind::Array => first == '[',
            ValueKind::Object => first == '{',
            ValueKind::Bool => first == 't' || first == 'f',
        }
    }

    fn name(&self) -> &'static str {
        match self {
            ValueKind::String => "string",
            ValueKind::Number => "number",
            ValueKind::Array => "array",
            ValueKind::Object => "object",
            ValueKind::Bool => "bool",
        }
    }
}

/// Which optional sections a validation run additionally demands.
///
/// Records written before a section's introducing PR legitimately lack
/// it; CI requires every section its own emitter produces, so a dropped
/// section is an emitter regression, not a schema downgrade.
#[derive(Debug, Clone, Copy, Default)]
pub struct Requires {
    /// Demand the `streaming_pivots` section.
    pub streaming: bool,
    /// Demand the `kernels` section.
    pub kernels: bool,
    /// Demand the `shards` section (distributed tier / merged records).
    pub shards: bool,
    /// Demand the `serve` section (resident-session amortisation panel).
    pub serve: bool,
    /// Demand the `obs` section (telemetry scrape self-check).
    pub obs: bool,
}

/// Validates a perf record against the `dangoron-bench-v1` schema.
///
/// `requires` names the optional sections this run demands
/// ([`Requires`]); present sections are always checked, including the
/// per-shard `shard` section `harness merge` consumes.
pub fn validate(json: &str, requires: Requires) -> Result<(), String> {
    check_balance(json)?;
    let schema =
        string_value(json, "schema").ok_or_else(|| "missing \"schema\" tag".to_string())?;
    if schema != "dangoron-bench-v1" {
        return Err(format!("unknown schema {schema:?}"));
    }
    for (key, kind) in TOP_LEVEL_KEYS {
        check_key(json, key, kind)?;
    }
    check_section(json, "hardware", &HARDWARE_KEYS, true)?;
    // At least one sample object, carrying every per-sample key.
    let samples = after_key(json, "samples").expect("checked above");
    if !samples.trim_start().starts_with("[")
        || samples.trim_start()[1..].trim_start().starts_with(']')
    {
        return Err("\"samples\" must be a non-empty array".to_string());
    }
    for (key, kind) in SAMPLE_KEYS {
        check_key(samples, key, kind)?;
    }
    check_section(
        json,
        "streaming_pivots",
        &STREAMING_KEYS,
        requires.streaming,
    )?;
    check_section(json, "kernels", &KERNEL_KEYS, requires.kernels)?;
    check_section(json, "shards", &SHARDS_KEYS, requires.shards)?;
    if let Some(body) = after_key(json, "shards").and_then(object_body) {
        for (key, kind) in SHARDS_OPTIONAL_KEYS {
            check_optional_key(body, key, kind)?;
        }
    }
    check_section(json, "serve", &SERVE_KEYS, requires.serve)?;
    check_section(json, "obs", &OBS_KEYS, requires.obs)?;
    check_section(json, "shard", &SHARD_KEYS, false)?;
    Ok(())
}

/// Keys every finding in a `dangoron-lint-v2` report must carry.
const LINT_FINDING_KEYS: [(&str, ValueKind); 6] = [
    ("file", ValueKind::String),
    ("line", ValueKind::Number),
    ("rule", ValueKind::String),
    ("severity", ValueKind::String),
    ("message", ValueKind::String),
    ("trace", ValueKind::Array),
];

/// Validates a `dangoron-lint-v2` report (written by `dangoron-lint
/// --json`; see `docs/lint-rules.md` for the schema).
///
/// The structural check always runs: schema tag, the `deny`/`warnings`
/// counters, the stable per-finding keys, and that the counters agree
/// with the findings' `severity` values — a renamed or dropped key is a
/// schema regression CI must catch even on a clean tree. With
/// `require_clean`, the gate additionally demands zero deny findings
/// and zero warnings: the `--require-lint-clean` CI contract.
pub fn validate_lint_report(json: &str, require_clean: bool) -> Result<(), String> {
    check_balance(json)?;
    let schema =
        string_value(json, "schema").ok_or_else(|| "missing \"schema\" tag".to_string())?;
    if schema != "dangoron-lint-v2" {
        return Err(format!("unknown schema {schema:?}"));
    }
    check_key(json, "deny", ValueKind::Number)?;
    check_key(json, "warnings", ValueKind::Number)?;
    check_key(json, "findings", ValueKind::Array)?;
    let deny = num_value(json, "deny").ok_or_else(|| "unreadable \"deny\" count".to_string())?;
    let warnings =
        num_value(json, "warnings").ok_or_else(|| "unreadable \"warnings\" count".to_string())?;
    let arr = array_body(after_key(json, "findings").expect("checked above"))
        .ok_or_else(|| "\"findings\" must be an array".to_string())?;
    let (mut denies_seen, mut warnings_seen) = (0.0, 0.0);
    let mut rest = arr;
    while let Some(at) = rest.find('{') {
        let obj =
            object_body(&rest[at..]).ok_or_else(|| "unterminated finding object".to_string())?;
        for (key, kind) in LINT_FINDING_KEYS {
            check_key(obj, key, kind)
                .map_err(|e| format!("finding #{}: {e}", denies_seen + warnings_seen))?;
        }
        match string_value(obj, "severity") {
            Some("deny") => denies_seen += 1.0,
            Some("warning") => warnings_seen += 1.0,
            other => return Err(format!("finding has unknown severity {other:?}")),
        }
        rest = &rest[at + obj.len()..];
    }
    if denies_seen != deny || warnings_seen != warnings {
        return Err(format!(
            "counters disagree with findings: deny {deny} vs {denies_seen} seen, \
             warnings {warnings} vs {warnings_seen} seen"
        ));
    }
    if require_clean && (deny != 0.0 || warnings != 0.0) {
        return Err(format!(
            "tree is not lint-clean: {deny} deny finding(s), {warnings} warning(s)"
        ));
    }
    Ok(())
}

/// The text of the array starting at the first non-space character of
/// `rest` (which must be `[`), up to and including its matching `]` —
/// the array twin of [`object_body`].
fn array_body(rest: &str) -> Option<&str> {
    let rest = rest.trim_start();
    if !rest.starts_with('[') {
        return None;
    }
    let mut depth = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    for (at, c) in rest.char_indices() {
        if in_string {
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[..=at]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Checks one named object section: every listed key must appear inside
/// the section's **own** object — later `samples` entries share key names
/// (`skip_fraction`, `total_edges`, `threads`) and must not satisfy them
/// by accident.
fn check_section(
    json: &str,
    name: &str,
    keys: &[(&str, ValueKind)],
    required: bool,
) -> Result<(), String> {
    match after_key(json, name) {
        Some(section) => {
            let body =
                object_body(section).ok_or_else(|| format!("\"{name}\" must be an object"))?;
            for &(key, kind) in keys {
                check_key(body, key, kind)?;
            }
            Ok(())
        }
        None if required => Err(format!("missing required \"{name}\" section")),
        None => Ok(()),
    }
}

/// Everything after `"key":`, or `None` when the key never appears.
pub(crate) fn after_key<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let marker = format!("\"{key}\":");
    json.find(&marker).map(|at| &json[at + marker.len()..])
}

/// The string value of `"key": "…"`.
pub(crate) fn string_value<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let rest = after_key(json, key)?.trim_start();
    let rest = rest.strip_prefix('"')?;
    rest.split('"').next()
}

/// The numeric value of the first `"key": <number>` occurrence — the
/// extraction primitive `harness merge` reads per-shard records with
/// (scoped to a section by passing that section's [`object_body`]).
pub(crate) fn num_value(json: &str, key: &str) -> Option<f64> {
    let rest = after_key(json, key)?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The text of the object starting at the first non-space character of
/// `rest` (which must be `{`), up to and including its matching `}`.
pub(crate) fn object_body(rest: &str) -> Option<&str> {
    let rest = rest.trim_start();
    if !rest.starts_with('{') {
        return None;
    }
    let mut depth = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    for (at, c) in rest.char_indices() {
        if in_string {
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[..=at]);
                }
            }
            _ => {}
        }
    }
    None
}

/// [`check_key`] for a key that may legitimately be absent (introduced
/// after the section itself): only the type is enforced, and only when
/// the key appears.
fn check_optional_key(body: &str, key: &str, kind: ValueKind) -> Result<(), String> {
    if after_key(body, key).is_some() {
        check_key(body, key, kind)?;
    }
    Ok(())
}

fn check_key(json: &str, key: &str, kind: ValueKind) -> Result<(), String> {
    let rest = after_key(json, key).ok_or_else(|| format!("missing key \"{key}\""))?;
    let first = rest
        .trim_start()
        .chars()
        .next()
        .ok_or_else(|| format!("key \"{key}\" has no value"))?;
    if !kind.matches(first) {
        return Err(format!(
            "key \"{key}\" should be a {}, found {first:?}",
            kind.name()
        ));
    }
    Ok(())
}

/// Brace/bracket balance outside string literals.
fn check_balance(json: &str) -> Result<(), String> {
    let (mut depth_obj, mut depth_arr) = (0i64, 0i64);
    let mut in_string = false;
    let mut escaped = false;
    for c in json.chars() {
        if in_string {
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => depth_obj += 1,
            '}' => depth_obj -= 1,
            '[' => depth_arr += 1,
            ']' => depth_arr -= 1,
            _ => {}
        }
        if depth_obj < 0 || depth_arr < 0 {
            return Err("unbalanced brackets".to_string());
        }
    }
    if depth_obj != 0 || depth_arr != 0 || in_string {
        return Err("unterminated object, array or string".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const REQ_NONE: Requires = Requires {
        streaming: false,
        kernels: false,
        shards: false,
        serve: false,
        obs: false,
    };
    const REQ_STREAMING: Requires = Requires {
        streaming: true,
        ..REQ_NONE
    };
    const REQ_KERNELS: Requires = Requires {
        kernels: true,
        ..REQ_NONE
    };
    const REQ_SHARDS: Requires = Requires {
        shards: true,
        ..REQ_NONE
    };
    const REQ_SERVE: Requires = Requires {
        serve: true,
        ..REQ_NONE
    };
    const REQ_OBS: Requires = Requires {
        obs: true,
        ..REQ_NONE
    };

    fn minimal(streaming: bool, kernels: bool) -> String {
        minimal_with(streaming, kernels, false)
    }

    fn minimal_with(streaming: bool, kernels: bool, shards: bool) -> String {
        let streaming_section = if streaming {
            "\"streaming_pivots\": {\"threads\": 1, \
             \"open_ms\": {\"median\": 1.0, \"min\": 1.0, \"max\": 1.0}, \
             \"drain_ms\": {\"median\": 2.0, \"min\": 2.0, \"max\": 2.0}, \
             \"windows\": 3, \"skip_fraction\": 0.25, \"pruned_by_triangle\": 7, \
             \"pairs_skipped_entirely\": 2, \"total_edges\": 9},"
        } else {
            ""
        };
        let kernels_section = if kernels {
            "\"kernels\": {\"backend\": \"avx2+fma\", \"len\": 16384, \
             \"dot_speedup\": 9.1, \"moments_speedup\": 2.0, \
             \"prefix_build_speedup\": 13.0},"
        } else {
            ""
        };
        let shards_section = if shards {
            "\"shards\": {\"n_shards\": 4, \"workers\": 4, \"mode\": \"processes\", \
             \"evaluated\": 100, \"total_cells\": 400, \"merged_edges\": 9, \
             \"prepare_ms_max\": 2.5, \"query_ms_max\": 1.5, \"replans\": 1},"
        } else {
            ""
        };
        format!(
            "{{\"schema\": \"dangoron-bench-v1\", \"workload\": \"w\", \
             \"n_series\": 4, \"n_cols\": 100, \"n_windows\": 3, \
             \"hardware_threads\": 1, \
             \"hardware\": {{\"n_physical_cores\": 1, \"flags\": [\"avx2\", \"fma\"]}}, \
             {streaming_section} {kernels_section} {shards_section} \
             \"samples\": [{{\"threads\": 1, \
             \"prepare_ms\": {{\"median\": 1.0, \"min\": 1.0, \"max\": 1.0}}, \
             \"query_ms\": {{\"median\": 1.0, \"min\": 1.0, \"max\": 1.0}}, \
             \"skip_fraction\": 0.5, \"total_edges\": 4}}]}}"
        )
    }

    #[test]
    fn accepts_valid_records() {
        validate(&minimal(false, false), REQ_NONE).unwrap();
        validate(&minimal(true, false), REQ_NONE).unwrap();
        validate(&minimal(true, false), REQ_STREAMING).unwrap();
        validate(&minimal(false, true), REQ_KERNELS).unwrap();
        validate(&minimal_with(true, true, true), REQ_STREAMING).unwrap();
        validate(&minimal_with(false, false, true), REQ_SHARDS).unwrap();
    }

    #[test]
    fn rejects_missing_streaming_when_required() {
        let err = validate(&minimal(false, true), REQ_STREAMING).unwrap_err();
        assert!(err.contains("streaming_pivots"), "{err}");
    }

    #[test]
    fn rejects_missing_kernels_when_required() {
        let err = validate(&minimal(true, false), REQ_KERNELS).unwrap_err();
        assert!(err.contains("kernels"), "{err}");
        // Damaged kernels section is caught even when not required.
        let bad = minimal(false, true).replace("\"dot_speedup\": 9.1,", "");
        assert!(validate(&bad, REQ_NONE).is_err());
        // Wrong type in the section.
        let bad = minimal(false, true).replace("\"len\": 16384", "\"len\": \"big\"");
        assert!(validate(&bad, REQ_NONE).is_err());
    }

    #[test]
    fn optional_shards_keys_are_type_checked_when_present() {
        // Records without the v2 keys stay valid (pre-TCP records)...
        validate(&minimal_with(false, false, true), REQ_SHARDS).unwrap();
        // ...a well-typed v2 section is valid...
        let v2 = minimal_with(false, false, true).replace(
            "\"replans\": 1}",
            "\"replans\": 1, \"transport\": \"tcp\", \"assignments\": 4, \
             \"assign_bytes\": 512, \"load_bytes\": 4096, \
             \"fat_assign_bytes\": 16000, \"late_joins\": 1, \"steals\": 2, \
             \"heartbeats\": 12, \"bit_identical\": true, \
             \"hardware_mismatch\": false}",
        );
        validate(&v2, REQ_SHARDS).unwrap();
        // ...and a mis-typed one is rejected.
        let bad = v2.replace("\"transport\": \"tcp\"", "\"transport\": 6");
        assert!(validate(&bad, REQ_NONE).is_err());
        let bad = v2.replace("\"steals\": 2", "\"steals\": \"two\"");
        assert!(validate(&bad, REQ_NONE).is_err());
        let bad = v2.replace("\"hardware_mismatch\": false", "\"hardware_mismatch\": 0");
        assert!(validate(&bad, REQ_NONE).is_err());
        let bad = v2.replace("\"load_bytes\": 4096", "\"load_bytes\": \"many\"");
        assert!(validate(&bad, REQ_NONE).is_err());
    }

    /// Splices a well-formed `serve` section into a record.
    fn add_serve(record: &str) -> String {
        record.replace(
            "\"samples\":",
            "\"serve\": {\"queries\": 8, \"open_ms\": 120.5, \"resident_ms\": 31.2, \
             \"one_shot_ms\": 1042.0, \"shared_prepare_speedup\": 6.87, \
             \"memory_bytes\": 262144, \"total_edges\": 420, \
             \"bit_identical\": true}, \"samples\":",
        )
    }

    fn add_obs(record: &str) -> String {
        record.replace(
            "\"samples\":",
            "\"obs\": {\"families\": 7, \"series\": 7, \"scrape_ms\": 0.3, \
             \"exposition_bytes\": 4096, \"exposition_valid\": true, \
             \"walk_observations\": 12, \"exec_chunks\": 96, \
             \"steal_attempts\": 104}, \"samples\":",
        )
    }

    #[test]
    fn obs_section_is_required_and_checked_when_demanded() {
        let err = validate(&minimal(false, false), REQ_OBS).unwrap_err();
        assert!(err.contains("obs"), "{err}");
        let ok = add_obs(&minimal(false, false));
        validate(&ok, REQ_OBS).unwrap();
        validate(&ok, REQ_NONE).unwrap();
        // A damaged obs section is caught even when not required.
        let bad = ok.replace("\"exposition_valid\": true, ", "");
        assert!(validate(&bad, REQ_NONE).is_err());
        let bad = ok.replace("\"exposition_valid\": true", "\"exposition_valid\": 1");
        assert!(validate(&bad, REQ_NONE).is_err());
    }

    #[test]
    fn serve_section_is_required_and_checked_when_demanded() {
        let err = validate(&minimal(false, false), REQ_SERVE).unwrap_err();
        assert!(err.contains("serve"), "{err}");
        let ok = add_serve(&minimal(false, false));
        validate(&ok, REQ_SERVE).unwrap();
        validate(&ok, REQ_NONE).unwrap();
        // A damaged serve section is caught even when not required.
        let bad = ok.replace("\"shared_prepare_speedup\": 6.87, ", "");
        assert!(validate(&bad, REQ_NONE).is_err());
        let bad = ok.replace("\"bit_identical\": true", "\"bit_identical\": \"yes\"");
        assert!(validate(&bad, REQ_NONE).is_err());
        let bad = ok.replace("\"queries\": 8", "\"queries\": \"eight\"");
        assert!(validate(&bad, REQ_NONE).is_err());
        // The section keys cannot be satisfied by same-named sample keys.
        let bad = ok.replace("\"total_edges\": 420, ", "");
        assert!(validate(&bad, REQ_SERVE).is_err());
    }

    #[test]
    fn rejects_missing_or_damaged_shards_section() {
        let err = validate(&minimal(false, false), REQ_SHARDS).unwrap_err();
        assert!(err.contains("shards"), "{err}");
        // Damaged shards section is caught even when not required.
        let bad = minimal_with(false, false, true).replace(", \"replans\": 1}", "}");
        assert!(validate(&bad, REQ_NONE).is_err());
        let bad = minimal_with(false, false, true)
            .replace("\"query_ms_max\": 1.5", "\"query_ms_max\": \"slow\"");
        assert!(validate(&bad, REQ_NONE).is_err());
    }

    #[test]
    fn hardware_section_is_required_and_checked() {
        let bad = minimal(false, false).replace(
            "\"hardware\": {\"n_physical_cores\": 1, \"flags\": [\"avx2\", \"fma\"]}, ",
            "",
        );
        let err = validate(&bad, REQ_NONE).unwrap_err();
        assert!(err.contains("hardware"), "{err}");
        let bad = minimal(false, false).replace("\"flags\": [\"avx2\", \"fma\"]", "\"flags\": 3");
        assert!(validate(&bad, REQ_NONE).is_err());
    }

    #[test]
    fn per_shard_records_validate_and_extract() {
        let record = minimal(false, false).replace(
            "\"samples\":",
            "\"shard\": {\"index\": 2, \"n_shards\": 4, \"pair_start\": 10, \
             \"pair_end\": 20, \"evaluated\": 25, \"total_cells\": 30, \
             \"edges\": 3, \"attempt\": 0, \"prepare_ms\": 1.25, \
             \"query_ms\": 0.5}, \"samples\":",
        );
        validate(&record, REQ_NONE).unwrap();
        let body = object_body(after_key(&record, "shard").unwrap()).unwrap();
        assert_eq!(num_value(body, "pair_end"), Some(20.0));
        assert_eq!(num_value(body, "prepare_ms"), Some(1.25));
        assert_eq!(num_value(body, "nope"), None);
        // A damaged shard section fails even though it is optional.
        let bad = record.replace("\"pair_end\": 20, ", "");
        assert!(validate(&bad, REQ_NONE).is_err());
    }

    #[test]
    fn rejects_structural_damage() {
        // Bad schema tag.
        let bad = minimal(false, false).replace("dangoron-bench-v1", "v0");
        assert!(validate(&bad, REQ_NONE).is_err());
        // Dropped key.
        let bad = minimal(false, false).replace("\"n_windows\": 3,", "");
        assert!(validate(&bad, REQ_NONE).is_err());
        // Wrong type.
        let bad = minimal(false, false).replace("\"n_series\": 4", "\"n_series\": \"four\"");
        assert!(validate(&bad, REQ_NONE).is_err());
        // Unbalanced braces.
        let full = minimal(false, false);
        assert!(validate(&full[..full.len() - 1], REQ_NONE).is_err());
        // Empty samples.
        let bad = "{\"schema\": \"dangoron-bench-v1\", \"workload\": \"w\", \
                   \"n_series\": 1, \"n_cols\": 1, \"n_windows\": 1, \
                   \"hardware_threads\": 1, \
                   \"hardware\": {\"n_physical_cores\": 1, \"flags\": []}, \
                   \"samples\": []}";
        assert!(validate(bad, REQ_NONE).is_err());
        // Damaged streaming section is caught even when not required.
        let bad = minimal(true, false).replace("\"pruned_by_triangle\": 7,", "");
        assert!(validate(&bad, REQ_NONE).is_err());
    }

    #[test]
    fn streaming_keys_cannot_be_satisfied_by_samples() {
        // `skip_fraction` and `total_edges` also appear in every samples
        // entry; dropping them from the streaming section must still fail
        // (the check is confined to the section's own object).
        let bad = minimal(true, false)
            .replace("\"skip_fraction\": 0.25, ", "")
            .replace(
                "\"pairs_skipped_entirely\": 2, \"total_edges\": 9",
                "\"pairs_skipped_entirely\": 2",
            );
        let err = validate(&bad, REQ_STREAMING).unwrap_err();
        assert!(
            err.contains("skip_fraction") || err.contains("total_edges"),
            "{err}"
        );
    }

    #[test]
    fn real_emitter_output_validates() {
        // The actual perf emitter and this validator must stay in sync.
        use crate::perf::{
            HardwareInfo, KernelsPerf, PerfRecord, ShardsPerf, StreamingPerf, ThreadSample,
        };
        use eval::timing::TimingSummary;
        use std::time::Duration;
        let t = TimingSummary {
            reps: 1,
            median: Duration::from_millis(5),
            min: Duration::from_millis(4),
            max: Duration::from_millis(6),
        };
        let mut r = PerfRecord {
            workload: "unit \"test\"".to_string(),
            n_series: 4,
            n_cols: 128,
            n_windows: 5,
            hardware_threads: 2,
            hardware: HardwareInfo {
                n_physical_cores: 2,
                flags: vec!["avx2".into(), "fma".into()],
            },
            samples: vec![ThreadSample {
                threads: 1,
                prepare: t,
                query: t,
                skip_fraction: 0.5,
                total_edges: 10,
            }],
            streaming: None,
            kernels: None,
            shards: None,
            serve: None,
            obs: None,
        };
        validate(&r.to_json(), REQ_NONE).unwrap();
        assert!(validate(&r.to_json(), REQ_STREAMING).is_err());
        assert!(validate(&r.to_json(), REQ_KERNELS).is_err());
        assert!(validate(&r.to_json(), REQ_SHARDS).is_err());
        assert!(validate(&r.to_json(), REQ_SERVE).is_err());
        assert!(validate(&r.to_json(), REQ_OBS).is_err());
        r.streaming = Some(StreamingPerf {
            threads: 2,
            open: t,
            drain: t,
            windows: 5,
            skip_fraction: 0.25,
            pruned_by_triangle: 3,
            pairs_skipped_entirely: 1,
            total_edges: 10,
        });
        r.kernels = Some(KernelsPerf {
            backend: "avx2+fma".to_string(),
            len: 16384,
            dot_speedup: 9.2,
            moments_speedup: 2.0,
            prefix_build_speedup: 13.1,
        });
        r.shards = Some(ShardsPerf {
            n_shards: 4,
            workers: 4,
            mode: "processes".to_string(),
            transport: "tcp".to_string(),
            assignments: 5,
            assign_bytes: 640,
            load_bytes: 4096,
            fat_assign_bytes: 20_000,
            replans: 1,
            late_joins: 1,
            steals: 2,
            heartbeats: 12,
            evaluated: 100,
            total_cells: 400,
            merged_edges: 10,
            prepare_ms_max: 5.0,
            query_ms_max: 2.5,
            coord_ms: 9.0,
            single_process_ms: 8.0,
            bit_identical: true,
        });
        r.serve = Some(crate::perf::ServePerf {
            queries: 8,
            open_ms: 120.0,
            resident_ms: 30.0,
            one_shot_ms: 1000.0,
            shared_prepare_speedup: 6.6,
            memory_bytes: 262_144,
            total_edges: 420,
            bit_identical: true,
        });
        r.obs = Some(crate::perf::ObsPerf {
            families: 7,
            series: 7,
            scrape_ms: 0.25,
            exposition_bytes: 4096,
            exposition_valid: true,
            walk_observations: 12,
            exec_chunks: 96,
            steal_attempts: 104,
        });
        validate(
            &r.to_json(),
            Requires {
                streaming: true,
                kernels: true,
                shards: true,
                serve: true,
                obs: true,
            },
        )
        .unwrap();
    }

    const CLEAN_LINT_REPORT: &str = r#"{
  "schema": "dangoron-lint-v2",
  "deny": 0,
  "warnings": 0,
  "findings": [
  ]
}"#;

    const DIRTY_LINT_REPORT: &str = r#"{
  "schema": "dangoron-lint-v2",
  "deny": 1,
  "warnings": 1,
  "findings": [
    {"file":"crates/dist/src/proto.rs","line":42,"rule":"wire-taint-allocation","severity":"deny","message":"allocation sized by wire integer","trace":[{"line":17,"note":"wire read"}]},
    {"file":"crates/dist/src/worker.rs","line":9,"rule":"unused-waiver","severity":"warning","message":"waiver excuses nothing","trace":[]}
  ]
}"#;

    #[test]
    fn lint_report_clean_passes_the_gate() {
        validate_lint_report(CLEAN_LINT_REPORT, true).unwrap();
    }

    #[test]
    fn lint_report_findings_fail_only_the_clean_gate() {
        // Structurally valid — the artifact check accepts it…
        validate_lint_report(DIRTY_LINT_REPORT, false).unwrap();
        // …but the CI gate does not.
        let err = validate_lint_report(DIRTY_LINT_REPORT, true).unwrap_err();
        assert!(err.contains("not lint-clean"), "{err}");
    }

    #[test]
    fn lint_report_schema_regressions_are_caught() {
        let wrong_tag = CLEAN_LINT_REPORT.replace("dangoron-lint-v2", "dangoron-lint-v1");
        assert!(validate_lint_report(&wrong_tag, false).is_err());
        let renamed_key = DIRTY_LINT_REPORT.replace("\"rule\":", "\"rule_id\":");
        let err = validate_lint_report(&renamed_key, false).unwrap_err();
        assert!(err.contains("rule"), "{err}");
        let dropped_trace = DIRTY_LINT_REPORT.replace(",\"trace\":[]", "");
        assert!(validate_lint_report(&dropped_trace, false).is_err());
        let no_counters = CLEAN_LINT_REPORT.replace("\"deny\": 0,", "");
        assert!(validate_lint_report(&no_counters, false).is_err());
    }

    #[test]
    fn lint_report_counters_must_agree_with_findings() {
        let lied = DIRTY_LINT_REPORT.replace("\"deny\": 1", "\"deny\": 0");
        let err = validate_lint_report(&lied, false).unwrap_err();
        assert!(err.contains("disagree"), "{err}");
    }

    #[test]
    fn the_real_emitter_satisfies_the_lint_schema() {
        // `dangoron-lint --json` writes exactly this shape; keep the
        // validator honest against a hand-mirrored specimen of its
        // escaping (quotes, backslashes) rather than only happy paths.
        let report = "{\n  \"schema\": \"dangoron-lint-v2\",\n  \"deny\": 1,\n  \"warnings\": 0,\n  \"findings\": [\n    {\"file\":\"a \\\"b\\\".rs\",\"line\":1,\"rule\":\"r\",\"severity\":\"deny\",\"message\":\"uses \\\\ and {braces}\",\"trace\":[{\"line\":1,\"note\":\"n\"}]}\n  ]\n}";
        validate_lint_report(report, false).unwrap();
        let err = validate_lint_report(report, true).unwrap_err();
        assert!(err.contains("1 deny"), "{err}");
    }
}
