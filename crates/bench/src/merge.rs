//! `harness merge`: combining per-shard `dangoron-bench-v1` records into
//! one merged record.
//!
//! A distributed run (`harness bench --shard-records DIR`) writes one
//! record per shard, each carrying a `shard` section with its rank
//! interval and counters. This module folds them into a single record the
//! trajectory can keep: **evaluation counts sum**, **wall times take the
//! max across shards** (the distributed run is as slow as its slowest
//! shard), and the merged record carries a `shards` section recording
//! `n_shards`, the fold, and whether the per-shard `hardware` sections
//! disagreed (`hardware_mismatch` — shards of a TCP run can come off
//! different machines) — `harness validate --require-shards` checks
//! it. Like the rest of the harness, everything is hand-rolled over the
//! structural helpers in [`crate::schema`]; no JSON dependency exists in
//! the workspace.

use crate::perf::{json_str, HardwareInfo};
use crate::schema::{self, Requires};
use dist::ShardSummary;
use std::fmt::Write as _;

/// Renders the per-shard record for one completed shard of a distributed
/// run — a full `dangoron-bench-v1` record (so every tool that reads the
/// trajectory can read it) plus the `shard` section `harness merge`
/// consumes.
#[allow(clippy::too_many_arguments)]
pub fn shard_record_json(
    workload: &str,
    n_series: usize,
    n_cols: usize,
    n_windows: usize,
    hardware: &HardwareInfo,
    n_shards: usize,
    index: usize,
    shard: &ShardSummary,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"schema\": \"dangoron-bench-v1\",");
    let _ = writeln!(s, "  \"workload\": {},", json_str(workload));
    let _ = writeln!(s, "  \"n_series\": {n_series},");
    let _ = writeln!(s, "  \"n_cols\": {n_cols},");
    let _ = writeln!(s, "  \"n_windows\": {n_windows},");
    let _ = writeln!(s, "  \"hardware_threads\": {},", exec::available_threads());
    let flags: Vec<String> = hardware.flags.iter().map(|f| json_str(f)).collect();
    let _ = writeln!(
        s,
        "  \"hardware\": {{\"n_physical_cores\": {}, \"flags\": [{}]}},",
        hardware.n_physical_cores,
        flags.join(", "),
    );
    let _ = writeln!(
        s,
        "  \"shard\": {{\"index\": {index}, \"n_shards\": {n_shards}, \
         \"pair_start\": {}, \"pair_end\": {}, \"evaluated\": {}, \
         \"total_cells\": {}, \"edges\": {}, \"attempt\": {}, \
         \"prepare_ms\": {:.6}, \"query_ms\": {:.6}}},",
        shard.ranks.start,
        shard.ranks.end,
        shard.stats.evaluated,
        shard.stats.total_cells,
        shard.n_edges,
        shard.attempt,
        shard.prepare_s * 1e3,
        shard.query_s * 1e3,
    );
    let _ = writeln!(s, "  \"samples\": [");
    let _ = writeln!(
        s,
        "    {{\"threads\": 1, \
         \"prepare_ms\": {{\"median\": {p:.6}, \"min\": {p:.6}, \"max\": {p:.6}}}, \
         \"query_ms\": {{\"median\": {q:.6}, \"min\": {q:.6}, \"max\": {q:.6}}}, \
         \"skip_fraction\": {:.6}, \"total_edges\": {}}}",
        shard.stats.skip_fraction(),
        shard.n_edges,
        p = shard.prepare_s * 1e3,
        q = shard.query_s * 1e3,
    );
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// Extracted view of one per-shard record.
struct ShardRecord {
    pair_start: usize,
    pair_end: usize,
    n_shards: usize,
    evaluated: u64,
    total_cells: u64,
    edges: u64,
    attempt: u64,
    prepare_ms: f64,
    query_ms: f64,
    threads: u64,
}

/// Merges per-shard records into one merged `dangoron-bench-v1` record.
///
/// Inputs are `(label, json)` pairs (the label is used in error
/// messages). Every input must be a valid record with a `shard` section;
/// the shard intervals must tile `[0, max_pair_end)` without gaps or
/// overlaps (re-planned, finer-than-planned partitions are fine), and all
/// must agree on the workload and `n_shards`.
pub fn merge_records(inputs: &[(String, String)]) -> Result<String, String> {
    if inputs.is_empty() {
        return Err("merge needs at least one per-shard record".to_string());
    }
    let mut parsed = Vec::with_capacity(inputs.len());
    for (label, json) in inputs {
        schema::validate(json, Requires::default()).map_err(|e| format!("{label}: {e}"))?;
        let body = schema::after_key(json, "shard")
            .and_then(schema::object_body)
            .ok_or_else(|| format!("{label}: not a per-shard record (no \"shard\" section)"))?;
        let num = |key: &str| -> Result<f64, String> {
            schema::num_value(body, key)
                .ok_or_else(|| format!("{label}: shard section lacks \"{key}\""))
        };
        let samples = schema::after_key(json, "samples").expect("validated above");
        parsed.push(ShardRecord {
            pair_start: num("pair_start")? as usize,
            pair_end: num("pair_end")? as usize,
            n_shards: num("n_shards")? as usize,
            evaluated: num("evaluated")? as u64,
            total_cells: num("total_cells")? as u64,
            edges: num("edges")? as u64,
            attempt: num("attempt")? as u64,
            prepare_ms: num("prepare_ms")?,
            query_ms: num("query_ms")?,
            threads: schema::num_value(samples, "threads").unwrap_or(1.0) as u64,
        });
    }

    let (first_label, first_json) = &inputs[0];
    let workload = schema::string_value(first_json, "workload")
        .ok_or_else(|| format!("{first_label}: no workload"))?;
    let meta_num = |key: &str| -> Result<f64, String> {
        schema::num_value(first_json, key)
            .ok_or_else(|| format!("{first_label}: missing \"{key}\""))
    };
    let hardware = schema::after_key(first_json, "hardware")
        .and_then(schema::object_body)
        .ok_or_else(|| format!("{first_label}: missing hardware section"))?;
    // In a multi-machine (TCP) run the per-shard records can come off
    // different hosts; silently keeping the first `hardware` section
    // would misattribute every other shard's numbers. Detect the
    // disagreement and record it in the merged `shards` section.
    let mut hardware_mismatch = false;
    let normalize = |s: &str| -> String { s.split_whitespace().collect::<Vec<_>>().join(" ") };
    for (k, (label, json)) in inputs.iter().enumerate().skip(1) {
        let w = schema::string_value(json, "workload").unwrap_or("");
        if w != workload {
            return Err(format!(
                "{label}: workload {w:?} differs from {first_label}'s {workload:?}"
            ));
        }
        if parsed[k].n_shards != parsed[0].n_shards {
            return Err(format!("{label}: n_shards disagrees with {first_label}"));
        }
        let hw = schema::after_key(json, "hardware")
            .and_then(schema::object_body)
            .ok_or_else(|| format!("{label}: missing hardware section"))?;
        if normalize(hw) != normalize(hardware) {
            hardware_mismatch = true;
        }
    }

    // The shard intervals must tile the *whole* pair space — a missing
    // highest-rank record would otherwise fold into a silently
    // undercounted merged record.
    let n_series = meta_num("n_series")? as usize;
    let n_pairs = n_series * n_series.saturating_sub(1) / 2;
    let mut order: Vec<usize> = (0..parsed.len()).collect();
    order.sort_by_key(|&k| parsed[k].pair_start);
    let mut expected = 0usize;
    for &k in &order {
        let r = &parsed[k];
        if r.pair_start != expected {
            return Err(format!(
                "{}: shard interval {}..{} leaves a gap or overlap at rank {expected}",
                inputs[k].0, r.pair_start, r.pair_end
            ));
        }
        if r.pair_end <= r.pair_start {
            return Err(format!("{}: empty shard interval", inputs[k].0));
        }
        expected = r.pair_end;
    }
    if expected != n_pairs {
        return Err(format!(
            "shard intervals cover ranks 0..{expected} but n_series = {n_series} \
             has {n_pairs} pairs — a per-shard record is missing"
        ));
    }

    let evaluated: u64 = parsed.iter().map(|r| r.evaluated).sum();
    let total_cells: u64 = parsed.iter().map(|r| r.total_cells).sum();
    let edges: u64 = parsed.iter().map(|r| r.edges).sum();
    // Re-planned shard *intervals* (attempt > 0): one coordinator re-plan
    // event that split a shard across 3 survivors shows up as 3 here —
    // the per-event count lives only in the original run's own `shards`
    // section, which a fold of per-shard records cannot reconstruct.
    let replans: u64 = parsed.iter().filter(|r| r.attempt > 0).count() as u64;
    let prepare_ms_max = parsed.iter().map(|r| r.prepare_ms).fold(0.0, f64::max);
    let query_ms_max = parsed.iter().map(|r| r.query_ms).fold(0.0, f64::max);
    let threads = parsed.iter().map(|r| r.threads).max().unwrap_or(1);
    let skip_fraction = if total_cells == 0 {
        0.0
    } else {
        1.0 - evaluated as f64 / total_cells as f64
    };

    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"schema\": \"dangoron-bench-v1\",");
    let _ = writeln!(s, "  \"workload\": {},", json_str(workload));
    let _ = writeln!(s, "  \"n_series\": {},", meta_num("n_series")? as u64);
    let _ = writeln!(s, "  \"n_cols\": {},", meta_num("n_cols")? as u64);
    let _ = writeln!(s, "  \"n_windows\": {},", meta_num("n_windows")? as u64);
    let _ = writeln!(
        s,
        "  \"hardware_threads\": {},",
        meta_num("hardware_threads")? as u64
    );
    let _ = writeln!(s, "  \"hardware\": {hardware},");
    let _ = writeln!(
        s,
        "  \"shards\": {{\"n_shards\": {}, \"merged_from\": {}, \
         \"evaluated\": {evaluated}, \"total_cells\": {total_cells}, \
         \"merged_edges\": {edges}, \"prepare_ms_max\": {prepare_ms_max:.6}, \
         \"query_ms_max\": {query_ms_max:.6}, \"replans\": {replans}, \
         \"hardware_mismatch\": {hardware_mismatch}}},",
        parsed[0].n_shards,
        parsed.len(),
    );
    let _ = writeln!(s, "  \"samples\": [");
    let _ = writeln!(
        s,
        "    {{\"threads\": {threads}, \
         \"prepare_ms\": {{\"median\": {p:.6}, \"min\": {p:.6}, \"max\": {p:.6}}}, \
         \"query_ms\": {{\"median\": {q:.6}, \"min\": {q:.6}, \"max\": {q:.6}}}, \
         \"skip_fraction\": {skip_fraction:.6}, \"total_edges\": {edges}}}",
        p = prepare_ms_max,
        q = query_ms_max,
    );
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    debug_assert!(schema::validate(
        &s,
        Requires {
            shards: true,
            ..Default::default()
        }
    )
    .is_ok());
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dangoron::PruningStats;

    fn summary(ranks: std::ops::Range<usize>, evaluated: u64, edges: usize) -> ShardSummary {
        ShardSummary {
            ranks,
            attempt: 0,
            prepare_s: 0.004,
            query_s: 0.002,
            stats: PruningStats {
                n_pairs: 10,
                total_cells: evaluated + 5,
                evaluated,
                edges: edges as u64,
                ..Default::default()
            },
            n_edges: edges,
        }
    }

    fn record(ranks: std::ops::Range<usize>, index: usize, evaluated: u64) -> String {
        shard_record_json(
            "climate(test)",
            16,
            480,
            7,
            &HardwareInfo {
                n_physical_cores: 2,
                flags: vec!["avx2".into()],
            },
            2,
            index,
            &summary(ranks, evaluated, 3),
        )
    }

    #[test]
    fn shard_records_validate_standalone() {
        let json = record(0..60, 0, 40);
        schema::validate(&json, Requires::default()).unwrap();
        assert!(json.contains("\"shard\": {\"index\": 0, \"n_shards\": 2"));
        assert!(json.contains("\"pair_end\": 60"));
    }

    #[test]
    fn merge_sums_counts_and_maxes_times() {
        let inputs = vec![
            ("a".to_string(), record(0..60, 0, 40)),
            ("b".to_string(), record(60..120, 1, 30)),
        ];
        let merged = merge_records(&inputs).unwrap();
        schema::validate(
            &merged,
            Requires {
                shards: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(merged.contains("\"n_shards\": 2"));
        assert!(merged.contains("\"evaluated\": 70"));
        assert!(merged.contains("\"total_cells\": 80"));
        assert!(merged.contains("\"merged_edges\": 6"));
        // Wall time is the slowest shard, not the sum.
        assert!(merged.contains("\"query_ms_max\": 2.000000"));
        // Merge order must not matter.
        let reversed = vec![inputs[1].clone(), inputs[0].clone()];
        assert_eq!(merge_records(&reversed).unwrap(), merged);
    }

    #[test]
    fn merge_detects_disagreeing_hardware_sections() {
        // Identical hardware across shards: no mismatch recorded.
        let same = vec![
            ("a".to_string(), record(0..60, 0, 40)),
            ("b".to_string(), record(60..120, 1, 30)),
        ];
        let merged = merge_records(&same).unwrap();
        assert!(merged.contains("\"hardware_mismatch\": false"), "{merged}");

        // One shard ran on a different machine: the fold must say so
        // instead of silently keeping the first record's hardware.
        let other =
            record(60..120, 1, 30).replace("\"n_physical_cores\": 2", "\"n_physical_cores\": 64");
        let mixed = vec![
            ("a".to_string(), record(0..60, 0, 40)),
            ("b".to_string(), other),
        ];
        let merged = merge_records(&mixed).unwrap();
        assert!(merged.contains("\"hardware_mismatch\": true"), "{merged}");
        schema::validate(
            &merged,
            Requires {
                shards: true,
                ..Default::default()
            },
        )
        .unwrap();
    }

    #[test]
    fn merge_rejects_gaps_overlaps_and_mismatches() {
        // Gap between 60 and 70.
        let bad = vec![
            ("a".to_string(), record(0..60, 0, 40)),
            ("b".to_string(), record(70..120, 1, 30)),
        ];
        assert!(merge_records(&bad).unwrap_err().contains("gap"));
        // Overlap.
        let bad = vec![
            ("a".to_string(), record(0..60, 0, 40)),
            ("b".to_string(), record(50..120, 1, 30)),
        ];
        assert!(merge_records(&bad).is_err());
        // Not a shard record.
        let plain = record(0..60, 0, 40).replace("\"shard\":", "\"not_shard\":");
        assert!(merge_records(&[("a".to_string(), plain)])
            .unwrap_err()
            .contains("shard"));
        // Workload mismatch.
        let other = record(60..120, 1, 30).replace("climate(test)", "other");
        assert!(
            merge_records(&[("a".to_string(), record(0..60, 0, 40)), ("b".into(), other)])
                .unwrap_err()
                .contains("workload")
        );
        assert!(merge_records(&[]).is_err());
    }
}
