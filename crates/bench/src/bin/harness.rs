//! Experiment harness: regenerates every table/figure of the paper, and
//! records the perf trajectory.
//!
//! ```text
//! harness <exp-id>... [--full]                    # e1 … e12, or `all`
//! harness bench [--out BENCH_1.json] [--full]     # perf ladder → JSON
//! harness validate [--require-streaming] [--require-kernels] FILE...
//! ```
//!
//! Quick scale (default) runs in seconds per experiment; `--full` uses the
//! paper-sized configuration (N up to 512, a full year of hourly data) and
//! takes minutes. `bench` times the E1 workload's prepare and pure-query
//! phases at threads 1/2/4/8 and writes a machine-readable record (see
//! `bench::perf`) so every PR's speedup is comparable to its predecessors.

use bench::experiments::{run_experiment, ALL};
use bench::Scale;

fn run_bench(args: &[String], scale: Scale) {
    let out_path = match args.iter().position(|a| a == "--out") {
        Some(k) => match args.get(k + 1) {
            Some(v) if !v.starts_with("--") => v.clone(),
            _ => {
                eprintln!("error: --out requires a file path");
                std::process::exit(2);
            }
        },
        None => "BENCH_1.json".to_string(),
    };
    let record = bench::perf::run(scale);
    let json = record.to_json();
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("{json}");
    eprintln!("wrote {out_path}");
}

fn run_validate(args: &[String]) {
    let require_streaming = args.iter().any(|a| a == "--require-streaming");
    let require_kernels = args.iter().any(|a| a == "--require-kernels");
    let files: Vec<&String> = args
        .iter()
        .filter(|a| !a.starts_with("--") && *a != "validate")
        .collect();
    if files.is_empty() {
        eprintln!("error: validate needs at least one record file");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in files {
        let json = match std::fs::read_to_string(path) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        match bench::schema::validate(&json, require_streaming, require_kernels) {
            Ok(()) => println!("{path}: valid dangoron-bench-v1 record"),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let scale = Scale::from_flag(full);
    if args.iter().any(|a| a == "validate") {
        run_validate(&args);
        return;
    }
    if args.iter().any(|a| a == "bench") {
        run_bench(&args, scale);
        return;
    }
    let ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();

    let selected: Vec<&str> = if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ALL.to_vec()
    } else {
        ids.iter().map(|s| s.as_str()).collect()
    };

    let mut failed = false;
    for id in selected {
        match run_experiment(id, scale) {
            Some(report) => {
                println!("{report}");
            }
            None => {
                eprintln!("unknown experiment id: {id} (expected e1..e12 or all)");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(2);
    }
}
