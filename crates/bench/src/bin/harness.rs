//! Experiment harness: regenerates every table/figure of the paper, and
//! records the perf trajectory.
//!
//! ```text
//! harness <exp-id>... [--full]                    # e1 … e13, or `all`
//! harness bench [--out BENCH_1.json] [--full] [--shard-records DIR]
//!               [--dist-transport pipes|tcp|tcp-elastic] [--serve]
//! harness merge --out MERGED.json SHARD.json...   # fold per-shard records
//! harness validate [--require-streaming] [--require-kernels]
//!                  [--require-shards] [--require-serve] [--require-obs]
//!                  FILE...
//! harness validate --require-lint-clean LINT_REPORT.json
//!                  # dangoron-lint --json report: schema + zero findings
//! harness scrape ADDR [--path /metrics]        # GET + strict-parse
//! ```
//!
//! Quick scale (default) runs in seconds per experiment; `--full` uses the
//! paper-sized configuration (N up to 512, a full year of hourly data) and
//! takes minutes. `bench` times the E1 workload's prepare and pure-query
//! phases at threads 1/2/4/8 and writes a machine-readable record (see
//! `bench::perf`) so every PR's speedup is comparable to its predecessors;
//! `--shard-records DIR` additionally writes the distributed run's
//! per-shard records, which `merge` folds into one (evaluation counts
//! summed, wall times maxed, `n_shards` recorded, disagreeing `hardware`
//! sections flagged); `--dist-transport tcp` runs the distributed leg
//! over localhost TCP (coordinator listener + `dangoron-shard --connect`
//! workers) instead of spawned stdio pipes, and `tcp-elastic` starts
//! that leg with a single deliberately slow worker, admits a second one
//! mid-run, and steals the straggler's tail — recording `late_joins` /
//! `steals` / `heartbeats` in the `shards` section. `--serve` additionally
//! runs the serving-tier panel — one resident session answering a panel
//! of differently-shaped queries from shared sketches, each answer
//! verified bitwise against a fresh one-shot run — and records the
//! shared-prepare amortisation in the `serve` section. Every bench run
//! ends by scraping the process-wide stage registry into the `obs`
//! section (`harness validate --require-obs` demands it); `scrape`
//! fetches `/metrics` from a live `--metrics-addr` endpoint and checks
//! the exposition under the same strict parser CI uses.

use bench::experiments::{run_experiment, ALL};
use bench::schema::Requires;
use bench::Scale;

fn flag_value(args: &[String], flag: &str) -> Option<Result<String, String>> {
    args.iter()
        .position(|a| a == flag)
        .map(|k| match args.get(k + 1) {
            Some(v) if !v.starts_with("--") => Ok(v.clone()),
            _ => Err(format!("{flag} requires a value")),
        })
}

fn run_bench(args: &[String], scale: Scale) {
    let out_path = match flag_value(args, "--out") {
        Some(Ok(v)) => v,
        Some(Err(e)) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
        None => "BENCH_1.json".to_string(),
    };
    let shard_dir = match flag_value(args, "--shard-records") {
        Some(Ok(v)) => Some(v),
        Some(Err(e)) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
        None => None,
    };
    let transport = match flag_value(args, "--dist-transport") {
        Some(Ok(v)) if v == "pipes" => bench::perf::DistTransport::Pipes,
        Some(Ok(v)) if v == "tcp" => bench::perf::DistTransport::Tcp,
        Some(Ok(v)) if v == "tcp-elastic" => bench::perf::DistTransport::TcpElastic,
        Some(Ok(v)) => {
            eprintln!("error: --dist-transport must be `pipes`, `tcp` or `tcp-elastic`, got {v:?}");
            std::process::exit(2);
        }
        Some(Err(e)) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
        None => bench::perf::DistTransport::Pipes,
    };
    let (mut record, dist_result, workload) = bench::perf::run_full_with(scale, transport);
    if args.iter().any(|a| a == "--serve") {
        record.serve = Some(bench::perf::serve_sample(&workload));
    }
    if let Some(dir) = shard_dir {
        if let Err(e) = write_shard_records(&dir, &workload, &dist_result) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
    let json = record.to_json();
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("{json}");
    eprintln!("wrote {out_path}");
}

/// Writes one per-shard record per completed shard of the perf run's
/// distributed leg into `dir` (`shard_0.json`, `shard_1.json`, …) —
/// reusing the run `bench::perf::run_full` already executed.
fn write_shard_records(
    dir: &str,
    w: &eval::workloads::Workload,
    result: &dist::DistResult,
) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    let hardware = bench::perf::HardwareInfo::probe();
    for (k, shard) in result.shards.iter().enumerate() {
        let json = bench::merge::shard_record_json(
            &w.name,
            w.data.n_series(),
            w.data.len(),
            w.query.n_windows(),
            &hardware,
            result.coord.n_shards_planned,
            k,
            shard,
        );
        let path = format!("{dir}/shard_{k}.json");
        std::fs::write(&path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn run_merge(args: &[String]) {
    let out_path = match flag_value(args, "--out") {
        Some(Ok(v)) => v,
        Some(Err(e)) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
        None => {
            eprintln!("error: merge requires --out FILE");
            std::process::exit(2);
        }
    };
    let skip_value_of = ["--out"];
    let mut inputs = Vec::new();
    let mut k = 0;
    let argv: Vec<&String> = args.iter().filter(|a| *a != "merge").collect();
    while k < argv.len() {
        let a = argv[k];
        if skip_value_of.contains(&a.as_str()) {
            k += 2;
            continue;
        }
        if a.starts_with("--") {
            eprintln!("error: unknown merge flag {a}");
            std::process::exit(2);
        }
        match std::fs::read_to_string(a) {
            Ok(json) => inputs.push((a.clone(), json)),
            Err(e) => {
                eprintln!("{a}: cannot read: {e}");
                std::process::exit(1);
            }
        }
        k += 1;
    }
    match bench::merge::merge_records(&inputs) {
        Ok(merged) => {
            if let Err(e) = std::fs::write(&out_path, &merged) {
                eprintln!("error: cannot write {out_path}: {e}");
                std::process::exit(1);
            }
            println!("{merged}");
            eprintln!("merged {} per-shard records into {out_path}", inputs.len());
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn run_validate(args: &[String]) {
    let lint_clean = args.iter().any(|a| a == "--require-lint-clean");
    let requires = Requires {
        streaming: args.iter().any(|a| a == "--require-streaming"),
        kernels: args.iter().any(|a| a == "--require-kernels"),
        shards: args.iter().any(|a| a == "--require-shards"),
        serve: args.iter().any(|a| a == "--require-serve"),
        obs: args.iter().any(|a| a == "--require-obs"),
    };
    let files: Vec<&String> = args
        .iter()
        .filter(|a| !a.starts_with("--") && *a != "validate")
        .collect();
    if files.is_empty() {
        eprintln!("error: validate needs at least one record file");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in files {
        let json = match std::fs::read_to_string(path) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        let verdict = if lint_clean {
            bench::schema::validate_lint_report(&json, true)
                .map(|()| "valid dangoron-lint-v2 report, tree lint-clean")
        } else {
            bench::schema::validate(&json, requires).map(|()| "valid dangoron-bench-v1 record")
        };
        match verdict {
            Ok(what) => println!("{path}: {what}"),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// `harness scrape ADDR [--path P]`: one HTTP GET against a live
/// `--metrics-addr` endpoint, strict-parsed when the path is `/metrics`.
fn run_scrape(args: &[String]) {
    use std::io::{Read, Write};
    let addr = match args
        .iter()
        .position(|a| a == "scrape")
        .and_then(|k| args.get(k + 1))
    {
        Some(a) if !a.starts_with("--") => a.clone(),
        _ => {
            eprintln!("usage: harness scrape ADDR [--path /metrics]");
            std::process::exit(2);
        }
    };
    let path = match flag_value(args, "--path") {
        Some(Ok(v)) => v,
        Some(Err(e)) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
        None => "/metrics".to_string(),
    };
    let body = (|| -> Result<String, String> {
        let mut s =
            std::net::TcpStream::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
        s.set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .map_err(|e| e.to_string())?;
        s.write_all(format!("GET {path} HTTP/1.1\r\nHost: harness\r\n\r\n").as_bytes())
            .map_err(|e| format!("send: {e}"))?;
        let mut raw = Vec::new();
        s.read_to_end(&mut raw).map_err(|e| format!("read: {e}"))?;
        let text = String::from_utf8_lossy(&raw).into_owned();
        let status: u16 = text
            .lines()
            .next()
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| format!("malformed response: {:?}", text.lines().next()))?;
        if status != 200 {
            return Err(format!("GET {path}: HTTP {status}"));
        }
        text.split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .ok_or_else(|| "response has no body".to_string())
    })();
    match body {
        Ok(body) => {
            if path == "/metrics" {
                match obs::expo::parse_prometheus(&body) {
                    Ok(families) => eprintln!(
                        "{addr}{path}: valid exposition, {} families, {} bytes",
                        families.len(),
                        body.len()
                    ),
                    Err(e) => {
                        eprintln!("{addr}{path}: INVALID exposition: {e}");
                        std::process::exit(1);
                    }
                }
            } else {
                eprintln!("{addr}{path}: {} bytes", body.len());
            }
            println!("{body}");
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let scale = Scale::from_flag(full);
    if args.iter().any(|a| a == "validate") {
        run_validate(&args);
        return;
    }
    if args.iter().any(|a| a == "scrape") {
        run_scrape(&args);
        return;
    }
    if args.iter().any(|a| a == "merge") {
        run_merge(&args);
        return;
    }
    if args.iter().any(|a| a == "bench") {
        run_bench(&args, scale);
        return;
    }
    let ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();

    let selected: Vec<&str> = if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ALL.to_vec()
    } else {
        ids.iter().map(|s| s.as_str()).collect()
    };

    let mut failed = false;
    for id in selected {
        match run_experiment(id, scale) {
            Some(report) => {
                println!("{report}");
            }
            None => {
                eprintln!("unknown experiment id: {id} (expected e1..e13 or all)");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(2);
    }
}
