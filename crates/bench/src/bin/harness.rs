//! Experiment harness: regenerates every table/figure of the paper.
//!
//! ```text
//! harness <exp-id>... [--full]     # e1 … e10, or `all`
//! ```
//!
//! Quick scale (default) runs in seconds per experiment; `--full` uses the
//! paper-sized configuration (N up to 512, a full year of hourly data) and
//! takes minutes.

use bench::experiments::{run_experiment, ALL};
use bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    let scale = Scale::from_flag(full);

    let selected: Vec<&str> = if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ALL.to_vec()
    } else {
        ids.iter().map(|s| s.as_str()).collect()
    };

    let mut failed = false;
    for id in selected {
        match run_experiment(id, scale) {
            Some(report) => {
                println!("{report}");
            }
            None => {
                eprintln!("unknown experiment id: {id} (expected e1..e10 or all)");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(2);
    }
}
