//! E13 — the distributed shard tier: shard-count invariance and balance.
//!
//! Partitions the E1 climate workload's pair space into k ∈ {1, 2, 4, 8}
//! shards, runs every shard through the worker execution path
//! (`prepare_shard` + `run_range`), merges, and checks the merged
//! matrices bitwise against the unsharded engine — the determinism
//! contract the process tier (CI `shard-smoke`) relies on. Shards run
//! in-process here so the experiment works in any build context; the
//! perf record's `shards` section additionally measures the real
//! `dangoron-shard` process tier when the binary is built.

use crate::Scale;
use dangoron::{BoundMode, DangoronConfig};
use dist::coord::{run_in_process, run_single_process};
use dist::merge::windows_bit_identical;
use dist::proto::WorkerMode;
use dist::ShardPlan;
use eval::workloads;
use std::fmt::Write as _;

/// Runs the experiment and renders its report table.
pub fn run(scale: Scale) -> String {
    let (n, hours) = match scale {
        Scale::Quick => (24, 24 * 60),
        Scale::Full => (96, 24 * 365),
    };
    let beta = 0.9;
    let w = workloads::climate(n, hours, beta, 2020).expect("workload");
    let cfg = DangoronConfig {
        basic_window: w.basic_window,
        bound: BoundMode::PaperJump { slack: 0.0 },
        ..Default::default()
    };

    let mut out = String::new();
    let _ = writeln!(out, "E13 · Distributed shard tier ({})", w.name);
    let _ = writeln!(
        out,
        "  pair space: {} ranks over {} series",
        dist::ShardPlan::balanced(n, 1).n_pairs(),
        n
    );
    let single =
        run_single_process(WorkerMode::Batch, &cfg, &w.data, w.query).expect("single-process run");
    let single_edges: usize = single.matrices.iter().map(|m| m.n_edges()).sum();
    let _ = writeln!(
        out,
        "  single-process: {} windows, {} edges, skip {:.3}",
        single.matrices.len(),
        single_edges,
        single.stats.skip_fraction()
    );
    let _ = writeln!(
        out,
        "  {:>6} | {:>11} | {:>11} | {:>10} | {:>9} | identical",
        "shards", "max pairs", "min pairs", "slowest ms", "edges"
    );
    for k in [1usize, 2, 4, 8] {
        let plan = ShardPlan::balanced(n, k);
        let (max_pairs, min_pairs) = plan.balance();
        let sharded =
            run_in_process(k, WorkerMode::Batch, &cfg, &w.data, w.query).expect("sharded run");
        let identical = windows_bit_identical(&sharded.matrices, &single.matrices)
            && sharded.stats == single.stats;
        let slowest_ms = sharded
            .shards
            .iter()
            .map(|s| (s.prepare_s + s.query_s) * 1e3)
            .fold(0.0, f64::max);
        let edges: usize = sharded.matrices.iter().map(|m| m.n_edges()).sum();
        let _ = writeln!(
            out,
            "  {:>6} | {:>11} | {:>11} | {:>10.2} | {:>9} | {}",
            k,
            max_pairs,
            min_pairs,
            slowest_ms,
            edges,
            if identical { "yes" } else { "NO" }
        );
        assert!(identical, "shard count {k} broke determinism");
    }
    let _ = writeln!(
        out,
        "  merged result bit-identical to the single-process engine for every shard count"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_runs_and_confirms_invariance() {
        let report = run(Scale::Quick);
        assert!(report.contains("E13"));
        assert!(report.contains("identical"));
        assert!(!report.contains("| NO"));
    }
}
