//! E1 — the headline claim (§4): "Dangoron is an order of magnitude faster
//! than TSUBASA in terms of pure query time".
//!
//! Both engines share the same offline sketches; the measured quantity is
//! the sliding-query walk only. TSUBASA pays O(n_s) per (pair, window)
//! cell; Dangoron pays O(1) per *evaluated* cell and skips most cells at a
//! high threshold via Eq. 2 jumps.

use crate::common::{dangoron_engine, time_dangoron, time_tsubasa, tsubasa_engine};
use crate::Scale;
use dangoron::BoundMode;
use eval::report::{dur, f3, Table};
use eval::timing::speedup;
use eval::workloads;

/// Runs E1 and renders its table.
pub fn run(scale: Scale) -> String {
    let (sizes, hours): (&[usize], usize) = match scale {
        Scale::Quick => (&[16, 32], 24 * 90),
        Scale::Full => (&[64, 128, 256], 24 * 365),
    };
    let beta = 0.9;
    let mut table = Table::new(
        "E1: pure query time, Dangoron vs TSUBASA (β=0.9, l=720h (30d), η=24h, b=24h)",
        &[
            "N",
            "windows",
            "tsubasa",
            "dangoron",
            "speedup",
            "skip-frac",
        ],
    );
    for &n in sizes {
        let w = workloads::climate(n, hours, beta, 2020).expect("workload");
        let (t_tsu, m_tsu) = time_tsubasa(&w, &tsubasa_engine(&w));
        let engine = dangoron_engine(&w, BoundMode::PaperJump { slack: 0.0 });
        let (t_dan, r_dan) = time_dangoron(&w, &engine);
        // Sanity: Dangoron(jump) must not hallucinate edges.
        let acc = eval::compare(&r_dan.matrices, &m_tsu);
        assert!(acc.precision > 0.999, "jump mode produced false edges");
        table.row(vec![
            n.to_string(),
            w.query.n_windows().to_string(),
            dur(t_tsu.median),
            dur(t_dan.median),
            format!("{}x", f3(speedup(&t_tsu, &t_dan))),
            f3(r_dan.stats.skip_fraction()),
        ]);
    }
    let mut out = table.render();
    out.push_str(
        "\nPaper claim: >=10x on the NCEI dataset. Accepted shape: speedup grows\n\
         with N and clears an order of magnitude at the full scale.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_produces_report_with_speedups() {
        let report = run(Scale::Quick);
        assert!(report.contains("E1"));
        assert!(report.contains("tsubasa"));
        // Two data rows for the two sizes.
        assert!(report.lines().count() >= 5);
    }
}
