//! E7 — ablation of the two pruning mechanisms (§3's "another feature …
//! horizontal computation pruning").
//!
//! Four engine variants factor the design: {exhaustive, jump} × {no
//! triangle, triangle}; plus the on-demand storage mode where the
//! pair-level triangle prefilter avoids touching raw series entirely.

use crate::common::time_dangoron;
use crate::Scale;
use dangoron::config::{HorizontalConfig, PivotStrategy};
use dangoron::{BoundMode, Dangoron, DangoronConfig, PairStorage};
use eval::report::{dur, Table};
use eval::workloads;

/// Runs E7 and renders its table.
pub fn run(scale: Scale) -> String {
    let (n, hours) = match scale {
        Scale::Quick => (16, 24 * 90),
        Scale::Full => (64, 24 * 365),
    };
    let beta = 0.9;
    let w = workloads::climate(n, hours, beta, 2020).expect("workload");
    let horizontal = Some(HorizontalConfig {
        n_pivots: 2,
        strategy: PivotStrategy::Evenly,
    });

    let variants: Vec<(&str, DangoronConfig)> = vec![
        (
            "exhaustive",
            DangoronConfig {
                basic_window: w.basic_window,
                bound: BoundMode::Exhaustive,
                ..Default::default()
            },
        ),
        (
            "jump",
            DangoronConfig {
                basic_window: w.basic_window,
                bound: BoundMode::PaperJump { slack: 0.0 },
                ..Default::default()
            },
        ),
        (
            "exhaustive+triangle",
            DangoronConfig {
                basic_window: w.basic_window,
                bound: BoundMode::Exhaustive,
                horizontal: horizontal.clone(),
                ..Default::default()
            },
        ),
        (
            "jump+triangle",
            DangoronConfig {
                basic_window: w.basic_window,
                bound: BoundMode::PaperJump { slack: 0.0 },
                horizontal: horizontal.clone(),
                ..Default::default()
            },
        ),
        (
            "ondemand+triangle",
            DangoronConfig {
                basic_window: w.basic_window,
                bound: BoundMode::PaperJump { slack: 0.0 },
                storage: PairStorage::OnDemand,
                horizontal,
                ..Default::default()
            },
        ),
    ];

    let mut table = Table::new(
        "E7: pruning ablation (β=0.9)",
        &[
            "variant",
            "query",
            "evaluated",
            "jumped",
            "tri-pruned",
            "pairs-skipped",
            "edges",
        ],
    );
    for (name, config) in variants {
        let engine = Dangoron::new(config).expect("valid config");
        let (t, r) = time_dangoron(&w, &engine);
        let s = &r.stats;
        table.row(vec![
            name.to_string(),
            dur(t.median),
            s.evaluated.to_string(),
            s.skipped_by_jump.to_string(),
            s.pruned_by_triangle.to_string(),
            s.pairs_skipped_entirely.to_string(),
            s.edges.to_string(),
        ]);
    }
    let mut out = table.render();
    out.push_str(
        "\nExpected shape: each pruning mechanism reduces `evaluated`;\n\
         exhaustive+triangle keeps edge counts identical to exhaustive (the\n\
         triangle bound is sound); jump variants may drop a few edges (Eq. 2\n\
         is assumption-based). `skip-frac = 1 - evaluated/total`.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_shows_monotone_work_reduction() {
        let report = run(Scale::Quick);
        let evaluated = |name: &str| -> u64 {
            report
                .lines()
                .find(|l| l.starts_with(name) && !l.contains("+") || l.starts_with(name))
                .unwrap_or_else(|| panic!("row {name}"))
                .split_whitespace()
                .nth(2)
                .unwrap()
                .parse()
                .unwrap()
        };
        let exhaustive = evaluated("exhaustive ");
        let jump = evaluated("jump ");
        assert!(jump < exhaustive, "jumping must reduce evaluations");
        // Edge counts: exhaustive and exhaustive+triangle agree exactly.
        let edges = |name: &str| -> u64 {
            report
                .lines()
                .find(|l| l.trim_start().starts_with(name))
                .unwrap()
                .split_whitespace()
                .last()
                .unwrap()
                .parse()
                .unwrap()
        };
        assert_eq!(edges("exhaustive "), edges("exhaustive+triangle"));
    }
}
