//! E3 — Figure 2: the jumping structure of Dangoron.
//!
//! The figure illustrates blue (evaluated, below β), red (bound above β)
//! and green (skipped) blocks. This experiment quantifies that picture:
//! skip fraction, jump count, and the jump-length histogram as the
//! threshold rises.

use crate::common::{dangoron_engine, time_dangoron};
use crate::Scale;
use dangoron::BoundMode;
use eval::report::{f3, Table};
use eval::workloads;

/// Runs E3 and renders its tables.
pub fn run(scale: Scale) -> String {
    let (n, hours) = match scale {
        Scale::Quick => (16, 24 * 90),
        Scale::Full => (64, 24 * 365),
    };
    let betas = [0.5, 0.7, 0.8, 0.9, 0.95];
    let mut table = Table::new(
        "E3: jump statistics across thresholds (Figure 2 quantified)",
        &[
            "β",
            "skip-frac",
            "jumps",
            "mean-jump",
            "evaluated",
            "skipped",
        ],
    );
    let mut hist_table = Table::new(
        "E3b: jump-length histogram (log2 buckets, β sweep)",
        &["β", "1", "2-3", "4-7", "8-15", "16-31", "≥32"],
    );
    for beta in betas {
        let w = workloads::climate(n, hours, beta, 2020).expect("workload");
        let engine = dangoron_engine(&w, BoundMode::PaperJump { slack: 0.0 });
        let (_t, r) = time_dangoron(&w, &engine);
        let s = &r.stats;
        table.row(vec![
            f3(beta),
            f3(s.skip_fraction()),
            s.jumps.to_string(),
            f3(s.mean_jump_length()),
            s.evaluated.to_string(),
            s.skipped_by_jump.to_string(),
        ]);
        let h = &s.jump_length_hist;
        let tail: u64 = h[5..].iter().sum();
        hist_table.row(vec![
            f3(beta),
            h[0].to_string(),
            h[1].to_string(),
            h[2].to_string(),
            h[3].to_string(),
            h[4].to_string(),
            tail.to_string(),
        ]);
    }
    let mut out = table.render();
    out.push('\n');
    out.push_str(&hist_table.render());
    out.push_str("\nExpected shape: skip fraction grows monotonically with β.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_fraction_grows_with_threshold() {
        let report = run(Scale::Quick);
        // Extract the skip-frac column of the first table.
        let fracs: Vec<f64> = report
            .lines()
            .skip(3) // title, header, separator
            .take(5)
            .map(|l| {
                l.split_whitespace()
                    .nth(1)
                    .expect("skip-frac cell")
                    .parse()
                    .expect("parseable fraction")
            })
            .collect();
        assert_eq!(fracs.len(), 5);
        assert!(
            fracs.windows(2).all(|w| w[1] >= w[0] - 0.02),
            "skip fractions not monotone: {fracs:?}"
        );
        assert!(fracs[4] > fracs[0], "β=0.95 must skip more than β=0.5");
    }
}
