//! E8 — scaling: the motivation section talks about 100K–10M voxel series;
//! this experiment measures how query time grows with N (quadratic pair
//! count) and with L (more windows), and how threads help.

use crate::common::{dangoron_engine, time_dangoron};
use crate::Scale;
use dangoron::{BoundMode, Dangoron, DangoronConfig};
use eval::report::{dur, f3, Table};
use eval::workloads;

/// Runs E8 and renders its tables.
pub fn run(scale: Scale) -> String {
    let beta = 0.9;
    let (ns, hours): (&[usize], usize) = match scale {
        Scale::Quick => (&[8, 16, 32], 24 * 60),
        Scale::Full => (&[64, 128, 256, 512], 24 * 365),
    };
    let mut n_table = Table::new(
        "E8a: scaling with N (pairs grow quadratically)",
        &["N", "pairs", "query", "per-pair"],
    );
    for &n in ns {
        let w = workloads::climate(n, hours, beta, 2020).expect("workload");
        let engine = dangoron_engine(&w, BoundMode::PaperJump { slack: 0.0 });
        let (t, _r) = time_dangoron(&w, &engine);
        let pairs = n * (n - 1) / 2;
        n_table.row(vec![
            n.to_string(),
            pairs.to_string(),
            dur(t.median),
            format!("{:.2}µs", t.median.as_secs_f64() * 1e6 / pairs as f64),
        ]);
    }

    let lens: &[usize] = match scale {
        Scale::Quick => &[24 * 45, 24 * 90, 24 * 180],
        Scale::Full => &[24 * 90, 24 * 180, 24 * 365],
    };
    let mut l_table = Table::new(
        "E8b: scaling with series length L (windows grow linearly)",
        &["L(hours)", "windows", "query"],
    );
    for &len in lens {
        let w = workloads::climate(16, len, beta, 2020).expect("workload");
        let engine = dangoron_engine(&w, BoundMode::PaperJump { slack: 0.0 });
        let (t, _r) = time_dangoron(&w, &engine);
        l_table.row(vec![
            len.to_string(),
            w.query.n_windows().to_string(),
            dur(t.median),
        ]);
    }

    let threads_list: &[usize] = &[1, 2, 4];
    let mut t_table = Table::new(
        "E8c: thread scaling (pair-partitioned query)",
        &["threads", "query", "speedup-vs-1"],
    );
    // Thread scaling needs enough work per thread to amortise spawn cost.
    let n_threads_workload = match scale {
        Scale::Quick => 192,
        Scale::Full => 256,
    };
    let w = workloads::climate(n_threads_workload, hours, beta, 2020).expect("workload");
    let mut base_ms = None;
    for &threads in threads_list {
        let engine = Dangoron::new(DangoronConfig {
            basic_window: w.basic_window,
            bound: BoundMode::PaperJump { slack: 0.0 },
            threads,
            ..Default::default()
        })
        .expect("valid config");
        let (t, _r) = time_dangoron(&w, &engine);
        let ms = t.median.as_secs_f64() * 1e3;
        let speedup = base_ms.map(|b: f64| b / ms).unwrap_or(1.0);
        if base_ms.is_none() {
            base_ms = Some(ms);
        }
        t_table.row(vec![
            threads.to_string(),
            dur(t.median),
            format!("{}x", f3(speedup)),
        ]);
    }

    // E8d: the naive exact scan on the same executor — the multi-core
    // baseline every sketch-engine speedup is ultimately measured against.
    // Smaller N than E8c: the naive scan is O(N²·γ·l) and only needs to
    // show its own thread scaling, not match E8c's workload.
    let mut d_table = Table::new(
        "E8d: parallel naive scan (window-partitioned, same executor)",
        &["threads", "query", "speedup-vs-1"],
    );
    let w_naive = workloads::climate(32, 24 * 60, beta, 2020).expect("workload");
    let mut naive_base_ms = None;
    for &threads in threads_list {
        let t = eval::timing::measure(2, 1, || {
            let t0 = std::time::Instant::now();
            let _ = baselines::naive::execute_parallel(
                &w_naive.data,
                w_naive.query,
                sketch::output::EdgeRule::Positive,
                threads,
            )
            .expect("valid workload");
            t0.elapsed()
        });
        let ms = t.median.as_secs_f64() * 1e3;
        let speedup = naive_base_ms.map(|b: f64| b / ms).unwrap_or(1.0);
        if naive_base_ms.is_none() {
            naive_base_ms = Some(ms);
        }
        d_table.row(vec![
            threads.to_string(),
            dur(t.median),
            format!("{}x", f3(speedup)),
        ]);
    }

    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let mut out = n_table.render();
    out.push('\n');
    out.push_str(&l_table.render());
    out.push('\n');
    out.push_str(&t_table.render());
    out.push('\n');
    out.push_str(&d_table.render());
    out.push_str(&format!(
        "\nExpected shape: query time ~quadratic in N, ~linear in L; thread\n\
         speedup (E8c engine, E8d naive baseline) tracks physical cores\n\
         (this host reports {cores} — with one core, both can only show the\n\
         spawn overhead).\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_tables_render() {
        let report = run(Scale::Quick);
        assert!(report.contains("E8a"));
        assert!(report.contains("E8b"));
        assert!(report.contains("E8c"));
        assert!(report.contains("E8d"));
        assert!(report.contains("per-pair"));
    }
}
