//! E6 — the Tomborg robustness benchmark (§3 and the "large-scale
//! experiments upon completing Tomborg" the paper announces).
//!
//! Every engine runs over the distribution × spectrum grid; the shape to
//! reproduce: sketch-exact methods (Dangoron) stay flat across spectra,
//! frequency-transform methods (StatStream family) collapse when energy
//! leaves the low coefficients (white/band spectra), and ParCorr sits in
//! between (JL error is spectrum-independent but value-noisy).

use crate::Scale;
use baselines::parcorr::ParCorr;
use baselines::statstream::StatStream;
use baselines::SlidingEngine;
use dangoron::BoundMode;
use eval::engines::DangoronEngine;
use eval::report::{f3, Table};
use eval::workloads;
use tomborg::suite::{smoke_suite, standard_suite};

/// Runs E6 and renders its table.
pub fn run(scale: Scale) -> String {
    let beta = 0.8;
    let cases = match scale {
        Scale::Quick => smoke_suite(10, 512, 42),
        Scale::Full => standard_suite(24, 2_048, 42),
    };
    let mut table = Table::new(
        "E6: Tomborg robustness grid — F1 vs exact, per engine (β=0.8)",
        &["case", "dangoron", "parcorr", "statstream(m=32)"],
    );
    for case in &cases {
        let w = workloads::from_tomborg(case, beta).expect("tomborg workload");
        let truth = workloads::ground_truth(&w).expect("ground truth");
        let dang = DangoronEngine {
            config: dangoron::DangoronConfig {
                basic_window: w.basic_window,
                bound: BoundMode::PaperJump { slack: 0.0 },
                ..Default::default()
            },
        };
        let parc = ParCorr {
            dim: 64,
            seed: 5,
            margin: 0.0,
            verify: true,
        };
        let stat = StatStream {
            coeffs: 32,
            margin: 0.0,
            verify: true,
        };
        let f1_of = |e: &dyn SlidingEngine| {
            let got = e.execute(&w.data, w.query).expect("engine run");
            eval::compare(&got, &truth).f1
        };
        table.row(vec![
            case.name.clone(),
            f3(f1_of(&dang)),
            f3(f1_of(&parc)),
            f3(f1_of(&stat)),
        ]);
    }
    let mut out = table.render();
    out.push_str(
        "\nExpected shape: Dangoron flat and high everywhere; StatStream high on\n\
         */concentrated and */pink, degraded on */white and */band; ParCorr in\n\
         between, spectrum-independent.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_shows_the_robustness_ordering() {
        let report = run(Scale::Quick);
        // Parse the two data rows: concentrated (easy) and band (hard).
        let get_row = |name: &str| -> Vec<f64> {
            report
                .lines()
                .find(|l| l.starts_with(name))
                .unwrap_or_else(|| panic!("row {name} missing"))
                .split_whitespace()
                .skip(1)
                .map(|c| c.parse().expect("numeric cell"))
                .collect()
        };
        let easy = get_row("block/concentrated");
        let hard = get_row("block/band");
        // Dangoron column stays high on both (Eq. 2 is assumption-based, so
        // strongly autocorrelated spectra cost it a few points — the paper's
        // "above 90 percent" is measured on climate data, E2).
        assert!(
            easy[0] > 0.85 && hard[0] > 0.85,
            "dangoron: {easy:?} {hard:?}"
        );
        // StatStream must degrade from concentrated to band.
        assert!(
            easy[2] > hard[2] + 0.1,
            "statstream should degrade: {} vs {}",
            easy[2],
            hard[2]
        );
    }
}
