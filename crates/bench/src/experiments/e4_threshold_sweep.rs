//! E4 — threshold sensitivity: query time of both engines as β varies.
//!
//! TSUBASA's work is threshold-independent (it evaluates every cell);
//! Dangoron's work shrinks as β rises because more of the pair-window
//! plane is skippable. The crossover behaviour is the experiment's shape.

use crate::common::{dangoron_engine, time_dangoron, time_tsubasa, tsubasa_engine};
use crate::Scale;
use dangoron::BoundMode;
use eval::report::{dur, f3, Table};
use eval::timing::speedup;
use eval::workloads;

/// Runs E4 and renders its table.
pub fn run(scale: Scale) -> String {
    let (n, hours) = match scale {
        Scale::Quick => (16, 24 * 90),
        Scale::Full => (64, 24 * 365),
    };
    let betas = [0.5, 0.6, 0.7, 0.8, 0.9, 0.95];
    let mut table = Table::new(
        "E4: query time vs threshold β",
        &["β", "tsubasa", "dangoron", "speedup", "edges"],
    );
    for beta in betas {
        let w = workloads::climate(n, hours, beta, 2020).expect("workload");
        let (t_tsu, _) = time_tsubasa(&w, &tsubasa_engine(&w));
        let engine = dangoron_engine(&w, BoundMode::PaperJump { slack: 0.0 });
        let (t_dan, r) = time_dangoron(&w, &engine);
        table.row(vec![
            f3(beta),
            dur(t_tsu.median),
            dur(t_dan.median),
            format!("{}x", f3(speedup(&t_tsu, &t_dan))),
            r.stats.edges.to_string(),
        ]);
    }
    let mut out = table.render();
    out.push_str(
        "\nExpected shape: TSUBASA flat in β; Dangoron faster as β rises\n\
         (fewer edges ⇒ more jumps).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_thresholds() {
        let report = run(Scale::Quick);
        for beta in ["0.500", "0.700", "0.950"] {
            assert!(report.contains(beta), "missing β row {beta}");
        }
    }
}
