//! E10 — Figure 1: network construction as the end product.
//!
//! Runs the full pipeline on the climate workload and reports what the
//! motivating literature actually consumes: per-window network summaries,
//! edge stability, and blinking links (Gozolchiani et al.'s El Niño
//! signature).

use crate::common::{dangoron_engine, time_dangoron};
use crate::Scale;
use dangoron::BoundMode;
use eval::report::{f3, Table};
use eval::workloads;
use network::temporal::{consecutive_jaccard, edge_dynamics, window_summaries};

/// Runs E10 and renders its tables.
pub fn run(scale: Scale) -> String {
    let (n, hours) = match scale {
        Scale::Quick => (16, 24 * 90),
        Scale::Full => (64, 24 * 365),
    };
    let beta = 0.85;
    let w = workloads::climate(n, hours, beta, 2020).expect("workload");
    let engine = dangoron_engine(&w, BoundMode::PaperJump { slack: 0.0 });
    let (_t, r) = time_dangoron(&w, &engine);

    let summaries = window_summaries(&r.matrices);
    let mut s_table = Table::new(
        "E10a: per-window network summaries (sampled)",
        &[
            "window",
            "edges",
            "density",
            "components",
            "giant",
            "clustering",
        ],
    );
    let idx = [0, summaries.len() / 2, summaries.len() - 1];
    for &i in &idx {
        let s = &summaries[i];
        s_table.row(vec![
            s.window.to_string(),
            s.n_edges.to_string(),
            f3(s.density),
            s.n_components.to_string(),
            s.giant_size.to_string(),
            f3(s.clustering),
        ]);
    }

    let dynamics = edge_dynamics(&r.matrices);
    let n_windows = r.matrices.len();
    let mut blinking: Vec<_> = dynamics
        .iter()
        .filter(|e| e.is_blinking(n_windows, 2, 0.6))
        .collect();
    blinking.sort_by_key(|e| std::cmp::Reverse(e.deactivations));
    let mut b_table = Table::new(
        "E10b: top blinking links (≥2 blinks, stability ≤ 0.6)",
        &["edge", "presence", "blinks", "longest-run", "mean-corr"],
    );
    for e in blinking.iter().take(5) {
        b_table.row(vec![
            format!("({}, {})", e.i, e.j),
            format!("{}/{}", e.presence, n_windows),
            e.deactivations.to_string(),
            e.longest_run.to_string(),
            f3(e.mean_value),
        ]);
    }

    let jaccard = consecutive_jaccard(&r.matrices);
    let mean_j = if jaccard.is_empty() {
        1.0
    } else {
        kernel::sum(&jaccard) / jaccard.len() as f64
    };

    let mut out = s_table.render();
    out.push('\n');
    out.push_str(&b_table.render());
    out.push_str(&format!(
        "\ntotal distinct edges: {}   stable edges (presence ≥ 90%): {}\n\
         mean consecutive-window Jaccard: {}\n\
         Expected shape: high Jaccard (slow network drift) — the property\n\
         Dangoron's Eq. 2 jumping exploits.\n",
        dynamics.len(),
        dynamics
            .iter()
            .filter(|e| e.stability(n_windows) >= 0.9)
            .count(),
        f3(mean_j),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_report_shows_slow_drift() {
        let report = run(Scale::Quick);
        assert!(report.contains("E10a"));
        assert!(report.contains("E10b"));
        let line = report
            .lines()
            .find(|l| l.starts_with("mean consecutive-window Jaccard"))
            .expect("jaccard line");
        let j: f64 = line
            .split_whitespace()
            .last()
            .unwrap()
            .parse()
            .expect("jaccard value");
        assert!(j > 0.5, "climate networks should drift slowly, J = {j}");
    }
}
