//! E12 — SIMD kernel microbenchmark: the dispatched `kernel` primitives
//! against two scalar baselines on the workloads' hot shapes.
//!
//! Three implementations are timed per kernel:
//!
//! * **pr2** — the pre-kernel scalar code, replicated inline: one
//!   *sequential* accumulator chain (`acc = x[t].mul_add(y[t], acc)` for
//!   the prefix builders, unfused `s += x; sxx += x*x; …` for the direct
//!   Pearson moments). This is the PR 2 baseline the acceptance target is
//!   measured against.
//! * **striped** — the canonical 4-lane scalar fallback
//!   (`kernel::scalar`), i.e. what a build without SIMD support runs.
//! * **simd** — the dispatched kernel (`kernel::*`), AVX2+FMA or NEON
//!   where the host supports it, otherwise identical to *striped*.
//!
//! The `prefix-build` row times the real [`sketch::PairSketch::build`]
//! path end-to-end (per-basic-window kernel dots plus the prefix chain),
//! with the scalar variants forced via [`kernel::force_scalar`] — safe
//! because every backend is bit-identical. The reported backend makes the
//! record honest on hosts without SIMD: there the simd column simply
//! equals striped.

use crate::Scale;
use eval::report::Table;
use eval::timing::{measure, speedup, TimingSummary};
use sketch::{BasicWindowLayout, PairSketch};
use std::hint::black_box;
use std::time::Instant;

/// One kernel's three timings.
pub struct KernelTiming {
    /// Kernel name (`dot`, `moments`, `prefix-build`, …).
    pub name: &'static str,
    /// Input length in `f64` elements.
    pub len: usize,
    /// The PR 2 sequential-scalar baseline.
    pub pr2: TimingSummary,
    /// The canonical striped scalar fallback.
    pub striped: TimingSummary,
    /// The dispatched kernel.
    pub simd: TimingSummary,
}

impl KernelTiming {
    /// Speedup of the dispatched kernel over the PR 2 baseline.
    pub fn speedup_vs_pr2(&self) -> f64 {
        speedup(&self.pr2, &self.simd)
    }
}

/// PR 2's `PairSketch` accumulation, verbatim: sequential fused chain.
fn pr2_dot(x: &[f64], y: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        acc = a.mul_add(b, acc);
    }
    acc
}

/// PR 2's direct five-moment accumulation (`tsdata::stats::pearson`
/// before the kernel rewrite): sequential, unfused.
fn pr2_moments(x: &[f64], y: &[f64]) -> (f64, f64, f64, f64, f64) {
    let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for (&a, &b) in x.iter().zip(y) {
        sx += a;
        sy += b;
        sxx += a * a;
        syy += b * b;
        sxy += a * b;
    }
    (sx, sy, sxx, syy, sxy)
}

/// PR 2's `SketchStore` per-window accumulation: sequential `+` / fused
/// square chain.
fn pr2_sums(x: &[f64]) -> (f64, f64) {
    let (mut s, mut ss) = (0.0, 0.0);
    for &v in x {
        s += v;
        ss = v.mul_add(v, ss);
    }
    (s, ss)
}

/// Time `f` over `reps` repetitions of `inner` calls each.
fn time_it(reps: usize, inner: usize, mut f: impl FnMut() -> f64) -> TimingSummary {
    measure(reps, 1, || {
        let t = Instant::now();
        let mut sink = 0.0;
        for _ in 0..inner {
            sink += f(); // lint:allow(float-reduction-outside-kernel) -- benchmark sink defeating DCE; value is discarded
        }
        let elapsed = t.elapsed();
        assert!(sink.is_finite());
        elapsed
    })
}

/// Runs the microbenchmark suite and returns the per-kernel timings.
pub fn measure_suite(scale: Scale) -> Vec<KernelTiming> {
    let (len, width, reps, inner) = match scale {
        Scale::Quick => (16_384usize, 64usize, 5usize, 8usize),
        Scale::Full => (65_536, 64, 9, 16),
    };
    let x: Vec<f64> = (0..len)
        .map(|t| (t as f64 * 0.37).sin() + 0.01 * (t % 97) as f64)
        .collect();
    let y: Vec<f64> = (0..len).map(|t| (t as f64 * 0.91).cos() * 1.7).collect();
    let layout = BasicWindowLayout::cover(0, len, width).expect("valid layout");

    let mut out = Vec::new();

    // Raw dot product — the PairSketch inner kernel.
    out.push(KernelTiming {
        name: "dot",
        len,
        pr2: time_it(reps, inner, || pr2_dot(black_box(&x), black_box(&y))),
        striped: time_it(reps, inner, || {
            kernel::scalar::dot(black_box(&x), black_box(&y))
        }),
        simd: time_it(reps, inner, || kernel::dot(black_box(&x), black_box(&y))),
    });

    // Fused (Σx, Σx²) — the SketchStore prefix kernel.
    out.push(KernelTiming {
        name: "sum+sumsq",
        len,
        pr2: time_it(reps, inner, || pr2_sums(black_box(&x)).1),
        striped: time_it(reps, inner, || {
            kernel::scalar::sum_and_sum_squares(black_box(&x)).1
        }),
        simd: time_it(reps, inner, || kernel::sum_and_sum_squares(black_box(&x)).1),
    });

    // Five-moment accumulation — the direct window-correlation kernel.
    out.push(KernelTiming {
        name: "moments",
        len,
        pr2: time_it(reps, inner, || pr2_moments(black_box(&x), black_box(&y)).4),
        striped: time_it(reps, inner, || {
            kernel::scalar::cross_moments(black_box(&x), black_box(&y)).sum_xy
        }),
        simd: time_it(reps, inner, || {
            kernel::cross_moments(black_box(&x), black_box(&y)).sum_xy
        }),
    });

    // The real prefix-build path end-to-end (PairSketch::build); scalar
    // variants run the same code with the kernel backend forced scalar.
    // The pr2 variant replays the original sequential prefix loop.
    let pr2_prefix = |x: &[f64], y: &[f64]| -> f64 {
        let mut cross_prefix = Vec::with_capacity(layout.count + 1);
        cross_prefix.push(0.0);
        let mut acc = 0.0;
        for b in 0..layout.count {
            let (t0, t1) = layout.time_range(b);
            for t in t0..t1 {
                acc = x[t].mul_add(y[t], acc);
            }
            cross_prefix.push(acc);
        }
        *black_box(&cross_prefix).last().unwrap()
    };
    let build = |x: &[f64], y: &[f64]| -> f64 {
        let p = PairSketch::build(&layout, black_box(x), black_box(y)).expect("valid build");
        p.cross_sum(0, layout.count)
    };
    let pr2 = time_it(reps, inner, || pr2_prefix(black_box(&x), black_box(&y)));
    kernel::force_scalar(true);
    let striped = time_it(reps, inner, || build(&x, &y));
    kernel::force_scalar(false);
    let simd = time_it(reps, inner, || build(&x, &y));
    out.push(KernelTiming {
        name: "prefix-build",
        len,
        pr2,
        striped,
        simd,
    });

    out
}

/// Runs E12 and renders its table.
pub fn run(scale: Scale) -> String {
    let suite = measure_suite(scale);
    let mut table = Table::new(
        "E12: SIMD kernels vs scalar baselines",
        &[
            "kernel",
            "len",
            "pr2-ms",
            "striped-ms",
            "simd-ms",
            "simd/pr2",
            "simd/striped",
        ],
    );
    for k in &suite {
        table.row(vec![
            k.name.to_string(),
            k.len.to_string(),
            format!("{:.4}", k.pr2.median_ms()),
            format!("{:.4}", k.striped.median_ms()),
            format!("{:.4}", k.simd.median_ms()),
            format!("{:.2}x", k.speedup_vs_pr2()),
            format!("{:.2}x", speedup(&k.striped, &k.simd)),
        ]);
    }
    let mut out = table.render();
    out.push_str(&format!(
        "\nDispatched backend: {}. All three variants are bit-identical in\n\
         output (the kernel determinism contract); only speed differs. On\n\
         hosts without SIMD support the simd column equals striped and the\n\
         backend reads \"scalar\" — record interpreted accordingly.\n",
        kernel::active_backend()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_agree_with_kernels() {
        // The inline PR 2 replicas must compute the same mathematics as
        // the kernels (tolerance: different summation order).
        let x: Vec<f64> = (0..257).map(|t| (t as f64 * 0.7).sin()).collect();
        let y: Vec<f64> = (0..257).map(|t| (t as f64 * 1.3).cos()).collect();
        let scale = x.iter().map(|v| v.abs()).sum::<f64>().max(1.0);
        assert!((pr2_dot(&x, &y) - kernel::dot(&x, &y)).abs() < 1e-9 * scale);
        let (s, ss) = pr2_sums(&x);
        let (ks, kss) = kernel::sum_and_sum_squares(&x);
        assert!((s - ks).abs() < 1e-9 * scale);
        assert!((ss - kss).abs() < 1e-9 * scale);
        let m = kernel::cross_moments(&x, &y);
        let (sx, .., sxy) = pr2_moments(&x, &y);
        assert!((sx - m.sum_x).abs() < 1e-9 * scale);
        assert!((sxy - m.sum_xy).abs() < 1e-9 * scale);
    }

    #[test]
    fn report_renders_with_backend_and_rows() {
        let report = run(Scale::Quick);
        for name in ["dot", "sum+sumsq", "moments", "prefix-build"] {
            assert!(report.contains(name), "missing {name} row:\n{report}");
        }
        assert!(
            report.contains("Dispatched backend:"),
            "missing backend line:\n{report}"
        );
    }
}
