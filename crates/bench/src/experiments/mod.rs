//! The experiment modules, one per paper artefact (see EXPERIMENTS.md).

pub mod e10_network;
pub mod e11_streaming_pivots;
pub mod e12_kernels;
pub mod e13_sharding;
pub mod e1_query_time;
pub mod e2_accuracy;
pub mod e3_jump_structure;
pub mod e4_threshold_sweep;
pub mod e5_window_geometry;
pub mod e6_tomborg_robustness;
pub mod e7_pruning_ablation;
pub mod e8_scaling;
pub mod e9_basic_window;

use crate::Scale;

/// Dispatch an experiment by id (`"e1"` … `"e12"`), returning its report.
pub fn run_experiment(id: &str, scale: Scale) -> Option<String> {
    Some(match id {
        "e1" => e1_query_time::run(scale),
        "e2" => e2_accuracy::run(scale),
        "e3" => e3_jump_structure::run(scale),
        "e4" => e4_threshold_sweep::run(scale),
        "e5" => e5_window_geometry::run(scale),
        "e6" => e6_tomborg_robustness::run(scale),
        "e7" => e7_pruning_ablation::run(scale),
        "e8" => e8_scaling::run(scale),
        "e9" => e9_basic_window::run(scale),
        "e10" => e10_network::run(scale),
        "e11" => e11_streaming_pivots::run(scale),
        "e12" => e12_kernels::run(scale),
        "e13" => e13_sharding::run(scale),
        _ => return None,
    })
}

/// All experiment ids in order.
pub const ALL: [&str; 13] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13",
];
