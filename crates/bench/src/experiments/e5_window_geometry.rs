//! E5 — window geometry: query window size `l` and sliding step `η`.
//!
//! Larger windows smooth correlation (fewer edges crossing β per slide);
//! smaller steps create more windows with more overlap — the regime where
//! the jumping machinery pays most.

use crate::common::{dangoron_engine, time_dangoron, time_tsubasa, tsubasa_engine};
use crate::Scale;
use dangoron::BoundMode;
use eval::report::{dur, f3, Table};
use eval::timing::speedup;
use eval::workloads::Workload;
use sketch::SlidingQuery;
use tsdata::climate::generate_sized;

/// Runs E5 and renders its table.
pub fn run(scale: Scale) -> String {
    let (n, hours) = match scale {
        Scale::Quick => (16, 24 * 90),
        Scale::Full => (64, 24 * 365),
    };
    let beta = 0.9;
    let ds = generate_sized(n, hours, 2020).expect("climate data");
    let geometries: &[(usize, usize)] = &[(72, 24), (168, 24), (336, 24), (168, 48), (168, 96)];
    let mut table = Table::new(
        "E5: window size l and step η sweep (β=0.9)",
        &[
            "l",
            "η",
            "windows",
            "tsubasa",
            "dangoron",
            "speedup",
            "skip-frac",
        ],
    );
    for &(l, step) in geometries {
        let query = SlidingQuery {
            start: 0,
            end: hours,
            window: l,
            step,
            threshold: beta,
        };
        let w = Workload {
            name: format!("climate l={l} η={step}"),
            data: ds.data.clone(),
            query,
            basic_window: 24,
        };
        let (t_tsu, _) = time_tsubasa(&w, &tsubasa_engine(&w));
        let engine = dangoron_engine(&w, BoundMode::PaperJump { slack: 0.0 });
        let (t_dan, r) = time_dangoron(&w, &engine);
        table.row(vec![
            l.to_string(),
            step.to_string(),
            query.n_windows().to_string(),
            dur(t_tsu.median),
            dur(t_dan.median),
            format!("{}x", f3(speedup(&t_tsu, &t_dan))),
            f3(r.stats.skip_fraction()),
        ]);
    }
    let mut out = table.render();
    out.push_str(
        "\nExpected shape: speedup rises with l (TSUBASA pays O(n_s) per cell)\n\
         and with smaller η (more overlapping windows to jump over).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_has_all_geometries() {
        let report = run(Scale::Quick);
        assert!(report.contains("336"));
        assert!(report.contains("96"));
        assert!(report.lines().count() >= 8);
    }
}
