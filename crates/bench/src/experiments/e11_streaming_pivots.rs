//! E11 — streaming horizontal pruning: the incrementally maintained pivot
//! table brings the triangle bound (the one bound that never costs
//! accuracy) to the real-time path, closing the feature gap between
//! sessions and the batch engine.
//!
//! Three session variants stream the same workload in week-sized appends:
//! no pruning, triangle only, and triangle + Eq. 2 jumping. Exhaustive
//! variants must agree edge-for-edge (the triangle bound is sound); the
//! reported skip fraction is what the pivot table buys per drain.

use crate::Scale;
use dangoron::config::{HorizontalConfig, PivotStrategy};
use dangoron::{BoundMode, DangoronConfig, PruningStats, StreamingDangoron};
use eval::report::{dur, Table};
use eval::workloads::{self, Workload};
use std::time::{Duration, Instant};

struct StreamOutcome {
    open: Duration,
    stream: Duration,
    edges: u64,
    windows: usize,
    stats: PruningStats,
}

fn stream(w: &Workload, config: DangoronConfig) -> StreamOutcome {
    let b = w.basic_window;
    let initial_cols = ((w.data.len() / 2) / b * b).max(b);
    let initial = w.data.slice_columns(0, initial_cols).expect("slice");
    let t = Instant::now();
    let mut session = StreamingDangoron::new(
        initial,
        w.query.window,
        w.query.step,
        w.query.threshold,
        config,
    )
    .expect("valid streaming geometry");
    let open = t.elapsed();

    let t = Instant::now();
    let mut windows = session.drain_completed().expect("drain").len();
    let mut at = initial_cols;
    while at < w.data.len() {
        let next = (at + 7 * b).min(w.data.len());
        let chunk = w.data.slice_columns(at, next).expect("chunk");
        windows += session.append(&chunk).expect("append").len();
        at = next;
    }
    let stream = t.elapsed();
    let stats = session.stats().clone();
    StreamOutcome {
        open,
        stream,
        edges: stats.edges,
        windows,
        stats,
    }
}

/// Runs E11 and renders its table.
pub fn run(scale: Scale) -> String {
    let (n, hours) = match scale {
        Scale::Quick => (16, 24 * 90),
        Scale::Full => (64, 24 * 365),
    };
    let beta = 0.9;
    let w = workloads::climate(n, hours, beta, 2020).expect("workload");
    let horizontal = Some(HorizontalConfig {
        n_pivots: 2,
        strategy: PivotStrategy::Evenly,
    });

    let variants: Vec<(&str, DangoronConfig)> = vec![
        (
            "exhaustive",
            DangoronConfig {
                basic_window: w.basic_window,
                bound: BoundMode::Exhaustive,
                ..Default::default()
            },
        ),
        (
            "exhaustive+triangle",
            DangoronConfig {
                basic_window: w.basic_window,
                bound: BoundMode::Exhaustive,
                horizontal: horizontal.clone(),
                ..Default::default()
            },
        ),
        (
            "jump+triangle",
            DangoronConfig {
                basic_window: w.basic_window,
                bound: BoundMode::PaperJump { slack: 0.0 },
                horizontal,
                ..Default::default()
            },
        ),
    ];

    let mut table = Table::new(
        "E11: streaming pivots (β=0.9, week-sized appends)",
        &[
            "variant",
            "open",
            "stream",
            "windows",
            "evaluated",
            "tri-pruned",
            "pairs-skipped",
            "skip-frac",
            "edges",
        ],
    );
    for (name, config) in variants {
        let o = stream(&w, config);
        table.row(vec![
            name.to_string(),
            dur(o.open),
            dur(o.stream),
            o.windows.to_string(),
            o.stats.evaluated.to_string(),
            o.stats.pruned_by_triangle.to_string(),
            o.stats.pairs_skipped_entirely.to_string(),
            format!("{:.3}", o.stats.skip_fraction()),
            o.edges.to_string(),
        ]);
    }
    let mut out = table.render();
    out.push_str(
        "\nExpected shape: both exhaustive variants emit identical edge\n\
         counts (the triangle bound is lossless) while the triangle column\n\
         turns nonzero; jump+triangle composes both mechanisms for the\n\
         highest skip fraction. The pivot table is never rebuilt — each\n\
         append extends it from the incrementally updated sketches.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_is_lossless_and_fires_in_streaming() {
        let report = run(Scale::Quick);
        let field = |name: &str, idx: usize| -> u64 {
            report
                .lines()
                .find(|l| l.trim_start().starts_with(name))
                .unwrap_or_else(|| panic!("row {name} in:\n{report}"))
                .split_whitespace()
                .nth(idx)
                .unwrap()
                .parse::<f64>()
                .unwrap() as u64
        };
        // Edge totals (last column = index 8) agree exactly.
        assert_eq!(
            field("exhaustive ", 8),
            field("exhaustive+triangle", 8),
            "triangle pruning changed streamed edges"
        );
        // The triangle machinery did something: fewer exact evaluations.
        assert!(
            field("exhaustive+triangle", 4) < field("exhaustive ", 4),
            "triangle pruning saved no evaluations:\n{report}"
        );
    }
}
