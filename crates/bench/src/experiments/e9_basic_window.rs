//! E9 — basic-window size ablation (the Eq. 1 design parameter).
//!
//! Small basic windows give the jump bound finer granularity (c_b values
//! closer to the data) but make TSUBASA-style combines longer (larger
//! n_s); big basic windows coarsen the bound. Sketch build time also
//! scales with the count. The basic window must divide both l = 720 and
//! η = 24, so candidates are divisors of 24.

use crate::common::{time_dangoron, time_tsubasa};
use crate::Scale;
use baselines::tsubasa::Tsubasa;
use dangoron::{BoundMode, Dangoron, DangoronConfig};
use eval::report::{dur, f3, Table};
use eval::workloads;
use std::time::Instant;

/// Runs E9 and renders its table.
pub fn run(scale: Scale) -> String {
    let (n, hours) = match scale {
        Scale::Quick => (12, 24 * 90),
        Scale::Full => (48, 24 * 365),
    };
    let beta = 0.9;
    let widths: &[usize] = &[4, 6, 8, 12, 24];
    let mut table = Table::new(
        "E9: basic-window width ablation (β=0.9, l=720, η=24)",
        &[
            "b",
            "n_s",
            "prepare",
            "dangoron-query",
            "tsubasa-query",
            "skip-frac",
        ],
    );
    for &b in widths {
        let mut w = workloads::climate(n, hours, beta, 2020).expect("workload");
        w.basic_window = b;
        let engine = Dangoron::new(DangoronConfig {
            basic_window: b,
            bound: BoundMode::PaperJump { slack: 0.0 },
            ..Default::default()
        })
        .expect("valid config");
        let t0 = Instant::now();
        let prep = engine.prepare(&w.data, w.query).expect("prepare");
        let prepare = t0.elapsed();
        drop(prep);
        let (t_dan, r) = time_dangoron(&w, &engine);
        let (t_tsu, _) = time_tsubasa(
            &w,
            &Tsubasa {
                basic_window: b,
                threads: 1,
            },
        );
        table.row(vec![
            b.to_string(),
            (w.query.window / b).to_string(),
            dur(prepare),
            dur(t_dan.median),
            dur(t_tsu.median),
            f3(r.stats.skip_fraction()),
        ]);
    }
    let mut out = table.render();
    out.push_str(
        "\nExpected shape: TSUBASA query grows as b shrinks (n_s grows);\n\
         Dangoron is nearly flat (O(1) evaluation), with slightly better\n\
         skip fractions at finer b.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_divisors_of_24() {
        let report = run(Scale::Quick);
        for b in ["4", "6", "8", "12", "24"] {
            assert!(
                report
                    .lines()
                    .any(|l| l.split_whitespace().next() == Some(b)),
                "missing width {b}"
            );
        }
    }
}
