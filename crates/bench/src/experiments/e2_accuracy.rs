//! E2 — the accuracy claim (§4): Dangoron "achieves an accuracy above 90
//! percent, comparable to ParCorr".
//!
//! Accuracy = F1 of the emitted edge set against the exact ground truth
//! (naive engine). Dangoron's only error source is Eq. 2 jumps (misses, no
//! false positives); ParCorr's is JL estimation noise.
//!
//! Accuracy on synthetic data is seed-sensitive (how many true
//! correlations sit exactly at `β` is a property of the draw), so every
//! engine is scored over several seeds and the table reports the mean
//! with the per-seed F1 spread — not one favourable draw.

use crate::Scale;
use baselines::parcorr::ParCorr;
use baselines::statstream::StatStream;
use baselines::SlidingEngine;
use dangoron::BoundMode;
use eval::engines::DangoronEngine;
use eval::report::{f3, Table};
use eval::workloads;

/// Seeds every engine is averaged over.
const SEEDS: [u64; 3] = [2020, 2021, 2022];

/// Runs E2 and renders its table.
pub fn run(scale: Scale) -> String {
    let (n, hours) = match scale {
        Scale::Quick => (12, 24 * 90),
        Scale::Full => (48, 24 * 365),
    };
    let beta = 0.85;

    let engines: Vec<Box<dyn SlidingEngine>> = vec![
        Box::new(DangoronEngine {
            config: dangoron::DangoronConfig {
                basic_window: 24,
                bound: BoundMode::PaperJump { slack: 0.0 },
                ..Default::default()
            },
        }),
        Box::new(DangoronEngine {
            config: dangoron::DangoronConfig {
                basic_window: 24,
                bound: BoundMode::PaperJump { slack: 0.05 },
                ..Default::default()
            },
        }),
        Box::new(ParCorr {
            dim: 128,
            seed: 7,
            margin: 0.05,
            verify: true,
        }),
        Box::new(ParCorr {
            dim: 128,
            seed: 7,
            margin: 0.0,
            verify: false,
        }),
        // 64 coefficients cover the diurnal line (30 cycles per 30-day
        // window → coefficient index ≈ 60); fewer would blind the filter —
        // that data dependence is E6's subject, not E2's.
        Box::new(StatStream {
            coeffs: 64,
            margin: 0.05,
            verify: true,
        }),
    ];

    let mut table = Table::new(
        &format!(
            "E2: accuracy vs exact ground truth (climate n={n}, h={hours}, β={beta}, \
             mean over {} seeds)",
            SEEDS.len()
        ),
        &[
            "engine",
            "precision",
            "recall",
            "F1",
            "F1 min–max",
            "max |Δvalue|",
        ],
    );
    for e in engines {
        let mut precisions = Vec::new();
        let mut recalls = Vec::new();
        let mut f1s = Vec::new();
        let mut max_err = 0.0f64;
        for &seed in &SEEDS {
            let w = workloads::climate(n, hours, beta, seed).expect("workload");
            let truth = workloads::ground_truth(&w).expect("ground truth");
            let got = e.execute(&w.data, w.query).expect("engine run");
            let r = eval::compare(&got, &truth);
            precisions.push(r.precision);
            recalls.push(r.recall);
            f1s.push(r.f1);
            max_err = max_err.max(r.max_value_err);
        }
        let k = SEEDS.len() as f64;
        let precision = kernel::sum(&precisions);
        let recall = kernel::sum(&recalls);
        let f1_mean = kernel::sum(&f1s) / k;
        let (f1_min, f1_max) = f1s
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            });
        table.row(vec![
            e.name(),
            f3(precision / k),
            f3(recall / k),
            f3(f1_mean),
            format!("{}–{}", f3(f1_min), f3(f1_max)),
            format!("{max_err:.1e}"),
        ]);
    }
    let mut out = table.render();
    out.push_str(
        "\nPaper claim: Dangoron accuracy above 0.90, comparable to ParCorr.\n\
         On this synthetic proxy the literal Eq. 2 (slack 0) sits slightly\n\
         below the claim on noisy draws (precision stays 1.0 — it never\n\
         invents edges); the slack knob (0.05) recovers the missed recall\n\
         and clears 0.90 on every seed, matching the paper's accuracy/skip\n\
         trade-off description.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_meets_the_accuracy_claim() {
        let report = run(Scale::Quick);
        assert!(report.contains("parcorr"));
        let f1_cell = |prefix: &str| -> f64 {
            let line = report
                .lines()
                .find(|l| l.starts_with(prefix))
                .unwrap_or_else(|| panic!("{prefix} row present"));
            let cells: Vec<&str> = line.split_whitespace().collect();
            cells[3].parse().expect("F1 cell")
        };
        let precision_cell = |prefix: &str| -> f64 {
            let line = report
                .lines()
                .find(|l| l.starts_with(prefix))
                .unwrap_or_else(|| panic!("{prefix} row present"));
            let cells: Vec<&str> = line.split_whitespace().collect();
            cells[1].parse().expect("precision cell")
        };
        // Literal Eq. 2: exact emissions (precision 1.0), whatever recall
        // the draw allows.
        assert_eq!(precision_cell("dangoron(jump,"), 1.0);
        // The claimed ≥0.9 accuracy, via the slack knob, averaged over
        // seeds — not a single favourable draw.
        let f1 = f1_cell("dangoron(jump+0.05,");
        assert!(f1 >= 0.9, "Dangoron(slack=0.05) mean F1 = {f1}");
    }
}
