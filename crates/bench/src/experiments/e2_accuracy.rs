//! E2 — the accuracy claim (§4): Dangoron "achieves an accuracy above 90
//! percent, comparable to ParCorr".
//!
//! Accuracy = F1 of the emitted edge set against the exact ground truth
//! (naive engine). Dangoron's only error source is Eq. 2 jumps (misses, no
//! false positives); ParCorr's is JL estimation noise.

use crate::Scale;
use baselines::parcorr::ParCorr;
use baselines::statstream::StatStream;
use baselines::SlidingEngine;
use dangoron::BoundMode;
use eval::engines::DangoronEngine;
use eval::report::{f3, Table};
use eval::workloads;

/// Runs E2 and renders its table.
pub fn run(scale: Scale) -> String {
    let (n, hours) = match scale {
        Scale::Quick => (12, 24 * 90),
        Scale::Full => (48, 24 * 365),
    };
    let beta = 0.85;
    let w = workloads::climate(n, hours, beta, 2020).expect("workload");
    let truth = workloads::ground_truth(&w).expect("ground truth");

    let engines: Vec<Box<dyn SlidingEngine>> = vec![
        Box::new(DangoronEngine {
            config: dangoron::DangoronConfig {
                basic_window: w.basic_window,
                bound: BoundMode::PaperJump { slack: 0.0 },
                ..Default::default()
            },
        }),
        Box::new(DangoronEngine {
            config: dangoron::DangoronConfig {
                basic_window: w.basic_window,
                bound: BoundMode::PaperJump { slack: 0.05 },
                ..Default::default()
            },
        }),
        Box::new(ParCorr {
            dim: 128,
            seed: 7,
            margin: 0.05,
            verify: true,
        }),
        Box::new(ParCorr {
            dim: 128,
            seed: 7,
            margin: 0.0,
            verify: false,
        }),
        // 64 coefficients cover the diurnal line (30 cycles per 30-day
        // window → coefficient index ≈ 60); fewer would blind the filter —
        // that data dependence is E6's subject, not E2's.
        Box::new(StatStream {
            coeffs: 64,
            margin: 0.05,
            verify: true,
        }),
    ];

    let mut table = Table::new(
        &format!("E2: accuracy vs exact ground truth ({})", w.name),
        &["engine", "precision", "recall", "F1", "max |Δvalue|"],
    );
    for e in engines {
        let got = e.execute(&w.data, w.query).expect("engine run");
        let r = eval::compare(&got, &truth);
        table.row(vec![
            e.name(),
            f3(r.precision),
            f3(r.recall),
            f3(r.f1),
            format!("{:.1e}", r.max_value_err),
        ]);
    }
    let mut out = table.render();
    out.push_str(
        "\nPaper claim: Dangoron accuracy above 0.90, comparable to ParCorr.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_meets_the_accuracy_claim() {
        let report = run(Scale::Quick);
        assert!(report.contains("dangoron(jump"));
        assert!(report.contains("parcorr"));
        // The Dangoron row must show F1 >= 0.9: parse its F1 cell.
        let line = report
            .lines()
            .find(|l| l.starts_with("dangoron(jump,"))
            .expect("dangoron row present");
        let cells: Vec<&str> = line.split_whitespace().collect();
        let f1: f64 = cells[3].parse().expect("F1 cell");
        assert!(f1 >= 0.9, "Dangoron F1 = {f1}");
    }
}
