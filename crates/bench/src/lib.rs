//! # bench — experiment harness regenerating every paper artefact
//!
//! One module per experiment (see `DESIGN.md` §5 and `EXPERIMENTS.md` for
//! the index). Each experiment exposes `run(scale) -> String` returning the
//! rendered report table(s); the `harness` binary dispatches on experiment
//! id. Criterion micro-benches live in `benches/`.

pub mod common;
pub mod experiments;
pub mod merge;
pub mod perf;
pub mod schema;

/// How big the experiment should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale runs for CI and smoke checks.
    Quick,
    /// The paper-sized configuration (minutes).
    Full,
}

impl Scale {
    /// Parse from a CLI flag.
    pub fn from_flag(full: bool) -> Self {
        if full {
            Scale::Full
        } else {
            Scale::Quick
        }
    }
}
