//! The `BENCH_*.json` perf trajectory: one machine-readable record per PR
//! so every later optimisation is measured against its predecessors.
//!
//! `harness bench [--out BENCH_N.json] [--full]` runs the E1 query-time
//! workload at a ladder of thread counts, timing the prepare phase (sketch
//! building — the paper excludes it from "pure query time" but it
//! dominates offline cost) and the pure query walk separately. The JSON is
//! hand-rolled: serde_json is not an available dependency, and the schema
//! is flat enough that a tiny emitter is clearer than a shim.

use crate::common::dangoron_engine;
use crate::Scale;
use dangoron::{BoundMode, Dangoron, DangoronConfig};
use eval::timing::{measure, speedup, TimingSummary};
use eval::workloads::{self, Workload};
use std::fmt::Write as _;
use std::time::Instant;

/// Thread counts every perf record samples.
pub const THREAD_LADDER: [usize; 4] = [1, 2, 4, 8];

/// One `(threads, timings)` sample of the perf run.
#[derive(Debug, Clone)]
pub struct ThreadSample {
    /// Worker threads used.
    pub threads: usize,
    /// Prepare-phase (sketch build) timing.
    pub prepare: TimingSummary,
    /// Pure-query timing.
    pub query: TimingSummary,
    /// Fraction of cells skipped by pruning.
    pub skip_fraction: f64,
    /// Total edges across all windows (sanity: identical for all rows).
    pub total_edges: usize,
}

/// A full perf record.
#[derive(Debug, Clone)]
pub struct PerfRecord {
    /// Workload description.
    pub workload: String,
    /// Series count.
    pub n_series: usize,
    /// Series length in columns.
    pub n_cols: usize,
    /// Number of sliding windows.
    pub n_windows: usize,
    /// Hardware threads the machine reports (speedups above this number
    /// are not expected to materialise).
    pub hardware_threads: usize,
    /// Per-thread-count samples.
    pub samples: Vec<ThreadSample>,
}

impl PerfRecord {
    /// Query-time speedup of the `threads` sample over the 1-thread one.
    pub fn query_speedup(&self, threads: usize) -> Option<f64> {
        let base = self.samples.iter().find(|s| s.threads == 1)?;
        let cand = self.samples.iter().find(|s| s.threads == threads)?;
        Some(speedup(&base.query, &cand.query))
    }

    /// Prepare-phase speedup of the `threads` sample over the 1-thread one.
    pub fn prepare_speedup(&self, threads: usize) -> Option<f64> {
        let base = self.samples.iter().find(|s| s.threads == 1)?;
        let cand = self.samples.iter().find(|s| s.threads == threads)?;
        Some(speedup(&base.prepare, &cand.prepare))
    }

    /// Renders the record as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"schema\": \"dangoron-bench-v1\",");
        let _ = writeln!(s, "  \"workload\": {},", json_str(&self.workload));
        let _ = writeln!(s, "  \"n_series\": {},", self.n_series);
        let _ = writeln!(s, "  \"n_cols\": {},", self.n_cols);
        let _ = writeln!(s, "  \"n_windows\": {},", self.n_windows);
        let _ = writeln!(s, "  \"hardware_threads\": {},", self.hardware_threads);
        let _ = writeln!(s, "  \"samples\": [");
        for (k, smp) in self.samples.iter().enumerate() {
            let comma = if k + 1 < self.samples.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{\"threads\": {}, \"prepare_ms\": {{\"median\": {:.6}, \"min\": {:.6}, \"max\": {:.6}}}, \
                 \"query_ms\": {{\"median\": {:.6}, \"min\": {:.6}, \"max\": {:.6}}}, \
                 \"skip_fraction\": {:.6}, \"total_edges\": {}, \
                 \"query_speedup_vs_1\": {}, \"prepare_speedup_vs_1\": {}}}{comma}",
                smp.threads,
                smp.prepare.median_ms(),
                smp.prepare.min.as_secs_f64() * 1e3,
                smp.prepare.max.as_secs_f64() * 1e3,
                smp.query.median_ms(),
                smp.query.min.as_secs_f64() * 1e3,
                smp.query.max.as_secs_f64() * 1e3,
                smp.skip_fraction,
                smp.total_edges,
                json_ratio(self.query_speedup(smp.threads)),
                json_ratio(self.prepare_speedup(smp.threads)),
            );
        }
        let _ = writeln!(s, "  ]");
        let _ = writeln!(s, "}}");
        s
    }
}

/// A speedup ratio as a JSON value: `null` when there is no 1-thread
/// baseline in the ladder (bare `NaN` is not valid JSON).
fn json_ratio(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:.4}"),
        _ => "null".to_string(),
    }
}

fn json_str(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn sample(w: &Workload, engine: &Dangoron, threads: usize, reps: usize) -> ThreadSample {
    let prepare = measure(reps, 1, || {
        let t = Instant::now();
        let p = engine.prepare(&w.data, w.query).expect("valid workload");
        let elapsed = t.elapsed();
        drop(p);
        elapsed
    });
    let prep = engine.prepare(&w.data, w.query).expect("valid workload");
    let result = engine.run(&prep);
    let query = measure(reps, 1, || {
        let t = Instant::now();
        let _ = engine.run(&prep);
        t.elapsed()
    });
    ThreadSample {
        threads,
        prepare,
        query,
        skip_fraction: result.stats.skip_fraction(),
        total_edges: result.total_edges(),
    }
}

/// Runs the perf ladder and returns the record.
pub fn run(scale: Scale) -> PerfRecord {
    let (n, hours, reps) = match scale {
        Scale::Quick => (32, 24 * 90, 3),
        Scale::Full => (128, 24 * 365, 5),
    };
    let beta = 0.9;
    let w = workloads::climate(n, hours, beta, 2020).expect("workload");
    let base = dangoron_engine(&w, BoundMode::PaperJump { slack: 0.0 });

    let samples = THREAD_LADDER
        .iter()
        .map(|&threads| {
            let engine = Dangoron::new(DangoronConfig {
                threads,
                ..base.config().clone()
            })
            .expect("valid config");
            sample(&w, &engine, threads, reps)
        })
        .collect();

    PerfRecord {
        workload: w.name.clone(),
        n_series: n,
        n_cols: w.data.len(),
        n_windows: w.query.n_windows(),
        hardware_threads: exec::available_threads(),
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_record() -> PerfRecord {
        // A miniature ladder so the test stays fast.
        let w = workloads::climate_quick(8, 0.9).unwrap();
        let samples = [1usize, 2]
            .iter()
            .map(|&threads| {
                let engine = Dangoron::new(DangoronConfig {
                    basic_window: w.basic_window,
                    threads,
                    ..Default::default()
                })
                .unwrap();
                sample(&w, &engine, threads, 1)
            })
            .collect();
        PerfRecord {
            workload: w.name.clone(),
            n_series: 8,
            n_cols: w.data.len(),
            n_windows: w.query.n_windows(),
            hardware_threads: exec::available_threads(),
            samples,
        }
    }

    #[test]
    fn record_is_consistent_and_serialises() {
        let r = tiny_record();
        // Edges identical across thread counts (determinism).
        let edges: Vec<usize> = r.samples.iter().map(|s| s.total_edges).collect();
        assert!(edges.windows(2).all(|w| w[0] == w[1]), "{edges:?}");
        assert!(r.query_speedup(2).is_some());
        assert!(r.prepare_speedup(2).is_some());
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"dangoron-bench-v1\""));
        assert!(json.contains("\"threads\": 1"));
        assert!(json.contains("\"threads\": 2"));
        assert!(json.contains("query_speedup_vs_1"));
        // Balanced braces/brackets — cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
