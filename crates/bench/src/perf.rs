//! The `BENCH_*.json` perf trajectory: one machine-readable record per PR
//! so every later optimisation is measured against its predecessors.
//!
//! `harness bench [--out BENCH_N.json] [--full]` runs the E1 query-time
//! workload at a ladder of thread counts, timing the prepare phase (sketch
//! building — the paper excludes it from "pure query time" but it
//! dominates offline cost) and the pure query walk separately. The JSON is
//! hand-rolled: serde_json is not an available dependency, and the schema
//! is flat enough that a tiny emitter is clearer than a shim.

use crate::common::dangoron_engine;
use crate::Scale;
use dangoron::config::HorizontalConfig;
use dangoron::{BoundMode, Dangoron, DangoronConfig, StreamingDangoron};
use eval::timing::{measure, speedup, TimingSummary};
use eval::workloads::{self, Workload};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Thread counts every perf record samples.
pub const THREAD_LADDER: [usize; 4] = [1, 2, 4, 8];

/// One `(threads, timings)` sample of the perf run.
#[derive(Debug, Clone)]
pub struct ThreadSample {
    /// Worker threads used.
    pub threads: usize,
    /// Prepare-phase (sketch build) timing.
    pub prepare: TimingSummary,
    /// Pure-query timing.
    pub query: TimingSummary,
    /// Fraction of cells skipped by pruning.
    pub skip_fraction: f64,
    /// Total edges across all windows (sanity: identical for all rows).
    pub total_edges: usize,
}

/// The streaming-pivots sample: the same workload replayed through a
/// [`StreamingDangoron`] session whose pivot table is maintained
/// incrementally, so horizontal pruning applies on the real-time path.
#[derive(Debug, Clone)]
pub struct StreamingPerf {
    /// Worker threads used.
    pub threads: usize,
    /// Session-open timing (initial sketch + pivot build).
    pub open: TimingSummary,
    /// Total append+drain timing for the whole remaining stream.
    pub drain: TimingSummary,
    /// Windows emitted over the stream.
    pub windows: usize,
    /// Fraction of cells not exactly evaluated (cumulative).
    pub skip_fraction: f64,
    /// Cells settled by the triangle bound.
    pub pruned_by_triangle: u64,
    /// (pair, drain) encounters eliminated wholesale by the prefilter.
    pub pairs_skipped_entirely: u64,
    /// Total edges across all emitted windows.
    pub total_edges: usize,
}

/// The kernel microbenchmark sample: dispatched SIMD kernels against the
/// PR 2 sequential-scalar baselines (see `experiments::e12_kernels`), so
/// the single-core multiplier lands in the perf trajectory alongside the
/// thread-scaling one.
#[derive(Debug, Clone)]
pub struct KernelsPerf {
    /// Backend the dispatcher selected (`avx2+fma`, `neon`, `scalar`).
    pub backend: String,
    /// Input length in `f64` elements.
    pub len: usize,
    /// Dot-product kernel speedup over the PR 2 baseline.
    pub dot_speedup: f64,
    /// Five-moment (window-correlation) kernel speedup.
    pub moments_speedup: f64,
    /// End-to-end `PairSketch::build` prefix-build speedup.
    pub prefix_build_speedup: f64,
}

/// Hardware context embedded in every record, so the machine's limits
/// (1-core containers, missing SIMD) are self-documenting instead of
/// tribal knowledge. Hostname-free by construction: a fixed flag
/// whitelist and one counter (see `exec::hardware`).
#[derive(Debug, Clone)]
pub struct HardwareInfo {
    /// Physical cores (hyperthreads excluded), best effort.
    pub n_physical_cores: usize,
    /// Whitelisted SIMD capability flags.
    pub flags: Vec<String>,
}

impl HardwareInfo {
    /// Probes the running machine.
    pub fn probe() -> Self {
        Self {
            n_physical_cores: exec::hardware::physical_cores(),
            flags: exec::hardware::simd_flags()
                .into_iter()
                .map(str::to_string)
                .collect(),
        }
    }
}

/// The distributed-tier sample: the E13 shard run condensed for the perf
/// trajectory (absent in pre-PR-4 records).
#[derive(Debug, Clone)]
pub struct ShardsPerf {
    /// Shards planned.
    pub n_shards: usize,
    /// Worker processes used (0 in the in-process fallback).
    pub workers: usize,
    /// `"processes"` when real `dangoron-shard` workers ran,
    /// `"in-process"` when the worker binary was unavailable.
    pub mode: String,
    /// Transport the workers were reached over (`"pipe"`, `"tcp"`,
    /// `"in-process"`).
    pub transport: String,
    /// Assignment frames sent (replans included).
    pub assignments: usize,
    /// Total payload bytes of the slim (post-`Load`) `Assign` frames.
    pub assign_bytes: u64,
    /// Total payload bytes of the per-worker `Load` frames.
    pub load_bytes: u64,
    /// What the protocol-v1 fat assignments (matrix inside every
    /// `Assign`) would have cost for the same run — `assign_bytes +
    /// load_bytes` against this number is the `Load`-frame saving.
    pub fat_assign_bytes: u64,
    /// Re-plan events over the run.
    pub replans: usize,
    /// Workers admitted after the run started (elastic TCP leg; 0
    /// elsewhere).
    pub late_joins: usize,
    /// Steal grants that moved work off a straggler mid-run.
    pub steals: usize,
    /// Heartbeat pongs received over the run.
    pub heartbeats: usize,
    /// Summed exact evaluations across shards.
    pub evaluated: u64,
    /// Summed (pair, window) cells across shards.
    pub total_cells: u64,
    /// Edges in the merged result.
    pub merged_edges: usize,
    /// Slowest shard prepare, milliseconds.
    pub prepare_ms_max: f64,
    /// Slowest shard query, milliseconds.
    pub query_ms_max: f64,
    /// Coordinator end-to-end wall milliseconds.
    pub coord_ms: f64,
    /// Single-process reference wall milliseconds (prepare + query).
    pub single_process_ms: f64,
    /// Whether the merged matrices matched the single-process engine
    /// bitwise (enforced to `true` by tests and CI; recorded anyway).
    pub bit_identical: bool,
}

/// The serving-tier sample: one resident `serve::Session` answers a panel
/// of differently-shaped `(window, step, threshold)` queries from its
/// shared sketch store, timed against the one-shot path re-paying the
/// prepare phase for every query. The ratio is the amortisation the
/// session layer exists for — and every resident answer is checked
/// bitwise against its one-shot twin before it counts.
#[derive(Debug, Clone)]
pub struct ServePerf {
    /// Distinct `(window, step, threshold)` queries in the panel.
    pub queries: usize,
    /// Session-open wall milliseconds (the one shared prepare).
    pub open_ms: f64,
    /// Total resident `query_shared` wall milliseconds across the panel.
    pub resident_ms: f64,
    /// Total fresh prepare+run wall milliseconds across the same panel.
    pub one_shot_ms: f64,
    /// `one_shot_ms / (open_ms + resident_ms)`.
    pub shared_prepare_speedup: f64,
    /// Resident session bytes after the run (what the daemon's memory
    /// budget would charge).
    pub memory_bytes: usize,
    /// Summed edges across every query's windows.
    pub total_edges: usize,
    /// Whether every resident answer matched its one-shot twin bitwise.
    pub bit_identical: bool,
}

/// The telemetry self-check: after the timed runs, scrape the process-
/// wide stage registry the engine recorded into, render the Prometheus
/// exposition, and strict-parse it back. Proves the obs layer saw the
/// run (the walk and exec counters are non-zero) and that what a real
/// scraper would read is well-formed — without standing up a socket.
#[derive(Debug, Clone)]
pub struct ObsPerf {
    /// Distinct metric families in the parsed exposition.
    pub families: usize,
    /// Registered series (snapshot entries).
    pub series: usize,
    /// Wall milliseconds to snapshot + render the exposition once.
    pub scrape_ms: f64,
    /// Rendered exposition size in bytes.
    pub exposition_bytes: usize,
    /// Whether the strict validating parser accepted the exposition.
    pub exposition_valid: bool,
    /// `dangoron_stage_walk_us` observation count.
    pub walk_observations: u64,
    /// `dangoron_exec_chunk_us` observation count.
    pub exec_chunks: u64,
    /// `dangoron_exec_steal_attempts_total` value.
    pub steal_attempts: u64,
}

/// Scrapes the process-wide stage registry into an [`ObsPerf`].
pub fn obs_sample() -> ObsPerf {
    let registry = obs::stages::global();
    let t = Instant::now();
    let snaps = registry.snapshot();
    let text = obs::expo::to_prometheus(&snaps);
    let scrape_ms = t.elapsed().as_secs_f64() * 1e3;
    let parsed = obs::expo::parse_prometheus(&text);
    let hist_count = |name: &str| -> u64 {
        snaps
            .iter()
            .find(|s| s.name == name)
            .and_then(|s| match &s.value {
                obs::metrics::Value::Histogram { count, .. } => Some(*count),
                _ => None,
            })
            .unwrap_or(0)
    };
    let counter = |name: &str| -> u64 {
        snaps
            .iter()
            .find(|s| s.name == name)
            .and_then(|s| match &s.value {
                obs::metrics::Value::Counter(v) => Some(*v),
                _ => None,
            })
            .unwrap_or(0)
    };
    ObsPerf {
        families: parsed.as_ref().map(|f| f.len()).unwrap_or(0),
        series: snaps.len(),
        scrape_ms,
        exposition_bytes: text.len(),
        exposition_valid: parsed.is_ok(),
        walk_observations: hist_count("dangoron_stage_walk_us"),
        exec_chunks: hist_count(obs::stages::EXEC_CHUNK_US),
        steal_attempts: counter(obs::stages::EXEC_STEAL_ATTEMPTS),
    }
}

/// A full perf record.
#[derive(Debug, Clone)]
pub struct PerfRecord {
    /// Workload description.
    pub workload: String,
    /// Series count.
    pub n_series: usize,
    /// Series length in columns.
    pub n_cols: usize,
    /// Number of sliding windows.
    pub n_windows: usize,
    /// Hardware threads the machine reports (speedups above this number
    /// are not expected to materialise).
    pub hardware_threads: usize,
    /// Hardware context (physical cores, SIMD flags).
    pub hardware: HardwareInfo,
    /// Per-thread-count samples.
    pub samples: Vec<ThreadSample>,
    /// The streaming-pivots experiment (absent in pre-PR-2 records).
    pub streaming: Option<StreamingPerf>,
    /// The kernel microbenchmark (absent in pre-PR-3 records).
    pub kernels: Option<KernelsPerf>,
    /// The distributed shard tier (absent in pre-PR-4 records).
    pub shards: Option<ShardsPerf>,
    /// The serving tier's shared-prepare amortisation (absent in
    /// pre-PR-8 records; written by `harness bench --serve`).
    pub serve: Option<ServePerf>,
    /// The telemetry scrape self-check (absent in pre-telemetry records).
    pub obs: Option<ObsPerf>,
}

impl PerfRecord {
    /// Query-time speedup of the `threads` sample over the 1-thread one.
    pub fn query_speedup(&self, threads: usize) -> Option<f64> {
        let base = self.samples.iter().find(|s| s.threads == 1)?;
        let cand = self.samples.iter().find(|s| s.threads == threads)?;
        Some(speedup(&base.query, &cand.query))
    }

    /// Prepare-phase speedup of the `threads` sample over the 1-thread one.
    pub fn prepare_speedup(&self, threads: usize) -> Option<f64> {
        let base = self.samples.iter().find(|s| s.threads == 1)?;
        let cand = self.samples.iter().find(|s| s.threads == threads)?;
        Some(speedup(&base.prepare, &cand.prepare))
    }

    /// Renders the record as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"schema\": \"dangoron-bench-v1\",");
        let _ = writeln!(s, "  \"workload\": {},", json_str(&self.workload));
        let _ = writeln!(s, "  \"n_series\": {},", self.n_series);
        let _ = writeln!(s, "  \"n_cols\": {},", self.n_cols);
        let _ = writeln!(s, "  \"n_windows\": {},", self.n_windows);
        let _ = writeln!(s, "  \"hardware_threads\": {},", self.hardware_threads);
        let flags: Vec<String> = self.hardware.flags.iter().map(|f| json_str(f)).collect();
        let _ = writeln!(
            s,
            "  \"hardware\": {{\"n_physical_cores\": {}, \"flags\": [{}]}},",
            self.hardware.n_physical_cores,
            flags.join(", "),
        );
        if let Some(sh) = &self.shards {
            let _ = writeln!(
                s,
                "  \"shards\": {{\"n_shards\": {}, \"workers\": {}, \"mode\": {}, \
                 \"transport\": {}, \"assignments\": {}, \"assign_bytes\": {}, \
                 \"load_bytes\": {}, \"fat_assign_bytes\": {}, \
                 \"replans\": {}, \"late_joins\": {}, \"steals\": {}, \
                 \"heartbeats\": {}, \"evaluated\": {}, \"total_cells\": {}, \
                 \"merged_edges\": {}, \"prepare_ms_max\": {}, \"query_ms_max\": {}, \
                 \"coord_ms\": {}, \"single_process_ms\": {}, \"bit_identical\": {}}},",
                sh.n_shards,
                sh.workers,
                json_str(&sh.mode),
                json_str(&sh.transport),
                sh.assignments,
                sh.assign_bytes,
                sh.load_bytes,
                sh.fat_assign_bytes,
                sh.replans,
                sh.late_joins,
                sh.steals,
                sh.heartbeats,
                sh.evaluated,
                sh.total_cells,
                sh.merged_edges,
                json_num(sh.prepare_ms_max),
                json_num(sh.query_ms_max),
                json_num(sh.coord_ms),
                json_num(sh.single_process_ms),
                sh.bit_identical,
            );
        }
        if let Some(sp) = &self.streaming {
            let _ = writeln!(
                s,
                "  \"streaming_pivots\": {{\"threads\": {}, \
                 \"open_ms\": {{\"median\": {:.6}, \"min\": {:.6}, \"max\": {:.6}}}, \
                 \"drain_ms\": {{\"median\": {:.6}, \"min\": {:.6}, \"max\": {:.6}}}, \
                 \"windows\": {}, \"skip_fraction\": {:.6}, \"pruned_by_triangle\": {}, \
                 \"pairs_skipped_entirely\": {}, \"total_edges\": {}}},",
                sp.threads,
                sp.open.median_ms(),
                sp.open.min.as_secs_f64() * 1e3,
                sp.open.max.as_secs_f64() * 1e3,
                sp.drain.median_ms(),
                sp.drain.min.as_secs_f64() * 1e3,
                sp.drain.max.as_secs_f64() * 1e3,
                sp.windows,
                sp.skip_fraction,
                sp.pruned_by_triangle,
                sp.pairs_skipped_entirely,
                sp.total_edges,
            );
        }
        if let Some(k) = &self.kernels {
            let _ = writeln!(
                s,
                "  \"kernels\": {{\"backend\": {}, \"len\": {}, \
                 \"dot_speedup\": {}, \"moments_speedup\": {}, \
                 \"prefix_build_speedup\": {}}},",
                json_str(&k.backend),
                k.len,
                json_num(k.dot_speedup),
                json_num(k.moments_speedup),
                json_num(k.prefix_build_speedup),
            );
        }
        if let Some(sv) = &self.serve {
            let _ = writeln!(
                s,
                "  \"serve\": {{\"queries\": {}, \"open_ms\": {}, \"resident_ms\": {}, \
                 \"one_shot_ms\": {}, \"shared_prepare_speedup\": {}, \
                 \"memory_bytes\": {}, \"total_edges\": {}, \"bit_identical\": {}}},",
                sv.queries,
                json_num(sv.open_ms),
                json_num(sv.resident_ms),
                json_num(sv.one_shot_ms),
                json_num(sv.shared_prepare_speedup),
                sv.memory_bytes,
                sv.total_edges,
                sv.bit_identical,
            );
        }
        if let Some(o) = &self.obs {
            let _ = writeln!(
                s,
                "  \"obs\": {{\"families\": {}, \"series\": {}, \"scrape_ms\": {}, \
                 \"exposition_bytes\": {}, \"exposition_valid\": {}, \
                 \"walk_observations\": {}, \"exec_chunks\": {}, \
                 \"steal_attempts\": {}}},",
                o.families,
                o.series,
                json_num(o.scrape_ms),
                o.exposition_bytes,
                o.exposition_valid,
                o.walk_observations,
                o.exec_chunks,
                o.steal_attempts,
            );
        }
        let _ = writeln!(s, "  \"samples\": [");
        for (k, smp) in self.samples.iter().enumerate() {
            let comma = if k + 1 < self.samples.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{\"threads\": {}, \"prepare_ms\": {{\"median\": {:.6}, \"min\": {:.6}, \"max\": {:.6}}}, \
                 \"query_ms\": {{\"median\": {:.6}, \"min\": {:.6}, \"max\": {:.6}}}, \
                 \"skip_fraction\": {:.6}, \"total_edges\": {}, \
                 \"query_speedup_vs_1\": {}, \"prepare_speedup_vs_1\": {}}}{comma}",
                smp.threads,
                smp.prepare.median_ms(),
                smp.prepare.min.as_secs_f64() * 1e3,
                smp.prepare.max.as_secs_f64() * 1e3,
                smp.query.median_ms(),
                smp.query.min.as_secs_f64() * 1e3,
                smp.query.max.as_secs_f64() * 1e3,
                smp.skip_fraction,
                smp.total_edges,
                json_ratio(self.query_speedup(smp.threads)),
                json_ratio(self.prepare_speedup(smp.threads)),
            );
        }
        let _ = writeln!(s, "  ]");
        let _ = writeln!(s, "}}");
        s
    }
}

/// A ratio as a JSON *number* for schema-required keys: non-finite values
/// (an implausible zero-duration denominator) degrade to `0.0`.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "0.0".to_string()
    }
}

/// A speedup ratio as a JSON value: `null` when there is no 1-thread
/// baseline in the ladder (bare `NaN` is not valid JSON).
fn json_ratio(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:.4}"),
        _ => "null".to_string(),
    }
}

pub(crate) fn json_str(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn sample(w: &Workload, engine: &Dangoron, threads: usize, reps: usize) -> ThreadSample {
    let prepare = measure(reps, 1, || {
        let t = Instant::now();
        let p = engine.prepare(&w.data, w.query).expect("valid workload");
        let elapsed = t.elapsed();
        drop(p);
        elapsed
    });
    let prep = engine.prepare(&w.data, w.query).expect("valid workload");
    let result = engine.run(&prep);
    let query = measure(reps, 1, || {
        let t = Instant::now();
        let _ = engine.run(&prep);
        t.elapsed()
    });
    ThreadSample {
        threads,
        prepare,
        query,
        skip_fraction: result.stats.skip_fraction(),
        total_edges: result.total_edges(),
    }
}

fn summarize(mut samples: Vec<Duration>) -> TimingSummary {
    samples.sort_unstable();
    TimingSummary {
        reps: samples.len(),
        median: samples[samples.len() / 2],
        min: samples[0],
        max: *samples.last().expect("at least one rep"),
    }
}

/// Replays the workload through a streaming session with horizontal
/// pruning: open over the first half of the history, then append the rest
/// in week-sized chunks, timing the open and the total drain separately.
fn streaming_sample(w: &Workload, threads: usize, reps: usize) -> StreamingPerf {
    let config = DangoronConfig {
        basic_window: w.basic_window,
        bound: BoundMode::PaperJump { slack: 0.0 },
        horizontal: Some(HorizontalConfig::default()),
        threads,
        ..Default::default()
    };
    let b = w.basic_window;
    let initial_cols = ((w.data.len() / 2) / b * b).max(b);
    let chunk_cols = 7 * b;

    let mut opens = Vec::with_capacity(reps);
    let mut drains = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let initial = w.data.slice_columns(0, initial_cols).expect("slice");
        let t = Instant::now();
        let mut session = StreamingDangoron::new(
            initial,
            w.query.window,
            w.query.step,
            w.query.threshold,
            config.clone(),
        )
        .expect("valid streaming geometry");
        opens.push(t.elapsed());

        let t = Instant::now();
        let mut windows = session.drain_completed().expect("drain").len();
        let mut at = initial_cols;
        while at < w.data.len() {
            let next = (at + chunk_cols).min(w.data.len());
            let chunk = w.data.slice_columns(at, next).expect("chunk");
            windows += session.append(&chunk).expect("append").len();
            at = next;
        }
        drains.push(t.elapsed());
        last = Some((windows, session));
    }
    let (windows, session) = last.expect("at least one rep");
    let s = session.stats();
    StreamingPerf {
        threads,
        open: summarize(opens),
        drain: summarize(drains),
        windows,
        skip_fraction: s.skip_fraction(),
        pruned_by_triangle: s.pruned_by_triangle,
        pairs_skipped_entirely: s.pairs_skipped_entirely,
        total_edges: s.edges as usize,
    }
}

/// Runs the serving-tier panel over the workload: open one resident
/// [`serve::session::Session`], answer a panel of differently-shaped
/// queries from its shared sketches, and time the same panel through the
/// one-shot engine (fresh prepare per query). Each resident answer is
/// verified bitwise against its one-shot twin; the speedup is the
/// shared-prepare amortisation. All query geometries derive from the
/// workload's basic window, so the panel works at any scale.
pub fn serve_sample(w: &Workload) -> ServePerf {
    use serve::session::Session;
    let config = DangoronConfig {
        basic_window: w.basic_window,
        bound: BoundMode::PaperJump { slack: 0.0 },
        ..Default::default()
    };
    let b = w.basic_window;
    let covered = w.data.len() / b * b;
    let data = w.data.slice_columns(0, covered).expect("aligned prefix");
    let beta = w.query.threshold;
    // Interactive-exploration shapes: an analyst sweeping window widths
    // and thresholds over the same resident dataset. Steps are coarse
    // (5–10 basic windows) so each walk is cheap and the panel isolates
    // what the session layer amortises — the per-query prepare.
    let panel: Vec<(usize, usize, f64)> = [
        (30, 10, beta),
        (30, 10, beta - 0.05),
        (30, 10, beta - 0.1),
        (20, 10, beta),
        (20, 10, beta - 0.05),
        (15, 10, beta),
        (10, 10, beta),
        (10, 10, beta - 0.05),
        (40, 10, beta),
        (45, 10, beta - 0.05),
        (60, 10, beta),
        (80, 10, beta - 0.05),
        (30, 15, beta),
        (20, 15, beta - 0.05),
        (15, 15, beta),
        (45, 15, beta),
    ]
    .iter()
    .map(|&(wm, sm, t)| (wm * b, sm * b, t))
    .filter(|&(win, _, _)| win <= covered)
    .collect();

    let t = Instant::now();
    let session = Session::open(
        data.clone(),
        w.query.window.min(covered),
        w.query.step,
        beta,
        config.clone(),
    )
    .expect("resident session");
    let open_ms = t.elapsed().as_secs_f64() * 1e3;

    let mut resident_ms = 0.0;
    let mut one_shot_ms = 0.0;
    let mut total_edges = 0usize;
    let mut bit_identical = true;
    for &(win, step, threshold) in &panel {
        let t = Instant::now();
        let (exact_to, shared) = session.query(win, step, threshold).expect("shared query");
        resident_ms += t.elapsed().as_secs_f64() * 1e3; // lint:allow(float-reduction-outside-kernel) -- wall-clock accounting, not data

        let one_shot = Dangoron::new(config.clone()).expect("valid config");
        let q = sketch::SlidingQuery {
            start: 0,
            end: exact_to,
            window: win,
            step,
            threshold,
        };
        let t = Instant::now();
        let fresh = one_shot.execute(&data, q).expect("one-shot run");
        one_shot_ms += t.elapsed().as_secs_f64() * 1e3; // lint:allow(float-reduction-outside-kernel) -- wall-clock accounting, not data

        total_edges += shared.matrices.iter().map(|m| m.n_edges()).sum::<usize>();
        bit_identical &= dist::merge::windows_bit_identical(&shared.matrices, &fresh.matrices);
    }
    let amortised = open_ms + resident_ms;
    ServePerf {
        queries: panel.len(),
        open_ms,
        resident_ms,
        one_shot_ms,
        shared_prepare_speedup: if amortised > 0.0 {
            one_shot_ms / amortised
        } else {
            0.0
        },
        memory_bytes: session.memory_bytes(),
        total_edges,
        bit_identical,
    }
}

/// Which transport the perf record's distributed leg exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistTransport {
    /// Spawn `dangoron-shard` children over stdio pipes (falls back to
    /// the in-process tier when the worker binary is not built).
    #[default]
    Pipes,
    /// Localhost TCP: bind an OS-assigned port and start
    /// `dangoron-shard --connect` worker processes against it.
    Tcp,
    /// The elastic TCP leg: start with one deliberately slow worker,
    /// have a second one join mid-run, and let the coordinator steal the
    /// straggler's tail — exercising (and recording) late joins and
    /// steals while still verifying the merged result bitwise.
    TcpElastic,
}

/// Runs the perf ladder and returns the record.
pub fn run(scale: Scale) -> PerfRecord {
    run_full(scale).0
}

/// [`run`], additionally handing back the distributed run's
/// [`dist::DistResult`] and the workload — so `harness bench
/// --shard-records` can write the per-shard records without re-running
/// the (expensive) distributed and single-process reference legs.
pub fn run_full(scale: Scale) -> (PerfRecord, dist::DistResult, Workload) {
    run_full_with(scale, DistTransport::Pipes)
}

/// [`run_full`] with an explicit transport for the distributed leg
/// (`harness bench --dist-transport tcp`).
pub fn run_full_with(
    scale: Scale,
    transport: DistTransport,
) -> (PerfRecord, dist::DistResult, Workload) {
    let (n, hours, reps) = match scale {
        Scale::Quick => (32, 24 * 90, 3),
        Scale::Full => (128, 24 * 365, 5),
    };
    let beta = 0.9;
    let w = workloads::climate(n, hours, beta, 2020).expect("workload");
    let base = dangoron_engine(&w, BoundMode::PaperJump { slack: 0.0 });

    let samples = THREAD_LADDER
        .iter()
        .map(|&threads| {
            let engine = Dangoron::new(DangoronConfig {
                threads,
                ..base.config().clone()
            })
            .expect("valid config");
            sample(&w, &engine, threads, reps)
        })
        .collect();

    let streaming_threads = exec::available_threads().min(*THREAD_LADDER.last().unwrap());
    let streaming = Some(streaming_sample(&w, streaming_threads, reps));
    let kernels = Some(kernels_sample(scale));
    let (shards_perf, dist_result) = shards_sample_with(&w, transport);

    let record = PerfRecord {
        workload: w.name.clone(),
        n_series: n,
        n_cols: w.data.len(),
        n_windows: w.query.n_windows(),
        hardware_threads: exec::available_threads(),
        hardware: HardwareInfo::probe(),
        samples,
        streaming,
        kernels,
        shards: Some(shards_perf),
        // The serving-tier panel is opt-in (`harness bench --serve`): the
        // caller attaches it so plain bench runs stay comparable.
        serve: None,
        // Scraped last: the timed runs above are what fill the stage
        // registry this section self-checks.
        obs: Some(obs_sample()),
    };
    (record, dist_result, w)
}

/// Runs the distributed shard tier over the workload (8 shards queued
/// onto 4 workers, batch mode) and condenses it to the `shards` section —
/// through real `dangoron-shard` worker processes when the binary is
/// built, an in-process fallback otherwise. More shards than workers is
/// deliberate: queued shards reuse the worker's `Load`ed matrix, which is
/// exactly the per-assignment byte saving the record measures
/// (`assign_bytes + load_bytes` vs `fat_assign_bytes`). Also returns the
/// per-shard summaries so `harness bench --shard-records` can write the
/// per-shard records that `harness merge` consumes.
pub fn shards_sample(w: &Workload) -> (ShardsPerf, dist::DistResult) {
    shards_sample_with(w, DistTransport::Pipes)
}

/// [`shards_sample`] over an explicit transport. The TCP leg binds an
/// OS-assigned localhost port and starts the workers itself with
/// `dangoron-shard --connect`; either leg degrades to the in-process
/// tier when the worker binary is unavailable.
pub fn shards_sample_with(
    w: &Workload,
    transport: DistTransport,
) -> (ShardsPerf, dist::DistResult) {
    use dist::coord;
    use dist::proto::WorkerMode;
    let engine_cfg = DangoronConfig {
        basic_window: w.basic_window,
        bound: BoundMode::PaperJump { slack: 0.0 },
        ..Default::default()
    };
    let n_shards = 8;
    let n_workers = 4;
    let t = Instant::now();
    let single = coord::run_single_process(WorkerMode::Batch, &engine_cfg, &w.data, w.query)
        .expect("single-process reference run");
    let single_process_ms = t.elapsed().as_secs_f64() * 1e3;

    let in_process = || {
        coord::run_in_process(n_shards, WorkerMode::Batch, &engine_cfg, &w.data, w.query)
            .expect("in-process shard run")
    };
    let (result, mode) = match coord::default_worker_path() {
        Some(worker_bin) => {
            let attempt = match transport {
                DistTransport::Pipes => {
                    let cfg = coord::CoordinatorConfig {
                        n_workers,
                        timeout: Duration::from_secs(600),
                        ..coord::CoordinatorConfig::new(worker_bin, n_shards)
                    };
                    coord::run(&cfg, &engine_cfg, &w.data, w.query)
                }
                DistTransport::Tcp => {
                    run_over_tcp(&worker_bin, n_shards, n_workers, &engine_cfg, w)
                }
                DistTransport::TcpElastic => {
                    run_over_tcp_elastic(&worker_bin, n_shards, &engine_cfg, w)
                }
            };
            match attempt {
                Ok(r) => (r, "processes"),
                Err(e) => {
                    eprintln!("shards: process tier failed ({e}); recording in-process run");
                    (in_process(), "in-process")
                }
            }
        }
        None => (in_process(), "in-process"),
    };
    let bit_identical = dist::merge::windows_bit_identical(&result.matrices, &single.matrices)
        && result.stats == single.stats;
    // What protocol v1 (matrix inside every Assign) would have shipped:
    // every assignment additionally carries the matrix dims + cells.
    let matrix_bytes = 16 + 8 * (w.data.n_series() * w.data.len()) as u64;
    let fat_assign_bytes =
        result.coord.assign_bytes + result.coord.assignments as u64 * matrix_bytes;
    let perf = ShardsPerf {
        n_shards: result.coord.n_shards_planned,
        workers: result.coord.n_workers,
        mode: mode.to_string(),
        transport: if matches!(transport, DistTransport::TcpElastic) && mode == "processes" {
            // The coordinator only knows it spoke TCP; the record keeps
            // what the leg *did* (late join + steal choreography).
            "tcp-elastic".to_string()
        } else {
            result.coord.transport.clone()
        },
        assignments: result.coord.assignments,
        assign_bytes: result.coord.assign_bytes,
        load_bytes: result.coord.load_bytes,
        fat_assign_bytes,
        replans: result.coord.replans,
        late_joins: result.coord.late_joins,
        steals: result.coord.steals,
        heartbeats: result.coord.pongs,
        evaluated: result.stats.evaluated,
        total_cells: result.stats.total_cells,
        merged_edges: result.matrices.iter().map(|m| m.n_edges()).sum(),
        prepare_ms_max: result
            .shards
            .iter()
            .map(|s| s.prepare_s * 1e3)
            .fold(0.0, f64::max),
        query_ms_max: result
            .shards
            .iter()
            .map(|s| s.query_s * 1e3)
            .fold(0.0, f64::max),
        coord_ms: result.coord.wall_s * 1e3,
        single_process_ms,
        bit_identical,
    };
    (perf, result)
}

/// Drives the distributed leg over localhost TCP: binds an OS-assigned
/// port, starts one `dangoron-shard --connect` process per shard, and
/// runs the coordinator against the pre-bound listener — the same path a
/// real multi-machine run takes, minus the network in between.
fn run_over_tcp(
    worker_bin: &std::path::Path,
    n_shards: usize,
    n_workers: usize,
    engine_cfg: &DangoronConfig,
    w: &Workload,
) -> Result<dist::DistResult, dist::CoordError> {
    use std::process::{Command, Stdio};
    let listener = std::net::TcpListener::bind("127.0.0.1:0")
        .map_err(|e| dist::CoordError::Internal(format!("TCP bind: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| dist::CoordError::Internal(format!("local_addr: {e}")))?
        .to_string();
    let mut children = Vec::new();
    for _ in 0..n_workers {
        let spawned = Command::new(worker_bin)
            .arg("--connect")
            .arg(&addr)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn();
        match spawned {
            Ok(c) => children.push(c),
            Err(e) => {
                // Reap the partial set — orphans would retry the dial
                // for ~30 s and then linger as zombies.
                for mut c in children {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                return Err(dist::CoordError::Internal(format!(
                    "spawn {worker_bin:?} --connect: {e}"
                )));
            }
        }
    }
    let cfg = dist::coord::CoordinatorConfig {
        n_workers,
        timeout: Duration::from_secs(600),
        ..dist::coord::CoordinatorConfig::tcp(addr, n_shards)
    };
    let out = dist::coord::run_with_listener(&cfg, listener, engine_cfg, &w.data, w.query);
    for mut c in children {
        if out.is_err() {
            let _ = c.kill();
        }
        let _ = c.wait();
    }
    out
}

/// Drives the elastic distributed leg: the run *starts* with a single
/// deliberately slow worker (a per-chunk delay makes it a straggler that
/// keeps reporting progress), a second worker dials in ~400 ms later and
/// is admitted mid-run, drains the pending queue, and then steals the
/// straggler's remaining tail. The merged result is still verified
/// bitwise by the caller — elasticity must never change the answer.
fn run_over_tcp_elastic(
    worker_bin: &std::path::Path,
    n_shards: usize,
    engine_cfg: &DangoronConfig,
    w: &Workload,
) -> Result<dist::DistResult, dist::CoordError> {
    use std::process::{Command, Stdio};
    let listener = std::net::TcpListener::bind("127.0.0.1:0")
        .map_err(|e| dist::CoordError::Internal(format!("TCP bind: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| dist::CoordError::Internal(format!("local_addr: {e}")))?
        .to_string();
    // The straggler: fine-grained chunks, each preceded by a sleep — slow
    // but demonstrably alive, so it is stolen from rather than killed.
    let straggler = Command::new(worker_bin)
        .arg("--connect")
        .arg(&addr)
        .env(dist::worker::CHUNK_DELAY_ENV, "300")
        .env(dist::worker::CHUNK_RANKS_ENV, "8")
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| dist::CoordError::Internal(format!("spawn {worker_bin:?} --connect: {e}")))?;
    // The late joiner: dials in once the run is already under way.
    let late = {
        let worker_bin = worker_bin.to_path_buf();
        let addr = addr.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(400));
            Command::new(&worker_bin)
                .arg("--connect")
                .arg(&addr)
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .stderr(Stdio::inherit())
                .spawn()
        })
    };
    let cfg = dist::coord::CoordinatorConfig {
        n_workers: 1, // start as soon as the straggler registers
        timeout: Duration::from_secs(60),
        ..dist::coord::CoordinatorConfig::tcp(addr, n_shards)
    };
    let out = dist::coord::run_with_listener(&cfg, listener, engine_cfg, &w.data, w.query);
    let mut children = vec![straggler];
    if let Ok(Ok(c)) = late.join() {
        children.push(c);
    }
    for mut c in children {
        if out.is_err() {
            let _ = c.kill();
        }
        let _ = c.wait();
    }
    out
}

/// Runs the E12 microbenchmark suite and condenses it to the `kernels`
/// section of the record.
fn kernels_sample(scale: Scale) -> KernelsPerf {
    use crate::experiments::e12_kernels;
    let suite = e12_kernels::measure_suite(scale);
    let pick = |name: &str| -> f64 {
        suite
            .iter()
            .find(|k| k.name == name)
            .map(|k| k.speedup_vs_pr2())
            .unwrap_or(0.0)
    };
    KernelsPerf {
        backend: kernel::active_backend().to_string(),
        len: suite.first().map(|k| k.len).unwrap_or(0),
        dot_speedup: pick("dot"),
        moments_speedup: pick("moments"),
        prefix_build_speedup: pick("prefix-build"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_record() -> PerfRecord {
        // A miniature ladder so the test stays fast.
        let w = workloads::climate_quick(8, 0.9).unwrap();
        let samples = [1usize, 2]
            .iter()
            .map(|&threads| {
                let engine = Dangoron::new(DangoronConfig {
                    basic_window: w.basic_window,
                    threads,
                    ..Default::default()
                })
                .unwrap();
                sample(&w, &engine, threads, 1)
            })
            .collect();
        PerfRecord {
            workload: w.name.clone(),
            n_series: 8,
            n_cols: w.data.len(),
            n_windows: w.query.n_windows(),
            hardware_threads: exec::available_threads(),
            hardware: HardwareInfo::probe(),
            samples,
            streaming: Some(streaming_sample(&w, 1, 1)),
            kernels: Some(KernelsPerf {
                backend: kernel::active_backend().to_string(),
                len: 64,
                dot_speedup: 1.0,
                moments_speedup: 1.0,
                prefix_build_speedup: 1.0,
            }),
            shards: Some(shards_sample(&w).0),
            serve: Some(serve_sample(&w)),
            obs: Some(obs_sample()),
        }
    }

    #[test]
    fn record_is_consistent_and_serialises() {
        let r = tiny_record();
        // Edges identical across thread counts (determinism).
        let edges: Vec<usize> = r.samples.iter().map(|s| s.total_edges).collect();
        assert!(edges.windows(2).all(|w| w[0] == w[1]), "{edges:?}");
        assert!(r.query_speedup(2).is_some());
        assert!(r.prepare_speedup(2).is_some());
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"dangoron-bench-v1\""));
        assert!(json.contains("\"threads\": 1"));
        assert!(json.contains("\"threads\": 2"));
        assert!(json.contains("query_speedup_vs_1"));
        assert!(json.contains("\"streaming_pivots\""));
        assert!(json.contains("\"pruned_by_triangle\""));
        assert!(json.contains("\"kernels\""));
        assert!(json.contains("\"prefix_build_speedup\""));
        assert!(json.contains("\"hardware\""));
        assert!(json.contains("\"n_physical_cores\""));
        assert!(json.contains("\"shards\""));
        assert!(json.contains("\"merged_edges\""));
        assert!(json.contains("\"serve\""));
        assert!(json.contains("\"shared_prepare_speedup\""));
        // Balanced braces/brackets — cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // The shard run must have reproduced the single-process result.
        assert!(r.shards.unwrap().bit_identical);
        // Every resident answer must have matched its one-shot twin.
        let sv = r.serve.unwrap();
        assert!(sv.bit_identical);
        assert!(sv.queries >= 4, "panel too small: {}", sv.queries);
        assert!(sv.one_shot_ms > 0.0 && sv.open_ms > 0.0);
    }

    #[test]
    fn streaming_sample_covers_every_window() {
        // The streamed replay must emit exactly the batch query's windows
        // and produce sane cumulative counters. (Edge totals are compared
        // against batch truth in the core crate's exhaustive-mode tests;
        // jump mode legitimately re-evaluates at drain boundaries.)
        let w = workloads::climate_quick(8, 0.9).unwrap();
        let sp = streaming_sample(&w, 2, 1);
        assert_eq!(sp.windows, w.query.n_windows());
        assert!((0.0..=1.0).contains(&sp.skip_fraction));
        assert!(sp.open.median > Duration::ZERO);
        assert!(sp.drain.median > Duration::ZERO);
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
