//! Shared helpers for the experiments: engine construction and pure-query
//! timing with a single shared preparation.

use baselines::tsubasa::Tsubasa;
use dangoron::{BoundMode, Dangoron, DangoronConfig, PairStorage};
use eval::timing::{measure, TimingSummary};
use eval::workloads::Workload;
use sketch::ThresholdedMatrix;
use std::time::Instant;

/// Default measurement repetitions for pure-query timing.
pub const REPS: usize = 3;

/// Dangoron with the workload's basic window and the given mode.
pub fn dangoron_engine(w: &Workload, bound: BoundMode) -> Dangoron {
    Dangoron::new(DangoronConfig {
        basic_window: w.basic_window,
        bound,
        storage: PairStorage::Precomputed,
        horizontal: None,
        threads: 1,
        ..Default::default()
    })
    .expect("static config is valid")
}

/// TSUBASA with the workload's basic window.
pub fn tsubasa_engine(w: &Workload) -> Tsubasa {
    Tsubasa {
        basic_window: w.basic_window,
        threads: 1,
    }
}

/// Prepares once and measures the *pure query* time of a Dangoron config,
/// returning the timing plus one result for inspection.
pub fn time_dangoron(w: &Workload, engine: &Dangoron) -> (TimingSummary, dangoron::QueryResult) {
    let prep = engine
        .prepare(&w.data, w.query)
        .expect("workload geometry is valid");
    let result = engine.run(&prep);
    let summary = measure(REPS, 1, || {
        let t = Instant::now();
        let _ = engine.run(&prep);
        t.elapsed()
    });
    (summary, result)
}

/// Prepares once and measures TSUBASA's pure query time.
pub fn time_tsubasa(w: &Workload, engine: &Tsubasa) -> (TimingSummary, Vec<ThresholdedMatrix>) {
    let prep = engine
        .prepare(&w.data, w.query)
        .expect("workload geometry is valid");
    let result = engine.run(&prep);
    let summary = measure(REPS, 1, || {
        let t = Instant::now();
        let _ = engine.run(&prep);
        t.elapsed()
    });
    (summary, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eval::workloads;

    #[test]
    fn timing_helpers_produce_consistent_outputs() {
        let w = workloads::climate_quick(6, 0.85).unwrap();
        let engine = dangoron_engine(&w, BoundMode::Exhaustive);
        let (t_d, r_d) = time_dangoron(&w, &engine);
        assert!(t_d.median > std::time::Duration::ZERO);
        assert_eq!(r_d.matrices.len(), w.query.n_windows());

        let ts = tsubasa_engine(&w);
        let (t_t, r_t) = time_tsubasa(&w, &ts);
        assert!(t_t.median > std::time::Duration::ZERO);
        // Both exact engines agree edge-for-edge.
        let rep = eval::compare(&r_d.matrices, &r_t);
        assert_eq!(rep.f1, 1.0);
    }
}
