//! Chaos smoke: seeded fault storms over the elastic TCP tier. Links
//! are killed mid-run, frames delayed, duplicated and truncated
//! mid-write (see `dist::chaos`); workers reconnect and are re-admitted
//! as new members; lost work is re-planned and straggler tails stolen.
//! Whatever the storm does to the *schedule*, the merged result must
//! stay bit-identical to the single-process engine — the tier's whole
//! determinism contract, under fire.

use dangoron::{BoundMode, DangoronConfig};
use dist::coord::{self, CoordinatorConfig, TransportMode};
use dist::merge::windows_bit_identical;
use dist::proto::WorkerMode;
use dist::FaultPlan;
use sketch::SlidingQuery;
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::time::Duration;
use tsdata::generators;
use tsdata::TimeSeriesMatrix;

fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_dangoron-shard")
}

fn workload() -> (TimeSeriesMatrix, SlidingQuery, DangoronConfig) {
    let data = generators::clustered_matrix(12, 360, 3, 0.5, 41).unwrap();
    let query = SlidingQuery {
        start: 0,
        end: 360,
        window: 60,
        step: 20,
        threshold: 0.7,
    };
    let cfg = DangoronConfig {
        basic_window: 20,
        bound: BoundMode::PaperJump { slack: 0.0 },
        ..Default::default()
    };
    (data, query, cfg)
}

/// `n` workers dialing `addr`, each allowed `reconnect` re-dials, each
/// with extra environment from `envs` (cycled).
fn spawn_workers(addr: &str, n: usize, reconnect: u32, envs: &[Vec<(&str, &str)>]) -> Vec<Child> {
    (0..n)
        .map(|k| {
            let mut cmd = Command::new(worker_bin());
            cmd.arg("--connect")
                .arg(addr)
                .arg("--reconnect")
                .arg(reconnect.to_string())
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .stderr(Stdio::inherit());
            if let Some(vars) = envs.get(k % envs.len().max(1)) {
                for (k, v) in vars {
                    cmd.env(k, v);
                }
            }
            cmd.spawn().expect("spawn dangoron-shard --connect")
        })
        .collect()
}

fn reap(mut children: Vec<Child>) {
    for c in &mut children {
        let _ = c.wait();
    }
}

fn storm_coordinator(n_shards: usize, n_workers: usize) -> CoordinatorConfig {
    CoordinatorConfig {
        transport: TransportMode::Tcp {
            listen: String::new(), // pre-bound listener supplies the socket
            accept_timeout: Duration::from_secs(30),
        },
        n_workers,
        timeout: Duration::from_secs(60),
        // Faulty links burn re-plan generations fast; give the storm
        // headroom the clean tier does not need.
        max_attempts: 12,
        ..CoordinatorConfig::new(Default::default(), n_shards)
    }
}

#[test]
fn seeded_chaos_storms_merge_bit_identically() {
    let (data, query, cfg) = workload();
    let single = coord::run_single_process(WorkerMode::Batch, &cfg, &data, query).unwrap();
    for seed in [7u64, 42, 1337] {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let children = spawn_workers(&addr, 3, 6, &[vec![]]);
        let mut ccfg = storm_coordinator(8, 3);
        ccfg.chaos = Some(FaultPlan::Seeded(seed));
        let dist = coord::run_with_listener(&ccfg, listener, &cfg, &data, query)
            .unwrap_or_else(|e| panic!("seed {seed}: storm run failed: {e}"));
        reap(children);

        assert!(
            windows_bit_identical(&dist.matrices, &single.matrices),
            "seed {seed}: the storm changed the merged result"
        );
        assert_eq!(dist.stats, single.stats, "seed {seed}: stats do not sum");
    }
}

#[test]
fn explicit_kill_storm_recovers_through_reconnects() {
    // Every initial link dies right after its first assignment; the run
    // survives purely on reconnected identities.
    let (data, query, cfg) = workload();
    let single = coord::run_single_process(WorkerMode::Batch, &cfg, &data, query).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let children = spawn_workers(&addr, 2, 4, &[vec![]]);
    let mut ccfg = storm_coordinator(6, 2);
    let cut = dist::LinkFaults {
        kill_after_frames: Some(2),
        ..Default::default()
    };
    ccfg.chaos = Some(FaultPlan::Explicit(vec![cut.clone(), cut]));
    let dist = coord::run_with_listener(&ccfg, listener, &cfg, &data, query).unwrap();
    reap(children);

    assert!(dist.coord.worker_failures >= 2, "the storm never struck");
    assert!(dist.coord.replans >= 2, "lost work was not re-planned");
    // Both initial links die, so finishing *requires* at least one
    // re-admitted identity — but the run may complete before the second
    // re-dial lands, so exactly how many rejoin is a race.
    assert!(
        dist.coord.late_joins >= 1,
        "no reconnected worker was re-admitted"
    );
    assert!(
        windows_bit_identical(&dist.matrices, &single.matrices),
        "kill storm changed the merged result"
    );
    assert_eq!(dist.stats, single.stats);
}

#[test]
fn v2_worker_completes_against_v3_coordinator() {
    // Backwards compatibility: a worker pinned to protocol v2 (no
    // heartbeat capability, no progress frames, no stealing) must still
    // complete its share of a v3 run, alongside a v3 peer.
    let (data, query, cfg) = workload();
    let single = coord::run_single_process(WorkerMode::Batch, &cfg, &data, query).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let children = spawn_workers(&addr, 2, 0, &[vec![(dist::worker::PROTO_ENV, "2")], vec![]]);
    let dist =
        coord::run_with_listener(&storm_coordinator(4, 2), listener, &cfg, &data, query).unwrap();
    reap(children);

    assert_eq!(dist.coord.n_workers, 2, "the v2 worker was rejected");
    assert_eq!(dist.coord.worker_failures, 0);
    assert_eq!(dist.shards.len(), 4);
    assert!(
        windows_bit_identical(&dist.matrices, &single.matrices),
        "mixed v2/v3 run differs from the single-process engine"
    );
    assert_eq!(dist.stats, single.stats);
}
