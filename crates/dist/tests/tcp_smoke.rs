//! End-to-end tests of the TCP transport: a real coordinator listener
//! driving real `dangoron-shard --connect` worker processes over
//! localhost sockets, verified bitwise against the single-process engine
//! — including the worker-kill/replan, timeout, and stale-final-frame
//! paths.

use dangoron::{BoundMode, DangoronConfig};
use dist::coord::{self, CoordinatorConfig, TransportMode};
use dist::merge::windows_bit_identical;
use dist::proto::WorkerMode;
use sketch::SlidingQuery;
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::time::Duration;
use tsdata::generators;
use tsdata::TimeSeriesMatrix;

fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_dangoron-shard")
}

fn workload() -> (TimeSeriesMatrix, SlidingQuery, DangoronConfig) {
    let data = generators::clustered_matrix(12, 360, 3, 0.5, 41).unwrap();
    let query = SlidingQuery {
        start: 0,
        end: 360,
        window: 60,
        step: 20,
        threshold: 0.7,
    };
    let cfg = DangoronConfig {
        basic_window: 20,
        bound: BoundMode::PaperJump { slack: 0.0 },
        ..Default::default()
    };
    (data, query, cfg)
}

/// Binds an OS-assigned localhost port and spawns `n` workers dialing it,
/// each with extra environment variables from `envs[i]` (cycled).
fn bind_and_spawn(n: usize, envs: &[Vec<(&str, &str)>]) -> (TcpListener, String, Vec<Child>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let children = (0..n)
        .map(|k| {
            let mut cmd = Command::new(worker_bin());
            cmd.arg("--connect")
                .arg(&addr)
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .stderr(Stdio::inherit());
            if let Some(vars) = envs.get(k % envs.len().max(1)) {
                for (k, v) in vars {
                    cmd.env(k, v);
                }
            }
            cmd.spawn().expect("spawn dangoron-shard --connect")
        })
        .collect();
    (listener, addr, children)
}

fn coordinator(n_shards: usize, n_workers: usize, mode: WorkerMode) -> CoordinatorConfig {
    CoordinatorConfig {
        transport: TransportMode::Tcp {
            listen: String::new(), // pre-bound listener supplies the socket
            accept_timeout: Duration::from_secs(30),
        },
        n_workers,
        mode,
        timeout: Duration::from_secs(60),
        ..CoordinatorConfig::new(Default::default(), n_shards)
    }
}

fn reap(mut children: Vec<Child>) {
    for c in &mut children {
        let _ = c.wait();
    }
}

#[test]
fn tcp_tier_matches_single_process_bitwise() {
    let (data, query, cfg) = workload();
    let single = coord::run_single_process(WorkerMode::Batch, &cfg, &data, query).unwrap();
    let (listener, _, children) = bind_and_spawn(2, &[vec![]]);
    let ccfg = coordinator(4, 2, WorkerMode::Batch);
    let dist = coord::run_with_listener(&ccfg, listener, &cfg, &data, query).unwrap();
    reap(children);

    assert_eq!(dist.coord.transport, "tcp");
    assert_eq!(dist.coord.n_workers, 2);
    assert_eq!(dist.shards.len(), 4);
    assert!(
        windows_bit_identical(&dist.matrices, &single.matrices),
        "TCP-merged matrices differ from the single-process engine"
    );
    assert_eq!(dist.stats, single.stats, "shard stats do not sum");
    assert_eq!(dist.coord.replans, 0);
    assert_eq!(dist.coord.worker_failures, 0);

    // The Load frame carries the matrix once per worker; the slim
    // assignments must be orders of magnitude smaller than the v1 fat
    // assignments (matrix inside every Assign) would have been.
    let matrix_payload = 1 + 16 + 8 * data.n_series() * data.len();
    assert_eq!(dist.coord.assignments, 4);
    assert_eq!(dist.coord.load_bytes, 2 * matrix_payload as u64);
    assert!(
        dist.coord.assign_bytes < dist.coord.assignments as u64 * 1024,
        "slim assignments are unexpectedly large: {} bytes",
        dist.coord.assign_bytes
    );
    let fat = dist.coord.assign_bytes + dist.coord.assignments as u64 * matrix_payload as u64;
    assert!(
        dist.coord.assign_bytes + dist.coord.load_bytes < fat,
        "Load + slim assignments must beat fat assignments"
    );
}

#[test]
fn hostile_peer_is_rejected_without_costing_the_run_or_a_worker_slot() {
    use std::io::Write as _;
    let (data, query, cfg) = workload();
    let single = coord::run_single_process(WorkerMode::Batch, &cfg, &data, query).unwrap();
    // A non-worker connects first and sends a garbage frame — a port
    // scanner or health check hitting the listener. It must be dropped
    // at the handshake; the run proceeds with the two real workers.
    let (listener, addr, children) = bind_and_spawn(2, &[vec![]]);
    let mut stray = std::net::TcpStream::connect(&addr).unwrap();
    stray
        .write_all(&bytes::frame::encode(&[0xFF, 0xEE]))
        .unwrap();
    let ccfg = coordinator(4, 2, WorkerMode::Batch);
    let dist = coord::run_with_listener(&ccfg, listener, &cfg, &data, query).unwrap();
    reap(children);
    drop(stray);

    assert_eq!(dist.coord.n_workers, 2, "the stray peer took a worker slot");
    assert_eq!(dist.coord.worker_failures, 0);
    assert!(windows_bit_identical(&dist.matrices, &single.matrices));
    assert_eq!(dist.stats, single.stats);
}

#[test]
fn killed_tcp_worker_is_replanned_onto_survivors_with_identical_result() {
    let (data, query, cfg) = workload();
    let single = coord::run_single_process(WorkerMode::Batch, &cfg, &data, query).unwrap();
    // Worker 0 aborts on its first assignment (the TCP stand-in for a
    // machine dying mid-run); worker 1 survives.
    let (listener, _, children) = bind_and_spawn(2, &[vec![(dist::worker::FAIL_ENV, "1")], vec![]]);
    let ccfg = coordinator(4, 2, WorkerMode::Batch);
    let dist = coord::run_with_listener(&ccfg, listener, &cfg, &data, query).unwrap();
    reap(children);

    assert!(dist.coord.worker_failures >= 1, "injected kill never fired");
    assert!(dist.coord.replans >= 1, "no re-plan recorded");
    assert!(
        dist.shards.iter().any(|s| s.attempt > 0),
        "no shard carries a retry generation"
    );
    assert!(
        windows_bit_identical(&dist.matrices, &single.matrices),
        "replanned TCP run differs from the single-process engine"
    );
    assert_eq!(dist.stats, single.stats, "replanned stats do not sum");
}

#[test]
fn streaming_replay_over_tcp_matches_single_process() {
    let (data, query, cfg) = workload();
    let mode = WorkerMode::StreamingReplay {
        initial_cols: 160,
        chunk_cols: 60,
    };
    let single = coord::run_single_process(mode, &cfg, &data, query).unwrap();
    let (listener, _, children) = bind_and_spawn(2, &[vec![]]);
    let ccfg = coordinator(4, 2, mode);
    let dist = coord::run_with_listener(&ccfg, listener, &cfg, &data, query).unwrap();
    reap(children);

    assert!(!single.matrices.is_empty());
    assert!(windows_bit_identical(&dist.matrices, &single.matrices));
    assert_eq!(dist.stats, single.stats);
}

#[test]
fn duplicate_final_frames_are_discarded_not_double_counted() {
    // Every worker writes each Result frame twice — the deterministic
    // stand-in for a worker's final frame racing the coordinator's kill.
    // Each duplicate must be identified as stale by its assignment id and
    // discarded; merging it would double every affected shard's edges.
    let (data, query, cfg) = workload();
    let single = coord::run_single_process(WorkerMode::Batch, &cfg, &data, query).unwrap();
    let (listener, _, children) = bind_and_spawn(2, &[vec![(dist::worker::DUP_ENV, "1")]]);
    // More shards than workers, so duplicates interleave with fresh
    // assignments on the same link.
    let ccfg = coordinator(6, 2, WorkerMode::Batch);
    let dist = coord::run_with_listener(&ccfg, listener, &cfg, &data, query).unwrap();
    reap(children);

    assert!(
        dist.coord.stale_frames >= 1,
        "no duplicate frame was ever discarded"
    );
    assert_eq!(dist.shards.len(), 6, "a duplicate was merged as a shard");
    assert!(
        windows_bit_identical(&dist.matrices, &single.matrices),
        "duplicated frames leaked into the merge"
    );
    assert_eq!(dist.stats, single.stats, "stats were double-counted");
}

#[test]
fn hung_tcp_worker_times_out_and_is_replanned() {
    let (data, query, cfg) = workload();
    let single = coord::run_single_process(WorkerMode::Batch, &cfg, &data, query).unwrap();
    // Worker 0 sleeps 30 s before answering anything; the coordinator's
    // 2 s deadline must kill it and re-plan onto worker 1. The sleeper's
    // eventual write lands on a shut-down socket and dies there.
    let (listener, _, children) =
        bind_and_spawn(2, &[vec![(dist::worker::DELAY_ENV, "4000")], vec![]]);
    let mut ccfg = coordinator(4, 2, WorkerMode::Batch);
    ccfg.timeout = Duration::from_secs(2);
    let dist = coord::run_with_listener(&ccfg, listener, &cfg, &data, query).unwrap();

    assert!(dist.coord.worker_failures >= 1, "timeout never fired");
    assert!(dist.coord.replans >= 1, "no re-plan recorded");
    assert!(
        windows_bit_identical(&dist.matrices, &single.matrices),
        "timeout/replan TCP run differs from the single-process engine"
    );
    assert_eq!(dist.stats, single.stats);
    // The sleeper must not outlive the run by much: its socket is shut
    // down, so its next write fails and the process exits.
    reap(children);
}
