//! End-to-end tests of the TCP transport: a real coordinator listener
//! driving real `dangoron-shard --connect` worker processes over
//! localhost sockets, verified bitwise against the single-process engine
//! — including the worker-kill/replan, timeout, and stale-final-frame
//! paths.

use dangoron::{BoundMode, DangoronConfig};
use dist::coord::{self, CoordinatorConfig, TransportMode};
use dist::merge::windows_bit_identical;
use dist::proto::WorkerMode;
use sketch::SlidingQuery;
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::time::Duration;
use tsdata::generators;
use tsdata::TimeSeriesMatrix;

fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_dangoron-shard")
}

fn workload() -> (TimeSeriesMatrix, SlidingQuery, DangoronConfig) {
    let data = generators::clustered_matrix(12, 360, 3, 0.5, 41).unwrap();
    let query = SlidingQuery {
        start: 0,
        end: 360,
        window: 60,
        step: 20,
        threshold: 0.7,
    };
    let cfg = DangoronConfig {
        basic_window: 20,
        bound: BoundMode::PaperJump { slack: 0.0 },
        ..Default::default()
    };
    (data, query, cfg)
}

/// Binds an OS-assigned localhost port and spawns `n` workers dialing it,
/// each with extra environment variables from `envs[i]` (cycled).
fn bind_and_spawn(n: usize, envs: &[Vec<(&str, &str)>]) -> (TcpListener, String, Vec<Child>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let children = (0..n)
        .map(|k| {
            let mut cmd = Command::new(worker_bin());
            cmd.arg("--connect")
                .arg(&addr)
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .stderr(Stdio::inherit());
            if let Some(vars) = envs.get(k % envs.len().max(1)) {
                for (k, v) in vars {
                    cmd.env(k, v);
                }
            }
            cmd.spawn().expect("spawn dangoron-shard --connect")
        })
        .collect();
    (listener, addr, children)
}

/// One worker dialing `addr`, with extra CLI flags and environment.
fn spawn_worker(addr: &str, extra_args: &[&str], envs: &[(&str, &str)]) -> Child {
    let mut cmd = Command::new(worker_bin());
    cmd.arg("--connect")
        .arg(addr)
        .args(extra_args)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.spawn().expect("spawn dangoron-shard --connect")
}

fn coordinator(n_shards: usize, n_workers: usize, mode: WorkerMode) -> CoordinatorConfig {
    CoordinatorConfig {
        transport: TransportMode::Tcp {
            listen: String::new(), // pre-bound listener supplies the socket
            accept_timeout: Duration::from_secs(30),
        },
        n_workers,
        mode,
        timeout: Duration::from_secs(60),
        ..CoordinatorConfig::new(Default::default(), n_shards)
    }
}

fn reap(mut children: Vec<Child>) {
    for c in &mut children {
        let _ = c.wait();
    }
}

#[test]
fn tcp_tier_matches_single_process_bitwise() {
    let (data, query, cfg) = workload();
    let single = coord::run_single_process(WorkerMode::Batch, &cfg, &data, query).unwrap();
    let (listener, _, children) = bind_and_spawn(2, &[vec![]]);
    let ccfg = coordinator(4, 2, WorkerMode::Batch);
    let dist = coord::run_with_listener(&ccfg, listener, &cfg, &data, query).unwrap();
    reap(children);

    assert_eq!(dist.coord.transport, "tcp");
    assert_eq!(dist.coord.n_workers, 2);
    assert_eq!(dist.shards.len(), 4);
    assert!(
        windows_bit_identical(&dist.matrices, &single.matrices),
        "TCP-merged matrices differ from the single-process engine"
    );
    assert_eq!(dist.stats, single.stats, "shard stats do not sum");
    assert_eq!(dist.coord.replans, 0);
    assert_eq!(dist.coord.worker_failures, 0);

    // The Load frame carries the matrix once per worker; the slim
    // assignments must be orders of magnitude smaller than the v1 fat
    // assignments (matrix inside every Assign) would have been.
    let matrix_payload = 1 + 16 + 8 * data.n_series() * data.len();
    assert_eq!(dist.coord.assignments, 4);
    assert_eq!(dist.coord.load_bytes, 2 * matrix_payload as u64);
    assert!(
        dist.coord.assign_bytes < dist.coord.assignments as u64 * 1024,
        "slim assignments are unexpectedly large: {} bytes",
        dist.coord.assign_bytes
    );
    let fat = dist.coord.assign_bytes + dist.coord.assignments as u64 * matrix_payload as u64;
    assert!(
        dist.coord.assign_bytes + dist.coord.load_bytes < fat,
        "Load + slim assignments must beat fat assignments"
    );
}

#[test]
fn hostile_peer_is_rejected_without_costing_the_run_or_a_worker_slot() {
    use std::io::Write as _;
    let (data, query, cfg) = workload();
    let single = coord::run_single_process(WorkerMode::Batch, &cfg, &data, query).unwrap();
    // A non-worker connects first and sends a garbage frame — a port
    // scanner or health check hitting the listener. It must be dropped
    // at the handshake; the run proceeds with the two real workers.
    let (listener, addr, children) = bind_and_spawn(2, &[vec![]]);
    let mut stray = std::net::TcpStream::connect(&addr).unwrap();
    stray
        .write_all(&bytes::frame::encode(&[0xFF, 0xEE]))
        .unwrap();
    let ccfg = coordinator(4, 2, WorkerMode::Batch);
    let dist = coord::run_with_listener(&ccfg, listener, &cfg, &data, query).unwrap();
    reap(children);
    drop(stray);

    assert_eq!(dist.coord.n_workers, 2, "the stray peer took a worker slot");
    assert_eq!(dist.coord.worker_failures, 0);
    assert!(windows_bit_identical(&dist.matrices, &single.matrices));
    assert_eq!(dist.stats, single.stats);
}

#[test]
fn killed_tcp_worker_is_replanned_onto_survivors_with_identical_result() {
    let (data, query, cfg) = workload();
    let single = coord::run_single_process(WorkerMode::Batch, &cfg, &data, query).unwrap();
    // Worker 0 aborts on its first assignment (the TCP stand-in for a
    // machine dying mid-run); worker 1 survives.
    let (listener, _, children) = bind_and_spawn(2, &[vec![(dist::worker::FAIL_ENV, "1")], vec![]]);
    let ccfg = coordinator(4, 2, WorkerMode::Batch);
    let dist = coord::run_with_listener(&ccfg, listener, &cfg, &data, query).unwrap();
    reap(children);

    assert!(dist.coord.worker_failures >= 1, "injected kill never fired");
    assert!(dist.coord.replans >= 1, "no re-plan recorded");
    assert!(
        dist.shards.iter().any(|s| s.attempt > 0),
        "no shard carries a retry generation"
    );
    assert!(
        windows_bit_identical(&dist.matrices, &single.matrices),
        "replanned TCP run differs from the single-process engine"
    );
    assert_eq!(dist.stats, single.stats, "replanned stats do not sum");
}

#[test]
fn streaming_replay_over_tcp_matches_single_process() {
    let (data, query, cfg) = workload();
    let mode = WorkerMode::StreamingReplay {
        initial_cols: 160,
        chunk_cols: 60,
    };
    let single = coord::run_single_process(mode, &cfg, &data, query).unwrap();
    let (listener, _, children) = bind_and_spawn(2, &[vec![]]);
    let ccfg = coordinator(4, 2, mode);
    let dist = coord::run_with_listener(&ccfg, listener, &cfg, &data, query).unwrap();
    reap(children);

    assert!(!single.matrices.is_empty());
    assert!(windows_bit_identical(&dist.matrices, &single.matrices));
    assert_eq!(dist.stats, single.stats);
}

#[test]
fn duplicate_final_frames_are_discarded_not_double_counted() {
    // Every worker writes each Result frame twice — the deterministic
    // stand-in for a worker's final frame racing the coordinator's kill.
    // Each duplicate must be identified as stale by its assignment id and
    // discarded; merging it would double every affected shard's edges.
    let (data, query, cfg) = workload();
    let single = coord::run_single_process(WorkerMode::Batch, &cfg, &data, query).unwrap();
    let (listener, _, children) = bind_and_spawn(2, &[vec![(dist::worker::DUP_ENV, "1")]]);
    // More shards than workers, so duplicates interleave with fresh
    // assignments on the same link.
    let ccfg = coordinator(6, 2, WorkerMode::Batch);
    let dist = coord::run_with_listener(&ccfg, listener, &cfg, &data, query).unwrap();
    reap(children);

    assert!(
        dist.coord.stale_frames >= 1,
        "no duplicate frame was ever discarded"
    );
    assert_eq!(dist.shards.len(), 6, "a duplicate was merged as a shard");
    assert!(
        windows_bit_identical(&dist.matrices, &single.matrices),
        "duplicated frames leaked into the merge"
    );
    assert_eq!(dist.stats, single.stats, "stats were double-counted");
}

#[test]
fn late_joining_worker_is_admitted_and_dealt_work() {
    let (data, query, cfg) = workload();
    let single = coord::run_single_process(WorkerMode::Batch, &cfg, &data, query).unwrap();
    // One slow worker starts the run (per-chunk delay keeps it busy for
    // seconds); a second, fast worker dials in 300 ms later and must be
    // admitted mid-run and dealt the pending shards.
    let (listener, addr, children) = bind_and_spawn(
        1,
        &[vec![
            (dist::worker::CHUNK_DELAY_ENV, "150"),
            (dist::worker::CHUNK_RANKS_ENV, "8"),
        ]],
    );
    let late = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        spawn_worker(&addr, &[], &[])
    });
    let ccfg = coordinator(4, 1, WorkerMode::Batch);
    let dist = coord::run_with_listener(&ccfg, listener, &cfg, &data, query).unwrap();
    reap(children);
    reap(vec![late.join().unwrap()]);

    assert!(dist.coord.late_joins >= 1, "the late worker never joined");
    assert!(
        windows_bit_identical(&dist.matrices, &single.matrices),
        "elastic membership changed the merged result"
    );
    assert_eq!(dist.stats, single.stats);
}

#[test]
fn straggler_tail_is_stolen_by_idle_worker() {
    let (data, query, cfg) = workload();
    let single = coord::run_single_process(WorkerMode::Batch, &cfg, &data, query).unwrap();
    // Worker 0 crawls (200 ms per 4-rank chunk, while demonstrably alive
    // through its progress frames); worker 1 races through the rest of
    // the queue, goes idle, and must be handed the straggler's tail.
    let (listener, _, children) = bind_and_spawn(
        2,
        &[
            vec![
                (dist::worker::CHUNK_DELAY_ENV, "200"),
                (dist::worker::CHUNK_RANKS_ENV, "4"),
            ],
            vec![],
        ],
    );
    let mut ccfg = coordinator(4, 2, WorkerMode::Batch);
    ccfg.steal_after = Duration::from_millis(100);
    let dist = coord::run_with_listener(&ccfg, listener, &cfg, &data, query).unwrap();
    reap(children);

    assert!(dist.coord.steals >= 1, "no steal was ever granted");
    assert!(
        dist.shards.len() > 4,
        "a granted steal must split a shard into extra summaries"
    );
    assert_eq!(dist.coord.worker_failures, 0, "stealing is not a failure");
    assert!(
        windows_bit_identical(&dist.matrices, &single.matrices),
        "work-stealing changed the merged result"
    );
    assert_eq!(dist.stats, single.stats, "stolen intervals double-counted");
}

#[test]
fn dropped_worker_reconnects_and_is_readmitted() {
    let (data, query, cfg) = workload();
    let single = coord::run_single_process(WorkerMode::Batch, &cfg, &data, query).unwrap();
    // The chaos layer severs the sole worker's link right after its first
    // assignment (frame 1 = Load, frame 2 = Assign). The worker, started
    // with `--reconnect`, re-dials and must be re-admitted as a new
    // member; its lost assignment is re-planned onto the new identity.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let child = spawn_worker(&addr, &["--reconnect", "3"], &[]);
    let mut ccfg = coordinator(4, 1, WorkerMode::Batch);
    ccfg.chaos = Some(dist::FaultPlan::Explicit(vec![dist::LinkFaults {
        kill_after_frames: Some(2),
        ..Default::default()
    }]));
    let dist = coord::run_with_listener(&ccfg, listener, &cfg, &data, query).unwrap();
    reap(vec![child]);

    assert!(dist.coord.worker_failures >= 1, "the cut link never died");
    assert!(dist.coord.replans >= 1, "lost work was not re-planned");
    assert!(
        dist.coord.late_joins >= 1,
        "the reconnecting worker was never re-admitted"
    );
    assert!(
        windows_bit_identical(&dist.matrices, &single.matrices),
        "reconnect/replan changed the merged result"
    );
    assert_eq!(dist.stats, single.stats);
}

#[test]
fn hung_tcp_worker_times_out_and_is_replanned() {
    let (data, query, cfg) = workload();
    let single = coord::run_single_process(WorkerMode::Batch, &cfg, &data, query).unwrap();
    // Worker 0 sleeps 30 s before answering anything; the coordinator's
    // 2 s deadline must kill it and re-plan onto worker 1. The sleeper's
    // eventual write lands on a shut-down socket and dies there.
    let (listener, _, children) =
        bind_and_spawn(2, &[vec![(dist::worker::DELAY_ENV, "4000")], vec![]]);
    let mut ccfg = coordinator(4, 2, WorkerMode::Batch);
    ccfg.timeout = Duration::from_secs(2);
    let dist = coord::run_with_listener(&ccfg, listener, &cfg, &data, query).unwrap();

    assert!(dist.coord.worker_failures >= 1, "timeout never fired");
    assert!(dist.coord.replans >= 1, "no re-plan recorded");
    assert!(
        windows_bit_identical(&dist.matrices, &single.matrices),
        "timeout/replan TCP run differs from the single-process engine"
    );
    assert_eq!(dist.stats, single.stats);
    // The sleeper must not outlive the run by much: its socket is shut
    // down, so its next write fails and the process exits.
    reap(children);
}
