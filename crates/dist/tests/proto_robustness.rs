//! Wire-protocol robustness: decoding must be total. Every frame type
//! round-trips; every truncation, byte mutation, length-field corruption
//! and random-garbage payload returns `Err` or a well-formed message —
//! never a panic, and never an allocation sized by an unverified count.

use dangoron::config::{HorizontalConfig, PivotStrategy};
use dangoron::{BoundMode, DangoronConfig, PairStorage, PruningStats};
use dist::proto::{self, Assignment, Hello, Message, ShardResult, WorkerMode};
use proptest::prelude::*;
use sketch::output::{Edge, EdgeRule};
use sketch::SlidingQuery;
use tsdata::generators;

/// One representative of every frame type, with every optional branch of
/// the config exercised across the set.
fn specimens() -> Vec<Message> {
    let full_config = DangoronConfig {
        basic_window: 20,
        bound: BoundMode::PaperJump { slack: 0.125 },
        storage: PairStorage::OnDemand,
        horizontal: Some(HorizontalConfig {
            n_pivots: 3,
            strategy: PivotStrategy::Explicit(vec![0, 4, 7]),
        }),
        threads: 2,
        edge_rule: EdgeRule::Absolute,
    };
    let plain_config = DangoronConfig {
        basic_window: 10,
        bound: BoundMode::Exhaustive,
        storage: PairStorage::Precomputed,
        horizontal: Some(HorizontalConfig {
            n_pivots: 2,
            strategy: PivotStrategy::Random { seed: 9 },
        }),
        threads: 1,
        edge_rule: EdgeRule::Positive,
    };
    let query = SlidingQuery {
        start: 0,
        end: 200,
        window: 60,
        step: 20,
        threshold: 0.75,
    };
    let mut stats = PruningStats::default();
    stats.record_jump(5);
    stats.record_jump(2);
    stats.n_pairs = 15;
    stats.evaluated = 40;
    vec![
        Message::Hello(Hello::local()),
        Message::Load(generators::clustered_matrix(6, 40, 2, 0.5, 3).unwrap()),
        Message::Assign(Assignment {
            shard_id: 3,
            ranks: 10..25,
            mode: WorkerMode::StreamingReplay {
                initial_cols: 100,
                chunk_cols: 40,
            },
            config: full_config,
            query,
        }),
        Message::Assign(Assignment {
            shard_id: 4,
            ranks: 0..15,
            mode: WorkerMode::Batch,
            config: plain_config,
            query,
        }),
        Message::Result(ShardResult {
            shard_id: 7,
            ranks: 0..15,
            prepare_s: 0.25,
            query_s: 1.5,
            stats,
            edges: vec![
                (
                    0,
                    Edge {
                        i: 1,
                        j: 2,
                        value: 0.987,
                    },
                ),
                (
                    3,
                    Edge {
                        i: 0,
                        j: 5,
                        value: -0.25,
                    },
                ),
            ],
        }),
        Message::Error(11, "shard exploded".into()),
        Message::Ping(u64::MAX),
        Message::Pong(0),
        Message::Progress {
            assignment_id: 9,
            frontier: 123_456,
        },
        Message::Steal { assignment_id: 9 },
        Message::StealGrant {
            assignment_id: 9,
            new_end: 777,
        },
    ]
}

/// Structural equality down to `f64` bit patterns.
fn same(a: &Message, b: &Message) -> bool {
    match (a, b) {
        (Message::Hello(x), Message::Hello(y)) => x == y,
        (Message::Load(x), Message::Load(y)) => {
            x.n_series() == y.n_series()
                && x.len() == y.len()
                && x.as_slice()
                    .iter()
                    .zip(y.as_slice())
                    .all(|(p, q)| p.to_bits() == q.to_bits())
        }
        (Message::Assign(x), Message::Assign(y)) => {
            x.shard_id == y.shard_id
                && x.ranks == y.ranks
                && x.mode == y.mode
                && x.config == y.config
                && x.query == y.query
        }
        (Message::Result(x), Message::Result(y)) => {
            x.shard_id == y.shard_id
                && x.ranks == y.ranks
                && x.prepare_s.to_bits() == y.prepare_s.to_bits()
                && x.query_s.to_bits() == y.query_s.to_bits()
                && x.stats == y.stats
                && x.edges.len() == y.edges.len()
                && x.edges.iter().zip(&y.edges).all(|((wa, ea), (wb, eb))| {
                    wa == wb
                        && ea.i == eb.i
                        && ea.j == eb.j
                        && ea.value.to_bits() == eb.value.to_bits()
                })
        }
        (Message::Error(xi, xt), Message::Error(yi, yt)) => xi == yi && xt == yt,
        (Message::Ping(x), Message::Ping(y)) => x == y,
        (Message::Pong(x), Message::Pong(y)) => x == y,
        (
            Message::Progress {
                assignment_id: xa,
                frontier: xf,
            },
            Message::Progress {
                assignment_id: ya,
                frontier: yf,
            },
        ) => xa == ya && xf == yf,
        (Message::Steal { assignment_id: x }, Message::Steal { assignment_id: y }) => x == y,
        (
            Message::StealGrant {
                assignment_id: xa,
                new_end: xe,
            },
            Message::StealGrant {
                assignment_id: ya,
                new_end: ye,
            },
        ) => xa == ya && xe == ye,
        _ => false,
    }
}

#[test]
fn every_frame_type_round_trips() {
    for msg in specimens() {
        let decoded = proto::decode(&proto::encode(&msg))
            .unwrap_or_else(|e| panic!("round trip of {msg:?} failed: {e}"));
        assert!(same(&msg, &decoded), "{msg:?} != {decoded:?}");
    }
}

#[test]
fn every_truncation_of_every_frame_type_is_rejected() {
    // Exhaustive over all strict prefixes: decoding must return Err (a
    // shorter well-formed message would mean trailing bytes in the
    // original, which decode also rejects) and must never panic.
    for msg in specimens() {
        let full = proto::encode(&msg);
        for cut in 0..full.len() {
            assert!(
                proto::decode(&full[..cut]).is_err(),
                "{msg:?} truncated to {cut}/{} bytes decoded",
                full.len()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn mutated_frames_never_panic(which in 0usize..11, at_frac in 0.0f64..1.0, xor in 1u8..=255) {
        let msg = &specimens()[which];
        let mut payload = proto::encode(msg);
        let at = ((payload.len() - 1) as f64 * at_frac) as usize;
        payload[at] ^= xor;
        // A flipped byte may still decode (e.g. inside an f64 payload) —
        // but it must decode to a *message*, not a panic or an abort.
        let _ = proto::decode(&payload);
    }

    #[test]
    fn random_garbage_never_panics(len in 0usize..256, seed in 0u64..1_000_000) {
        // SplitMix-ish garbage, including hostile first bytes (the tag
        // range) and hostile length fields by chance.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut payload = Vec::with_capacity(len);
        for _ in 0..len {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            payload.push(state as u8);
        }
        let _ = proto::decode(&payload);
    }

    #[test]
    fn corrupted_count_fields_are_rejected_not_allocated(count in 0u64..=u64::MAX) {
        // A Result frame whose trailing edge-count field is overwritten
        // with an arbitrary value: unless it names the true count, decode
        // must reject it (truncation or trailing bytes), and a huge value
        // must be caught by the length check before any allocation.
        let msg = Message::Result(ShardResult {
            shard_id: 1,
            ranks: 0..3,
            prepare_s: 0.1,
            query_s: 0.2,
            stats: PruningStats::default(),
            edges: vec![(
                0,
                Edge {
                    i: 0,
                    j: 1,
                    value: 0.5,
                },
            )],
        });
        let mut payload = proto::encode(&msg);
        let edge_bytes = 20;
        let at = payload.len() - edge_bytes - 8;
        payload[at..at + 8].copy_from_slice(&count.to_le_bytes());
        let out = proto::decode(&payload);
        if count == 1 {
            prop_assert!(out.is_ok());
        } else {
            prop_assert!(out.is_err(), "count={count} accepted");
        }
    }
}
