//! Concurrent-scrape determinism: hammering the embedded metrics
//! surface during a seeded chaos storm must not change a single merged
//! bit. Scrapes are wait-free relaxed reads, so observation is free —
//! this suite is the proof. It also pins two scrape-side contracts:
//! every exposition parses under the strict validator, and counters
//! observed across successive scrapes never decrease.

use dangoron::{BoundMode, DangoronConfig};
use dist::coord::{self, CoordinatorConfig, TransportMode};
use dist::merge::windows_bit_identical;
use dist::proto::WorkerMode;
use dist::FaultPlan;
use sketch::SlidingQuery;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tsdata::generators;
use tsdata::TimeSeriesMatrix;

fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_dangoron-shard")
}

fn workload() -> (TimeSeriesMatrix, SlidingQuery, DangoronConfig) {
    let data = generators::clustered_matrix(12, 360, 3, 0.5, 41).unwrap();
    let query = SlidingQuery {
        start: 0,
        end: 360,
        window: 60,
        step: 20,
        threshold: 0.7,
    };
    let cfg = DangoronConfig {
        basic_window: 20,
        bound: BoundMode::PaperJump { slack: 0.0 },
        ..Default::default()
    };
    (data, query, cfg)
}

fn spawn_workers(addr: &str, n: usize, reconnect: u32) -> Vec<Child> {
    (0..n)
        .map(|_| {
            Command::new(worker_bin())
                .arg("--connect")
                .arg(addr)
                .arg("--reconnect")
                .arg(reconnect.to_string())
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
                .expect("spawn dangoron-shard --connect")
        })
        .collect()
}

fn reap(mut children: Vec<Child>) {
    for c in &mut children {
        let _ = c.wait();
    }
}

fn storm_coordinator(n_shards: usize, n_workers: usize) -> CoordinatorConfig {
    CoordinatorConfig {
        transport: TransportMode::Tcp {
            listen: String::new(),
            accept_timeout: Duration::from_secs(30),
        },
        n_workers,
        timeout: Duration::from_secs(60),
        max_attempts: 12,
        ..CoordinatorConfig::new(Default::default(), n_shards)
    }
}

/// One HTTP GET; returns `(status, body)` or None on connection trouble
/// (the server caps concurrent scrapes at a small slot count — a 503 or
/// refused connect under a 4-thread hammer is expected back-pressure).
fn http_get(addr: &str, path: &str) -> Option<(u16, String)> {
    let mut s = TcpStream::connect(addr).ok()?;
    s.set_read_timeout(Some(Duration::from_secs(10))).ok()?;
    s.write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .ok()?;
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).ok()?;
    let text = String::from_utf8_lossy(&raw).into_owned();
    let status: u16 = text
        .lines()
        .next()?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()?;
    let body = match text.split_once("\r\n\r\n") {
        Some((_, b)) => b.to_string(),
        None => String::new(),
    };
    Some((status, body))
}

/// Extracts the counter samples of a parsed exposition as a
/// `name{labels} -> value` map.
fn counter_values(families: &[obs::expo::Family]) -> HashMap<String, f64> {
    let mut out = HashMap::new();
    for fam in families {
        if fam.kind != "counter" {
            continue;
        }
        for s in &fam.samples {
            let mut key = s.name.clone();
            for (k, v) in &s.labels {
                key.push_str(&format!(",{k}={v}"));
            }
            out.insert(key, s.value);
        }
    }
    out
}

#[test]
fn chaos_storm_scraped_from_four_threads_stays_bit_identical() {
    let (data, query, cfg) = workload();
    let single = coord::run_single_process(WorkerMode::Batch, &cfg, &data, query).unwrap();

    // Baseline: the same seeded storm, never scraped.
    let seed = 42u64;
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let children = spawn_workers(&addr, 3, 6);
    let mut ccfg = storm_coordinator(8, 3);
    ccfg.chaos = Some(FaultPlan::Seeded(seed));
    let unscraped =
        coord::run_with_listener(&ccfg, listener, &cfg, &data, query).expect("unscraped storm run");
    reap(children);

    // Scraped: identical storm, with a live metrics server mounted and
    // four scrape threads hammering it for the whole run.
    let registry = Arc::new(obs::Registry::new());
    let srv = obs::MetricsServer::bind(
        "127.0.0.1:0",
        vec![obs::stages::global(), Arc::clone(&registry)],
        None,
    )
    .expect("bind metrics server");
    let scrape_addr = srv.addr().to_string();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let children = spawn_workers(&addr, 3, 6);
    let mut ccfg = storm_coordinator(8, 3);
    ccfg.chaos = Some(FaultPlan::Seeded(seed));
    ccfg.registry = Some(Arc::clone(&registry));

    let stop = Arc::new(AtomicBool::new(false));
    let scrapers: Vec<_> = (0..4)
        .map(|k| {
            let stop = Arc::clone(&stop);
            let scrape_addr = scrape_addr.clone();
            std::thread::spawn(move || {
                let path = if k % 2 == 0 {
                    "/metrics"
                } else {
                    "/stats.json"
                };
                let mut scrapes = 0u64;
                let mut last_counters: HashMap<String, f64> = HashMap::new();
                while !stop.load(Ordering::Relaxed) {
                    let Some((status, body)) = http_get(&scrape_addr, path) else {
                        continue;
                    };
                    assert!(
                        status == 200 || status == 503,
                        "scraper {k}: unexpected status {status}"
                    );
                    if status != 200 {
                        continue;
                    }
                    scrapes += 1;
                    if path == "/metrics" {
                        let families = obs::expo::parse_prometheus(&body)
                            .unwrap_or_else(|e| panic!("scraper {k}: bad exposition: {e}"));
                        let now = counter_values(&families);
                        for (key, prev) in &last_counters {
                            if let Some(cur) = now.get(key) {
                                assert!(
                                    cur >= prev,
                                    "scraper {k}: counter {key} went backwards: {prev} -> {cur}"
                                );
                            }
                        }
                        last_counters = now;
                    } else {
                        assert!(
                            body.trim_start().starts_with('['),
                            "scraper {k}: /stats.json is not a JSON array"
                        );
                    }
                }
                scrapes
            })
        })
        .collect();

    let scraped =
        coord::run_with_listener(&ccfg, listener, &cfg, &data, query).expect("scraped storm run");
    stop.store(true, Ordering::Relaxed);
    let total_scrapes: u64 = scrapers
        .into_iter()
        .map(|h| h.join().expect("scraper thread"))
        .sum();
    reap(children);

    assert!(total_scrapes > 0, "the hammer never landed a scrape");
    assert!(
        windows_bit_identical(&scraped.matrices, &unscraped.matrices),
        "scraping changed the merged result"
    );
    assert!(
        windows_bit_identical(&scraped.matrices, &single.matrices),
        "scraped storm differs from the single-process engine"
    );
    assert_eq!(scraped.stats, single.stats);

    // The end-of-run CoordStats snapshot is read back from the same
    // registry the scrapers watched: the final exposition must agree.
    let final_text = obs::expo::to_prometheus(&registry.snapshot());
    let families = obs::expo::parse_prometheus(&final_text).expect("final exposition parses");
    let counters = counter_values(&families);
    assert_eq!(
        counters.get("dangoron_coord_replans_total").copied(),
        Some(scraped.coord.replans as f64),
        "registry and CoordStats disagree on replans"
    );
    assert_eq!(
        counters.get("dangoron_coord_assignments_total").copied(),
        Some(scraped.coord.assignments as f64),
        "registry and CoordStats disagree on assignments"
    );
}

#[test]
fn clean_run_exposes_a_parsable_exposition_with_stage_timers() {
    // A clean (chaos-free) run through the in-process tier with a
    // registry: every stage-timer family must land in the process-wide
    // registry and the combined exposition must parse strictly.
    let (data, query, cfg) = workload();
    let _ = coord::run_in_process(4, WorkerMode::Batch, &cfg, &data, query).unwrap();

    let stage_text = obs::expo::to_prometheus(&obs::stages::global().snapshot());
    let families = obs::expo::parse_prometheus(&stage_text).expect("stage exposition parses");
    let names: Vec<&str> = families.iter().map(|f| f.name.as_str()).collect();
    for required in [
        "dangoron_stage_prepare_us",
        "dangoron_stage_pivot_build_us",
        "dangoron_stage_walk_us",
        "dangoron_stage_merge_us",
        "dangoron_exec_chunk_us",
        "dangoron_exec_steal_attempts_total",
    ] {
        assert!(
            names.contains(&required),
            "missing family {required} in {names:?}"
        );
    }
    // The engine ran, so the walk timer must have observations.
    let walk = families
        .iter()
        .find(|f| f.name == "dangoron_stage_walk_us")
        .unwrap();
    let count = walk
        .samples
        .iter()
        .find(|s| s.name == "dangoron_stage_walk_us_count")
        .expect("histogram _count sample");
    assert!(count.value >= 1.0, "walk stage never observed");
}
