//! End-to-end tests of the process tier: a real coordinator driving real
//! `dangoron-shard` worker processes over stdio pipes, verified bitwise
//! against the single-process engine — including the worker-kill/replan
//! path.

use dangoron::{BoundMode, DangoronConfig};
use dist::coord::{self, CoordinatorConfig};
use dist::merge::windows_bit_identical;
use dist::proto::WorkerMode;
use sketch::SlidingQuery;
use std::path::PathBuf;
use std::time::Duration;
use tsdata::generators;
use tsdata::TimeSeriesMatrix;

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_dangoron-shard"))
}

fn workload() -> (TimeSeriesMatrix, SlidingQuery, DangoronConfig) {
    let data = generators::clustered_matrix(12, 360, 3, 0.5, 41).unwrap();
    let query = SlidingQuery {
        start: 0,
        end: 360,
        window: 60,
        step: 20,
        threshold: 0.7,
    };
    let cfg = DangoronConfig {
        basic_window: 20,
        bound: BoundMode::PaperJump { slack: 0.0 },
        ..Default::default()
    };
    (data, query, cfg)
}

fn coordinator(n_shards: usize, mode: WorkerMode) -> CoordinatorConfig {
    CoordinatorConfig {
        mode,
        timeout: Duration::from_secs(60),
        ..CoordinatorConfig::new(worker_bin(), n_shards)
    }
}

#[test]
fn process_tier_matches_single_process_for_every_shard_count() {
    let (data, query, cfg) = workload();
    let single = coord::run_single_process(WorkerMode::Batch, &cfg, &data, query).unwrap();
    for k in [1usize, 2, 4, 8] {
        let dist = coord::run(&coordinator(k, WorkerMode::Batch), &cfg, &data, query).unwrap();
        assert!(
            windows_bit_identical(&dist.matrices, &single.matrices),
            "k={k}: merged matrices differ from the single-process engine"
        );
        assert_eq!(dist.stats, single.stats, "k={k}: shard stats do not sum");
        assert_eq!(dist.coord.replans, 0, "k={k}");
        assert_eq!(dist.coord.worker_failures, 0, "k={k}");
        assert_eq!(dist.shards.len(), k.min(dist.coord.n_shards_planned.max(k)));
    }
}

#[test]
fn killed_worker_is_replanned_onto_survivors_with_identical_result() {
    let (data, query, cfg) = workload();
    let single = coord::run_single_process(WorkerMode::Batch, &cfg, &data, query).unwrap();
    let mut ccfg = coordinator(4, WorkerMode::Batch);
    ccfg.kill_worker = Some(1); // worker 1 aborts on its first assignment
    let dist = coord::run(&ccfg, &cfg, &data, query).unwrap();
    assert!(dist.coord.worker_failures >= 1, "injected kill never fired");
    assert!(dist.coord.replans >= 1, "no re-plan recorded");
    assert!(
        dist.shards.iter().any(|s| s.attempt > 0),
        "no shard carries a retry generation"
    );
    assert!(
        windows_bit_identical(&dist.matrices, &single.matrices),
        "replanned run differs from the single-process engine"
    );
    assert_eq!(dist.stats, single.stats, "replanned stats do not sum");
}

#[test]
fn streaming_replay_through_processes_matches_single_process() {
    let (data, query, cfg) = workload();
    let mode = WorkerMode::StreamingReplay {
        initial_cols: 160,
        chunk_cols: 60,
    };
    let single = coord::run_single_process(mode, &cfg, &data, query).unwrap();
    let dist = coord::run(&coordinator(4, mode), &cfg, &data, query).unwrap();
    assert!(
        !single.matrices.is_empty(),
        "streaming replay emitted no windows"
    );
    assert!(windows_bit_identical(&dist.matrices, &single.matrices));
    assert_eq!(dist.stats, single.stats);
}

#[test]
fn fewer_workers_than_shards_queue_and_complete() {
    let (data, query, cfg) = workload();
    let single = coord::run_single_process(WorkerMode::Batch, &cfg, &data, query).unwrap();
    let mut ccfg = coordinator(8, WorkerMode::Batch);
    ccfg.n_workers = 3;
    let dist = coord::run(&ccfg, &cfg, &data, query).unwrap();
    assert_eq!(dist.coord.n_workers, 3);
    assert_eq!(dist.shards.len(), 8);
    assert!(windows_bit_identical(&dist.matrices, &single.matrices));
    assert_eq!(dist.stats, single.stats);
}
