//! Deterministic fault injection for the distributed tier.
//!
//! A [`FaultPlan`] is a *seeded schedule* of link faults: for every link
//! index (initial workers first, late joiners continuing the count) it
//! derives a [`LinkFaults`] — kill the connection after the Nth frame,
//! delay a frame, duplicate a frame, or truncate a frame mid-write and
//! sever. [`ChaosTransport`] wraps any [`Transport`] and applies the
//! schedule to the coordinator's outgoing frames; the worker side needs
//! no cooperation, because every injected fault manifests there as an
//! ordinary broken link (which the reconnect loop in `dangoron-shard
//! --reconnect` then heals as a *new* member).
//!
//! The point of seeding is CI: `dangoron-coord --chaos-seed S` replays
//! the exact same storm every run, and the determinism contract — any
//! disjoint rank cover concatenates to the single-process result — means
//! the merged matrices must come out bit-identical *no matter what the
//! storm did*. A chaos run that produces a different matrix is a real
//! bug, never flake.
//!
//! Everything here is hand-rolled (xorshift64*, splitmix64) because the
//! build environment has no `rand`.

use crate::transport::Transport;
use bytes::frame;
use std::io::{self, Read};
use std::time::Duration;

/// A tiny xorshift64* PRNG — deterministic, seedable, dependency-free.
/// Used for fault schedules and for the worker's reconnect jitter.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeds the generator; a zero seed is remapped (xorshift has a zero
    /// fixed point).
    pub fn new(seed: u64) -> Self {
        Self(splitmix64(seed).max(1))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[lo, hi)`; `hi` must exceed `lo`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo);
        lo + self.next_u64() % (hi - lo)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// SplitMix64 — the standard seed scrambler, so nearby seeds and link
/// indices produce unrelated streams.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The fault schedule for one link. Frame numbers count the
/// coordinator's *sends* on that link from 1 (frame 1 is the `Load`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkFaults {
    /// Sever the link immediately after frame N is delivered — the
    /// worker got it, but every later frame (and the worker's replies)
    /// hit a dead connection. The coordinator discovers the death
    /// through its reader (EOF), not the write.
    pub kill_after_frames: Option<u32>,
    /// Sleep this many milliseconds before sending frame N.
    pub delay_frame: Option<(u32, u64)>,
    /// Send frame N twice (duplicate-delivery; a duplicated `Assign`
    /// produces a second `Result` the coordinator must discard as stale).
    pub dup_frame: Option<u32>,
    /// Write only the first half of frame N's bytes, then sever — a
    /// mid-write crash. The receiver sees a truncated frame and treats
    /// the link as damaged.
    pub truncate_frame: Option<u32>,
}

impl LinkFaults {
    /// True when this link has no faults scheduled.
    pub fn is_clean(&self) -> bool {
        *self == Self::default()
    }
}

/// A deterministic, per-link fault schedule for a whole run.
#[derive(Debug, Clone)]
pub enum FaultPlan {
    /// Derive each link's faults from `seed ⊕ link` — the CI storm mode.
    Seeded(u64),
    /// Exactly these faults, by link index (links past the end of the
    /// list run clean) — the unit-test mode.
    Explicit(Vec<LinkFaults>),
}

impl FaultPlan {
    /// The seeded storm plan.
    pub fn from_seed(seed: u64) -> Self {
        Self::Seeded(seed)
    }

    /// The faults for link `link` (0-based, in admission order).
    ///
    /// Seeded schedules keep every kill/truncate at frame ≥ 2, so the
    /// `Load` frame (frame 1) always lands and registration completes —
    /// a link that dies before it is a connect failure, not a chaos
    /// event worth testing here (the accept path already covers it).
    pub fn for_link(&self, link: usize) -> LinkFaults {
        match self {
            Self::Explicit(list) => list.get(link).cloned().unwrap_or_default(),
            Self::Seeded(seed) => {
                let mut rng = Rng::new(seed ^ splitmix64(link as u64 + 1));
                let mut faults = LinkFaults::default();
                if rng.chance(0.4) {
                    faults.kill_after_frames = Some(rng.range_u64(2, 10) as u32);
                } else if rng.chance(0.25) {
                    faults.truncate_frame = Some(rng.range_u64(2, 8) as u32);
                }
                if rng.chance(0.4) {
                    faults.delay_frame = Some((rng.range_u64(1, 6) as u32, rng.range_u64(40, 240)));
                }
                if rng.chance(0.3) {
                    faults.dup_frame = Some(rng.range_u64(2, 8) as u32);
                }
                faults
            }
        }
    }
}

/// A [`Transport`] decorator applying one link's [`LinkFaults`] to the
/// coordinator's outgoing frames. Reads are untouched — every injected
/// fault surfaces on the read side as a normal EOF/damage event, which
/// is exactly the path the coordinator's fault handling must survive.
pub struct ChaosTransport {
    inner: Box<dyn Transport>,
    faults: LinkFaults,
    sent: u32,
    dead: bool,
}

impl ChaosTransport {
    /// Wraps `inner` with `faults`.
    pub fn new(inner: Box<dyn Transport>, faults: LinkFaults) -> Self {
        Self {
            inner,
            faults,
            sent: 0,
            dead: false,
        }
    }
}

impl Transport for ChaosTransport {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "chaos: link already severed",
            ));
        }
        self.sent += 1;
        let n = self.sent;
        if let Some((at, ms)) = self.faults.delay_frame {
            if at == n {
                std::thread::sleep(Duration::from_millis(ms));
            }
        }
        if self.faults.truncate_frame == Some(n) {
            let framed = frame::encode(payload);
            let half = (framed.len() / 2).max(1);
            let _ = self.inner.send_raw(&framed[..half]);
            self.inner.kill();
            self.dead = true;
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "chaos: frame truncated mid-write",
            ));
        }
        self.inner.send(payload)?;
        if self.faults.dup_frame == Some(n) {
            self.inner.send(payload)?;
        }
        if self.faults.kill_after_frames == Some(n) {
            // The frame above was delivered; the link dies *after* it, so
            // the coordinator learns of the death from its reader thread
            // (EOF), the realistic mid-run connection drop.
            self.inner.kill();
            self.dead = true;
        }
        Ok(())
    }

    fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.inner.send_raw(bytes)
    }

    fn take_reader(&mut self) -> Option<Box<dyn Read + Send>> {
        self.inner.take_reader()
    }

    fn handshake_complete(&mut self) {
        self.inner.handshake_complete();
    }

    fn close_send(&mut self) {
        self.inner.close_send();
    }

    fn kill(&mut self) {
        self.inner.kill();
    }

    fn reap(&mut self) {
        self.inner.reap();
    }

    fn kind(&self) -> &'static str {
        self.inner.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn seeded_plans_are_deterministic_and_spare_the_load_frame() {
        let plan = FaultPlan::from_seed(42);
        for link in 0..64 {
            let a = plan.for_link(link);
            let b = plan.for_link(link);
            assert_eq!(a, b, "link {link}: schedule not deterministic");
            if let Some(k) = a.kill_after_frames {
                assert!(k >= 2, "link {link}: kill at frame {k} < 2");
            }
            if let Some(t) = a.truncate_frame {
                assert!(t >= 2, "link {link}: truncate at frame {t} < 2");
            }
        }
        // Different seeds disagree somewhere in the first few links.
        let other = FaultPlan::from_seed(43);
        assert!(
            (0..16).any(|l| plan.for_link(l) != other.for_link(l)),
            "seeds 42 and 43 produced identical schedules"
        );
        // A seeded storm actually schedules faults.
        assert!(
            (0..16).any(|l| !plan.for_link(l).is_clean()),
            "seed 42 scheduled no faults at all"
        );
    }

    #[test]
    fn explicit_plans_index_by_link_and_default_clean() {
        let plan = FaultPlan::Explicit(vec![LinkFaults {
            kill_after_frames: Some(3),
            ..Default::default()
        }]);
        assert_eq!(plan.for_link(0).kill_after_frames, Some(3));
        assert!(plan.for_link(1).is_clean());
        assert!(plan.for_link(99).is_clean());
    }

    /// A mock transport recording framed/raw writes and kills.
    #[derive(Default)]
    struct Log {
        frames: Vec<Vec<u8>>,
        raw: Vec<Vec<u8>>,
        killed: bool,
    }

    struct MockTransport(Arc<Mutex<Log>>);

    impl Transport for MockTransport {
        fn send(&mut self, payload: &[u8]) -> io::Result<()> {
            self.0.lock().unwrap().frames.push(payload.to_vec());
            Ok(())
        }
        fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
            self.0.lock().unwrap().raw.push(bytes.to_vec());
            Ok(())
        }
        fn take_reader(&mut self) -> Option<Box<dyn Read + Send>> {
            None
        }
        fn close_send(&mut self) {}
        fn kill(&mut self) {
            self.0.lock().unwrap().killed = true;
        }
        fn reap(&mut self) {}
        fn kind(&self) -> &'static str {
            "mock"
        }
    }

    #[test]
    fn kill_after_frames_delivers_then_severs() {
        let log = Arc::new(Mutex::new(Log::default()));
        let mut t = ChaosTransport::new(
            Box::new(MockTransport(log.clone())),
            LinkFaults {
                kill_after_frames: Some(2),
                ..Default::default()
            },
        );
        t.send(b"one").unwrap();
        t.send(b"two").unwrap(); // delivered, then the link dies
        assert!(t.send(b"three").is_err());
        let log = log.lock().unwrap();
        assert_eq!(log.frames, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(log.killed);
    }

    #[test]
    fn dup_frame_sends_twice_and_truncate_writes_half_raw() {
        let log = Arc::new(Mutex::new(Log::default()));
        let mut t = ChaosTransport::new(
            Box::new(MockTransport(log.clone())),
            LinkFaults {
                dup_frame: Some(1),
                truncate_frame: Some(2),
                ..Default::default()
            },
        );
        t.send(b"dup-me").unwrap();
        assert!(t.send(b"truncate-me").is_err());
        let log = log.lock().unwrap();
        assert_eq!(log.frames, vec![b"dup-me".to_vec(), b"dup-me".to_vec()]);
        let full = frame::encode(b"truncate-me");
        assert_eq!(log.raw, vec![full[..full.len() / 2].to_vec()]);
        assert!(log.killed);
    }

    #[test]
    fn rng_range_and_chance_are_sane() {
        let mut rng = Rng::new(7);
        for _ in 0..1000 {
            let v = rng.range_u64(3, 9);
            assert!((3..9).contains(&v));
        }
        let mut rng = Rng::new(0); // zero seed must not wedge
        let heads = (0..1000).filter(|_| rng.chance(0.5)).count();
        assert!((300..700).contains(&heads), "{heads} heads of 1000");
    }
}
