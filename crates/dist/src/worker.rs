//! The shard worker: the engine-driving side of the `dangoron-shard`
//! process.
//!
//! A worker is a frame loop over its stdio pipes: read an
//! [`Assignment`], execute the shard (batch
//! `prepare_shard` + `run_range`, or a sharded streaming replay), write
//! one [`ShardResult`] frame back, repeat until the
//! coordinator closes the pipe. Engine-side failures are reported as
//! `Error` frames (the worker survives and can take re-planned shards);
//! transport failures end the process.

use crate::merge::flatten_windows;
use crate::proto::{self, Assignment, Message, ShardResult, WorkerMode};
use bytes::frame;
use dangoron::{Dangoron, StreamingDangoron};
use std::io::{self, Read, Write};
use std::time::Instant;

/// When this environment variable is set (to anything non-empty), the
/// worker aborts with an I/O error upon receiving its first assignment —
/// the deterministic crash-injection hook the coordinator's replan path is
/// tested with.
pub const FAIL_ENV: &str = "DANGORON_SHARD_FAIL";

/// Serves assignments from `input`, writing results to `output`, until a
/// clean end-of-stream. This is the whole body of the `dangoron-shard`
/// binary, kept here so the loop is unit-testable over in-memory pipes.
pub fn serve(input: &mut impl Read, output: &mut impl Write) -> io::Result<()> {
    let inject_fail = std::env::var(FAIL_ENV).is_ok_and(|v| !v.is_empty());
    while let Some(payload) = frame::read_from(input, proto::MAX_FRAME)? {
        let msg =
            proto::decode(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let assignment = match msg {
            Message::Assign(a) => a,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("worker expected an assignment, got {other:?}"),
                ))
            }
        };
        if inject_fail {
            return Err(io::Error::other(
                "injected worker failure (DANGORON_SHARD_FAIL)",
            ));
        }
        let reply = match execute(&assignment) {
            Ok(result) => Message::Result(result),
            Err(e) => Message::Error(e),
        };
        frame::write_to(output, &proto::encode(&reply))?;
    }
    Ok(())
}

/// Executes one assignment, producing the shard's sorted edge buffer and
/// counters.
pub fn execute(a: &Assignment) -> Result<ShardResult, String> {
    match a.mode {
        WorkerMode::Batch => execute_batch(a),
        WorkerMode::StreamingReplay {
            initial_cols,
            chunk_cols,
        } => execute_streaming(a, initial_cols, chunk_cols),
    }
}

fn execute_batch(a: &Assignment) -> Result<ShardResult, String> {
    let engine = Dangoron::new(a.config.clone()).map_err(|e| format!("bad config: {e:?}"))?;
    let t = Instant::now();
    let prep = engine
        .prepare_shard(&a.data, a.query, a.ranks.clone())
        .map_err(|e| format!("prepare failed: {e:?}"))?;
    let prepare_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let result = engine.run_range(&prep, a.ranks.clone());
    let query_s = t.elapsed().as_secs_f64();
    Ok(ShardResult {
        shard_id: a.shard_id,
        ranks: a.ranks.clone(),
        prepare_s,
        query_s,
        stats: result.stats.clone(),
        edges: flatten_windows(&result.matrices),
    })
}

fn execute_streaming(
    a: &Assignment,
    initial_cols: usize,
    chunk_cols: usize,
) -> Result<ShardResult, String> {
    if chunk_cols == 0 {
        return Err("streaming replay needs a positive chunk width".into());
    }
    let total = a.data.len();
    let initial_cols = initial_cols.min(total);
    let initial = a
        .data
        .slice_columns(0, initial_cols)
        .map_err(|e| format!("bad initial slice: {e:?}"))?;
    let t = Instant::now();
    let mut session = StreamingDangoron::new_sharded(
        initial,
        a.query.window,
        a.query.step,
        a.query.threshold,
        a.config.clone(),
        a.ranks.clone(),
    )
    .map_err(|e| format!("session open failed: {e:?}"))?;
    let prepare_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let mut windows = session
        .drain_completed()
        .map_err(|e| format!("drain failed: {e:?}"))?;
    let mut at = initial_cols;
    while at < total {
        let next = (at + chunk_cols).min(total);
        let chunk = a
            .data
            .slice_columns(at, next)
            .map_err(|e| format!("bad chunk slice: {e:?}"))?;
        windows.extend(
            session
                .append(&chunk)
                .map_err(|e| format!("append failed: {e:?}"))?,
        );
        at = next;
    }
    let query_s = t.elapsed().as_secs_f64();

    // Drains ascend in window index and each matrix is (i, j)-sorted, so
    // the flattened buffer is already in wire order.
    let total_edges: usize = windows.iter().map(|w| w.matrix.n_edges()).sum();
    let mut edges = Vec::with_capacity(total_edges);
    for cw in &windows {
        edges.extend(cw.matrix.edges().iter().map(|&e| (cw.index as u32, e)));
    }
    Ok(ShardResult {
        shard_id: a.shard_id,
        ranks: a.ranks.clone(),
        prepare_s,
        query_s,
        stats: session.stats().clone(),
        edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dangoron::{BoundMode, DangoronConfig};
    use sketch::SlidingQuery;
    use tsdata::generators;

    fn assignment(mode: WorkerMode, ranks: std::ops::Range<usize>) -> Assignment {
        Assignment {
            shard_id: 1,
            ranks,
            mode,
            config: DangoronConfig {
                basic_window: 20,
                bound: BoundMode::Exhaustive,
                ..Default::default()
            },
            query: SlidingQuery {
                start: 0,
                end: 300,
                window: 60,
                step: 20,
                threshold: 0.7,
            },
            data: generators::clustered_matrix(8, 300, 2, 0.5, 17).unwrap(),
        }
    }

    #[test]
    fn serve_round_trips_batch_and_streaming_over_in_memory_pipes() {
        let mut input = Vec::new();
        for msg in [
            Message::Assign(assignment(WorkerMode::Batch, 0..28)),
            Message::Assign(assignment(
                WorkerMode::StreamingReplay {
                    initial_cols: 120,
                    chunk_cols: 60,
                },
                5..20,
            )),
        ] {
            input.extend(frame::encode(&proto::encode(&msg)));
        }
        let mut reader: &[u8] = &input;
        let mut output = Vec::new();
        serve(&mut reader, &mut output).unwrap();

        let mut stream: &[u8] = &output;
        let mut results = Vec::new();
        while let Some(payload) = frame::read_from(&mut stream, proto::MAX_FRAME).unwrap() {
            match proto::decode(&payload).unwrap() {
                Message::Result(r) => results.push(r),
                other => panic!("unexpected reply {other:?}"),
            }
        }
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].ranks, 0..28);
        assert_eq!(results[0].stats.n_pairs, 28);
        assert!(results[0]
            .edges
            .windows(2)
            .all(|w| { (w[0].0, w[0].1.i, w[0].1.j) < (w[1].0, w[1].1.i, w[1].1.j) }));
        assert_eq!(results[1].ranks, 5..20);
        assert_eq!(results[1].stats.n_pairs % 15, 0, "15 pairs per drain");
    }

    #[test]
    fn engine_errors_become_error_frames_not_transport_failures() {
        // An out-of-triangle shard interval must come back as an Error
        // message and leave the worker alive for the next assignment.
        let bad = Message::Assign(assignment(WorkerMode::Batch, 0..999));
        let good = Message::Assign(assignment(WorkerMode::Batch, 0..28));
        let mut input = Vec::new();
        input.extend(frame::encode(&proto::encode(&bad)));
        input.extend(frame::encode(&proto::encode(&good)));
        let mut reader: &[u8] = &input;
        let mut output = Vec::new();
        serve(&mut reader, &mut output).unwrap();

        let mut stream: &[u8] = &output;
        let first = proto::decode(
            &frame::read_from(&mut stream, proto::MAX_FRAME)
                .unwrap()
                .unwrap(),
        )
        .unwrap();
        assert!(matches!(first, Message::Error(_)), "{first:?}");
        let second = proto::decode(
            &frame::read_from(&mut stream, proto::MAX_FRAME)
                .unwrap()
                .unwrap(),
        )
        .unwrap();
        assert!(matches!(second, Message::Result(_)), "{second:?}");
    }

    #[test]
    fn batch_worker_output_matches_direct_engine_run() {
        let a = assignment(WorkerMode::Batch, 3..17);
        let r = execute(&a).unwrap();
        let engine = Dangoron::new(a.config.clone()).unwrap();
        let prep = engine.prepare_shard(&a.data, a.query, 3..17).unwrap();
        let direct = engine.run_range(&prep, 3..17);
        assert_eq!(r.stats, direct.stats);
        assert_eq!(r.edges, flatten_windows(&direct.matrices));
    }
}
