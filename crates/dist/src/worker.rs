//! The shard worker: the engine-driving side of the `dangoron-shard`
//! process.
//!
//! A worker is a frame loop over any byte link (stdio pipes when spawned
//! by the coordinator, a TCP socket when started with `--connect`): write
//! one [`Hello`] handshake frame, then serve — a [`Message::Load`] frame
//! stores the workload matrix for the rest of the link, an
//! [`Assignment`] executes the shard (batch `prepare_shard` +
//! `run_range`, or a sharded streaming replay) against the loaded matrix
//! and writes one [`ShardResult`] frame back — until the coordinator
//! closes the link. Engine-side failures are reported as `Error` frames
//! (the worker survives and can take re-planned shards); transport
//! failures and protocol damage end the process.

use crate::merge::flatten_windows;
use crate::proto::{self, Assignment, Hello, Message, ShardResult, WorkerMode};
use bytes::frame;
use dangoron::{Dangoron, StreamingDangoron};
use std::io::{self, Read, Write};
use std::time::Instant;
use tsdata::TimeSeriesMatrix;

/// When this environment variable is set (to anything non-empty), the
/// worker aborts with an I/O error upon receiving its first assignment —
/// the deterministic crash-injection hook the coordinator's replan path is
/// tested with, in both the spawn and the TCP mode (where the operator
/// sets it on the worker process).
pub const FAIL_ENV: &str = "DANGORON_SHARD_FAIL";

/// When set to a millisecond count, the worker sleeps that long before
/// answering each assignment — the deterministic hook for the
/// coordinator's timeout/kill path.
pub const DELAY_ENV: &str = "DANGORON_SHARD_DELAY_MS";

/// When set (non-empty), the worker writes every `Result` frame **twice**
/// — the deterministic stand-in for the race where a worker's final frame
/// is already in flight when the coordinator gives up on it. The
/// duplicate must be identified as stale and discarded, never
/// double-counted.
pub const DUP_ENV: &str = "DANGORON_SHARD_DUP_RESULT";

fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| !v.is_empty())
}

/// Serves assignments from `input`, writing results to `output`, until a
/// clean end-of-stream. This is the whole body of the `dangoron-shard`
/// binary (for both the pipe and TCP transports), kept here so the loop
/// is unit-testable over in-memory pipes.
pub fn serve(input: &mut impl Read, output: &mut impl Write) -> io::Result<()> {
    let inject_fail = env_flag(FAIL_ENV);
    let dup_result = env_flag(DUP_ENV);
    let delay_ms: u64 = std::env::var(DELAY_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);

    frame::write_to(output, &proto::encode(&Message::Hello(Hello::local())))?;
    let mut loaded: Option<TimeSeriesMatrix> = None;
    while let Some(payload) = frame::read_from(input, proto::MAX_FRAME)? {
        let msg =
            proto::decode(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let assignment = match msg {
            Message::Load(data) => {
                loaded = Some(data);
                continue;
            }
            Message::Assign(a) => a,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("worker expected Load or Assign, got {other:?}"),
                ))
            }
        };
        if inject_fail {
            return Err(io::Error::other(
                "injected worker failure (DANGORON_SHARD_FAIL)",
            ));
        }
        if delay_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(delay_ms));
        }
        let reply = match &loaded {
            Some(data) => match execute(&assignment, data) {
                Ok(result) => Message::Result(result),
                Err(e) => Message::Error(assignment.shard_id, e),
            },
            None => Message::Error(
                assignment.shard_id,
                "assignment received before any Load frame".to_string(),
            ),
        };
        let encoded = proto::encode(&reply);
        frame::write_to(output, &encoded)?;
        if dup_result && matches!(reply, Message::Result(_)) {
            frame::write_to(output, &encoded)?;
        }
    }
    Ok(())
}

/// Executes one assignment against the loaded matrix, producing the
/// shard's sorted edge buffer and counters.
pub fn execute(a: &Assignment, data: &TimeSeriesMatrix) -> Result<ShardResult, String> {
    match a.mode {
        WorkerMode::Batch => execute_batch(a, data),
        WorkerMode::StreamingReplay {
            initial_cols,
            chunk_cols,
        } => execute_streaming(a, data, initial_cols, chunk_cols),
    }
}

fn execute_batch(a: &Assignment, data: &TimeSeriesMatrix) -> Result<ShardResult, String> {
    let engine = Dangoron::new(a.config.clone()).map_err(|e| format!("bad config: {e:?}"))?;
    let t = Instant::now();
    let prep = engine
        .prepare_shard(data, a.query, a.ranks.clone())
        .map_err(|e| format!("prepare failed: {e:?}"))?;
    let prepare_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let result = engine.run_range(&prep, a.ranks.clone());
    let query_s = t.elapsed().as_secs_f64();
    Ok(ShardResult {
        shard_id: a.shard_id,
        ranks: a.ranks.clone(),
        prepare_s,
        query_s,
        stats: result.stats.clone(),
        edges: flatten_windows(&result.matrices),
    })
}

fn execute_streaming(
    a: &Assignment,
    data: &TimeSeriesMatrix,
    initial_cols: usize,
    chunk_cols: usize,
) -> Result<ShardResult, String> {
    if chunk_cols == 0 {
        return Err("streaming replay needs a positive chunk width".into());
    }
    let total = data.len();
    let initial_cols = initial_cols.min(total);
    let initial = data
        .slice_columns(0, initial_cols)
        .map_err(|e| format!("bad initial slice: {e:?}"))?;
    let t = Instant::now();
    let mut session = StreamingDangoron::new_sharded(
        initial,
        a.query.window,
        a.query.step,
        a.query.threshold,
        a.config.clone(),
        a.ranks.clone(),
    )
    .map_err(|e| format!("session open failed: {e:?}"))?;
    let prepare_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let mut windows = session
        .drain_completed()
        .map_err(|e| format!("drain failed: {e:?}"))?;
    let mut at = initial_cols;
    while at < total {
        let next = (at + chunk_cols).min(total);
        let chunk = data
            .slice_columns(at, next)
            .map_err(|e| format!("bad chunk slice: {e:?}"))?;
        windows.extend(
            session
                .append(&chunk)
                .map_err(|e| format!("append failed: {e:?}"))?,
        );
        at = next;
    }
    let query_s = t.elapsed().as_secs_f64();

    // Drains ascend in window index and each matrix is (i, j)-sorted, so
    // the flattened buffer is already in wire order.
    let total_edges: usize = windows.iter().map(|w| w.matrix.n_edges()).sum();
    let mut edges = Vec::with_capacity(total_edges);
    for cw in &windows {
        edges.extend(cw.matrix.edges().iter().map(|&e| (cw.index as u32, e)));
    }
    Ok(ShardResult {
        shard_id: a.shard_id,
        ranks: a.ranks.clone(),
        prepare_s,
        query_s,
        stats: session.stats().clone(),
        edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dangoron::{BoundMode, DangoronConfig};
    use sketch::SlidingQuery;
    use tsdata::generators;

    fn data() -> TimeSeriesMatrix {
        generators::clustered_matrix(8, 300, 2, 0.5, 17).unwrap()
    }

    fn assignment(mode: WorkerMode, ranks: std::ops::Range<usize>) -> Assignment {
        Assignment {
            shard_id: 1,
            ranks,
            mode,
            config: DangoronConfig {
                basic_window: 20,
                bound: BoundMode::Exhaustive,
                ..Default::default()
            },
            query: SlidingQuery {
                start: 0,
                end: 300,
                window: 60,
                step: 20,
                threshold: 0.7,
            },
        }
    }

    fn replies(output: &[u8]) -> Vec<Message> {
        let mut stream: &[u8] = output;
        let mut msgs = Vec::new();
        while let Some(payload) = frame::read_from(&mut stream, proto::MAX_FRAME).unwrap() {
            msgs.push(proto::decode(&payload).unwrap());
        }
        msgs
    }

    #[test]
    fn serve_round_trips_batch_and_streaming_over_in_memory_pipes() {
        let mut input = Vec::new();
        for msg in [
            Message::Load(data()),
            Message::Assign(assignment(WorkerMode::Batch, 0..28)),
            Message::Assign(assignment(
                WorkerMode::StreamingReplay {
                    initial_cols: 120,
                    chunk_cols: 60,
                },
                5..20,
            )),
        ] {
            input.extend(frame::encode(&proto::encode(&msg)));
        }
        let mut reader: &[u8] = &input;
        let mut output = Vec::new();
        serve(&mut reader, &mut output).unwrap();

        let msgs = replies(&output);
        assert_eq!(msgs.len(), 3, "hello + two results");
        match &msgs[0] {
            Message::Hello(h) => assert_eq!(*h, Hello::local()),
            other => panic!("first frame must be the handshake, got {other:?}"),
        }
        let results: Vec<&ShardResult> = msgs
            .iter()
            .filter_map(|m| match m {
                Message::Result(r) => Some(r),
                _ => None,
            })
            .collect();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].ranks, 0..28);
        assert_eq!(results[0].stats.n_pairs, 28);
        assert!(results[0]
            .edges
            .windows(2)
            .all(|w| { (w[0].0, w[0].1.i, w[0].1.j) < (w[1].0, w[1].1.i, w[1].1.j) }));
        assert_eq!(results[1].ranks, 5..20);
        assert_eq!(results[1].stats.n_pairs % 15, 0, "15 pairs per drain");
    }

    #[test]
    fn engine_errors_become_error_frames_not_transport_failures() {
        // An out-of-triangle shard interval must come back as an Error
        // message and leave the worker alive for the next assignment.
        let mut input = Vec::new();
        for msg in [
            Message::Load(data()),
            Message::Assign(assignment(WorkerMode::Batch, 0..999)),
            Message::Assign(assignment(WorkerMode::Batch, 0..28)),
        ] {
            input.extend(frame::encode(&proto::encode(&msg)));
        }
        let mut reader: &[u8] = &input;
        let mut output = Vec::new();
        serve(&mut reader, &mut output).unwrap();

        let msgs = replies(&output);
        assert_eq!(msgs.len(), 3);
        assert!(matches!(msgs[0], Message::Hello(_)));
        match &msgs[1] {
            Message::Error(id, _) => assert_eq!(*id, 1, "error echoes the assignment id"),
            other => panic!("expected an Error frame, got {other:?}"),
        }
        assert!(matches!(msgs[2], Message::Result(_)), "{:?}", msgs[2]);
    }

    #[test]
    fn assignment_before_load_is_an_error_frame() {
        let mut input = Vec::new();
        input.extend(frame::encode(&proto::encode(&Message::Assign(assignment(
            WorkerMode::Batch,
            0..28,
        )))));
        let mut reader: &[u8] = &input;
        let mut output = Vec::new();
        serve(&mut reader, &mut output).unwrap();
        let msgs = replies(&output);
        assert_eq!(msgs.len(), 2);
        match &msgs[1] {
            Message::Error(_, text) => assert!(text.contains("Load"), "{text}"),
            other => panic!("expected an Error frame, got {other:?}"),
        }
    }

    #[test]
    fn batch_worker_output_matches_direct_engine_run() {
        let d = data();
        let a = assignment(WorkerMode::Batch, 3..17);
        let r = execute(&a, &d).unwrap();
        let engine = Dangoron::new(a.config.clone()).unwrap();
        let prep = engine.prepare_shard(&d, a.query, 3..17).unwrap();
        let direct = engine.run_range(&prep, 3..17);
        assert_eq!(r.stats, direct.stats);
        assert_eq!(r.edges, flatten_windows(&direct.matrices));
    }
}
