//! The shard worker: the engine-driving side of the `dangoron-shard`
//! process.
//!
//! A worker is a frame loop over any byte link (stdio pipes when spawned
//! by the coordinator, a TCP socket when started with `--connect`): write
//! one [`Hello`] handshake frame, then serve — a [`Message::Load`] frame
//! stores the workload matrix for the rest of the link, an
//! [`Assignment`] executes the shard (batch `prepare_shard` +
//! `run_range`, or a sharded streaming replay) against the loaded matrix
//! and writes one [`ShardResult`] frame back — until the coordinator
//! closes the link. Engine-side failures are reported as `Error` frames
//! (the worker survives and can take re-planned shards); transport
//! failures and protocol damage end the serve call (the binary may then
//! re-dial with `--reconnect`).
//!
//! Since protocol v3 the worker is **two threads**: a reader that
//! answers `Ping` frames immediately and latches `Steal` requests, and
//! an executor that runs assignments in rank *chunks*, emitting a
//! [`Message::Progress`] frontier after each chunk. Between chunks the
//! executor answers a pending steal request with a binding
//! [`Message::StealGrant`]: it picks the split point itself (half the
//! remaining interval), so the boundary can never race the chunk it is
//! executing — the granted tail is work it provably has not started.
//! Setting [`PROTO_ENV`]`=2` forces the old single-threaded v2 loop
//! (no heartbeat frames), which is how the v2-compatibility path is
//! exercised against a v3 coordinator.

use crate::merge::flatten_windows;
use crate::proto::{self, Assignment, Hello, Message, ShardResult, WorkerMode};
use bytes::frame;
use dangoron::{Dangoron, PruningStats, StreamingDangoron};
use sketch::output::Edge;
use std::io::{self, Read, Write};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};
use tsdata::TimeSeriesMatrix;

/// Per-chunk output of a controlled execution: the rank interval a chunk
/// covered and its window-major edge buffer, later re-interleaved by
/// [`window_major_concat`] into the single-shot wire layout.
type EdgeSegments = Vec<(Range<usize>, Vec<(u32, Edge)>)>;

/// When this environment variable is set (to anything non-empty), the
/// worker aborts with an I/O error upon receiving its first assignment —
/// the deterministic crash-injection hook the coordinator's replan path is
/// tested with, in both the spawn and the TCP mode (where the operator
/// sets it on the worker process).
pub const FAIL_ENV: &str = "DANGORON_SHARD_FAIL";

/// When set to a millisecond count, the worker sleeps that long before
/// *starting* each assignment — no progress flows during the sleep, so
/// this is the deterministic hook for the coordinator's hung-worker
/// (timeout/kill) path. For a worker that is slow but demonstrably alive,
/// use [`CHUNK_DELAY_ENV`] instead.
pub const DELAY_ENV: &str = "DANGORON_SHARD_DELAY_MS";

/// When set (non-empty), the worker writes every `Result` frame **twice**
/// — the deterministic stand-in for the race where a worker's final frame
/// is already in flight when the coordinator gives up on it. The
/// duplicate must be identified as stale and discarded, never
/// double-counted.
pub const DUP_ENV: &str = "DANGORON_SHARD_DUP_RESULT";

/// When set to a millisecond count, the executor sleeps that long before
/// **every rank chunk** — a straggler that keeps reporting progress. The
/// coordinator must *not* kill it (it is slow but alive), and its
/// remaining interval is what the work-stealing path carves up.
pub const CHUNK_DELAY_ENV: &str = "DANGORON_SHARD_CHUNK_DELAY_MS";

/// Overrides the batch executor's chunk width in ranks (default: an
/// eighth of the assignment, at least one rank) — tests force small
/// chunks so progress and steal boundaries appear on small workloads.
pub const CHUNK_RANKS_ENV: &str = "DANGORON_SHARD_CHUNK_RANKS";

/// When set to `2`, the worker speaks protocol v2: the single-threaded
/// serve loop, a version-2 `Hello` without [`proto::CAP_HEARTBEAT`], no
/// progress or steal frames — the compatibility hook proving a v3
/// coordinator still drives v2 workers.
pub const PROTO_ENV: &str = "DANGORON_SHARD_PROTO";

fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| !v.is_empty())
}

fn env_u64(name: &str) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// The reader thread's lever on a running execution: latches a steal
/// request for the executor to answer between chunks.
#[derive(Debug, Default)]
pub struct ExecControl {
    steal: AtomicBool,
}

impl ExecControl {
    /// Latches a steal request (reader side).
    pub fn request_steal(&self) {
        self.steal.store(true, Ordering::Release);
    }

    /// Consumes a pending steal request (executor side).
    fn take_steal(&self) -> bool {
        self.steal.swap(false, Ordering::AcqRel)
    }
}

/// Serves assignments from `input`, writing results to `output`, until a
/// clean end-of-stream. This is the whole body of the `dangoron-shard`
/// binary (for both the pipe and TCP transports), kept here so the loop
/// is unit-testable over in-memory pipes.
pub fn serve<R: Read, W: Write + Send>(input: R, output: W) -> io::Result<()> {
    if std::env::var(PROTO_ENV).ok().as_deref() == Some("2") {
        serve_v2(input, output)
    } else {
        serve_v3(input, output)
    }
}

/// The protocol-v2 serve loop: single-threaded, one frame in → one frame
/// out, no heartbeat capability. Kept verbatim so [`PROTO_ENV`]`=2`
/// exercises the real legacy behaviour against a v3 coordinator.
fn serve_v2<R: Read, W: Write>(mut input: R, mut output: W) -> io::Result<()> {
    let inject_fail = env_flag(FAIL_ENV);
    let dup_result = env_flag(DUP_ENV);
    let delay_ms = env_u64(DELAY_ENV);

    let hello = Hello {
        version: 2,
        caps: proto::CAP_BATCH | proto::CAP_STREAMING,
    };
    frame::write_to(&mut output, &proto::encode(&Message::Hello(hello)))?;
    let mut loaded: Option<TimeSeriesMatrix> = None;
    while let Some(payload) = frame::read_from(&mut input, proto::MAX_FRAME)? {
        let msg =
            proto::decode(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let assignment = match msg {
            Message::Load(data) => {
                loaded = Some(data);
                continue;
            }
            Message::Assign(a) => a,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("worker expected Load or Assign, got {other:?}"),
                ))
            }
        };
        if inject_fail {
            return Err(io::Error::other(
                "injected worker failure (DANGORON_SHARD_FAIL)",
            ));
        }
        if delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(delay_ms));
        }
        let reply = match &loaded {
            // lint:allow(wire-taint-allocation) -- assignment fields are
            // range-validated inside execute (slice_columns/prepare_shard
            // reject out-of-range ranks) and its allocation sizes are
            // measured sums of produced edges, not wire-claimed counts
            Some(data) => match execute(&assignment, data) {
                Ok(result) => Message::Result(result),
                Err(e) => Message::Error(assignment.shard_id, e),
            },
            None => Message::Error(
                assignment.shard_id,
                "assignment received before any Load frame".to_string(),
            ),
        };
        let encoded = proto::encode(&reply);
        frame::write_to(&mut output, &encoded)?;
        if dup_result && matches!(reply, Message::Result(_)) {
            frame::write_to(&mut output, &encoded)?;
        }
    }
    Ok(())
}

/// One queued assignment on its way to the executor thread.
struct Job {
    a: Assignment,
    data: Arc<TimeSeriesMatrix>,
    ctl: Arc<ExecControl>,
}

fn write_frame<W: Write>(out: &Mutex<W>, msg: &Message) -> io::Result<()> {
    // A poisoned sink means a sibling writer panicked mid-frame; keep
    // writing anyway — the coordinator's hardened decoder treats any
    // torn frame as link damage, which is the correct failure mode.
    let mut g = out
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    frame::write_to(&mut *g, &proto::encode(msg))
}

/// The protocol-v3 serve loop: the calling thread reads frames (so
/// `Ping`s are answered and `Steal`s latched even mid-execution) and a
/// scoped executor thread runs assignments chunk by chunk, both writing
/// through one mutex-guarded sink.
fn serve_v3<R: Read, W: Write + Send>(mut input: R, output: W) -> io::Result<()> {
    let inject_fail = env_flag(FAIL_ENV);
    let dup_result = env_flag(DUP_ENV);
    let delay_ms = env_u64(DELAY_ENV);
    let chunk_delay_ms = env_u64(CHUNK_DELAY_ENV);
    let chunk_ranks = env_u64(CHUNK_RANKS_ENV) as usize;

    let out = Mutex::new(output);
    write_frame(&out, &Message::Hello(Hello::local()))?;

    std::thread::scope(|s| {
        let (tx, rx) = mpsc::channel::<Job>();
        let out_ref = &out;
        let exec = s.spawn(move || -> io::Result<()> {
            for job in rx {
                if delay_ms > 0 {
                    std::thread::sleep(Duration::from_millis(delay_ms));
                }
                let mut emit = |m: &Message| {
                    // A failed control-frame write means the link broke;
                    // the result write below surfaces the error.
                    let _ = write_frame(out_ref, m);
                };
                let reply = match execute_controlled(
                    &job.a,
                    &job.data,
                    &job.ctl,
                    chunk_ranks,
                    Duration::from_millis(chunk_delay_ms),
                    &mut emit,
                ) {
                    Ok(result) => Message::Result(result),
                    Err(e) => Message::Error(job.a.shard_id, e),
                };
                let encoded = proto::encode(&reply);
                {
                    // See write_frame on poisoning: keep writing, the
                    // peer's decoder handles torn frames.
                    let mut g = out_ref
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    frame::write_to(&mut *g, &encoded)?;
                    if dup_result && matches!(reply, Message::Result(_)) {
                        frame::write_to(&mut *g, &encoded)?;
                    }
                }
            }
            Ok(())
        });

        let mut loaded: Option<Arc<TimeSeriesMatrix>> = None;
        let mut current: Option<(u64, Arc<ExecControl>)> = None;
        let reader_res: io::Result<()> = loop {
            let payload = match frame::read_from(&mut input, proto::MAX_FRAME) {
                Ok(Some(p)) => p,
                Ok(None) => break Ok(()),
                Err(e) => break Err(e),
            };
            let msg = match proto::decode(&payload) {
                Ok(m) => m,
                Err(e) => break Err(io::Error::new(io::ErrorKind::InvalidData, e)),
            };
            match msg {
                Message::Load(data) => loaded = Some(Arc::new(data)),
                Message::Ping(seq) => {
                    if let Err(e) = write_frame(&out, &Message::Pong(seq)) {
                        break Err(e);
                    }
                }
                Message::Steal { assignment_id } => {
                    if let Some((id, ctl)) = &current {
                        if *id == assignment_id {
                            ctl.request_steal();
                        }
                    }
                    // A steal for a finished assignment is simply stale;
                    // the coordinator's Result handling already cleared it.
                }
                Message::Assign(a) => {
                    if inject_fail {
                        break Err(io::Error::other(
                            "injected worker failure (DANGORON_SHARD_FAIL)",
                        ));
                    }
                    let Some(data) = &loaded else {
                        let err = Message::Error(
                            a.shard_id,
                            "assignment received before any Load frame".to_string(),
                        );
                        if let Err(e) = write_frame(&out, &err) {
                            break Err(e);
                        }
                        continue;
                    };
                    let ctl = Arc::new(ExecControl::default());
                    current = Some((a.shard_id, ctl.clone()));
                    let job = Job {
                        a,
                        data: data.clone(),
                        ctl,
                    };
                    if tx.send(job).is_err() {
                        break Err(io::Error::other("executor thread ended early"));
                    }
                }
                other => {
                    break Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("worker received a worker-side frame: {other:?}"),
                    ))
                }
            }
        };
        drop(tx);
        let exec_res = exec
            .join()
            .unwrap_or_else(|_| Err(io::Error::other("executor thread panicked")));
        reader_res.and(exec_res)
    })
}

/// Executes one assignment against the loaded matrix, producing the
/// shard's sorted edge buffer and counters. The uncontrolled single-shot
/// path: no progress frames, no steal window — what the in-process tier
/// and the v2 loop run.
pub fn execute(a: &Assignment, data: &TimeSeriesMatrix) -> Result<ShardResult, String> {
    match a.mode {
        WorkerMode::Batch => execute_batch(a, data),
        WorkerMode::StreamingReplay {
            initial_cols,
            chunk_cols,
        } => execute_streaming_reporting(
            a,
            data,
            initial_cols,
            chunk_cols,
            &ExecControl::default(),
            &mut |_| {},
        ),
    }
}

/// Executes one assignment with a steal-control handle and a control-frame
/// sink — the v3 executor path. Batch assignments run in rank chunks
/// (progress after each, steal grants between); streaming assignments
/// report per-append progress and deny steals (their rank interval is
/// fixed at session open).
pub fn execute_controlled(
    a: &Assignment,
    data: &TimeSeriesMatrix,
    ctl: &ExecControl,
    chunk_ranks: usize,
    chunk_delay: Duration,
    emit: &mut dyn FnMut(&Message),
) -> Result<ShardResult, String> {
    match a.mode {
        WorkerMode::Batch => execute_batch_chunked(a, data, ctl, chunk_ranks, chunk_delay, emit),
        WorkerMode::StreamingReplay {
            initial_cols,
            chunk_cols,
        } => execute_streaming_reporting(a, data, initial_cols, chunk_cols, ctl, emit),
    }
}

fn execute_batch(a: &Assignment, data: &TimeSeriesMatrix) -> Result<ShardResult, String> {
    let engine = Dangoron::new(a.config.clone()).map_err(|e| format!("bad config: {e:?}"))?;
    let t = Instant::now();
    let prep = engine
        .prepare_shard(data, a.query, a.ranks.clone())
        .map_err(|e| format!("prepare failed: {e:?}"))?;
    let prepare_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let result = engine.run_range(&prep, a.ranks.clone());
    let query_s = t.elapsed().as_secs_f64();
    Ok(ShardResult {
        shard_id: a.shard_id,
        ranks: a.ranks.clone(),
        prepare_s,
        query_s,
        stats: result.stats.clone(),
        edges: flatten_windows(&result.matrices),
    })
}

/// The chunked batch executor: one `prepare_shard` over the full
/// assignment, then `run_range` over successive rank chunks. After each
/// chunk the absolute frontier goes out as a `Progress` frame; between
/// chunks a latched steal request is answered with a binding
/// `StealGrant` — the executor keeps the head half of its *remaining*
/// interval and the coordinator re-enqueues the tail. Chunked execution
/// is bit-identical to the single-shot run: sub-splitting one
/// preparation is exactly the shard-invariance contract (proven in
/// `core::engine` and `tests/shard_determinism.rs`).
fn execute_batch_chunked(
    a: &Assignment,
    data: &TimeSeriesMatrix,
    ctl: &ExecControl,
    chunk_ranks: usize,
    chunk_delay: Duration,
    emit: &mut dyn FnMut(&Message),
) -> Result<ShardResult, String> {
    let engine = Dangoron::new(a.config.clone()).map_err(|e| format!("bad config: {e:?}"))?;
    let t = Instant::now();
    let prep = engine
        .prepare_shard(data, a.query, a.ranks.clone())
        .map_err(|e| format!("prepare failed: {e:?}"))?;
    let prepare_s = t.elapsed().as_secs_f64();

    let chunk = if chunk_ranks > 0 {
        chunk_ranks
    } else {
        (a.ranks.len() / 8).max(1)
    };
    let n_windows = a.query.n_windows();
    let mut stats = PruningStats::default();
    let mut segments: EdgeSegments = Vec::new();
    let mut query_s = 0.0;
    let mut at = a.ranks.start;
    let mut end = a.ranks.end;
    emit(&Message::Progress {
        assignment_id: a.shard_id,
        frontier: at as u64,
    });
    loop {
        if ctl.take_steal() {
            let remaining = end.saturating_sub(at);
            if remaining >= 2 {
                // Keep the head half, grant the tail. `at` is work not
                // yet started, so the boundary cannot race a chunk.
                end = at + remaining / 2;
            }
            emit(&Message::StealGrant {
                assignment_id: a.shard_id,
                new_end: end as u64,
            });
        }
        if at >= end {
            break;
        }
        let next = (at + chunk).min(end);
        if !chunk_delay.is_zero() {
            std::thread::sleep(chunk_delay);
        }
        let t = Instant::now();
        let result = engine.run_range(&prep, at..next);
        // lint:allow(float-reduction-outside-kernel) -- wall-clock accounting across chunks, not a data-plane reduction
        query_s += t.elapsed().as_secs_f64();
        stats.merge(&result.stats);
        segments.push((at..next, flatten_windows(&result.matrices)));
        at = next;
        emit(&Message::Progress {
            assignment_id: a.shard_id,
            frontier: at as u64,
        });
    }
    Ok(ShardResult {
        shard_id: a.shard_id,
        ranks: a.ranks.start..end,
        prepare_s,
        query_s,
        stats,
        edges: window_major_concat(segments, n_windows),
    })
}

/// Re-interleaves per-chunk window-major buffers into one window-major
/// buffer: for each window, the chunks' slices in rank order — the same
/// concatenation the coordinator's merge performs, done worker-side so a
/// chunked result is byte-identical on the wire to a single-shot one.
fn window_major_concat(mut segments: EdgeSegments, n_windows: usize) -> Vec<(u32, Edge)> {
    if segments.len() == 1 {
        if let Some((_, only)) = segments.pop() {
            return only;
        }
    }
    segments.sort_by_key(|(r, _)| r.start);
    let total = segments.iter().map(|(_, b)| b.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut pos = vec![0usize; segments.len()];
    for w in 0..n_windows as u32 {
        for (k, (_, buf)) in segments.iter().enumerate() {
            let start = pos[k];
            while pos[k] < buf.len() && buf[pos[k]].0 == w {
                pos[k] += 1;
            }
            out.extend_from_slice(&buf[start..pos[k]]);
        }
    }
    out
}

fn execute_streaming_reporting(
    a: &Assignment,
    data: &TimeSeriesMatrix,
    initial_cols: usize,
    chunk_cols: usize,
    ctl: &ExecControl,
    emit: &mut dyn FnMut(&Message),
) -> Result<ShardResult, String> {
    if chunk_cols == 0 {
        return Err("streaming replay needs a positive chunk width".into());
    }
    let total = data.len();
    let initial_cols = initial_cols.min(total);
    let initial = data
        .slice_columns(0, initial_cols)
        .map_err(|e| format!("bad initial slice: {e:?}"))?;
    let t = Instant::now();
    let mut session = StreamingDangoron::new_sharded(
        initial,
        a.query.window,
        a.query.step,
        a.query.threshold,
        a.config.clone(),
        a.ranks.clone(),
    )
    .map_err(|e| format!("session open failed: {e:?}"))?;
    let prepare_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let mut windows = session
        .drain_completed()
        .map_err(|e| format!("drain failed: {e:?}"))?;
    let mut at = initial_cols;
    emit(&Message::Progress {
        assignment_id: a.shard_id,
        frontier: at as u64,
    });
    while at < total {
        if ctl.take_steal() {
            // A streaming session's rank interval is fixed at open: deny
            // by granting the unchanged end, which clears the
            // coordinator's outstanding steal request.
            emit(&Message::StealGrant {
                assignment_id: a.shard_id,
                new_end: a.ranks.end as u64,
            });
        }
        let next = (at + chunk_cols).min(total);
        let chunk = data
            .slice_columns(at, next)
            .map_err(|e| format!("bad chunk slice: {e:?}"))?;
        windows.extend(
            session
                .append(&chunk)
                .map_err(|e| format!("append failed: {e:?}"))?,
        );
        at = next;
        emit(&Message::Progress {
            assignment_id: a.shard_id,
            frontier: at as u64,
        });
    }
    let query_s = t.elapsed().as_secs_f64();

    // Drains ascend in window index and each matrix is (i, j)-sorted, so
    // the flattened buffer is already in wire order.
    let total_edges: usize = windows.iter().map(|w| w.matrix.n_edges()).sum();
    let mut edges = Vec::with_capacity(total_edges);
    for cw in &windows {
        edges.extend(cw.matrix.edges().iter().map(|&e| (cw.index as u32, e)));
    }
    Ok(ShardResult {
        shard_id: a.shard_id,
        ranks: a.ranks.clone(),
        prepare_s,
        query_s,
        stats: session.stats().clone(),
        edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dangoron::{BoundMode, DangoronConfig};
    use sketch::SlidingQuery;
    use tsdata::generators;

    fn data() -> TimeSeriesMatrix {
        generators::clustered_matrix(8, 300, 2, 0.5, 17).unwrap()
    }

    fn assignment(mode: WorkerMode, ranks: std::ops::Range<usize>) -> Assignment {
        Assignment {
            shard_id: 1,
            ranks,
            mode,
            config: DangoronConfig {
                basic_window: 20,
                bound: BoundMode::Exhaustive,
                ..Default::default()
            },
            query: SlidingQuery {
                start: 0,
                end: 300,
                window: 60,
                step: 20,
                threshold: 0.7,
            },
        }
    }

    fn replies(output: &[u8]) -> Vec<Message> {
        let mut stream: &[u8] = output;
        let mut msgs = Vec::new();
        while let Some(payload) = frame::read_from(&mut stream, proto::MAX_FRAME).unwrap() {
            msgs.push(proto::decode(&payload).unwrap());
        }
        msgs
    }

    fn results(msgs: &[Message]) -> Vec<&ShardResult> {
        msgs.iter()
            .filter_map(|m| match m {
                Message::Result(r) => Some(r),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn serve_round_trips_batch_and_streaming_over_in_memory_pipes() {
        let mut input = Vec::new();
        for msg in [
            Message::Load(data()),
            Message::Assign(assignment(WorkerMode::Batch, 0..28)),
            Message::Assign(assignment(
                WorkerMode::StreamingReplay {
                    initial_cols: 120,
                    chunk_cols: 60,
                },
                5..20,
            )),
        ] {
            input.extend(frame::encode(&proto::encode(&msg)));
        }
        let mut reader: &[u8] = &input;
        let mut output = Vec::new();
        serve(&mut reader, &mut output).unwrap();

        let msgs = replies(&output);
        match &msgs[0] {
            Message::Hello(h) => assert_eq!(*h, Hello::local()),
            other => panic!("first frame must be the handshake, got {other:?}"),
        }
        // The v3 loop interleaves Progress frames with the results.
        assert!(
            msgs.iter().any(|m| matches!(m, Message::Progress { .. })),
            "v3 serve emitted no progress frames"
        );
        let results = results(&msgs);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].ranks, 0..28);
        assert_eq!(results[0].stats.n_pairs, 28);
        assert!(results[0]
            .edges
            .windows(2)
            .all(|w| { (w[0].0, w[0].1.i, w[0].1.j) < (w[1].0, w[1].1.i, w[1].1.j) }));
        assert_eq!(results[1].ranks, 5..20);
        assert_eq!(results[1].stats.n_pairs % 15, 0, "15 pairs per drain");
    }

    #[test]
    fn chunked_execution_is_bit_identical_to_single_shot() {
        let d = data();
        let a = assignment(WorkerMode::Batch, 3..26);
        let single = execute(&a, &d).unwrap();
        for chunk in [1usize, 2, 5, 23, 100] {
            let chunked = execute_controlled(
                &a,
                &d,
                &ExecControl::default(),
                chunk,
                Duration::ZERO,
                &mut |_| {},
            )
            .unwrap();
            assert_eq!(chunked.ranks, single.ranks, "chunk={chunk}");
            assert_eq!(chunked.stats, single.stats, "chunk={chunk}");
            assert_eq!(chunked.edges.len(), single.edges.len(), "chunk={chunk}");
            for ((wa, ea), (wb, eb)) in single.edges.iter().zip(&chunked.edges) {
                assert_eq!(wa, wb, "chunk={chunk}");
                assert_eq!((ea.i, ea.j), (eb.i, eb.j), "chunk={chunk}");
                assert_eq!(
                    ea.value.to_bits(),
                    eb.value.to_bits(),
                    "chunk={chunk}: edge value drifted"
                );
            }
        }
    }

    #[test]
    fn steal_grant_shrinks_the_result_to_the_granted_boundary() {
        let d = data();
        let a = assignment(WorkerMode::Batch, 0..28);
        let ctl = ExecControl::default();
        ctl.request_steal(); // latched before the first chunk
        let mut grants = Vec::new();
        let r = execute_controlled(&a, &d, &ctl, 4, Duration::ZERO, &mut |m| {
            if let Message::StealGrant { new_end, .. } = m {
                grants.push(*new_end as usize);
            }
        })
        .unwrap();
        assert_eq!(
            grants,
            vec![14],
            "steal of 0..28 at frontier 0 grants 14..28"
        );
        assert_eq!(r.ranks, 0..14);
        assert_eq!(r.stats.n_pairs, 14);
        // Head + granted tail == the full interval, bitwise.
        let tail = execute(&assignment(WorkerMode::Batch, 14..28), &d).unwrap();
        let full = execute(&a, &d).unwrap();
        assert_eq!(r.stats.n_pairs + tail.stats.n_pairs, full.stats.n_pairs);
        let mut merged = PruningStats::default();
        merged.merge(&r.stats);
        merged.merge(&tail.stats);
        assert_eq!(merged, full.stats);
    }

    #[test]
    fn steal_of_an_exhausted_interval_is_denied() {
        let d = data();
        let a = assignment(WorkerMode::Batch, 0..1);
        let ctl = ExecControl::default();
        ctl.request_steal();
        let mut grants = Vec::new();
        let r = execute_controlled(&a, &d, &ctl, 4, Duration::ZERO, &mut |m| {
            if let Message::StealGrant { new_end, .. } = m {
                grants.push(*new_end as usize);
            }
        })
        .unwrap();
        assert_eq!(grants, vec![1], "denial echoes the unchanged end");
        assert_eq!(r.ranks, 0..1);
    }

    #[test]
    fn v2_env_forces_the_legacy_loop_without_heartbeat() {
        // Env vars are process-global; this test owns PROTO_ENV (no other
        // test in this binary sets it).
        std::env::set_var(PROTO_ENV, "2");
        let mut input = Vec::new();
        for msg in [
            Message::Load(data()),
            Message::Assign(assignment(WorkerMode::Batch, 0..28)),
        ] {
            input.extend(frame::encode(&proto::encode(&msg)));
        }
        let mut reader: &[u8] = &input;
        let mut output = Vec::new();
        let res = serve(&mut reader, &mut output);
        std::env::remove_var(PROTO_ENV);
        res.unwrap();
        let msgs = replies(&output);
        assert_eq!(msgs.len(), 2, "v2 loop: hello + result, no progress");
        match &msgs[0] {
            Message::Hello(h) => {
                assert_eq!(h.version, 2);
                assert_eq!(h.caps & proto::CAP_HEARTBEAT, 0);
            }
            other => panic!("first frame must be the handshake, got {other:?}"),
        }
        assert!(matches!(msgs[1], Message::Result(_)));
    }

    #[test]
    fn pings_are_answered_and_stale_steals_ignored() {
        let mut input = Vec::new();
        for msg in [
            Message::Ping(7),
            Message::Load(data()),
            Message::Steal { assignment_id: 99 }, // no such assignment
            Message::Assign(assignment(WorkerMode::Batch, 0..28)),
            Message::Ping(8),
        ] {
            input.extend(frame::encode(&proto::encode(&msg)));
        }
        let mut reader: &[u8] = &input;
        let mut output = Vec::new();
        serve(&mut reader, &mut output).unwrap();
        let msgs = replies(&output);
        let pongs: Vec<u64> = msgs
            .iter()
            .filter_map(|m| match m {
                Message::Pong(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(pongs, vec![7, 8]);
        assert_eq!(results(&msgs).len(), 1);
        assert!(
            !msgs.iter().any(|m| matches!(m, Message::StealGrant { .. })),
            "a stale steal must not be granted"
        );
    }

    #[test]
    fn engine_errors_become_error_frames_not_transport_failures() {
        // An out-of-triangle shard interval must come back as an Error
        // message and leave the worker alive for the next assignment.
        let mut input = Vec::new();
        for msg in [
            Message::Load(data()),
            Message::Assign(assignment(WorkerMode::Batch, 0..999)),
            Message::Assign(assignment(WorkerMode::Batch, 0..28)),
        ] {
            input.extend(frame::encode(&proto::encode(&msg)));
        }
        let mut reader: &[u8] = &input;
        let mut output = Vec::new();
        serve(&mut reader, &mut output).unwrap();

        let msgs = replies(&output);
        let errors: Vec<u64> = msgs
            .iter()
            .filter_map(|m| match m {
                Message::Error(id, _) => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(errors, vec![1], "error echoes the assignment id");
        assert_eq!(results(&msgs).len(), 1);
    }

    #[test]
    fn assignment_before_load_is_an_error_frame() {
        let mut input = Vec::new();
        input.extend(frame::encode(&proto::encode(&Message::Assign(assignment(
            WorkerMode::Batch,
            0..28,
        )))));
        let mut reader: &[u8] = &input;
        let mut output = Vec::new();
        serve(&mut reader, &mut output).unwrap();
        let msgs = replies(&output);
        assert_eq!(msgs.len(), 2);
        match &msgs[1] {
            Message::Error(_, text) => assert!(text.contains("Load"), "{text}"),
            other => panic!("expected an Error frame, got {other:?}"),
        }
    }

    #[test]
    fn batch_worker_output_matches_direct_engine_run() {
        let d = data();
        let a = assignment(WorkerMode::Batch, 3..17);
        let r = execute(&a, &d).unwrap();
        let engine = Dangoron::new(a.config.clone()).unwrap();
        let prep = engine.prepare_shard(&d, a.query, 3..17).unwrap();
        let direct = engine.run_range(&prep, 3..17);
        assert_eq!(r.stats, direct.stats);
        assert_eq!(r.edges, flatten_windows(&direct.matrices));
    }
}
