//! The coordinator/worker wire protocol: hand-rolled little-endian
//! message bodies inside the `bytes` shim's length-prefixed frames.
//!
//! Frame layout (see `bytes::frame`): a `u32` LE payload length, then the
//! payload. Every payload starts with a one-byte message tag:
//!
//! | tag | message  | direction          | body |
//! |-----|----------|--------------------|------|
//! | 1   | `Assign` | coordinator→worker | mode, shard id + rank interval, engine config, query — **no matrix**; the worker re-uses its loaded matrix |
//! | 2   | `Result` | worker→coordinator | shard id + rank interval, per-phase wall times, [`PruningStats`], the shard's `(window, edge)` buffer sorted by `(window, i, j)` |
//! | 3   | `Error`  | worker→coordinator | echoed shard id + UTF-8 message (the shard is re-planned) |
//! | 4   | `Hello`  | worker→coordinator | handshake: protocol version + capability bits, the first frame on any link |
//! | 5   | `Load`   | coordinator→worker | the full column matrix, shipped **once per worker** at registration |
//! | 6   | `Ping`   | coordinator→worker | liveness probe (v3, [`CAP_HEARTBEAT`]); carries a sequence number |
//! | 7   | `Pong`   | worker→coordinator | echoes the `Ping` sequence number |
//! | 8   | `Progress` | worker→coordinator | per-assignment frontier report: the absolute rank (batch) or column (streaming) the executor has completed up to |
//! | 9   | `Steal`  | coordinator→worker | asks the executor to give up the tail of assignment `id` (v3 batch workers only) |
//! | 10  | `StealGrant` | worker→coordinator | the executor's answer: it will stop at `new_end` (`new_end == ranks.end` is a denial) — the coordinator re-enqueues `new_end..end` |
//!
//! Protocol v2 split the v1 fat `Assign` into `Load` + slim `Assign`:
//! the matrix dominates the frame bytes, and shipping it once per worker
//! instead of once per assignment makes queued and re-planned shards
//! free of matrix traffic (the saving is recorded in the BENCH `shards`
//! section). Protocol v3 adds the elastic frames (tags 6–10) behind the
//! [`CAP_HEARTBEAT`] capability; a v3 coordinator still accepts v2
//! workers ([`MIN_PROTOCOL_VERSION`]) and simply never sends them the
//! new frames.
//!
//! All integers are `u64`/`u32` LE, all floats `f64` bit patterns —
//! correlation values cross the wire losslessly, which is what lets the
//! coordinator's merged matrices be bit-identical to the single-process
//! engine. With the TCP transport the peer is a *network* peer, so frames
//! are decoded defensively: every count is validated against the bytes
//! actually present **before** any allocation sized by it, unknown tags
//! and truncated bodies return `Err` (never panic), and a payload with
//! trailing bytes after its message is rejected as inconsistent.

use bytes::{Buf, BufMut};
use dangoron::config::{HorizontalConfig, PivotStrategy};
use dangoron::{BoundMode, DangoronConfig, PairStorage, PruningStats};
use sketch::output::{Edge, EdgeRule};
use sketch::SlidingQuery;
use std::ops::Range;
use tsdata::TimeSeriesMatrix;

/// Upper bound on a frame's payload (guards against garbage length
/// prefixes; a 1 GiB frame is far beyond any real workload here).
pub const MAX_FRAME: usize = 1 << 30;

/// Upper bound on the *first* frame of a link — before the handshake is
/// validated the peer is untrusted, and a [`Hello`] payload is 9 bytes,
/// so anything near this limit is hostile or garbage.
pub const MAX_HELLO_FRAME: usize = 64;

/// Version of the wire layout. v1 (PR 4) shipped the matrix inside every
/// `Assign`; v2 added the `Hello` handshake and the `Load` frame; v3
/// added the elastic frames (`Ping`/`Pong`/`Progress`/`Steal`/
/// `StealGrant`) behind [`CAP_HEARTBEAT`]; v4 adds the serving tier's
/// session frames (tags 11+, defined in `crates/serve`) behind
/// [`CAP_SERVE`] — this module stays the shared substrate (handshake,
/// heartbeats, decode hardening) for both protocols.
pub const PROTOCOL_VERSION: u32 = 4;

/// Oldest worker version a coordinator still admits. v2 workers lack the
/// elastic frames, so the coordinator masks [`CAP_HEARTBEAT`] off their
/// capabilities and falls back to the coarse per-assignment deadline.
pub const MIN_PROTOCOL_VERSION: u32 = 2;

/// Capability bit: the worker can run [`WorkerMode::Batch`] shards.
pub const CAP_BATCH: u32 = 1 << 0;
/// Capability bit: the worker can run [`WorkerMode::StreamingReplay`]
/// shards.
pub const CAP_STREAMING: u32 = 1 << 1;
/// Capability bit (v3): the worker answers `Ping`, reports per-assignment
/// `Progress`, and negotiates `Steal`/`StealGrant`.
pub const CAP_HEARTBEAT: u32 = 1 << 2;
/// Capability bit (v4): the peer speaks the serving tier's session frames
/// (`Open`/`Append`/`Query`/`Subscribe`/`Evict`, tags 11+ — see
/// `crates/serve`). The coordinator ignores it; `dangoron-serve` requires
/// it of its clients.
pub const CAP_SERVE: u32 = 1 << 3;

/// The capability bits this build's worker advertises in its [`Hello`].
pub fn local_caps() -> u32 {
    CAP_BATCH | CAP_STREAMING | CAP_HEARTBEAT | CAP_SERVE
}

/// The capability bit a coordinator requires for `mode`.
pub fn required_cap(mode: WorkerMode) -> u32 {
    match mode {
        WorkerMode::Batch => CAP_BATCH,
        WorkerMode::StreamingReplay { .. } => CAP_STREAMING,
    }
}

/// How the worker executes its shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerMode {
    /// One `prepare_shard` + `run_range` batch query.
    Batch,
    /// Replay the matrix through a sharded [`dangoron::StreamingDangoron`]:
    /// open over the first `initial_cols` columns, then append
    /// `chunk_cols`-wide slices until the history is exhausted, collecting
    /// every drain.
    StreamingReplay {
        /// Columns the session opens over.
        initial_cols: usize,
        /// Columns per append.
        chunk_cols: usize,
    },
}

/// The worker's side of the handshake: the first frame it writes on any
/// link, whether it was spawned over pipes or connected over TCP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// The worker's [`PROTOCOL_VERSION`].
    pub version: u32,
    /// Capability bits (`CAP_*`).
    pub caps: u32,
}

impl Hello {
    /// The handshake this build's worker sends.
    pub fn local() -> Self {
        Self {
            version: PROTOCOL_VERSION,
            caps: local_caps(),
        }
    }
}

/// A shard assignment shipped to a worker. Slim since protocol v2: the
/// workload matrix travels separately in a [`Message::Load`] frame, once
/// per worker.
#[derive(Debug, Clone)]
pub struct Assignment {
    /// Shard id (coordinator bookkeeping, echoed in the result).
    pub shard_id: u64,
    /// The pair-rank interval to walk.
    pub ranks: Range<usize>,
    /// Execution mode.
    pub mode: WorkerMode,
    /// Engine configuration (worker-side thread count included).
    pub config: DangoronConfig,
    /// The sliding query.
    pub query: SlidingQuery,
}

/// A completed shard, streamed back to the coordinator.
#[derive(Debug, Clone)]
pub struct ShardResult {
    /// Echoed shard id.
    pub shard_id: u64,
    /// Echoed rank interval.
    pub ranks: Range<usize>,
    /// Prepare-phase (or session-open) wall seconds.
    pub prepare_s: f64,
    /// Query (or total drain) wall seconds.
    pub query_s: f64,
    /// The shard's pruning counters.
    pub stats: PruningStats,
    /// The shard's edges, sorted by `(window, i, j)`.
    pub edges: Vec<(u32, Edge)>,
}

/// A protocol message.
#[derive(Debug, Clone)]
pub enum Message {
    /// Coordinator → worker: one shard of work.
    Assign(Assignment),
    /// Coordinator → worker: the workload matrix, once per worker.
    Load(TimeSeriesMatrix),
    /// Worker → coordinator: the link handshake.
    Hello(Hello),
    /// Worker → coordinator: a completed shard.
    Result(ShardResult),
    /// Worker → coordinator: the shard failed engine-side. Carries the
    /// assignment id so a frame that arrives after the coordinator gave
    /// up on it can be identified as stale and discarded.
    Error(u64, String),
    /// Coordinator → worker (v3): liveness probe with a sequence number.
    Ping(u64),
    /// Worker → coordinator (v3): echo of a [`Message::Ping`] sequence
    /// number, written immediately by the worker's reader thread — it
    /// proves the *process* is alive even while the executor grinds.
    Pong(u64),
    /// Worker → coordinator (v3): the executor has completed the
    /// assignment up to `frontier` (an absolute pair rank in batch mode,
    /// an absolute column count in streaming replay). Progress resets the
    /// coordinator's hung-worker deadline: a slow worker that keeps
    /// reporting is *slow but alive*; one that stops is hung.
    Progress {
        /// The assignment being reported on.
        assignment_id: u64,
        /// Absolute frontier the executor has finished through.
        frontier: u64,
    },
    /// Coordinator → worker (v3): asks the executor of `assignment_id` to
    /// give up the tail of its rank interval for an idle worker.
    Steal {
        /// The straggling assignment.
        assignment_id: u64,
    },
    /// Worker → coordinator (v3): the executor's binding answer to a
    /// [`Message::Steal`] — it will stop at `new_end` and its `Result`
    /// will cover exactly `ranks.start..new_end`. `new_end == ranks.end`
    /// is a denial (nothing left worth stealing). The boundary is chosen
    /// by the executor *between chunks*, which is what makes the split
    /// race-free: the two sides of `new_end` are executed exactly once
    /// each, so the merge stays bit-identical.
    StealGrant {
        /// The assignment being shrunk.
        assignment_id: u64,
        /// The new exclusive end of the worker's interval.
        new_end: u64,
    },
}

const TAG_ASSIGN: u8 = 1;
const TAG_RESULT: u8 = 2;
const TAG_ERROR: u8 = 3;
const TAG_HELLO: u8 = 4;
const TAG_LOAD: u8 = 5;
const TAG_PING: u8 = 6;
const TAG_PONG: u8 = 7;
const TAG_PROGRESS: u8 = 8;
const TAG_STEAL: u8 = 9;
const TAG_STEAL_GRANT: u8 = 10;

/// Encodes a message into a frame payload (no length prefix).
pub fn encode(msg: &Message) -> Vec<u8> {
    let mut out = Vec::new();
    match msg {
        Message::Assign(a) => {
            out.put_u8(TAG_ASSIGN);
            match a.mode {
                WorkerMode::Batch => out.put_u8(0),
                WorkerMode::StreamingReplay {
                    initial_cols,
                    chunk_cols,
                } => {
                    out.put_u8(1);
                    out.put_u64_le(initial_cols as u64);
                    out.put_u64_le(chunk_cols as u64);
                }
            }
            out.put_u64_le(a.shard_id);
            out.put_u64_le(a.ranks.start as u64);
            out.put_u64_le(a.ranks.end as u64);
            encode_config(&mut out, &a.config);
            out.put_u64_le(a.query.start as u64);
            out.put_u64_le(a.query.end as u64);
            out.put_u64_le(a.query.window as u64);
            out.put_u64_le(a.query.step as u64);
            out.put_f64_le(a.query.threshold);
        }
        Message::Load(data) => write_load(&mut out, data),
        Message::Hello(h) => {
            out.put_u8(TAG_HELLO);
            out.put_u32_le(h.version);
            out.put_u32_le(h.caps);
        }
        Message::Result(r) => {
            out.put_u8(TAG_RESULT);
            out.put_u64_le(r.shard_id);
            out.put_u64_le(r.ranks.start as u64);
            out.put_u64_le(r.ranks.end as u64);
            out.put_f64_le(r.prepare_s);
            out.put_f64_le(r.query_s);
            encode_stats(&mut out, &r.stats);
            out.put_u64_le(r.edges.len() as u64);
            for (w, e) in &r.edges {
                out.put_u32_le(*w);
                out.put_u32_le(e.i);
                out.put_u32_le(e.j);
                out.put_f64_le(e.value);
            }
        }
        Message::Error(shard_id, text) => {
            out.put_u8(TAG_ERROR);
            out.put_u64_le(*shard_id);
            out.put_u64_le(text.len() as u64);
            out.put_slice(text.as_bytes());
        }
        Message::Ping(seq) => {
            out.put_u8(TAG_PING);
            out.put_u64_le(*seq);
        }
        Message::Pong(seq) => {
            out.put_u8(TAG_PONG);
            out.put_u64_le(*seq);
        }
        Message::Progress {
            assignment_id,
            frontier,
        } => {
            out.put_u8(TAG_PROGRESS);
            out.put_u64_le(*assignment_id);
            out.put_u64_le(*frontier);
        }
        Message::Steal { assignment_id } => {
            out.put_u8(TAG_STEAL);
            out.put_u64_le(*assignment_id);
        }
        Message::StealGrant {
            assignment_id,
            new_end,
        } => {
            out.put_u8(TAG_STEAL_GRANT);
            out.put_u64_le(*assignment_id);
            out.put_u64_le(*new_end);
        }
    }
    out
}

/// Encodes a `Load` frame payload straight from a borrowed matrix —
/// what the coordinator ships at registration. Identical bytes to
/// `encode(&Message::Load(data.clone()))` without cloning the matrix
/// just to build the owning enum.
pub fn encode_load(data: &TimeSeriesMatrix) -> Vec<u8> {
    let mut out = Vec::with_capacity(17 + 8 * data.n_series() * data.len());
    write_load(&mut out, data);
    out
}

fn write_load(out: &mut Vec<u8>, data: &TimeSeriesMatrix) {
    out.put_u8(TAG_LOAD);
    out.put_u64_le(data.n_series() as u64);
    out.put_u64_le(data.len() as u64);
    for v in data.as_slice() {
        out.put_f64_le(*v);
    }
}

/// Decodes a frame payload.
///
/// Rejects (with `Err`, never a panic) oversized payloads, unknown tags
/// and worker modes, truncated bodies, counts inconsistent with the bytes
/// actually present, and trailing bytes after the message.
pub fn decode(payload: &[u8]) -> Result<Message, String> {
    if payload.len() > MAX_FRAME {
        return Err(format!(
            "payload of {} bytes exceeds the {MAX_FRAME}-byte frame limit",
            payload.len()
        ));
    }
    let mut buf = payload;
    let tag = take_u8(&mut buf, "tag")?;
    let msg = match tag {
        TAG_ASSIGN => {
            let mode = match take_u8(&mut buf, "mode")? {
                0 => WorkerMode::Batch,
                1 => WorkerMode::StreamingReplay {
                    initial_cols: take_u64(&mut buf, "initial_cols")? as usize,
                    chunk_cols: take_u64(&mut buf, "chunk_cols")? as usize,
                },
                m => return Err(format!("unknown worker mode {m}")),
            };
            let shard_id = take_u64(&mut buf, "shard_id")?;
            let start = take_u64(&mut buf, "rank_start")? as usize;
            let end = take_u64(&mut buf, "rank_end")? as usize;
            let config = decode_config(&mut buf)?;
            let query = SlidingQuery {
                start: take_u64(&mut buf, "query.start")? as usize,
                end: take_u64(&mut buf, "query.end")? as usize,
                window: take_u64(&mut buf, "query.window")? as usize,
                step: take_u64(&mut buf, "query.step")? as usize,
                threshold: take_f64(&mut buf, "query.threshold")?,
            };
            Message::Assign(Assignment {
                shard_id,
                ranks: start..end,
                mode,
                config,
                query,
            })
        }
        TAG_LOAD => {
            let n = take_u64(&mut buf, "n_series")? as usize;
            let cols = take_u64(&mut buf, "n_cols")? as usize;
            let cells = n
                .checked_mul(cols)
                .ok_or_else(|| "matrix dimensions overflow".to_string())?;
            let data = take_f64s(&mut buf, cells, "matrix")?;
            let data = TimeSeriesMatrix::from_flat(n, cols, data)
                .map_err(|e| format!("bad matrix: {e:?}"))?;
            Message::Load(data)
        }
        TAG_HELLO => {
            let version = take_u32(&mut buf, "version")?;
            let caps = take_u32(&mut buf, "caps")?;
            Message::Hello(Hello { version, caps })
        }
        TAG_RESULT => {
            let shard_id = take_u64(&mut buf, "shard_id")?;
            let start = take_u64(&mut buf, "rank_start")? as usize;
            let end = take_u64(&mut buf, "rank_end")? as usize;
            let prepare_s = take_f64(&mut buf, "prepare_s")?;
            let query_s = take_f64(&mut buf, "query_s")?;
            let stats = decode_stats(&mut buf)?;
            let n_edges = take_u64(&mut buf, "n_edges")? as usize;
            need(
                &buf,
                n_edges.checked_mul(20).ok_or("edge bytes overflow")?,
                "edges",
            )?;
            let mut edges = Vec::with_capacity(n_edges);
            for _ in 0..n_edges {
                let w = buf.get_u32_le();
                let i = buf.get_u32_le();
                let j = buf.get_u32_le();
                let value = buf.get_f64_le();
                edges.push((w, Edge { i, j, value }));
            }
            Message::Result(ShardResult {
                shard_id,
                ranks: start..end,
                prepare_s,
                query_s,
                stats,
                edges,
            })
        }
        TAG_ERROR => {
            let shard_id = take_u64(&mut buf, "shard_id")?;
            let len = take_u64(&mut buf, "error length")? as usize;
            need(&buf, len, "error text")?;
            let text = String::from_utf8_lossy(&buf.chunk()[..len]).into_owned();
            buf.advance(len);
            Message::Error(shard_id, text)
        }
        TAG_PING => Message::Ping(take_u64(&mut buf, "ping seq")?),
        TAG_PONG => Message::Pong(take_u64(&mut buf, "pong seq")?),
        TAG_PROGRESS => Message::Progress {
            assignment_id: take_u64(&mut buf, "progress id")?,
            frontier: take_u64(&mut buf, "frontier")?,
        },
        TAG_STEAL => Message::Steal {
            assignment_id: take_u64(&mut buf, "steal id")?,
        },
        TAG_STEAL_GRANT => Message::StealGrant {
            assignment_id: take_u64(&mut buf, "grant id")?,
            new_end: take_u64(&mut buf, "new_end")?,
        },
        t => return Err(format!("unknown message tag {t}")),
    };
    if !buf.is_empty() {
        return Err(format!(
            "{} trailing bytes after a well-formed message",
            buf.len()
        ));
    }
    Ok(msg)
}

pub fn encode_config(out: &mut Vec<u8>, c: &DangoronConfig) {
    out.put_u64_le(c.basic_window as u64);
    match c.bound {
        BoundMode::Exhaustive => {
            out.put_u8(0);
            out.put_f64_le(0.0);
        }
        BoundMode::PaperJump { slack } => {
            out.put_u8(1);
            out.put_f64_le(slack);
        }
    }
    out.put_u8(match c.storage {
        PairStorage::Precomputed => 0,
        PairStorage::OnDemand => 1,
    });
    match &c.horizontal {
        None => out.put_u8(0),
        Some(h) => {
            out.put_u8(1);
            out.put_u64_le(h.n_pivots as u64);
            match &h.strategy {
                PivotStrategy::Evenly => {
                    out.put_u8(0);
                }
                PivotStrategy::Random { seed } => {
                    out.put_u8(1);
                    out.put_u64_le(*seed);
                }
                PivotStrategy::Explicit(list) => {
                    out.put_u8(2);
                    out.put_u64_le(list.len() as u64);
                    for &p in list {
                        out.put_u64_le(p as u64);
                    }
                }
            }
        }
    }
    out.put_u64_le(c.threads as u64);
    out.put_u8(match c.edge_rule {
        EdgeRule::Positive => 0,
        EdgeRule::Absolute => 1,
    });
}

pub fn decode_config(buf: &mut &[u8]) -> Result<DangoronConfig, String> {
    let basic_window = take_u64(buf, "basic_window")? as usize;
    let bound_tag = take_u8(buf, "bound")?;
    let slack = take_f64(buf, "slack")?;
    let bound = match bound_tag {
        0 => BoundMode::Exhaustive,
        1 => BoundMode::PaperJump { slack },
        t => return Err(format!("unknown bound mode {t}")),
    };
    let storage = match take_u8(buf, "storage")? {
        0 => PairStorage::Precomputed,
        1 => PairStorage::OnDemand,
        t => return Err(format!("unknown storage mode {t}")),
    };
    let horizontal = match take_u8(buf, "horizontal flag")? {
        0 => None,
        1 => {
            let n_pivots = take_u64(buf, "n_pivots")? as usize;
            let strategy = match take_u8(buf, "pivot strategy")? {
                0 => PivotStrategy::Evenly,
                1 => PivotStrategy::Random {
                    seed: take_u64(buf, "pivot seed")?,
                },
                2 => {
                    let len = take_u64(buf, "pivot list length")? as usize;
                    let list = take_u64s(buf, len, "pivot list")?;
                    PivotStrategy::Explicit(list.into_iter().map(|p| p as usize).collect())
                }
                t => return Err(format!("unknown pivot strategy {t}")),
            };
            Some(HorizontalConfig { n_pivots, strategy })
        }
        t => return Err(format!("bad horizontal flag {t}")),
    };
    let threads = take_u64(buf, "threads")? as usize;
    let edge_rule = match take_u8(buf, "edge rule")? {
        0 => EdgeRule::Positive,
        1 => EdgeRule::Absolute,
        t => return Err(format!("unknown edge rule {t}")),
    };
    Ok(DangoronConfig {
        basic_window,
        bound,
        storage,
        horizontal,
        threads,
        edge_rule,
    })
}

fn encode_stats(out: &mut Vec<u8>, s: &PruningStats) {
    out.put_u64_le(s.n_pairs);
    out.put_u64_le(s.total_cells);
    out.put_u64_le(s.evaluated);
    out.put_u64_le(s.skipped_by_jump);
    out.put_u64_le(s.pruned_by_triangle);
    out.put_u64_le(s.pairs_skipped_entirely);
    out.put_u64_le(s.jumps);
    out.put_u64_le(s.edges);
    out.put_u64_le(s.jump_length_hist.len() as u64);
    for &b in &s.jump_length_hist {
        out.put_u64_le(b);
    }
}

fn decode_stats(buf: &mut &[u8]) -> Result<PruningStats, String> {
    let mut s = PruningStats {
        n_pairs: take_u64(buf, "n_pairs")?,
        total_cells: take_u64(buf, "total_cells")?,
        evaluated: take_u64(buf, "evaluated")?,
        skipped_by_jump: take_u64(buf, "skipped_by_jump")?,
        pruned_by_triangle: take_u64(buf, "pruned_by_triangle")?,
        pairs_skipped_entirely: take_u64(buf, "pairs_skipped_entirely")?,
        jumps: take_u64(buf, "jumps")?,
        edges: take_u64(buf, "edges")?,
        ..Default::default()
    };
    let hist_len = take_u64(buf, "hist length")? as usize;
    s.jump_length_hist = take_u64s(buf, hist_len, "hist")?;
    Ok(s)
}

pub fn need(buf: &&[u8], n: usize, what: &str) -> Result<(), String> {
    if buf.remaining() < n {
        Err(format!(
            "truncated frame: need {n} bytes for {what}, have {}",
            buf.remaining()
        ))
    } else {
        Ok(())
    }
}

pub fn take_u8(buf: &mut &[u8], what: &str) -> Result<u8, String> {
    need(buf, 1, what)?;
    Ok(buf.get_u8())
}

pub fn take_u32(buf: &mut &[u8], what: &str) -> Result<u32, String> {
    need(buf, 4, what)?;
    Ok(buf.get_u32_le())
}

pub fn take_u64(buf: &mut &[u8], what: &str) -> Result<u64, String> {
    need(buf, 8, what)?;
    Ok(buf.get_u64_le())
}

pub fn take_f64(buf: &mut &[u8], what: &str) -> Result<f64, String> {
    need(buf, 8, what)?;
    Ok(buf.get_f64_le())
}

/// Reads `count` LE `u64`s, validating the count against the bytes
/// actually present **before** allocating — a hostile length field can
/// never size an allocation larger than the received payload.
pub fn take_u64s(buf: &mut &[u8], count: usize, what: &str) -> Result<Vec<u64>, String> {
    need(
        buf,
        count.checked_mul(8).ok_or("element count overflow")?,
        what,
    )?;
    Ok((0..count).map(|_| buf.get_u64_le()).collect())
}

/// [`take_u64s`] for `f64` bit patterns.
pub fn take_f64s(buf: &mut &[u8], count: usize, what: &str) -> Result<Vec<f64>, String> {
    need(
        buf,
        count.checked_mul(8).ok_or("element count overflow")?,
        what,
    )?;
    Ok((0..count).map(|_| buf.get_f64_le()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdata::generators;

    fn sample_assignment() -> Assignment {
        Assignment {
            shard_id: 3,
            ranks: 10..25,
            mode: WorkerMode::StreamingReplay {
                initial_cols: 100,
                chunk_cols: 40,
            },
            config: DangoronConfig {
                basic_window: 20,
                bound: BoundMode::PaperJump { slack: 0.125 },
                storage: PairStorage::OnDemand,
                horizontal: Some(HorizontalConfig {
                    n_pivots: 3,
                    strategy: PivotStrategy::Explicit(vec![0, 4, 7]),
                }),
                threads: 2,
                edge_rule: EdgeRule::Absolute,
            },
            query: SlidingQuery {
                start: 0,
                end: 200,
                window: 60,
                step: 20,
                threshold: 0.75,
            },
        }
    }

    #[test]
    fn assign_roundtrips() {
        let a = sample_assignment();
        let payload = encode(&Message::Assign(a.clone()));
        match decode(&payload).unwrap() {
            Message::Assign(b) => {
                assert_eq!(b.shard_id, a.shard_id);
                assert_eq!(b.ranks, a.ranks);
                assert_eq!(b.mode, a.mode);
                assert_eq!(b.config, a.config);
                assert_eq!(b.query, a.query);
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn load_roundtrips_bitwise() {
        let data = generators::clustered_matrix(8, 200, 2, 0.5, 3).unwrap();
        let payload = encode(&Message::Load(data.clone()));
        assert_eq!(
            payload,
            encode_load(&data),
            "borrowed and owned Load encodings must be byte-identical"
        );
        match decode(&payload).unwrap() {
            Message::Load(b) => {
                assert_eq!(b.n_series(), data.n_series());
                assert_eq!(b.len(), data.len());
                assert_eq!(
                    b.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    data.as_slice()
                        .iter()
                        .map(|v| v.to_bits())
                        .collect::<Vec<_>>(),
                );
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn hello_roundtrips_and_fits_the_handshake_limit() {
        let h = Hello::local();
        let payload = encode(&Message::Hello(h));
        assert!(payload.len() <= MAX_HELLO_FRAME);
        match decode(&payload).unwrap() {
            Message::Hello(b) => {
                assert_eq!(b, h);
                assert_eq!(b.version, PROTOCOL_VERSION);
                assert_eq!(b.caps & CAP_BATCH, CAP_BATCH);
                assert_eq!(b.caps & CAP_STREAMING, CAP_STREAMING);
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn result_roundtrips_bitwise() {
        let mut stats = PruningStats::default();
        stats.record_jump(5);
        stats.n_pairs = 15;
        stats.evaluated = 40;
        let r = ShardResult {
            shard_id: 7,
            ranks: 0..15,
            prepare_s: 0.25,
            query_s: 1.5,
            stats: stats.clone(),
            edges: vec![
                (
                    0,
                    Edge {
                        i: 1,
                        j: 2,
                        value: 0.9876543210123,
                    },
                ),
                (
                    3,
                    Edge {
                        i: 0,
                        j: 5,
                        value: -0.25,
                    },
                ),
            ],
        };
        let payload = encode(&Message::Result(r.clone()));
        match decode(&payload).unwrap() {
            Message::Result(b) => {
                assert_eq!(b.shard_id, 7);
                assert_eq!(b.ranks, 0..15);
                assert_eq!(b.stats, stats);
                assert_eq!(b.edges.len(), 2);
                for ((wa, ea), (wb, eb)) in r.edges.iter().zip(&b.edges) {
                    assert_eq!(wa, wb);
                    assert_eq!((ea.i, ea.j), (eb.i, eb.j));
                    assert_eq!(ea.value.to_bits(), eb.value.to_bits());
                }
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn error_roundtrips() {
        let payload = encode(&Message::Error(9, "shard exploded".into()));
        match decode(&payload).unwrap() {
            Message::Error(id, t) => {
                assert_eq!(id, 9);
                assert_eq!(t, "shard exploded");
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn elastic_frames_roundtrip() {
        let frames = [
            Message::Ping(42),
            Message::Pong(42),
            Message::Progress {
                assignment_id: 7,
                frontier: 123_456,
            },
            Message::Steal { assignment_id: 7 },
            Message::StealGrant {
                assignment_id: 7,
                new_end: 99,
            },
        ];
        for msg in frames {
            let payload = encode(&msg);
            // All elastic frames are tiny control frames.
            assert!(payload.len() <= 17, "{msg:?}: {} bytes", payload.len());
            match (decode(&payload).unwrap(), &msg) {
                (Message::Ping(a), Message::Ping(b)) => assert_eq!(a, *b),
                (Message::Pong(a), Message::Pong(b)) => assert_eq!(a, *b),
                (
                    Message::Progress {
                        assignment_id: a,
                        frontier: f,
                    },
                    Message::Progress {
                        assignment_id: b,
                        frontier: g,
                    },
                ) => assert_eq!((a, f), (*b, *g)),
                (Message::Steal { assignment_id: a }, Message::Steal { assignment_id: b }) => {
                    assert_eq!(a, *b)
                }
                (
                    Message::StealGrant {
                        assignment_id: a,
                        new_end: e,
                    },
                    Message::StealGrant {
                        assignment_id: b,
                        new_end: f,
                    },
                ) => assert_eq!((a, e), (*b, *f)),
                (got, want) => panic!("{want:?} decoded as {got:?}"),
            }
        }
    }

    #[test]
    fn v3_hello_advertises_heartbeat_and_v2_range_is_sane() {
        let h = Hello::local();
        assert_eq!(h.version, PROTOCOL_VERSION);
        assert_eq!(h.caps & CAP_HEARTBEAT, CAP_HEARTBEAT);
        const { assert!(MIN_PROTOCOL_VERSION <= PROTOCOL_VERSION) }
    }

    #[test]
    fn truncated_frames_are_rejected_not_panicked() {
        let full = encode(&Message::Assign(sample_assignment()));
        // Every strict prefix must decode to Err, never panic.
        for cut in [0usize, 1, 2, 9, 17, 40, full.len() - 1] {
            assert!(decode(&full[..cut]).is_err(), "cut={cut}");
        }
        assert!(decode(&[99]).is_err(), "unknown tag");
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        for msg in [
            Message::Hello(Hello::local()),
            Message::Error(1, "x".into()),
            Message::Assign(sample_assignment()),
        ] {
            let mut payload = encode(&msg);
            payload.push(0);
            assert!(decode(&payload).is_err(), "{msg:?} accepted trailing byte");
        }
    }

    #[test]
    fn hostile_counts_never_size_allocations() {
        // A Load frame declaring a 2^60-cell matrix but carrying no cells:
        // must fail on the length check, not on an allocation.
        let mut payload = Vec::new();
        payload.put_u8(5); // TAG_LOAD
        payload.put_u64_le(1 << 30);
        payload.put_u64_le(1 << 30);
        assert!(decode(&payload).is_err());
        // Same for a Result frame with a hostile edge count.
        let mut payload = encode(&Message::Result(ShardResult {
            shard_id: 0,
            ranks: 0..1,
            prepare_s: 0.0,
            query_s: 0.0,
            stats: PruningStats::default(),
            edges: vec![],
        }));
        let at = payload.len() - 8; // the trailing n_edges field
        payload[at..].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode(&payload).is_err());
    }
}
