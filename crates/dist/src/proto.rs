//! The coordinator/worker wire protocol: hand-rolled little-endian
//! message bodies inside the `bytes` shim's length-prefixed frames.
//!
//! Frame layout (see `bytes::frame`): a `u32` LE payload length, then the
//! payload. Every payload starts with a one-byte message tag:
//!
//! | tag | message  | direction          | body |
//! |-----|----------|--------------------|------|
//! | 1   | `Assign` | coordinator→worker | mode, shard id + rank interval, engine config, query, the full column matrix |
//! | 2   | `Result` | worker→coordinator | shard id + rank interval, per-phase wall times, [`PruningStats`], the shard's `(window, edge)` buffer sorted by `(window, i, j)` |
//! | 3   | `Error`  | worker→coordinator | UTF-8 message (the shard is re-planned) |
//!
//! All integers are `u64`/`u32` LE, all floats `f64` bit patterns —
//! correlation values cross the wire losslessly, which is what lets the
//! coordinator's merged matrices be bit-identical to the single-process
//! engine. Both ends of the pipe run the same binary version, but frames
//! are still decoded defensively (length checks before every read) so a
//! truncated or corrupt stream surfaces as a protocol error and a shard
//! re-plan, never a coordinator panic.

use bytes::{Buf, BufMut};
use dangoron::config::{HorizontalConfig, PivotStrategy};
use dangoron::{BoundMode, DangoronConfig, PairStorage, PruningStats};
use sketch::output::{Edge, EdgeRule};
use sketch::SlidingQuery;
use std::ops::Range;
use tsdata::TimeSeriesMatrix;

/// Upper bound on a frame's payload (guards against garbage length
/// prefixes; a 1 GiB frame is far beyond any real workload here).
pub const MAX_FRAME: usize = 1 << 30;

/// How the worker executes its shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerMode {
    /// One `prepare_shard` + `run_range` batch query.
    Batch,
    /// Replay the matrix through a sharded [`dangoron::StreamingDangoron`]:
    /// open over the first `initial_cols` columns, then append
    /// `chunk_cols`-wide slices until the history is exhausted, collecting
    /// every drain.
    StreamingReplay {
        /// Columns the session opens over.
        initial_cols: usize,
        /// Columns per append.
        chunk_cols: usize,
    },
}

/// A shard assignment shipped to a worker.
#[derive(Debug, Clone)]
pub struct Assignment {
    /// Shard id (coordinator bookkeeping, echoed in the result).
    pub shard_id: u64,
    /// The pair-rank interval to walk.
    pub ranks: Range<usize>,
    /// Execution mode.
    pub mode: WorkerMode,
    /// Engine configuration (worker-side thread count included).
    pub config: DangoronConfig,
    /// The sliding query.
    pub query: SlidingQuery,
    /// The full column matrix.
    pub data: TimeSeriesMatrix,
}

/// A completed shard, streamed back to the coordinator.
#[derive(Debug, Clone)]
pub struct ShardResult {
    /// Echoed shard id.
    pub shard_id: u64,
    /// Echoed rank interval.
    pub ranks: Range<usize>,
    /// Prepare-phase (or session-open) wall seconds.
    pub prepare_s: f64,
    /// Query (or total drain) wall seconds.
    pub query_s: f64,
    /// The shard's pruning counters.
    pub stats: PruningStats,
    /// The shard's edges, sorted by `(window, i, j)`.
    pub edges: Vec<(u32, Edge)>,
}

/// A protocol message.
#[derive(Debug, Clone)]
pub enum Message {
    /// Coordinator → worker.
    Assign(Assignment),
    /// Worker → coordinator.
    Result(ShardResult),
    /// Worker → coordinator: the shard failed engine-side.
    Error(String),
}

const TAG_ASSIGN: u8 = 1;
const TAG_RESULT: u8 = 2;
const TAG_ERROR: u8 = 3;

/// Encodes a message into a frame payload (no length prefix).
pub fn encode(msg: &Message) -> Vec<u8> {
    let mut out = Vec::new();
    match msg {
        Message::Assign(a) => {
            out.put_u8(TAG_ASSIGN);
            match a.mode {
                WorkerMode::Batch => out.put_u8(0),
                WorkerMode::StreamingReplay {
                    initial_cols,
                    chunk_cols,
                } => {
                    out.put_u8(1);
                    out.put_u64_le(initial_cols as u64);
                    out.put_u64_le(chunk_cols as u64);
                }
            }
            out.put_u64_le(a.shard_id);
            out.put_u64_le(a.ranks.start as u64);
            out.put_u64_le(a.ranks.end as u64);
            encode_config(&mut out, &a.config);
            out.put_u64_le(a.query.start as u64);
            out.put_u64_le(a.query.end as u64);
            out.put_u64_le(a.query.window as u64);
            out.put_u64_le(a.query.step as u64);
            out.put_f64_le(a.query.threshold);
            out.put_u64_le(a.data.n_series() as u64);
            out.put_u64_le(a.data.len() as u64);
            for v in a.data.as_slice() {
                out.put_f64_le(*v);
            }
        }
        Message::Result(r) => {
            out.put_u8(TAG_RESULT);
            out.put_u64_le(r.shard_id);
            out.put_u64_le(r.ranks.start as u64);
            out.put_u64_le(r.ranks.end as u64);
            out.put_f64_le(r.prepare_s);
            out.put_f64_le(r.query_s);
            encode_stats(&mut out, &r.stats);
            out.put_u64_le(r.edges.len() as u64);
            for (w, e) in &r.edges {
                out.put_u32_le(*w);
                out.put_u32_le(e.i);
                out.put_u32_le(e.j);
                out.put_f64_le(e.value);
            }
        }
        Message::Error(text) => {
            out.put_u8(TAG_ERROR);
            out.put_u64_le(text.len() as u64);
            out.put_slice(text.as_bytes());
        }
    }
    out
}

/// Decodes a frame payload.
pub fn decode(payload: &[u8]) -> Result<Message, String> {
    let mut buf = payload;
    let tag = take_u8(&mut buf, "tag")?;
    match tag {
        TAG_ASSIGN => {
            let mode = match take_u8(&mut buf, "mode")? {
                0 => WorkerMode::Batch,
                1 => WorkerMode::StreamingReplay {
                    initial_cols: take_u64(&mut buf, "initial_cols")? as usize,
                    chunk_cols: take_u64(&mut buf, "chunk_cols")? as usize,
                },
                m => return Err(format!("unknown worker mode {m}")),
            };
            let shard_id = take_u64(&mut buf, "shard_id")?;
            let start = take_u64(&mut buf, "rank_start")? as usize;
            let end = take_u64(&mut buf, "rank_end")? as usize;
            let config = decode_config(&mut buf)?;
            let query = SlidingQuery {
                start: take_u64(&mut buf, "query.start")? as usize,
                end: take_u64(&mut buf, "query.end")? as usize,
                window: take_u64(&mut buf, "query.window")? as usize,
                step: take_u64(&mut buf, "query.step")? as usize,
                threshold: take_f64(&mut buf, "query.threshold")?,
            };
            let n = take_u64(&mut buf, "n_series")? as usize;
            let cols = take_u64(&mut buf, "n_cols")? as usize;
            let cells = n
                .checked_mul(cols)
                .ok_or_else(|| "matrix dimensions overflow".to_string())?;
            need(
                buf,
                cells.checked_mul(8).ok_or("matrix bytes overflow")?,
                "matrix",
            )?;
            let mut data = Vec::with_capacity(cells);
            for _ in 0..cells {
                data.push(buf.get_f64_le());
            }
            let data = TimeSeriesMatrix::from_flat(n, cols, data)
                .map_err(|e| format!("bad matrix: {e:?}"))?;
            Ok(Message::Assign(Assignment {
                shard_id,
                ranks: start..end,
                mode,
                config,
                query,
                data,
            }))
        }
        TAG_RESULT => {
            let shard_id = take_u64(&mut buf, "shard_id")?;
            let start = take_u64(&mut buf, "rank_start")? as usize;
            let end = take_u64(&mut buf, "rank_end")? as usize;
            let prepare_s = take_f64(&mut buf, "prepare_s")?;
            let query_s = take_f64(&mut buf, "query_s")?;
            let stats = decode_stats(&mut buf)?;
            let n_edges = take_u64(&mut buf, "n_edges")? as usize;
            need(
                buf,
                n_edges.checked_mul(20).ok_or("edge bytes overflow")?,
                "edges",
            )?;
            let mut edges = Vec::with_capacity(n_edges);
            for _ in 0..n_edges {
                let w = buf.get_u32_le();
                let i = buf.get_u32_le();
                let j = buf.get_u32_le();
                let value = buf.get_f64_le();
                edges.push((w, Edge { i, j, value }));
            }
            Ok(Message::Result(ShardResult {
                shard_id,
                ranks: start..end,
                prepare_s,
                query_s,
                stats,
                edges,
            }))
        }
        TAG_ERROR => {
            let len = take_u64(&mut buf, "error length")? as usize;
            need(buf, len, "error text")?;
            let text = String::from_utf8_lossy(&buf.chunk()[..len]).into_owned();
            Ok(Message::Error(text))
        }
        t => Err(format!("unknown message tag {t}")),
    }
}

fn encode_config(out: &mut Vec<u8>, c: &DangoronConfig) {
    out.put_u64_le(c.basic_window as u64);
    match c.bound {
        BoundMode::Exhaustive => {
            out.put_u8(0);
            out.put_f64_le(0.0);
        }
        BoundMode::PaperJump { slack } => {
            out.put_u8(1);
            out.put_f64_le(slack);
        }
    }
    out.put_u8(match c.storage {
        PairStorage::Precomputed => 0,
        PairStorage::OnDemand => 1,
    });
    match &c.horizontal {
        None => out.put_u8(0),
        Some(h) => {
            out.put_u8(1);
            out.put_u64_le(h.n_pivots as u64);
            match &h.strategy {
                PivotStrategy::Evenly => {
                    out.put_u8(0);
                }
                PivotStrategy::Random { seed } => {
                    out.put_u8(1);
                    out.put_u64_le(*seed);
                }
                PivotStrategy::Explicit(list) => {
                    out.put_u8(2);
                    out.put_u64_le(list.len() as u64);
                    for &p in list {
                        out.put_u64_le(p as u64);
                    }
                }
            }
        }
    }
    out.put_u64_le(c.threads as u64);
    out.put_u8(match c.edge_rule {
        EdgeRule::Positive => 0,
        EdgeRule::Absolute => 1,
    });
}

fn decode_config(buf: &mut &[u8]) -> Result<DangoronConfig, String> {
    let basic_window = take_u64(buf, "basic_window")? as usize;
    let bound_tag = take_u8(buf, "bound")?;
    let slack = take_f64(buf, "slack")?;
    let bound = match bound_tag {
        0 => BoundMode::Exhaustive,
        1 => BoundMode::PaperJump { slack },
        t => return Err(format!("unknown bound mode {t}")),
    };
    let storage = match take_u8(buf, "storage")? {
        0 => PairStorage::Precomputed,
        1 => PairStorage::OnDemand,
        t => return Err(format!("unknown storage mode {t}")),
    };
    let horizontal = match take_u8(buf, "horizontal flag")? {
        0 => None,
        1 => {
            let n_pivots = take_u64(buf, "n_pivots")? as usize;
            let strategy = match take_u8(buf, "pivot strategy")? {
                0 => PivotStrategy::Evenly,
                1 => PivotStrategy::Random {
                    seed: take_u64(buf, "pivot seed")?,
                },
                2 => {
                    let len = take_u64(buf, "pivot list length")? as usize;
                    need(
                        buf,
                        len.checked_mul(8).ok_or("pivot list overflow")?,
                        "pivot list",
                    )?;
                    PivotStrategy::Explicit((0..len).map(|_| buf.get_u64_le() as usize).collect())
                }
                t => return Err(format!("unknown pivot strategy {t}")),
            };
            Some(HorizontalConfig { n_pivots, strategy })
        }
        t => return Err(format!("bad horizontal flag {t}")),
    };
    let threads = take_u64(buf, "threads")? as usize;
    let edge_rule = match take_u8(buf, "edge rule")? {
        0 => EdgeRule::Positive,
        1 => EdgeRule::Absolute,
        t => return Err(format!("unknown edge rule {t}")),
    };
    Ok(DangoronConfig {
        basic_window,
        bound,
        storage,
        horizontal,
        threads,
        edge_rule,
    })
}

fn encode_stats(out: &mut Vec<u8>, s: &PruningStats) {
    out.put_u64_le(s.n_pairs);
    out.put_u64_le(s.total_cells);
    out.put_u64_le(s.evaluated);
    out.put_u64_le(s.skipped_by_jump);
    out.put_u64_le(s.pruned_by_triangle);
    out.put_u64_le(s.pairs_skipped_entirely);
    out.put_u64_le(s.jumps);
    out.put_u64_le(s.edges);
    out.put_u64_le(s.jump_length_hist.len() as u64);
    for &b in &s.jump_length_hist {
        out.put_u64_le(b);
    }
}

fn decode_stats(buf: &mut &[u8]) -> Result<PruningStats, String> {
    let mut s = PruningStats {
        n_pairs: take_u64(buf, "n_pairs")?,
        total_cells: take_u64(buf, "total_cells")?,
        evaluated: take_u64(buf, "evaluated")?,
        skipped_by_jump: take_u64(buf, "skipped_by_jump")?,
        pruned_by_triangle: take_u64(buf, "pruned_by_triangle")?,
        pairs_skipped_entirely: take_u64(buf, "pairs_skipped_entirely")?,
        jumps: take_u64(buf, "jumps")?,
        edges: take_u64(buf, "edges")?,
        ..Default::default()
    };
    let hist_len = take_u64(buf, "hist length")? as usize;
    need(buf, hist_len.checked_mul(8).ok_or("hist overflow")?, "hist")?;
    s.jump_length_hist = (0..hist_len).map(|_| buf.get_u64_le()).collect();
    Ok(s)
}

fn need(buf: &[u8], n: usize, what: &str) -> Result<(), String> {
    if buf.remaining() < n {
        Err(format!(
            "truncated frame: need {n} bytes for {what}, have {}",
            buf.remaining()
        ))
    } else {
        Ok(())
    }
}

fn take_u8(buf: &mut &[u8], what: &str) -> Result<u8, String> {
    need(buf, 1, what)?;
    Ok(buf.get_u8())
}

fn take_u64(buf: &mut &[u8], what: &str) -> Result<u64, String> {
    need(buf, 8, what)?;
    Ok(buf.get_u64_le())
}

fn take_f64(buf: &mut &[u8], what: &str) -> Result<f64, String> {
    need(buf, 8, what)?;
    Ok(buf.get_f64_le())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdata::generators;

    fn sample_assignment() -> Assignment {
        Assignment {
            shard_id: 3,
            ranks: 10..25,
            mode: WorkerMode::StreamingReplay {
                initial_cols: 100,
                chunk_cols: 40,
            },
            config: DangoronConfig {
                basic_window: 20,
                bound: BoundMode::PaperJump { slack: 0.125 },
                storage: PairStorage::OnDemand,
                horizontal: Some(HorizontalConfig {
                    n_pivots: 3,
                    strategy: PivotStrategy::Explicit(vec![0, 4, 7]),
                }),
                threads: 2,
                edge_rule: EdgeRule::Absolute,
            },
            query: SlidingQuery {
                start: 0,
                end: 200,
                window: 60,
                step: 20,
                threshold: 0.75,
            },
            data: generators::clustered_matrix(8, 200, 2, 0.5, 3).unwrap(),
        }
    }

    #[test]
    fn assign_roundtrips() {
        let a = sample_assignment();
        let payload = encode(&Message::Assign(a.clone()));
        match decode(&payload).unwrap() {
            Message::Assign(b) => {
                assert_eq!(b.shard_id, a.shard_id);
                assert_eq!(b.ranks, a.ranks);
                assert_eq!(b.mode, a.mode);
                assert_eq!(b.config, a.config);
                assert_eq!(b.query, a.query);
                assert_eq!(b.data.n_series(), a.data.n_series());
                assert_eq!(
                    b.data
                        .as_slice()
                        .iter()
                        .map(|v| v.to_bits())
                        .collect::<Vec<_>>(),
                    a.data
                        .as_slice()
                        .iter()
                        .map(|v| v.to_bits())
                        .collect::<Vec<_>>(),
                );
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn result_roundtrips_bitwise() {
        let mut stats = PruningStats::default();
        stats.record_jump(5);
        stats.n_pairs = 15;
        stats.evaluated = 40;
        let r = ShardResult {
            shard_id: 7,
            ranks: 0..15,
            prepare_s: 0.25,
            query_s: 1.5,
            stats: stats.clone(),
            edges: vec![
                (
                    0,
                    Edge {
                        i: 1,
                        j: 2,
                        value: 0.9876543210123,
                    },
                ),
                (
                    3,
                    Edge {
                        i: 0,
                        j: 5,
                        value: -0.25,
                    },
                ),
            ],
        };
        let payload = encode(&Message::Result(r.clone()));
        match decode(&payload).unwrap() {
            Message::Result(b) => {
                assert_eq!(b.shard_id, 7);
                assert_eq!(b.ranks, 0..15);
                assert_eq!(b.stats, stats);
                assert_eq!(b.edges.len(), 2);
                for ((wa, ea), (wb, eb)) in r.edges.iter().zip(&b.edges) {
                    assert_eq!(wa, wb);
                    assert_eq!((ea.i, ea.j), (eb.i, eb.j));
                    assert_eq!(ea.value.to_bits(), eb.value.to_bits());
                }
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn error_roundtrips() {
        let payload = encode(&Message::Error("shard exploded".into()));
        match decode(&payload).unwrap() {
            Message::Error(t) => assert_eq!(t, "shard exploded"),
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn truncated_frames_are_rejected_not_panicked() {
        let full = encode(&Message::Assign(sample_assignment()));
        // Every strict prefix must decode to Err, never panic.
        for cut in [0usize, 1, 2, 9, 17, 40, full.len() - 1] {
            assert!(decode(&full[..cut]).is_err(), "cut={cut}");
        }
        assert!(decode(&[99]).is_err(), "unknown tag");
    }
}
