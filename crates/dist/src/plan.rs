//! The shard planner: partitioning the triangular pair-rank space
//! `[0, count(n))` into contiguous shards.
//!
//! The rank space ([`sketch::triangular`]) is the ParCorr-style sharding
//! key: dense, total-ordered, and shared by every engine in the workspace,
//! so a contiguous rank interval is simultaneously a well-defined unit of
//! work, of result (its sorted edge buffer), and of re-planning. Two
//! layouts are offered:
//!
//! * [`ShardPlan::balanced`] — exact area balance: every shard carries the
//!   same number of pairs (±1), cut anywhere in the rank space.
//! * [`ShardPlan::row_aligned`] — shard boundaries snap to *row* starts of
//!   the triangle (all pairs `(i, ·)` of a row stay together, so a worker
//!   streams each of its left-hand series exactly once). A naive equal
//!   *row-span* split would be badly skewed — row `i` holds `n−1−i` pairs,
//!   so the first of `k` row bands would carry nearly twice the average
//!   work — hence the cut rows are chosen by cumulative triangle **area**,
//!   not by row count.

use sketch::triangular;
use std::ops::Range;

/// One planned shard: a contiguous pair-rank interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shard {
    /// Stable shard id (plan order).
    pub id: usize,
    /// The pair ranks `[ranks.start, ranks.end)` this shard owns.
    pub ranks: Range<usize>,
}

/// A partition of the pair space into contiguous shards.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    n_series: usize,
    shards: Vec<Shard>,
}

impl ShardPlan {
    /// Exact area-balanced plan: `min(n_shards, count(n))` non-empty
    /// contiguous shards whose pair counts differ by at most one.
    pub fn balanced(n_series: usize, n_shards: usize) -> Self {
        let n_pairs = triangular::count(n_series);
        let shards = split_range(0..n_pairs, n_shards)
            .into_iter()
            .enumerate()
            .map(|(id, ranks)| Shard { id, ranks })
            .collect();
        Self { n_series, shards }
    }

    /// Row-aligned, area-balanced plan: shard boundaries fall on row
    /// starts of the triangle, with cut rows chosen so each shard's pair
    /// count tracks `count(n)/k` as closely as row granularity allows.
    pub fn row_aligned(n_series: usize, n_shards: usize) -> Self {
        let n = n_series;
        let n_pairs = triangular::count(n);
        let k = n_shards.clamp(1, n_pairs.max(1));
        // Rank of the first pair of row `i` — the cumulative triangle area
        // above it.
        let row_start = |i: usize| -> usize {
            if n < 2 || i >= n - 1 {
                n_pairs
            } else {
                triangular::rank(i, i + 1, n)
            }
        };
        let mut shards = Vec::with_capacity(k);
        let mut cut = 0usize; // current cut row
        for s in 0..k {
            if n_pairs == 0 {
                break;
            }
            let target = (s + 1) * n_pairs / k;
            // Smallest row whose start reaches the target area, but always
            // at least one row past the previous cut.
            let mut hi = cut + 1;
            while s + 1 < k && hi < n - 1 && row_start(hi) < target {
                hi += 1;
            }
            if s + 1 == k {
                hi = n.saturating_sub(1).max(cut + 1);
            }
            let ranks = row_start(cut)..row_start(hi);
            if !ranks.is_empty() {
                shards.push(Shard {
                    id: shards.len(),
                    ranks,
                });
            }
            cut = hi;
            if cut >= n.saturating_sub(1) {
                break;
            }
        }
        Self { n_series, shards }
    }

    /// The planned shards, in rank order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Series count the plan was made for.
    pub fn n_series(&self) -> usize {
        self.n_series
    }

    /// Total pairs across all shards.
    pub fn n_pairs(&self) -> usize {
        triangular::count(self.n_series)
    }

    /// Largest / smallest shard pair counts — the balance figure reports
    /// quote.
    pub fn balance(&self) -> (usize, usize) {
        let max = self.shards.iter().map(|s| s.ranks.len()).max().unwrap_or(0);
        let min = self.shards.iter().map(|s| s.ranks.len()).min().unwrap_or(0);
        (max, min)
    }
}

/// Splits a contiguous rank interval into `k` balanced contiguous
/// sub-intervals (sizes differ by at most one; empty splits are dropped).
/// This is both the [`ShardPlan::balanced`] kernel and the re-planning
/// primitive: a failed shard's interval is re-split across the surviving
/// workers.
pub fn split_range(ranks: Range<usize>, k: usize) -> Vec<Range<usize>> {
    let len = ranks.end.saturating_sub(ranks.start);
    if len == 0 {
        return Vec::new();
    }
    let k = k.clamp(1, len);
    (0..k)
        .map(|s| (ranks.start + s * len / k)..(ranks.start + (s + 1) * len / k))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_partition(plan: &ShardPlan) {
        let mut next = 0;
        for (k, s) in plan.shards().iter().enumerate() {
            assert_eq!(s.id, k);
            assert_eq!(s.ranks.start, next, "gap before shard {k}");
            assert!(s.ranks.end > s.ranks.start, "empty shard {k}");
            next = s.ranks.end;
        }
        assert_eq!(next, plan.n_pairs(), "plan does not cover the triangle");
    }

    #[test]
    fn balanced_covers_and_balances() {
        for n in [2usize, 3, 9, 32, 101] {
            for k in [1usize, 2, 3, 4, 8, 17] {
                let plan = ShardPlan::balanced(n, k);
                assert_partition(&plan);
                let (max, min) = plan.balance();
                assert!(max - min <= 1, "n={n} k={k}: {max} vs {min}");
                assert_eq!(plan.shards().len(), k.min(triangular::count(n)));
            }
        }
    }

    #[test]
    fn row_aligned_covers_and_snaps_to_rows() {
        for n in [2usize, 5, 9, 33, 64] {
            for k in [1usize, 2, 4, 8] {
                let plan = ShardPlan::row_aligned(n, k);
                assert_partition(&plan);
                for s in plan.shards() {
                    // Every boundary is a row start: the pair at the
                    // boundary has j == i + 1.
                    let (i, j) = triangular::unrank(s.ranks.start, n);
                    assert_eq!(j, i + 1, "n={n} k={k}: shard {} not row-aligned", s.id);
                }
            }
        }
    }

    #[test]
    fn row_aligned_beats_equal_row_span() {
        // 64 series, 4 shards: an equal row-span split (16 rows each)
        // gives the first band 888 of 2016 pairs (44%); the area-balanced
        // cut must stay far closer to the ideal 504.
        let n = 64;
        let plan = ShardPlan::row_aligned(n, 4);
        let (max, _) = plan.balance();
        assert!(
            max < 700,
            "area balancing regressed to row-span balance: max shard {max} pairs"
        );
    }

    #[test]
    fn degenerate_plans() {
        assert!(ShardPlan::balanced(0, 4).shards().is_empty());
        assert!(ShardPlan::balanced(1, 4).shards().is_empty());
        assert_eq!(ShardPlan::balanced(2, 4).shards().len(), 1);
        assert!(ShardPlan::row_aligned(1, 4).shards().is_empty());
        assert_eq!(ShardPlan::row_aligned(2, 4).shards().len(), 1);
    }

    #[test]
    fn split_range_is_balanced_and_contiguous() {
        let parts = split_range(10..110, 7);
        assert_eq!(parts.len(), 7);
        assert_eq!(parts[0].start, 10);
        assert_eq!(parts.last().unwrap().end, 110);
        for w in parts.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        let sizes: Vec<usize> = parts.iter().map(|r| r.len()).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        // Degenerate inputs.
        assert!(split_range(5..5, 3).is_empty());
        assert_eq!(split_range(5..7, 8).len(), 2);
    }
}
