//! The shard coordinator: worker registration over a pluggable
//! transport, elastic membership, liveness, work-stealing, fault
//! handling and result collection.
//!
//! The coordinator owns the shard plan and a pool of `dangoron-shard`
//! workers reached through a [`Transport`] — either children it spawned
//! over stdio pipes ([`TransportMode::Spawn`]) or independently started
//! processes that connected to its TCP listener
//! ([`TransportMode::Tcp`]). Registration is the same on every link: the
//! worker's first frame must be a [`proto::Hello`] carrying a protocol
//! version in the accepted range
//! ([`proto::MIN_PROTOCOL_VERSION`]`..=`[`proto::PROTOCOL_VERSION`]) and
//! the capability bit the run's mode needs, and the coordinator answers
//! with one [`Message::Load`] frame holding the workload matrix. Every
//! later [`Assignment`] is *slim* — rank interval + config + query — so
//! queued and re-planned shards reuse the already-loaded matrix instead
//! of re-shipping it (the byte saving is recorded in [`CoordStats`] and
//! the BENCH `shards` section).
//!
//! ## The elastic membership model (TCP mode)
//!
//! The accept window never really closes: after the initial quorum the
//! listener moves to an acceptor thread, and any worker that completes
//! the handshake **mid-run** is admitted as a new member — shipped the
//! retained `Load` frame and dealt work off the pending queue (or, if
//! nothing is pending, via a steal; see below). A dropped worker that
//! re-dials (`dangoron-shard --reconnect`) is deliberately *not*
//! special-cased: it is simply a new member on a new link. Its old
//! identity's in-flight interval was already re-planned when the old
//! link died, and any of the old link's frames still in flight are
//! discarded by their stale assignment id — ids are unique per run, so
//! a rejoin can never double-count.
//!
//! ## Liveness: heartbeats and progress
//!
//! Workers advertising [`proto::CAP_HEARTBEAT`] (protocol v3) are pinged
//! on a fixed cadence and answer from their reader thread even while an
//! assignment is executing; they also report a per-assignment rank
//! frontier ([`Message::Progress`]) after every executed chunk. Hung
//! detection is **progress-based**: a worker is killed only when its
//! outstanding assignment has made no progress for the full timeout — a
//! straggler that keeps reporting is slow but alive and is left to
//! finish (or be stolen from). A v2 worker sends neither pongs nor
//! progress, which degrades exactly to the old coarse per-assignment
//! deadline.
//!
//! ## Work-stealing
//!
//! When the pending queue is empty, an idle worker exists, and a
//! straggler's *remaining* interval (assignment end minus reported
//! frontier) is still large, the coordinator asks the straggler to give
//! half of it up ([`Message::Steal`]). The grant is two-phase and the
//! **worker picks the boundary**: its executor answers between chunks
//! with a binding [`Message::StealGrant`] carrying the new end of its
//! own interval — work it provably has not started — so the handoff can
//! never race the chunk under execution. The coordinator shrinks the
//! outstanding interval to the granted end and re-enqueues the tail as
//! an ordinary pending shard. Because shards are pure functions of their
//! rank interval, the re-partition cannot change the answer.
//!
//! Per round the coordinator ships one [`Assignment`] to every idle
//! worker, then waits on a single event channel fed by one reader thread
//! per worker (plus the acceptor). Three things can happen to an
//! outstanding shard:
//!
//! * **result** — its sorted edge buffer and counters are recorded;
//! * **worker death** (EOF, write failure, protocol damage) — the
//!   shard's rank interval is *re-planned*: split across the surviving
//!   workers ([`crate::plan::split_range`]) and re-enqueued;
//! * **no progress for the timeout** — the worker is killed and the
//!   shard re-planned the same way.
//!
//! A frame from a worker the coordinator already gave up on (its kill
//! racing a final in-flight `Result`) is identified by its stale
//! assignment id and discarded — never merged twice. Killing a worker
//! severs both link directions ([`Transport::kill`]), which unblocks and
//! joins its reader thread; no thread or child process outlives
//! [`run`], including on error paths (worker handles kill on drop).
//!
//! Because shards are pure functions of their rank interval, re-planning
//! never changes the answer: any disjoint cover of the triangle merges to
//! the same matrices ([`crate::merge`]), so even a run that lost workers
//! mid-flight — or had them join, leave, rejoin and steal from each other
//! under an injected [`FaultPlan`] — is bit-identical to the
//! single-process engine. Every membership, steal and retry event is
//! counted in [`CoordStats`] and surfaces in the BENCH `shards` section.

use crate::chaos::{ChaosTransport, FaultPlan};
use crate::merge::{merge_shard_edges, ShardEdges};
use crate::metrics::CoordMetrics;
use crate::plan::{split_range, ShardPlan};
use crate::proto::{self, Assignment, Message, WorkerMode};
use crate::transport::{ChildTransport, TcpTransport, Transport};
use crate::worker;
use bytes::frame;
use dangoron::{DangoronConfig, PruningStats};
use sketch::{triangular, SlidingQuery, ThresholdedMatrix};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::Read;
use std::net::TcpListener;
use std::ops::Range;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};
use tsdata::TimeSeriesMatrix;

/// Why a distributed run could not produce a result. Structured so
/// callers (and the `dangoron-coord` binary's exit paths) can
/// distinguish configuration problems from cluster-death ones.
#[derive(Debug)]
pub enum CoordError {
    /// The TCP listener could not be bound.
    Bind {
        /// The requested listen address.
        addr: String,
        /// The OS error text.
        reason: String,
    },
    /// No worker ever registered (accept window closed empty, or every
    /// link failed during registration).
    NoWorkers {
        /// What went wrong.
        reason: String,
    },
    /// Every worker was lost with work outstanding, and (in elastic TCP
    /// mode) no replacement joined within the re-join window.
    NoSurvivors {
        /// Shards still queued when the last worker died.
        pending: usize,
        /// Shards that were in flight on now-dead workers.
        in_flight: usize,
        /// Shards completed before the collapse.
        completed: usize,
    },
    /// One rank interval kept failing until its re-plan budget ran out.
    AttemptsExhausted {
        /// The interval that could not be completed.
        ranks: Range<usize>,
        /// The configured attempt ceiling it exceeded.
        attempts: u32,
    },
    /// Anything else: configuration errors, protocol violations,
    /// engine-side failures of the in-process tiers.
    Internal(String),
}

impl fmt::Display for CoordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Bind { addr, reason } => {
                write!(f, "cannot bind TCP listener on {addr}: {reason}")
            }
            Self::NoWorkers { reason } => write!(f, "no workers: {reason}"),
            Self::NoSurvivors {
                pending,
                in_flight,
                completed,
            } => write!(
                f,
                "every worker died with {pending} shard(s) pending and {in_flight} in flight \
                 ({completed} completed)"
            ),
            Self::AttemptsExhausted { ranks, attempts } => {
                write!(f, "shard {ranks:?} exceeded {attempts} re-plan attempts")
            }
            Self::Internal(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for CoordError {}

impl From<String> for CoordError {
    fn from(msg: String) -> Self {
        Self::Internal(msg)
    }
}

/// Where the coordinator's workers come from.
#[derive(Debug, Clone)]
pub enum TransportMode {
    /// Spawn `dangoron-shard` children and speak over stdio pipes.
    Spawn {
        /// Path to the `dangoron-shard` worker binary.
        worker_bin: PathBuf,
    },
    /// Bind `listen` and accept workers started independently with
    /// `dangoron-shard --connect ADDR`. The membership is elastic:
    /// workers may also connect mid-run.
    Tcp {
        /// Address to bind (e.g. `127.0.0.1:7441`, or port `0` for an
        /// OS-assigned port — then use [`run_with_listener`] to learn it).
        listen: String,
        /// How long to wait for `n_workers` links before starting with
        /// however many arrived (at least one). Also the grace window a
        /// run that lost *every* worker waits for a replacement to join
        /// before giving up.
        accept_timeout: Duration,
    },
}

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// How workers are reached.
    pub transport: TransportMode,
    /// Number of shards to plan.
    pub n_shards: usize,
    /// Worker links to establish (clamped to the shard count).
    pub n_workers: usize,
    /// Engine threads *inside* each worker process.
    pub worker_threads: usize,
    /// Batch query or streaming replay.
    pub mode: WorkerMode,
    /// How long an outstanding assignment may go **without progress**
    /// before its worker is declared hung and killed. For v2 workers
    /// (no progress frames) this is the whole-assignment deadline.
    pub timeout: Duration,
    /// Deadline for a new link's `Hello` frame — spawned children and
    /// TCP peers (initial and late-joining) alike.
    pub handshake_timeout: Duration,
    /// Crash injection (spawn mode only): this worker index aborts on its
    /// first assignment (sets [`worker::FAIL_ENV`] in the child's
    /// environment) — the replan path's deterministic test hook. TCP
    /// workers are separate processes, so there the operator sets the
    /// environment variable on the worker itself.
    pub kill_worker: Option<usize>,
    /// Upper bound on re-plan generations per rank interval before the
    /// run is abandoned.
    pub max_attempts: u32,
    /// How long an assignment must have been outstanding before an idle
    /// worker may steal its tail. Keeps fast runs steal-free (everything
    /// completes well inside the window) while a genuine straggler —
    /// slow but alive past this age — gets split.
    pub steal_after: Duration,
    /// Fault-injection schedule applied to the coordinator's outgoing
    /// side of every link, in admission order (see [`crate::chaos`]).
    pub chaos: Option<FaultPlan>,
    /// Metric registry the run records into (`None` ⇒ a private one).
    /// Pass the registry mounted in a [`obs::MetricsServer`] to watch the
    /// run live; use a fresh registry per run — counters are cumulative.
    pub registry: Option<Arc<obs::Registry>>,
}

impl CoordinatorConfig {
    /// Spawn-mode defaults: one worker per shard, single-threaded
    /// workers, batch mode, a generous 120 s deadline.
    pub fn new(worker_bin: PathBuf, n_shards: usize) -> Self {
        Self {
            transport: TransportMode::Spawn { worker_bin },
            n_shards,
            n_workers: n_shards,
            worker_threads: 1,
            mode: WorkerMode::Batch,
            timeout: Duration::from_secs(120),
            handshake_timeout: Duration::from_secs(10),
            kill_worker: None,
            max_attempts: 4,
            steal_after: Duration::from_millis(500),
            chaos: None,
            registry: None,
        }
    }

    /// TCP-mode defaults: like [`CoordinatorConfig::new`], but accepting
    /// `n_shards` workers on `listen` (30 s accept window).
    pub fn tcp(listen: impl Into<String>, n_shards: usize) -> Self {
        Self {
            transport: TransportMode::Tcp {
                listen: listen.into(),
                accept_timeout: Duration::from_secs(30),
            },
            ..Self::new(PathBuf::new(), n_shards)
        }
    }
}

/// Per-completed-shard accounting.
#[derive(Debug, Clone)]
pub struct ShardSummary {
    /// The rank interval (post-replan and post-steal intervals can be
    /// finer than the original plan).
    pub ranks: Range<usize>,
    /// Which re-plan generation produced it (0 = original plan; a stolen
    /// tail inherits its victim's generation).
    pub attempt: u32,
    /// Worker-side prepare/open wall seconds.
    pub prepare_s: f64,
    /// Worker-side query/drain wall seconds.
    pub query_s: f64,
    /// The shard's pruning counters.
    pub stats: PruningStats,
    /// Edges the shard contributed.
    pub n_edges: usize,
}

/// Run-level coordinator accounting.
#[derive(Debug, Clone, Default)]
pub struct CoordStats {
    /// Shards in the original plan.
    pub n_shards_planned: usize,
    /// Worker links established at registration.
    pub n_workers: usize,
    /// Re-plan events (worker death, timeout, or worker-reported error).
    pub replans: usize,
    /// Workers lost over the run.
    pub worker_failures: usize,
    /// Workers admitted **after** the run started (elastic TCP mode) —
    /// fresh members and reconnecting ones alike.
    pub late_joins: usize,
    /// `Steal` requests sent to stragglers.
    pub steal_requests: usize,
    /// Steal grants that actually moved work (the stolen tail was
    /// re-enqueued); denials are `steal_requests - steals` at most.
    pub steals: usize,
    /// `Ping` frames sent to heartbeat-capable workers.
    pub pings_sent: usize,
    /// `Pong` frames received.
    pub pongs: usize,
    /// `Progress` frames received.
    pub progress_frames: usize,
    /// Transport the run used (`"pipe"`, `"tcp"`, `"in-process"`).
    pub transport: String,
    /// Assignment frames sent (replans included).
    pub assignments: usize,
    /// Total payload bytes of those slim `Assign` frames.
    pub assign_bytes: u64,
    /// Total payload bytes of the per-worker `Load` frames.
    pub load_bytes: u64,
    /// Stale frames discarded (a worker's reply arriving after the
    /// coordinator re-planned its shard — each one would have been a
    /// double count).
    pub stale_frames: usize,
    /// End-to-end wall seconds (registration → merged matrices).
    pub wall_s: f64,
}

/// The distributed run's output: merged matrices (bit-identical to the
/// single-process engine), summed counters, and the audit trail.
#[derive(Debug, Clone)]
pub struct DistResult {
    /// One finalized matrix per window.
    pub matrices: Vec<ThresholdedMatrix>,
    /// Sum of every shard's [`PruningStats`] — equal to the unsharded
    /// engine's counters.
    pub stats: PruningStats,
    /// Per-shard accounting, in completion order.
    pub shards: Vec<ShardSummary>,
    /// Run-level accounting.
    pub coord: CoordStats,
}

enum Event {
    Msg(usize, Message),
    Closed(usize, String),
    /// A peer completed the handshake on the mid-run acceptor (elastic
    /// TCP mode only).
    Joined(Box<dyn Transport>, Box<dyn Read + Send>, proto::Hello),
}

struct WorkerHandle {
    transport: Box<dyn Transport>,
    reader: Option<std::thread::JoinHandle<()>>,
    alive: bool,
    /// Capability bits from the worker's handshake (already masked for
    /// its protocol version).
    caps: u32,
    /// Last time any frame arrived from this worker — pong, progress,
    /// grant or result. Only meaningful for heartbeat-capable workers.
    last_seen: Instant,
}

impl WorkerHandle {
    fn send(&mut self, payload: &[u8]) -> std::io::Result<()> {
        self.transport.send(payload)
    }

    fn heartbeat(&self) -> bool {
        self.caps & proto::CAP_HEARTBEAT != 0
    }

    /// Declares the worker dead: severs the link (which unblocks a reader
    /// stuck in `read()`) and joins the reader thread. Idempotent.
    fn abandon(&mut self) {
        self.alive = false;
        self.transport.kill();
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }

    /// Graceful end-of-run: EOF the send half, reap the peer, join the
    /// reader.
    fn shutdown(&mut self) {
        if !self.alive {
            self.abandon();
            return;
        }
        self.transport.close_send();
        self.transport.reap();
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerHandle {
    /// Error-path cleanup: [`run`] shuts workers down explicitly on
    /// success, so a handle still holding its reader thread here means
    /// the run bailed out — kill the peer rather than leak the thread.
    fn drop(&mut self) {
        if self.reader.is_some() {
            self.abandon();
        }
    }
}

#[derive(Debug, Clone)]
struct PendingShard {
    ranks: Range<usize>,
    attempt: u32,
}

/// One in-flight assignment, keyed by worker index in the busy map.
struct Outstanding {
    shard: PendingShard,
    id: u64,
    /// When the assignment was dispatched — the age
    /// [`CoordinatorConfig::steal_after`] is measured against (a
    /// straggler keeps updating `progress_at`, so age-since-dispatch is
    /// the straggler signal, not staleness).
    dispatched_at: Instant,
    /// Last time this assignment demonstrably advanced (assignment time,
    /// then every progress/grant frame). Hung = no advance for the
    /// configured timeout.
    progress_at: Instant,
    /// Highest rank frontier the worker has reported.
    frontier: usize,
    /// A `Steal` is outstanding; don't send another until it resolves.
    steal_sent: bool,
    /// Whether this assignment can be stolen from at all (batch mode on
    /// a heartbeat-capable worker).
    stealable: bool,
}

impl Outstanding {
    fn remaining(&self) -> usize {
        self.shard.ranks.end.saturating_sub(self.frontier)
    }
}

/// Locates the `dangoron-shard` binary: the `DANGORON_SHARD_BIN`
/// environment variable, then siblings of the current executable (covers
/// `target/<profile>/` for binaries and `target/<profile>/deps/` for test
/// executables).
pub fn default_worker_path() -> Option<PathBuf> {
    let name = format!("dangoron-shard{}", std::env::consts::EXE_SUFFIX);
    if let Ok(p) = std::env::var("DANGORON_SHARD_BIN") {
        let p = PathBuf::from(p);
        if p.exists() {
            return Some(p);
        }
    }
    let exe = std::env::current_exe().ok()?;
    let dir = exe.parent()?;
    let mut candidates = vec![dir.join(&name)];
    if let Some(up) = dir.parent() {
        candidates.push(up.join(&name));
    }
    candidates.into_iter().find(|c| c.exists())
}

/// Number of windows the merged result must cover for a mode.
pub fn expected_windows(
    mode: WorkerMode,
    engine_cfg: &DangoronConfig,
    data_cols: usize,
    query: &SlidingQuery,
) -> usize {
    match mode {
        WorkerMode::Batch => query.n_windows(),
        WorkerMode::StreamingReplay { .. } => {
            // A streaming session only sees whole basic windows.
            let covered = data_cols / engine_cfg.basic_window * engine_cfg.basic_window;
            if covered < query.window {
                0
            } else {
                (covered - query.window) / query.step + 1
            }
        }
    }
}

/// Runs the distributed query across workers reached through the
/// configured transport.
pub fn run(
    cfg: &CoordinatorConfig,
    engine_cfg: &DangoronConfig,
    data: &TimeSeriesMatrix,
    query: SlidingQuery,
) -> Result<DistResult, CoordError> {
    match &cfg.transport {
        TransportMode::Spawn { .. } => run_inner(cfg, None, engine_cfg, data, query),
        TransportMode::Tcp { listen, .. } => {
            let listener = TcpListener::bind(listen).map_err(|e| CoordError::Bind {
                addr: listen.clone(),
                reason: e.to_string(),
            })?;
            run_inner(cfg, Some(listener), engine_cfg, data, query)
        }
    }
}

/// [`run`] with a pre-bound listener — the caller learns the actual
/// address (port `0` binds) from [`TcpListener::local_addr`] before any
/// worker needs it. `cfg.transport` must be [`TransportMode::Tcp`].
pub fn run_with_listener(
    cfg: &CoordinatorConfig,
    listener: TcpListener,
    engine_cfg: &DangoronConfig,
    data: &TimeSeriesMatrix,
    query: SlidingQuery,
) -> Result<DistResult, CoordError> {
    if !matches!(cfg.transport, TransportMode::Tcp { .. }) {
        return Err(CoordError::Internal(
            "run_with_listener requires TransportMode::Tcp".into(),
        ));
    }
    run_inner(cfg, Some(listener), engine_cfg, data, query)
}

/// Wraps a validated link for duty: lifts the pre-trust limits, applies
/// the chaos schedule for its admission index, ships the `Load` frame
/// and spawns the reader thread. Returns `false` (and buries the link)
/// when the Load cannot be shipped — worker death is tolerated, so it
/// must not cost the run while other links exist.
#[allow(clippy::too_many_arguments)]
fn register_worker(
    mut transport: Box<dyn Transport>,
    mut reader: Box<dyn Read + Send>,
    hello: proto::Hello,
    load_payload: &[u8],
    chaos: Option<&FaultPlan>,
    link_seq: &mut usize,
    workers: &mut Vec<WorkerHandle>,
    metrics: &CoordMetrics,
    tx: &mpsc::Sender<Event>,
) -> bool {
    transport.handshake_complete();
    let link = *link_seq;
    *link_seq += 1;
    let mut transport = match chaos {
        Some(plan) => Box::new(ChaosTransport::new(transport, plan.for_link(link))),
        None => transport,
    };
    if let Err(e) = transport.send(load_payload) {
        eprintln!("dist: dropping a worker at registration (cannot ship the Load frame: {e})");
        transport.kill();
        return false;
    }
    metrics.load_bytes.add(load_payload.len() as u64);
    let idx = workers.len();
    let tx = tx.clone();
    let handle = std::thread::spawn(move || reader_loop(idx, &mut *reader, &tx));
    workers.push(WorkerHandle {
        transport,
        reader: Some(handle),
        alive: true,
        caps: hello.caps,
        last_seen: Instant::now(),
    });
    true
}

/// Stops and joins the mid-run acceptor thread when dropped, on success
/// and error paths alike — the thread holds the listener and a channel
/// sender, and must not outlive the run.
struct AcceptorGuard {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for AcceptorGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn run_inner(
    cfg: &CoordinatorConfig,
    listener: Option<TcpListener>,
    engine_cfg: &DangoronConfig,
    data: &TimeSeriesMatrix,
    query: SlidingQuery,
) -> Result<DistResult, CoordError> {
    let t_start = Instant::now();
    let plan = ShardPlan::balanced(data.n_series(), cfg.n_shards);
    if plan.shards().is_empty() {
        return Err(CoordError::Internal(
            "workload has no pairs to shard".into(),
        ));
    }
    let n_workers = cfg.n_workers.clamp(1, plan.shards().len());
    let needed_cap = proto::required_cap(cfg.mode);
    let elastic = matches!(cfg.transport, TransportMode::Tcp { .. });
    let rejoin_window = match &cfg.transport {
        TransportMode::Tcp { accept_timeout, .. } => *accept_timeout,
        TransportMode::Spawn { .. } => Duration::ZERO,
    };

    // The Load frame is identical for every worker: encode it once,
    // straight from the borrowed matrix.
    let load_payload = proto::encode_load(data);
    if load_payload.len() > proto::MAX_FRAME {
        return Err(CoordError::Internal(format!(
            "workload matrix of {} payload bytes exceeds the {}-byte frame limit",
            load_payload.len(),
            proto::MAX_FRAME
        )));
    }

    let (tx, rx) = mpsc::channel::<Event>();
    // Both connect paths hand back links whose handshake already
    // validated — a spawn-mode failure is fatal (our own child is
    // broken), a TCP peer that fails it is dropped without costing the
    // run or an accept slot.
    let (links, acceptor) = match (&cfg.transport, listener) {
        (TransportMode::Spawn { worker_bin }, _) => {
            let mut links = Vec::with_capacity(n_workers);
            for w in 0..n_workers {
                links.push(spawn_worker(
                    worker_bin,
                    cfg.kill_worker == Some(w),
                    cfg.handshake_timeout,
                    needed_cap,
                )?);
            }
            (links, None)
        }
        (TransportMode::Tcp { accept_timeout, .. }, Some(listener)) => {
            let links = accept_tcp_workers(
                &listener,
                n_workers,
                *accept_timeout,
                cfg.handshake_timeout,
                cfg.timeout,
                needed_cap,
            )?;
            // The membership stays open: the listener moves to an
            // acceptor thread and mid-run joiners arrive as events.
            let stop = Arc::new(AtomicBool::new(false));
            let handle = {
                let stop = stop.clone();
                let tx = tx.clone();
                let handshake_timeout = cfg.handshake_timeout;
                let io_timeout = cfg.timeout;
                std::thread::spawn(move || {
                    accept_loop(
                        listener,
                        stop,
                        tx,
                        handshake_timeout,
                        io_timeout,
                        needed_cap,
                    )
                })
            };
            (
                links,
                Some(AcceptorGuard {
                    stop,
                    handle: Some(handle),
                }),
            )
        }
        (TransportMode::Tcp { .. }, None) => {
            return Err(CoordError::Internal(
                "TCP mode reached run_inner without a bound listener".into(),
            ))
        }
    };
    let transport_kind = links
        .first()
        .map(|(t, _, _)| t.kind())
        .unwrap_or("none")
        .to_string();

    // Every counter the run keeps lives in the obs registry; the
    // end-of-run CoordStats is a snapshot of it, so a live scrape and
    // the final report can never disagree.
    let registry = cfg
        .registry
        .clone()
        .unwrap_or_else(|| Arc::new(obs::Registry::new()));
    let metrics = CoordMetrics::new(&registry);
    metrics.shards_planned.set(plan.shards().len() as i64);

    // Registration: ship the matrix once per worker, then hand the read
    // half to a dedicated reader thread.
    let mut workers: Vec<WorkerHandle> = Vec::with_capacity(links.len());
    let mut link_seq = 0usize;
    for (transport, reader, hello) in links {
        register_worker(
            transport,
            reader,
            hello,
            &load_payload,
            cfg.chaos.as_ref(),
            &mut link_seq,
            &mut workers,
            &metrics,
            &tx,
        );
    }
    if workers.is_empty() {
        return Err(CoordError::NoWorkers {
            reason: "every worker failed during registration".into(),
        });
    }
    metrics.workers.set(workers.len() as i64);
    // The encoded Load frame is matrix-sized. A fixed membership never
    // needs it again — free it before the assignment/merge phase. An
    // elastic one keeps it for late joiners.
    let load_payload = if elastic {
        Some(load_payload)
    } else {
        drop(load_payload);
        None
    };

    let mut pending: VecDeque<PendingShard> = plan
        .shards()
        .iter()
        .map(|s| PendingShard {
            ranks: s.ranks.clone(),
            attempt: 0,
        })
        .collect();
    let mut busy: HashMap<usize, Outstanding> = HashMap::new();
    let mut next_id: u64 = 0;
    let mut segments: Vec<ShardEdges> = Vec::new();
    let mut summaries: Vec<ShardSummary> = Vec::new();
    let mut stats = PruningStats::default();
    // Ping cadence: a quarter of the liveness timeout, within sane
    // bounds, so a hung worker misses several pings before the deadline.
    let ping_every = (cfg.timeout / 4).clamp(Duration::from_millis(250), Duration::from_secs(5));
    let mut next_ping = Instant::now() + ping_every;
    let mut ping_seq: u64 = 0;
    // Set while zero workers are alive (elastic mode rides out the
    // re-join window before declaring the run dead).
    let mut lost_all_at: Option<Instant> = None;

    let live = |workers: &[WorkerHandle]| workers.iter().filter(|h| h.alive).count();
    let replan = |shard: PendingShard,
                  survivors: usize,
                  pending: &mut VecDeque<PendingShard>,
                  metrics: &CoordMetrics|
     -> Result<(), CoordError> {
        if shard.attempt + 1 > cfg.max_attempts {
            return Err(CoordError::AttemptsExhausted {
                ranks: shard.ranks.clone(),
                attempts: cfg.max_attempts,
            });
        }
        metrics.replans.inc();
        for sub in split_range(shard.ranks.clone(), survivors.max(1)) {
            pending.push_back(PendingShard {
                ranks: sub,
                attempt: shard.attempt + 1,
            });
        }
        Ok(())
    };

    loop {
        // Refresh the live-membership gauge once per supervision round —
        // a relaxed store, purely for scrapers.
        metrics.workers_live.set(live(&workers) as i64);

        // Dispatch to every idle live worker.
        for w in 0..workers.len() {
            if pending.is_empty() {
                break;
            }
            if !workers[w].alive || busy.contains_key(&w) {
                continue;
            }
            let Some(shard) = pending.pop_front() else {
                break;
            };
            let id = next_id;
            next_id += 1;
            let assignment = Assignment {
                shard_id: id,
                ranks: shard.ranks.clone(),
                mode: cfg.mode,
                config: DangoronConfig {
                    threads: cfg.worker_threads,
                    ..engine_cfg.clone()
                },
                query,
            };
            let payload = proto::encode(&Message::Assign(assignment));
            match workers[w].send(&payload) {
                Ok(()) => {
                    metrics.assignments.inc();
                    metrics.assign_bytes.add(payload.len() as u64);
                    let stealable = matches!(cfg.mode, WorkerMode::Batch) && workers[w].heartbeat();
                    busy.insert(
                        w,
                        Outstanding {
                            id,
                            frontier: shard.ranks.start,
                            dispatched_at: Instant::now(),
                            progress_at: Instant::now(),
                            steal_sent: false,
                            stealable,
                            shard,
                        },
                    );
                }
                Err(_) => {
                    // Write failure ⇒ the worker is gone.
                    workers[w].abandon();
                    metrics.worker_failures.inc();
                    replan(shard, live(&workers), &mut pending, &metrics)?;
                }
            }
        }

        // Work-stealing: nothing queued, an idle worker waiting, and a
        // straggler still holding a large remaining interval — ask it to
        // give half up. One request at a time per victim; the executor's
        // grant (or the victim's death) resolves it.
        if pending.is_empty() && !busy.is_empty() {
            let idle_exists = workers
                .iter()
                .enumerate()
                .any(|(w, h)| h.alive && !busy.contains_key(&w));
            if idle_exists {
                let now = Instant::now();
                let victim = busy
                    .iter()
                    .filter(|(&w, o)| {
                        workers[w].alive
                            && o.stealable
                            && !o.steal_sent
                            && o.remaining() >= 2
                            && now.duration_since(o.dispatched_at) >= cfg.steal_after
                    })
                    .max_by_key(|(_, o)| o.remaining())
                    .map(|(&w, _)| w);
                if let Some(w) = victim {
                    let id = busy[&w].id;
                    let payload = proto::encode(&Message::Steal { assignment_id: id });
                    match workers[w].send(&payload) {
                        Ok(()) => {
                            if let Some(o) = busy.get_mut(&w) {
                                o.steal_sent = true;
                                metrics.steal_requests.inc();
                            }
                        }
                        Err(_) => {
                            workers[w].abandon();
                            metrics.worker_failures.inc();
                            if let Some(o) = busy.remove(&w) {
                                replan(o.shard, live(&workers), &mut pending, &metrics)?;
                            }
                        }
                    }
                }
            }
        }

        if busy.is_empty() && pending.is_empty() {
            break;
        }
        let now = Instant::now();
        if live(&workers) == 0 && busy.is_empty() {
            let no_survivors = || CoordError::NoSurvivors {
                pending: pending.len(),
                in_flight: 0,
                completed: summaries.len(),
            };
            if !elastic {
                return Err(no_survivors());
            }
            // Elastic runs ride out the re-join window: a worker with
            // --reconnect (or a fresh one) may still appear.
            let since = *lost_all_at.get_or_insert(now);
            if now.duration_since(since) >= rejoin_window {
                return Err(no_survivors());
            }
        } else {
            lost_all_at = None;
        }

        // Heartbeats on a fixed cadence; a ping-write failure is a dead
        // link discovered early.
        if now >= next_ping {
            let payload = proto::encode(&Message::Ping(ping_seq));
            ping_seq += 1;
            next_ping = now + ping_every;
            let mut dead = Vec::new();
            for (w, h) in workers.iter_mut().enumerate() {
                if h.alive && h.heartbeat() {
                    if h.send(&payload).is_ok() {
                        metrics.pings_sent.inc();
                    } else {
                        dead.push(w);
                    }
                }
            }
            for w in dead {
                workers[w].abandon();
                metrics.worker_failures.inc();
                if let Some(o) = busy.remove(&w) {
                    eprintln!(
                        "dist: worker {w} lost (ping write failed); re-planning {:?}",
                        o.shard.ranks
                    );
                    replan(o.shard, live(&workers), &mut pending, &metrics)?;
                }
            }
        }

        // Hung detection: an assignment that has made no progress for
        // the full timeout. (A straggler that keeps reporting progress
        // never trips this — it is stolen from instead.)
        let hung: Vec<usize> = busy
            .iter()
            .filter(|(_, o)| now.duration_since(o.progress_at) >= cfg.timeout)
            .map(|(&w, _)| w)
            .collect();
        for w in hung {
            let Some(o) = busy.remove(&w) else {
                continue;
            };
            workers[w].abandon();
            metrics.worker_failures.inc();
            eprintln!(
                "dist: worker {w} hung (no progress in {:?}); re-planning {:?}",
                cfg.timeout, o.shard.ranks
            );
            replan(o.shard, live(&workers), &mut pending, &metrics)?;
        }
        // Idle heartbeat-capable workers that stopped answering pings
        // are silently reaped — they hold no work, so nothing re-plans.
        let idle_deadline = cfg.timeout + ping_every * 2;
        for (w, h) in workers.iter_mut().enumerate() {
            if h.alive
                && h.heartbeat()
                && !busy.contains_key(&w)
                && now.duration_since(h.last_seen) >= idle_deadline
            {
                eprintln!("dist: reaping unresponsive idle worker {w}");
                h.abandon();
                metrics.worker_failures.inc();
            }
        }

        // Wait for the next event or the earliest deadline (ping
        // cadence, progress deadlines, the lost-everyone grace window).
        let mut deadline = next_ping;
        for o in busy.values() {
            deadline = deadline.min(o.progress_at + cfg.timeout);
        }
        if let Some(since) = lost_all_at {
            deadline = deadline.min(since + rejoin_window);
        }
        let wait = deadline.saturating_duration_since(Instant::now());
        match rx.recv_timeout(wait) {
            Ok(Event::Joined(transport, reader, hello)) => {
                // Only elastic runs keep the Load frame (and only they
                // spawn an acceptor); a Joined event without it would be
                // a membership-state bug, not a peer failure.
                let Some(load) = load_payload.as_deref() else {
                    return Err(CoordError::Internal(
                        "late-join event on a fixed membership (Load frame already freed)".into(),
                    ));
                };
                if register_worker(
                    transport,
                    reader,
                    hello,
                    load,
                    cfg.chaos.as_ref(),
                    &mut link_seq,
                    &mut workers,
                    &metrics,
                    &tx,
                ) {
                    metrics.late_joins.inc();
                    eprintln!(
                        "dist: admitted late-joining worker {} ({} alive)",
                        workers.len() - 1,
                        live(&workers)
                    );
                }
            }
            Ok(Event::Msg(w, msg)) => {
                workers[w].last_seen = Instant::now();
                match msg {
                    Message::Result(res) => {
                        // Only the reply to the worker's outstanding
                        // assignment counts. Anything else is a frame the
                        // coordinator already gave up on — a kill racing a
                        // final in-flight result, or a duplicate — and
                        // merging it would double count the shard's edges;
                        // it is discarded by id.
                        match busy.get(&w).map(|o| o.id) {
                            Some(id) if res.shard_id == id => {
                                let Some(o) = busy.remove(&w) else {
                                    continue;
                                };
                                stats.merge(&res.stats);
                                summaries.push(ShardSummary {
                                    ranks: res.ranks.clone(),
                                    attempt: o.shard.attempt,
                                    prepare_s: res.prepare_s,
                                    query_s: res.query_s,
                                    stats: res.stats.clone(),
                                    n_edges: res.edges.len(),
                                });
                                segments.push((res.ranks, res.edges));
                            }
                            Some(id) if res.shard_id < id => {
                                metrics.stale_frames.inc();
                            }
                            Some(id) => {
                                return Err(CoordError::Internal(format!(
                                    "worker {w} answered assignment {} while {} was outstanding",
                                    res.shard_id, id
                                )));
                            }
                            None => {
                                metrics.stale_frames.inc();
                            }
                        }
                    }
                    Message::Error(id, text) => {
                        // Engine-side failure: the worker survives, the
                        // shard is re-planned (possibly back onto the same
                        // worker). Stale error frames are discarded like
                        // stale results.
                        match busy.get(&w).map(|o| o.id) {
                            Some(outstanding) if id == outstanding => {
                                let Some(o) = busy.remove(&w) else {
                                    continue;
                                };
                                eprintln!("dist: worker {w} reported: {text}");
                                replan(o.shard, live(&workers), &mut pending, &metrics)?;
                            }
                            _ => {
                                metrics.stale_frames.inc();
                            }
                        }
                    }
                    Message::Pong(_) => {
                        metrics.pongs.inc();
                    }
                    Message::Progress {
                        assignment_id,
                        frontier,
                    } => {
                        metrics.progress_frames.inc();
                        if let Some(o) = busy.get_mut(&w) {
                            if o.id == assignment_id {
                                o.progress_at = Instant::now();
                                // Batch frontiers are absolute ranks;
                                // streaming ones are column counts and the
                                // entry is not stealable, so the clamp
                                // only guards the remaining() arithmetic.
                                let f = (frontier as usize)
                                    .clamp(o.shard.ranks.start, o.shard.ranks.end);
                                o.frontier = o.frontier.max(f);
                            }
                        }
                    }
                    Message::StealGrant {
                        assignment_id,
                        new_end,
                    } => match busy.get_mut(&w) {
                        Some(o) if o.id == assignment_id => {
                            o.steal_sent = false;
                            o.progress_at = Instant::now();
                            let new_end = new_end as usize;
                            if new_end > o.shard.ranks.start && new_end < o.shard.ranks.end {
                                // A binding grant: the victim keeps
                                // start..new_end, the tail re-enters the
                                // queue for the next idle worker.
                                let tail = new_end..o.shard.ranks.end;
                                o.shard.ranks.end = new_end;
                                o.frontier = o.frontier.min(new_end);
                                metrics.steals.inc();
                                eprintln!(
                                    "dist: stole {tail:?} from worker {w} (keeps {:?})",
                                    o.shard.ranks
                                );
                                pending.push_back(PendingShard {
                                    ranks: tail,
                                    attempt: o.shard.attempt,
                                });
                            }
                            // new_end == the current end is a denial
                            // (interval nearly exhausted, or a streaming
                            // session): nothing moves.
                        }
                        _ => {
                            metrics.stale_frames.inc();
                        }
                    },
                    msg @ (Message::Assign(_)
                    | Message::Load(_)
                    | Message::Hello(_)
                    | Message::Ping(_)
                    | Message::Steal { .. }) => {
                        return Err(CoordError::Internal(format!(
                            "worker {w} sent a coordinator-side frame: {msg:?}"
                        )));
                    }
                }
            }
            Ok(Event::Closed(w, why)) => {
                if workers[w].alive {
                    workers[w].abandon();
                    metrics.worker_failures.inc();
                    if let Some(o) = busy.remove(&w) {
                        eprintln!(
                            "dist: worker {w} died ({why}); re-planning {:?}",
                            o.shard.ranks
                        );
                        replan(o.shard, live(&workers), &mut pending, &metrics)?;
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Deadline work (pings, hung checks, the grace window)
                // happens at the top of the loop.
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // Unreachable while this function holds `tx`; kept as a
                // structured error rather than a panic.
                return Err(CoordError::Internal(
                    "coordinator event channel disconnected".into(),
                ));
            }
        }
    }

    drop(acceptor); // stop admitting; join the acceptor thread
    for h in &mut workers {
        h.shutdown();
    }

    let n_windows = expected_windows(cfg.mode, engine_cfg, data.len(), &query);
    let matrices = merge_shard_edges(
        data.n_series(),
        query.threshold,
        engine_cfg.edge_rule,
        n_windows,
        segments,
    );
    Ok(DistResult {
        matrices,
        stats,
        shards: summaries,
        coord: metrics.snapshot(transport_kind, t_start.elapsed().as_secs_f64()),
    })
}

/// Reads one frame (bounded by [`proto::MAX_HELLO_FRAME`] — the peer is
/// not yet trusted) and validates it as a compatible handshake. Accepts
/// any version in `MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION`; for peers
/// older than v3 the heartbeat capability bit is masked off (they could
/// not honour it), so the caller can branch on capabilities alone.
fn handshake(mut reader: &mut (dyn Read + Send), needed_cap: u32) -> Result<proto::Hello, String> {
    let payload = frame::read_from(&mut reader, proto::MAX_HELLO_FRAME)
        .map_err(|e| format!("cannot read the handshake frame: {e}"))?
        .ok_or("link closed before the handshake")?;
    match proto::decode(&payload).map_err(|e| format!("bad handshake frame: {e}"))? {
        Message::Hello(mut h) => {
            if h.version < proto::MIN_PROTOCOL_VERSION || h.version > proto::PROTOCOL_VERSION {
                return Err(format!(
                    "protocol version mismatch: worker speaks v{}, coordinator accepts v{}..=v{}",
                    h.version,
                    proto::MIN_PROTOCOL_VERSION,
                    proto::PROTOCOL_VERSION
                ));
            }
            if h.version < 3 {
                h.caps &= !proto::CAP_HEARTBEAT;
            }
            if h.caps & needed_cap != needed_cap {
                return Err(format!(
                    "worker lacks the required capability bit {needed_cap:#x} (has {:#x})",
                    h.caps
                ));
            }
            Ok(h)
        }
        other => Err(format!("expected Hello, got {other:?}")),
    }
}

/// The per-worker reader thread: frames off the link become events on
/// the coordinator's channel until EOF, damage, or channel teardown.
fn reader_loop(idx: usize, mut reader: &mut (dyn Read + Send), tx: &mpsc::Sender<Event>) {
    loop {
        match frame::read_from(&mut reader, proto::MAX_FRAME) {
            Ok(Some(payload)) => match proto::decode(&payload) {
                Ok(msg) => {
                    if tx.send(Event::Msg(idx, msg)).is_err() {
                        break;
                    }
                }
                Err(e) => {
                    let _ = tx.send(Event::Closed(idx, format!("protocol damage: {e}")));
                    break;
                }
            },
            Ok(None) => {
                let _ = tx.send(Event::Closed(idx, "clean EOF".into()));
                break;
            }
            Err(e) => {
                let _ = tx.send(Event::Closed(idx, e.to_string()));
                break;
            }
        }
    }
}

type Link = (Box<dyn Transport>, Box<dyn Read + Send>, proto::Hello);

/// Runs the blocking [`handshake`] read on a helper thread with a
/// deadline — anonymous pipes have no read timeouts, so without this a
/// spawned worker that never writes its `Hello` (a hung binary, or one
/// speaking protocol v1, which waits for an `Assign` first) would
/// deadlock the coordinator. On success the read half is handed back; on
/// timeout the helper thread stays parked in `read()` until the caller
/// kills the transport, which severs the pipe and lets it exit.
fn handshake_with_deadline(
    mut reader: Box<dyn Read + Send>,
    deadline: Duration,
    needed_cap: u32,
) -> Result<(Box<dyn Read + Send>, proto::Hello), String> {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let res = handshake(&mut *reader, needed_cap);
        let _ = tx.send((reader, res));
    });
    match rx.recv_timeout(deadline) {
        Ok((reader, Ok(hello))) => Ok((reader, hello)),
        Ok((_, Err(e))) => Err(e),
        Err(_) => Err(format!("no handshake within {deadline:?}")),
    }
}

/// Spawns one worker child over stdio pipes and validates its handshake.
/// A failure here is fatal to the run — the configured worker binary
/// itself is broken or incompatible.
fn spawn_worker(
    worker_bin: &std::path::Path,
    inject_fail: bool,
    handshake_timeout: Duration,
    needed_cap: u32,
) -> Result<Link, CoordError> {
    let mut cmd = Command::new(worker_bin);
    cmd.stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    if inject_fail {
        cmd.env(worker::FAIL_ENV, "1");
    }
    let child = cmd
        .spawn()
        .map_err(|e| CoordError::Internal(format!("cannot spawn {worker_bin:?}: {e}")))?;
    let mut transport = ChildTransport::new(child);
    let reader = transport
        .take_reader()
        .ok_or_else(|| CoordError::Internal("spawned child has no stdout pipe".into()))?;
    match handshake_with_deadline(reader, handshake_timeout, needed_cap) {
        Ok((reader, hello)) => Ok((Box::new(transport), reader, hello)),
        Err(e) => {
            transport.kill();
            Err(CoordError::Internal(format!(
                "worker {worker_bin:?} handshake failed: {e}"
            )))
        }
    }
}

/// Accepts workers off the listener until `want` have completed the
/// [`handshake`] or `accept_timeout` closes the window. The peer is not
/// yet trusted, so its first-frame read is bounded by the handshake
/// timeout as a socket read timeout (lifted by `handshake_complete` once
/// validated) and by [`proto::MAX_HELLO_FRAME`] — and each handshake
/// runs on its **own thread**, so a peer that connects and then says
/// nothing (a load-balancer probe holding the socket open) cannot
/// serialise the accept loop and starve legitimate workers queued behind
/// it. A peer that fails the handshake — a port scanner, a health check,
/// a version-mismatched worker — is dropped without costing a worker
/// slot or the run. Returns an error only when the window closes with
/// zero workers.
fn accept_tcp_workers(
    listener: &TcpListener,
    want: usize,
    accept_timeout: Duration,
    handshake_timeout: Duration,
    io_timeout: Duration,
    needed_cap: u32,
) -> Result<Vec<Link>, CoordError> {
    listener
        .set_nonblocking(true)
        .map_err(|e| CoordError::Internal(format!("cannot poll the TCP listener: {e}")))?;
    let deadline = Instant::now() + accept_timeout;
    let (tx, rx) = mpsc::channel::<Result<Link, String>>();
    let mut links: Vec<Link> = Vec::with_capacity(want);
    let mut in_flight = 0usize;
    let collect = |done: Result<Link, String>, links: &mut Vec<Link>| match done {
        Ok(link) => {
            eprintln!("dist: accepted worker {}", links.len());
            links.push(link);
        }
        Err(e) => eprintln!("dist: rejecting peer: {e}"),
    };
    while links.len() < want {
        while let Ok(done) = rx.try_recv() {
            in_flight -= 1;
            collect(done, &mut links);
        }
        if links.len() >= want {
            break;
        }
        if Instant::now() >= deadline {
            if in_flight == 0 {
                break;
            }
            // The window is closed; only handshakes already in flight can
            // still qualify. Each is bounded by the pre-trust socket
            // read timeout, so this drains quickly.
            if let Ok(done) = rx.recv_timeout(Duration::from_millis(200)) {
                in_flight -= 1;
                collect(done, &mut links);
            }
            continue;
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                // Some platforms (Windows, several BSDs) hand accepted
                // sockets the listener's nonblocking flag; the handshake
                // relies on blocking reads bounded by the read timeout.
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(handshake_timeout));
                let _ = stream.set_write_timeout(Some(io_timeout.max(Duration::from_secs(1))));
                match TcpTransport::new(stream) {
                    Ok(mut transport) => {
                        let Some(mut reader) = transport.take_reader() else {
                            eprintln!("dist: dropping {peer}: read half unavailable");
                            continue;
                        };
                        let tx = tx.clone();
                        in_flight += 1;
                        std::thread::spawn(move || {
                            let res = handshake(&mut *reader, needed_cap)
                                .map(|h| (Box::new(transport) as Box<dyn Transport>, reader, h))
                                .map_err(|e| format!("{peer}: {e}"));
                            let _ = tx.send(res);
                        });
                    }
                    Err(e) => eprintln!("dist: dropping {peer}: {e}"),
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => return Err(CoordError::Internal(format!("TCP accept failed: {e}"))),
        }
    }
    if links.is_empty() {
        return Err(CoordError::NoWorkers {
            reason: format!(
                "no worker connected within {accept_timeout:?} — start workers with \
                 `dangoron-shard --connect ADDR`"
            ),
        });
    }
    if links.len() < want {
        eprintln!(
            "dist: accept window closed with {}/{want} workers; proceeding",
            links.len()
        );
    }
    Ok(links)
}

/// The mid-run membership door (elastic TCP mode): keeps accepting and
/// handshaking peers until the run ends, turning each validated one into
/// an [`Event::Joined`]. Owns the listener; per-peer handshakes run on
/// their own short-lived threads, exactly like the initial window.
fn accept_loop(
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    tx: mpsc::Sender<Event>,
    handshake_timeout: Duration,
    io_timeout: Duration,
    needed_cap: u32,
) {
    // The listener is already nonblocking from the initial window.
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, peer)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(handshake_timeout));
                let _ = stream.set_write_timeout(Some(io_timeout.max(Duration::from_secs(1))));
                match TcpTransport::new(stream) {
                    Ok(mut transport) => {
                        let Some(mut reader) = transport.take_reader() else {
                            eprintln!("dist: dropping late peer {peer}: read half unavailable");
                            continue;
                        };
                        let tx = tx.clone();
                        std::thread::spawn(move || match handshake(&mut *reader, needed_cap) {
                            Ok(hello) => {
                                // A send failure means the run already
                                // ended; the transport drops (and kills
                                // the link) on its way out.
                                let _ = tx.send(Event::Joined(Box::new(transport), reader, hello));
                            }
                            Err(e) => eprintln!("dist: rejecting late peer {peer}: {e}"),
                        });
                    }
                    Err(e) => eprintln!("dist: dropping late peer {peer}: {e}"),
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(_) => break,
        }
    }
}

/// Runs the same shard plan **in-process** (no worker processes): every
/// shard goes through the identical [`worker::execute`] path and the
/// identical merge, sequentially. The harness falls back to this when the
/// worker binary is not built, and tests use it as the ground truth the
/// process tier must reproduce.
pub fn run_in_process(
    n_shards: usize,
    mode: WorkerMode,
    engine_cfg: &DangoronConfig,
    data: &TimeSeriesMatrix,
    query: SlidingQuery,
) -> Result<DistResult, CoordError> {
    let t_start = Instant::now();
    let plan = ShardPlan::balanced(data.n_series(), n_shards);
    if plan.shards().is_empty() {
        return Err(CoordError::Internal(
            "workload has no pairs to shard".into(),
        ));
    }
    let mut segments: Vec<ShardEdges> = Vec::new();
    let mut summaries = Vec::new();
    let mut stats = PruningStats::default();
    for s in plan.shards() {
        let a = Assignment {
            shard_id: s.id as u64,
            ranks: s.ranks.clone(),
            mode,
            config: engine_cfg.clone(),
            query,
        };
        let r = worker::execute(&a, data)?;
        stats.merge(&r.stats);
        summaries.push(ShardSummary {
            ranks: r.ranks.clone(),
            attempt: 0,
            prepare_s: r.prepare_s,
            query_s: r.query_s,
            stats: r.stats.clone(),
            n_edges: r.edges.len(),
        });
        segments.push((r.ranks, r.edges));
    }
    let n_windows = expected_windows(mode, engine_cfg, data.len(), &query);
    let matrices = merge_shard_edges(
        data.n_series(),
        query.threshold,
        engine_cfg.edge_rule,
        n_windows,
        segments,
    );
    Ok(DistResult {
        matrices,
        stats,
        shards: summaries,
        coord: CoordStats {
            n_shards_planned: plan.shards().len(),
            transport: "in-process".to_string(),
            wall_s: t_start.elapsed().as_secs_f64(),
            ..Default::default()
        },
    })
}

/// The unsharded reference: the whole triangle through the same
/// [`worker::execute`] path (for batch mode this is exactly
/// `Dangoron::prepare` + `run`). The coordinator's `--verify` compares
/// against it bitwise.
pub fn run_single_process(
    mode: WorkerMode,
    engine_cfg: &DangoronConfig,
    data: &TimeSeriesMatrix,
    query: SlidingQuery,
) -> Result<DistResult, CoordError> {
    run_in_process(1, mode, engine_cfg, data, query).map(|mut r| {
        debug_assert_eq!(r.shards.len(), 1);
        debug_assert_eq!(r.shards[0].ranks, 0..triangular::count(data.n_series()));
        r.coord.n_shards_planned = 1;
        r
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::windows_bit_identical;
    use dangoron::BoundMode;
    use tsdata::generators;

    fn workload() -> (TimeSeriesMatrix, SlidingQuery, DangoronConfig) {
        let data = generators::clustered_matrix(10, 300, 2, 0.5, 23).unwrap();
        let query = SlidingQuery {
            start: 0,
            end: 300,
            window: 60,
            step: 20,
            threshold: 0.7,
        };
        let cfg = DangoronConfig {
            basic_window: 20,
            bound: BoundMode::PaperJump { slack: 0.0 },
            ..Default::default()
        };
        (data, query, cfg)
    }

    #[test]
    fn in_process_sharding_is_invariant_in_shard_count() {
        let (data, query, cfg) = workload();
        let single = run_single_process(WorkerMode::Batch, &cfg, &data, query).unwrap();
        for k in [2usize, 4, 8, 45] {
            let sharded = run_in_process(k, WorkerMode::Batch, &cfg, &data, query).unwrap();
            assert!(
                windows_bit_identical(&sharded.matrices, &single.matrices),
                "k={k}"
            );
            assert_eq!(sharded.stats, single.stats, "k={k}");
        }
    }

    #[test]
    fn in_process_streaming_replay_is_invariant_in_shard_count() {
        let (data, query, cfg) = workload();
        let mode = WorkerMode::StreamingReplay {
            initial_cols: 140,
            chunk_cols: 60,
        };
        let single = run_single_process(mode, &cfg, &data, query).unwrap();
        assert_eq!(
            single.matrices.len(),
            expected_windows(mode, &cfg, data.len(), &query)
        );
        for k in [2usize, 5] {
            let sharded = run_in_process(k, mode, &cfg, &data, query).unwrap();
            assert!(
                windows_bit_identical(&sharded.matrices, &single.matrices),
                "k={k}"
            );
            assert_eq!(sharded.stats, single.stats, "k={k}");
        }
    }

    #[test]
    fn expected_windows_accounts_for_partial_basic_windows() {
        let (_, query, cfg) = workload();
        assert_eq!(
            expected_windows(WorkerMode::Batch, &cfg, 300, &query),
            query.n_windows()
        );
        let stream = WorkerMode::StreamingReplay {
            initial_cols: 100,
            chunk_cols: 50,
        };
        // 310 columns: the last 10 never complete a basic window.
        assert_eq!(
            expected_windows(stream, &cfg, 310, &query),
            expected_windows(stream, &cfg, 300, &query)
        );
        assert_eq!(expected_windows(stream, &cfg, 59, &query), 0);
    }

    #[test]
    fn handshake_rejects_version_and_capability_mismatches() {
        use proto::{Hello, CAP_BATCH, CAP_STREAMING};
        let frame_of = |h: Hello| frame::encode(&proto::encode(&Message::Hello(h)));

        let mut ok: &[u8] = &frame_of(Hello::local());
        let boxed: &mut (dyn Read + Send) = &mut ok;
        handshake(boxed, CAP_BATCH).unwrap();

        let mut old: &[u8] = &frame_of(Hello {
            version: 1,
            caps: CAP_BATCH,
        });
        let err = handshake(&mut old, CAP_BATCH).unwrap_err();
        assert!(err.contains("version"), "{err}");

        let mut future: &[u8] = &frame_of(Hello {
            version: proto::PROTOCOL_VERSION + 1,
            caps: CAP_BATCH,
        });
        let err = handshake(&mut future, CAP_BATCH).unwrap_err();
        assert!(err.contains("version"), "{err}");

        let mut weak: &[u8] = &frame_of(Hello {
            version: proto::PROTOCOL_VERSION,
            caps: CAP_BATCH,
        });
        let err = handshake(&mut weak, CAP_STREAMING).unwrap_err();
        assert!(err.contains("capability"), "{err}");

        // A non-Hello first frame is rejected.
        let mut wrong: &[u8] = &frame::encode(&proto::encode(&Message::Error(0, "hi".into())));
        assert!(handshake(&mut wrong, CAP_BATCH).is_err());

        // An oversized first frame is rejected by the handshake limit
        // before its payload is even read.
        let mut big: &[u8] = &frame::encode(&[0u8; 4096]);
        assert!(handshake(&mut big, CAP_BATCH).is_err());
    }

    #[test]
    fn handshake_accepts_v2_and_masks_its_heartbeat_bit() {
        use proto::{Hello, CAP_BATCH, CAP_HEARTBEAT, CAP_STREAMING};
        let frame_of = |h: Hello| frame::encode(&proto::encode(&Message::Hello(h)));

        let mut v2: &[u8] = &frame_of(Hello {
            version: 2,
            caps: CAP_BATCH | CAP_STREAMING,
        });
        let h = handshake(&mut v2, CAP_BATCH).unwrap();
        assert_eq!(h.version, 2);
        assert_eq!(h.caps & CAP_HEARTBEAT, 0);

        // A lying v2 peer advertising the heartbeat bit has it stripped:
        // the coordinator must never send elastic frames to a v2 worker.
        let mut liar: &[u8] = &frame_of(Hello {
            version: 2,
            caps: CAP_BATCH | CAP_STREAMING | CAP_HEARTBEAT,
        });
        let h = handshake(&mut liar, CAP_BATCH).unwrap();
        assert_eq!(h.caps & CAP_HEARTBEAT, 0);

        let mut v3: &[u8] = &frame_of(Hello::local());
        let h = handshake(&mut v3, CAP_BATCH).unwrap();
        assert_ne!(h.caps & CAP_HEARTBEAT, 0);
    }

    #[test]
    fn coord_error_display_is_structured() {
        let e = CoordError::NoSurvivors {
            pending: 3,
            in_flight: 0,
            completed: 5,
        };
        let s = e.to_string();
        assert!(s.contains("3 shard(s) pending"), "{s}");
        assert!(s.contains("5 completed"), "{s}");
        let e = CoordError::AttemptsExhausted {
            ranks: 10..20,
            attempts: 4,
        };
        assert!(e.to_string().contains("10..20"), "{}", e.to_string());
        let e: CoordError = String::from("plain").into();
        assert_eq!(e.to_string(), "plain");
    }
}
