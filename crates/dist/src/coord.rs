//! The shard coordinator: process spawning, assignment, fault handling
//! and result collection.
//!
//! The coordinator owns the shard plan and a pool of `dangoron-shard`
//! worker processes talking length-prefixed frames over their stdio
//! pipes. Per round it ships one [`Assignment`] to every idle worker,
//! then waits on a single event channel fed by one reader thread per
//! worker. Three things can happen to an outstanding shard:
//!
//! * **result** — its sorted edge buffer and counters are recorded;
//! * **worker death** (pipe EOF, write failure, protocol damage) — the
//!   shard's rank interval is *re-planned*: split across the surviving
//!   workers ([`crate::plan::split_range`]) and re-enqueued;
//! * **timeout** — the worker is killed and the shard re-planned the same
//!   way.
//!
//! Because shards are pure functions of their rank interval, re-planning
//! never changes the answer: any disjoint cover of the triangle merges to
//! the same matrices ([`crate::merge`]), so even a run that lost workers
//! mid-flight is bit-identical to the single-process engine. Retries are
//! counted in [`CoordStats`] and surface in the BENCH `shards` section.

use crate::merge::{merge_shard_edges, ShardEdges};
use crate::plan::{split_range, ShardPlan};
use crate::proto::{self, Assignment, Message, WorkerMode};
use crate::worker;
use bytes::frame;
use dangoron::{DangoronConfig, PruningStats};
use sketch::{triangular, SlidingQuery, ThresholdedMatrix};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::ops::Range;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};
use tsdata::TimeSeriesMatrix;

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Path to the `dangoron-shard` worker binary.
    pub worker_bin: PathBuf,
    /// Number of shards to plan.
    pub n_shards: usize,
    /// Worker processes to spawn (clamped to the shard count).
    pub n_workers: usize,
    /// Engine threads *inside* each worker process.
    pub worker_threads: usize,
    /// Batch query or streaming replay.
    pub mode: WorkerMode,
    /// Per-assignment deadline before the worker is declared hung.
    pub timeout: Duration,
    /// Crash injection: this worker index aborts on its first assignment
    /// (sets [`worker::FAIL_ENV`] in the child's environment) — the
    /// replan path's deterministic test hook.
    pub kill_worker: Option<usize>,
    /// Upper bound on re-plan generations per rank interval before the
    /// run is abandoned.
    pub max_attempts: u32,
}

impl CoordinatorConfig {
    /// Defaults: one worker per shard, single-threaded workers, batch
    /// mode, a generous 120 s deadline.
    pub fn new(worker_bin: PathBuf, n_shards: usize) -> Self {
        Self {
            worker_bin,
            n_shards,
            n_workers: n_shards,
            worker_threads: 1,
            mode: WorkerMode::Batch,
            timeout: Duration::from_secs(120),
            kill_worker: None,
            max_attempts: 4,
        }
    }
}

/// Per-completed-shard accounting.
#[derive(Debug, Clone)]
pub struct ShardSummary {
    /// The rank interval (post-replan intervals can be finer than the
    /// original plan).
    pub ranks: Range<usize>,
    /// Which re-plan generation produced it (0 = original plan).
    pub attempt: u32,
    /// Worker-side prepare/open wall seconds.
    pub prepare_s: f64,
    /// Worker-side query/drain wall seconds.
    pub query_s: f64,
    /// The shard's pruning counters.
    pub stats: PruningStats,
    /// Edges the shard contributed.
    pub n_edges: usize,
}

/// Run-level coordinator accounting.
#[derive(Debug, Clone, Default)]
pub struct CoordStats {
    /// Shards in the original plan.
    pub n_shards_planned: usize,
    /// Worker processes spawned.
    pub n_workers: usize,
    /// Re-plan events (worker death, timeout, or worker-reported error).
    pub replans: usize,
    /// Workers lost over the run.
    pub worker_failures: usize,
    /// End-to-end wall seconds (spawn → merged matrices).
    pub wall_s: f64,
}

/// The distributed run's output: merged matrices (bit-identical to the
/// single-process engine), summed counters, and the audit trail.
#[derive(Debug, Clone)]
pub struct DistResult {
    /// One finalized matrix per window.
    pub matrices: Vec<ThresholdedMatrix>,
    /// Sum of every shard's [`PruningStats`] — equal to the unsharded
    /// engine's counters.
    pub stats: PruningStats,
    /// Per-shard accounting, in completion order.
    pub shards: Vec<ShardSummary>,
    /// Run-level accounting.
    pub coord: CoordStats,
}

enum Event {
    Msg(usize, Message),
    Closed(usize, String),
}

struct WorkerHandle {
    child: Child,
    stdin: Option<ChildStdin>,
    reader: Option<std::thread::JoinHandle<()>>,
    alive: bool,
}

impl WorkerHandle {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        let stdin = self
            .stdin
            .as_mut()
            .ok_or_else(|| io::Error::other("worker stdin already closed"))?;
        frame::write_to(stdin, payload)
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
    }

    fn shutdown(&mut self) {
        self.stdin.take(); // EOF → worker exits its serve loop
        let _ = self.child.wait();
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

#[derive(Debug, Clone)]
struct PendingShard {
    ranks: Range<usize>,
    attempt: u32,
}

/// Locates the `dangoron-shard` binary: the `DANGORON_SHARD_BIN`
/// environment variable, then siblings of the current executable (covers
/// `target/<profile>/` for binaries and `target/<profile>/deps/` for test
/// executables).
pub fn default_worker_path() -> Option<PathBuf> {
    let name = format!("dangoron-shard{}", std::env::consts::EXE_SUFFIX);
    if let Ok(p) = std::env::var("DANGORON_SHARD_BIN") {
        let p = PathBuf::from(p);
        if p.exists() {
            return Some(p);
        }
    }
    let exe = std::env::current_exe().ok()?;
    let dir = exe.parent()?;
    let mut candidates = vec![dir.join(&name)];
    if let Some(up) = dir.parent() {
        candidates.push(up.join(&name));
    }
    candidates.into_iter().find(|c| c.exists())
}

/// Number of windows the merged result must cover for a mode.
pub fn expected_windows(
    mode: WorkerMode,
    engine_cfg: &DangoronConfig,
    data_cols: usize,
    query: &SlidingQuery,
) -> usize {
    match mode {
        WorkerMode::Batch => query.n_windows(),
        WorkerMode::StreamingReplay { .. } => {
            // A streaming session only sees whole basic windows.
            let covered = data_cols / engine_cfg.basic_window * engine_cfg.basic_window;
            if covered < query.window {
                0
            } else {
                (covered - query.window) / query.step + 1
            }
        }
    }
}

/// Runs the distributed query across worker processes.
pub fn run(
    cfg: &CoordinatorConfig,
    engine_cfg: &DangoronConfig,
    data: &TimeSeriesMatrix,
    query: SlidingQuery,
) -> Result<DistResult, String> {
    let t_start = Instant::now();
    let plan = ShardPlan::balanced(data.n_series(), cfg.n_shards);
    if plan.shards().is_empty() {
        return Err("workload has no pairs to shard".into());
    }
    let n_workers = cfg.n_workers.clamp(1, plan.shards().len());

    let (tx, rx) = mpsc::channel::<Event>();
    let mut workers = Vec::with_capacity(n_workers);
    for w in 0..n_workers {
        workers.push(spawn_worker(cfg, w, tx.clone())?);
    }
    drop(tx);

    let mut pending: VecDeque<PendingShard> = plan
        .shards()
        .iter()
        .map(|s| PendingShard {
            ranks: s.ranks.clone(),
            attempt: 0,
        })
        .collect();
    // worker → (shard, deadline, assignment id)
    let mut busy: HashMap<usize, (PendingShard, Instant, u64)> = HashMap::new();
    let mut next_id: u64 = 0;
    let mut segments: Vec<ShardEdges> = Vec::new();
    let mut summaries: Vec<ShardSummary> = Vec::new();
    let mut stats = PruningStats::default();
    let mut coord = CoordStats {
        n_shards_planned: plan.shards().len(),
        n_workers,
        ..Default::default()
    };

    let live = |workers: &[WorkerHandle]| workers.iter().filter(|h| h.alive).count();
    let replan = |shard: PendingShard,
                  survivors: usize,
                  pending: &mut VecDeque<PendingShard>,
                  coord: &mut CoordStats|
     -> Result<(), String> {
        if shard.attempt + 1 > cfg.max_attempts {
            return Err(format!(
                "shard {:?} exceeded {} re-plan attempts",
                shard.ranks, cfg.max_attempts
            ));
        }
        coord.replans += 1;
        for sub in split_range(shard.ranks.clone(), survivors.max(1)) {
            pending.push_back(PendingShard {
                ranks: sub,
                attempt: shard.attempt + 1,
            });
        }
        Ok(())
    };

    loop {
        // Dispatch to every idle live worker.
        for w in 0..workers.len() {
            if pending.is_empty() {
                break;
            }
            if !workers[w].alive || busy.contains_key(&w) {
                continue;
            }
            let shard = pending.pop_front().expect("checked non-empty");
            let id = next_id;
            next_id += 1;
            let assignment = Assignment {
                shard_id: id,
                ranks: shard.ranks.clone(),
                mode: cfg.mode,
                config: DangoronConfig {
                    threads: cfg.worker_threads,
                    ..engine_cfg.clone()
                },
                query,
                data: data.clone(),
            };
            let payload = proto::encode(&Message::Assign(assignment));
            if payload.len() > proto::MAX_FRAME {
                return Err(format!(
                    "assignment payload of {} bytes exceeds the {}-byte frame \
                     limit — the workload matrix is too large for one frame",
                    payload.len(),
                    proto::MAX_FRAME
                ));
            }
            match workers[w].send(&payload) {
                Ok(()) => {
                    busy.insert(w, (shard, Instant::now() + cfg.timeout, id));
                }
                Err(_) => {
                    // Write failure ⇒ the worker is gone.
                    workers[w].alive = false;
                    workers[w].kill();
                    coord.worker_failures += 1;
                    replan(shard, live(&workers), &mut pending, &mut coord)?;
                }
            }
        }
        if busy.is_empty() {
            if pending.is_empty() {
                break;
            }
            if live(&workers) == 0 {
                return Err("every worker died with shards outstanding".into());
            }
            continue;
        }

        // Wait for the next event or the earliest deadline.
        let deadline = busy
            .values()
            .map(|(_, d, _)| *d)
            .min()
            .expect("busy is non-empty");
        let wait = deadline.saturating_duration_since(Instant::now());
        match rx.recv_timeout(wait) {
            Ok(Event::Msg(w, Message::Result(res))) => {
                // A result from a worker we already gave up on is stale:
                // its shard has been re-planned, so it must be dropped.
                if let Some((shard, _, id)) = busy.remove(&w) {
                    if res.shard_id != id {
                        return Err(format!(
                            "worker {w} answered assignment {} while {} was outstanding",
                            res.shard_id, id
                        ));
                    }
                    stats.merge(&res.stats);
                    summaries.push(ShardSummary {
                        ranks: res.ranks.clone(),
                        attempt: shard.attempt,
                        prepare_s: res.prepare_s,
                        query_s: res.query_s,
                        stats: res.stats.clone(),
                        n_edges: res.edges.len(),
                    });
                    segments.push((res.ranks, res.edges));
                }
            }
            Ok(Event::Msg(w, Message::Error(text))) => {
                // Engine-side failure: the worker survives, the shard is
                // re-planned (possibly back onto the same worker).
                if let Some((shard, _, _)) = busy.remove(&w) {
                    eprintln!("dist: worker {w} reported: {text}");
                    replan(shard, live(&workers), &mut pending, &mut coord)?;
                }
            }
            Ok(Event::Msg(w, Message::Assign(_))) => {
                return Err(format!("worker {w} sent an assignment to the coordinator"));
            }
            Ok(Event::Closed(w, why)) => {
                if workers[w].alive {
                    workers[w].alive = false;
                    workers[w].kill();
                    coord.worker_failures += 1;
                    if let Some((shard, _, _)) = busy.remove(&w) {
                        eprintln!(
                            "dist: worker {w} died ({why}); re-planning {:?}",
                            shard.ranks
                        );
                        replan(shard, live(&workers), &mut pending, &mut coord)?;
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                let now = Instant::now();
                let expired: Vec<usize> = busy
                    .iter()
                    .filter(|(_, (_, d, _))| *d <= now)
                    .map(|(w, _)| *w)
                    .collect();
                for w in expired {
                    let (shard, _, _) = busy.remove(&w).expect("just listed");
                    workers[w].alive = false;
                    workers[w].kill();
                    coord.worker_failures += 1;
                    eprintln!("dist: worker {w} timed out; re-planning {:?}", shard.ranks);
                    replan(shard, live(&workers), &mut pending, &mut coord)?;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err("every worker reader thread terminated".into());
            }
        }
    }

    for h in &mut workers {
        h.shutdown();
    }

    let n_windows = expected_windows(cfg.mode, engine_cfg, data.len(), &query);
    let matrices = merge_shard_edges(
        data.n_series(),
        query.threshold,
        engine_cfg.edge_rule,
        n_windows,
        segments,
    );
    coord.wall_s = t_start.elapsed().as_secs_f64();
    Ok(DistResult {
        matrices,
        stats,
        shards: summaries,
        coord,
    })
}

/// Runs the same shard plan **in-process** (no worker processes): every
/// shard goes through the identical [`worker::execute`] path and the
/// identical merge, sequentially. The harness falls back to this when the
/// worker binary is not built, and tests use it as the ground truth the
/// process tier must reproduce.
pub fn run_in_process(
    n_shards: usize,
    mode: WorkerMode,
    engine_cfg: &DangoronConfig,
    data: &TimeSeriesMatrix,
    query: SlidingQuery,
) -> Result<DistResult, String> {
    let t_start = Instant::now();
    let plan = ShardPlan::balanced(data.n_series(), n_shards);
    if plan.shards().is_empty() {
        return Err("workload has no pairs to shard".into());
    }
    let mut segments: Vec<ShardEdges> = Vec::new();
    let mut summaries = Vec::new();
    let mut stats = PruningStats::default();
    for s in plan.shards() {
        let a = Assignment {
            shard_id: s.id as u64,
            ranks: s.ranks.clone(),
            mode,
            config: engine_cfg.clone(),
            query,
            data: data.clone(),
        };
        let r = worker::execute(&a)?;
        stats.merge(&r.stats);
        summaries.push(ShardSummary {
            ranks: r.ranks.clone(),
            attempt: 0,
            prepare_s: r.prepare_s,
            query_s: r.query_s,
            stats: r.stats.clone(),
            n_edges: r.edges.len(),
        });
        segments.push((r.ranks, r.edges));
    }
    let n_windows = expected_windows(mode, engine_cfg, data.len(), &query);
    let matrices = merge_shard_edges(
        data.n_series(),
        query.threshold,
        engine_cfg.edge_rule,
        n_windows,
        segments,
    );
    Ok(DistResult {
        matrices,
        stats,
        shards: summaries,
        coord: CoordStats {
            n_shards_planned: plan.shards().len(),
            n_workers: 0,
            replans: 0,
            worker_failures: 0,
            wall_s: t_start.elapsed().as_secs_f64(),
        },
    })
}

/// The unsharded reference: the whole triangle through the same
/// [`worker::execute`] path (for batch mode this is exactly
/// `Dangoron::prepare` + `run`). The coordinator's `--verify` compares
/// against it bitwise.
pub fn run_single_process(
    mode: WorkerMode,
    engine_cfg: &DangoronConfig,
    data: &TimeSeriesMatrix,
    query: SlidingQuery,
) -> Result<DistResult, String> {
    run_in_process(1, mode, engine_cfg, data, query).map(|mut r| {
        debug_assert_eq!(r.shards.len(), 1);
        debug_assert_eq!(r.shards[0].ranks, 0..triangular::count(data.n_series()));
        r.coord.n_shards_planned = 1;
        r
    })
}

fn spawn_worker(
    cfg: &CoordinatorConfig,
    idx: usize,
    tx: mpsc::Sender<Event>,
) -> Result<WorkerHandle, String> {
    let mut cmd = Command::new(&cfg.worker_bin);
    cmd.stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    if cfg.kill_worker == Some(idx) {
        cmd.env(worker::FAIL_ENV, "1");
    }
    let mut child = cmd
        .spawn()
        .map_err(|e| format!("cannot spawn {:?}: {e}", cfg.worker_bin))?;
    let stdin = child.stdin.take().expect("piped stdin");
    let mut stdout = child.stdout.take().expect("piped stdout");
    let reader = std::thread::spawn(move || loop {
        match frame::read_from(&mut stdout, proto::MAX_FRAME) {
            Ok(Some(payload)) => match proto::decode(&payload) {
                Ok(msg) => {
                    if tx.send(Event::Msg(idx, msg)).is_err() {
                        break;
                    }
                }
                Err(e) => {
                    let _ = tx.send(Event::Closed(idx, format!("protocol damage: {e}")));
                    break;
                }
            },
            Ok(None) => {
                let _ = tx.send(Event::Closed(idx, "clean EOF".into()));
                break;
            }
            Err(e) => {
                let _ = tx.send(Event::Closed(idx, e.to_string()));
                break;
            }
        }
    });
    Ok(WorkerHandle {
        child,
        stdin: Some(stdin),
        reader: Some(reader),
        alive: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::windows_bit_identical;
    use dangoron::BoundMode;
    use tsdata::generators;

    fn workload() -> (TimeSeriesMatrix, SlidingQuery, DangoronConfig) {
        let data = generators::clustered_matrix(10, 300, 2, 0.5, 23).unwrap();
        let query = SlidingQuery {
            start: 0,
            end: 300,
            window: 60,
            step: 20,
            threshold: 0.7,
        };
        let cfg = DangoronConfig {
            basic_window: 20,
            bound: BoundMode::PaperJump { slack: 0.0 },
            ..Default::default()
        };
        (data, query, cfg)
    }

    #[test]
    fn in_process_sharding_is_invariant_in_shard_count() {
        let (data, query, cfg) = workload();
        let single = run_single_process(WorkerMode::Batch, &cfg, &data, query).unwrap();
        for k in [2usize, 4, 8, 45] {
            let sharded = run_in_process(k, WorkerMode::Batch, &cfg, &data, query).unwrap();
            assert!(
                windows_bit_identical(&sharded.matrices, &single.matrices),
                "k={k}"
            );
            assert_eq!(sharded.stats, single.stats, "k={k}");
        }
    }

    #[test]
    fn in_process_streaming_replay_is_invariant_in_shard_count() {
        let (data, query, cfg) = workload();
        let mode = WorkerMode::StreamingReplay {
            initial_cols: 140,
            chunk_cols: 60,
        };
        let single = run_single_process(mode, &cfg, &data, query).unwrap();
        assert_eq!(
            single.matrices.len(),
            expected_windows(mode, &cfg, data.len(), &query)
        );
        for k in [2usize, 5] {
            let sharded = run_in_process(k, mode, &cfg, &data, query).unwrap();
            assert!(
                windows_bit_identical(&sharded.matrices, &single.matrices),
                "k={k}"
            );
            assert_eq!(sharded.stats, single.stats, "k={k}");
        }
    }

    #[test]
    fn expected_windows_accounts_for_partial_basic_windows() {
        let (_, query, cfg) = workload();
        assert_eq!(
            expected_windows(WorkerMode::Batch, &cfg, 300, &query),
            query.n_windows()
        );
        let stream = WorkerMode::StreamingReplay {
            initial_cols: 100,
            chunk_cols: 50,
        };
        // 310 columns: the last 10 never complete a basic window.
        assert_eq!(
            expected_windows(stream, &cfg, 310, &query),
            expected_windows(stream, &cfg, 300, &query)
        );
        assert_eq!(expected_windows(stream, &cfg, 59, &query), 0);
    }
}
