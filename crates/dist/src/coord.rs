//! The shard coordinator: worker registration over a pluggable
//! transport, assignment, fault handling and result collection.
//!
//! The coordinator owns the shard plan and a pool of `dangoron-shard`
//! workers reached through a [`Transport`] — either children it spawned
//! over stdio pipes ([`TransportMode::Spawn`]) or independently started
//! processes that connected to its TCP listener
//! ([`TransportMode::Tcp`]). Registration is the same on every link: the
//! worker's first frame must be a [`proto::Hello`] carrying the exact
//! [`proto::PROTOCOL_VERSION`] and the capability bit the run's mode
//! needs, and the coordinator answers with one [`Message::Load`] frame
//! holding the workload matrix. Every later [`Assignment`] is *slim* —
//! rank interval + config + query — so queued and re-planned shards
//! reuse the already-loaded matrix instead of re-shipping it
//! (the byte saving is recorded in [`CoordStats`] and the BENCH `shards`
//! section).
//!
//! Per round the coordinator ships one [`Assignment`] to every idle
//! worker, then waits on a single event channel fed by one reader thread
//! per worker. Three things can happen to an outstanding shard:
//!
//! * **result** — its sorted edge buffer and counters are recorded;
//! * **worker death** (EOF, write failure, protocol damage) — the
//!   shard's rank interval is *re-planned*: split across the surviving
//!   workers ([`crate::plan::split_range`]) and re-enqueued;
//! * **timeout** — the worker is killed and the shard re-planned the same
//!   way.
//!
//! A frame from a worker the coordinator already gave up on (its kill
//! racing a final in-flight `Result`) is identified by its stale
//! assignment id and discarded — never merged twice. Killing a worker
//! severs both link directions ([`Transport::kill`]), which unblocks and
//! joins its reader thread; no thread or child process outlives
//! [`run`], including on error paths (worker handles kill on drop).
//!
//! Because shards are pure functions of their rank interval, re-planning
//! never changes the answer: any disjoint cover of the triangle merges to
//! the same matrices ([`crate::merge`]), so even a run that lost workers
//! mid-flight is bit-identical to the single-process engine. Retries are
//! counted in [`CoordStats`] and surface in the BENCH `shards` section.

use crate::merge::{merge_shard_edges, ShardEdges};
use crate::plan::{split_range, ShardPlan};
use crate::proto::{self, Assignment, Message, WorkerMode};
use crate::transport::{ChildTransport, TcpTransport, Transport};
use crate::worker;
use bytes::frame;
use dangoron::{DangoronConfig, PruningStats};
use sketch::{triangular, SlidingQuery, ThresholdedMatrix};
use std::collections::{HashMap, VecDeque};
use std::io::Read;
use std::net::TcpListener;
use std::ops::Range;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};
use tsdata::TimeSeriesMatrix;

/// Where the coordinator's workers come from.
#[derive(Debug, Clone)]
pub enum TransportMode {
    /// Spawn `dangoron-shard` children and speak over stdio pipes.
    Spawn {
        /// Path to the `dangoron-shard` worker binary.
        worker_bin: PathBuf,
    },
    /// Bind `listen` and accept workers started independently with
    /// `dangoron-shard --connect ADDR`.
    Tcp {
        /// Address to bind (e.g. `127.0.0.1:7441`, or port `0` for an
        /// OS-assigned port — then use [`run_with_listener`] to learn it).
        listen: String,
        /// How long to wait for `n_workers` links before starting with
        /// however many arrived (at least one).
        accept_timeout: Duration,
    },
}

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// How workers are reached.
    pub transport: TransportMode,
    /// Number of shards to plan.
    pub n_shards: usize,
    /// Worker links to establish (clamped to the shard count).
    pub n_workers: usize,
    /// Engine threads *inside* each worker process.
    pub worker_threads: usize,
    /// Batch query or streaming replay.
    pub mode: WorkerMode,
    /// Per-assignment deadline before the worker is declared hung.
    pub timeout: Duration,
    /// Crash injection (spawn mode only): this worker index aborts on its
    /// first assignment (sets [`worker::FAIL_ENV`] in the child's
    /// environment) — the replan path's deterministic test hook. TCP
    /// workers are separate processes, so there the operator sets the
    /// environment variable on the worker itself.
    pub kill_worker: Option<usize>,
    /// Upper bound on re-plan generations per rank interval before the
    /// run is abandoned.
    pub max_attempts: u32,
}

impl CoordinatorConfig {
    /// Spawn-mode defaults: one worker per shard, single-threaded
    /// workers, batch mode, a generous 120 s deadline.
    pub fn new(worker_bin: PathBuf, n_shards: usize) -> Self {
        Self {
            transport: TransportMode::Spawn { worker_bin },
            n_shards,
            n_workers: n_shards,
            worker_threads: 1,
            mode: WorkerMode::Batch,
            timeout: Duration::from_secs(120),
            kill_worker: None,
            max_attempts: 4,
        }
    }

    /// TCP-mode defaults: like [`CoordinatorConfig::new`], but accepting
    /// `n_shards` workers on `listen` (30 s accept window).
    pub fn tcp(listen: impl Into<String>, n_shards: usize) -> Self {
        Self {
            transport: TransportMode::Tcp {
                listen: listen.into(),
                accept_timeout: Duration::from_secs(30),
            },
            ..Self::new(PathBuf::new(), n_shards)
        }
    }
}

/// Per-completed-shard accounting.
#[derive(Debug, Clone)]
pub struct ShardSummary {
    /// The rank interval (post-replan intervals can be finer than the
    /// original plan).
    pub ranks: Range<usize>,
    /// Which re-plan generation produced it (0 = original plan).
    pub attempt: u32,
    /// Worker-side prepare/open wall seconds.
    pub prepare_s: f64,
    /// Worker-side query/drain wall seconds.
    pub query_s: f64,
    /// The shard's pruning counters.
    pub stats: PruningStats,
    /// Edges the shard contributed.
    pub n_edges: usize,
}

/// Run-level coordinator accounting.
#[derive(Debug, Clone, Default)]
pub struct CoordStats {
    /// Shards in the original plan.
    pub n_shards_planned: usize,
    /// Worker links established.
    pub n_workers: usize,
    /// Re-plan events (worker death, timeout, or worker-reported error).
    pub replans: usize,
    /// Workers lost over the run.
    pub worker_failures: usize,
    /// Transport the run used (`"pipe"`, `"tcp"`, `"in-process"`).
    pub transport: String,
    /// Assignment frames sent (replans included).
    pub assignments: usize,
    /// Total payload bytes of those slim `Assign` frames.
    pub assign_bytes: u64,
    /// Total payload bytes of the per-worker `Load` frames.
    pub load_bytes: u64,
    /// Stale frames discarded (a worker's reply arriving after the
    /// coordinator re-planned its shard — each one would have been a
    /// double count).
    pub stale_frames: usize,
    /// End-to-end wall seconds (registration → merged matrices).
    pub wall_s: f64,
}

/// The distributed run's output: merged matrices (bit-identical to the
/// single-process engine), summed counters, and the audit trail.
#[derive(Debug, Clone)]
pub struct DistResult {
    /// One finalized matrix per window.
    pub matrices: Vec<ThresholdedMatrix>,
    /// Sum of every shard's [`PruningStats`] — equal to the unsharded
    /// engine's counters.
    pub stats: PruningStats,
    /// Per-shard accounting, in completion order.
    pub shards: Vec<ShardSummary>,
    /// Run-level accounting.
    pub coord: CoordStats,
}

enum Event {
    Msg(usize, Message),
    Closed(usize, String),
}

struct WorkerHandle {
    transport: Box<dyn Transport>,
    reader: Option<std::thread::JoinHandle<()>>,
    alive: bool,
}

impl WorkerHandle {
    fn send(&mut self, payload: &[u8]) -> std::io::Result<()> {
        self.transport.send(payload)
    }

    /// Declares the worker dead: severs the link (which unblocks a reader
    /// stuck in `read()`) and joins the reader thread. Idempotent.
    fn abandon(&mut self) {
        self.alive = false;
        self.transport.kill();
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }

    /// Graceful end-of-run: EOF the send half, reap the peer, join the
    /// reader.
    fn shutdown(&mut self) {
        if !self.alive {
            self.abandon();
            return;
        }
        self.transport.close_send();
        self.transport.reap();
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerHandle {
    /// Error-path cleanup: [`run`] shuts workers down explicitly on
    /// success, so a handle still holding its reader thread here means
    /// the run bailed out — kill the peer rather than leak the thread.
    fn drop(&mut self) {
        if self.reader.is_some() {
            self.abandon();
        }
    }
}

#[derive(Debug, Clone)]
struct PendingShard {
    ranks: Range<usize>,
    attempt: u32,
}

/// Locates the `dangoron-shard` binary: the `DANGORON_SHARD_BIN`
/// environment variable, then siblings of the current executable (covers
/// `target/<profile>/` for binaries and `target/<profile>/deps/` for test
/// executables).
pub fn default_worker_path() -> Option<PathBuf> {
    let name = format!("dangoron-shard{}", std::env::consts::EXE_SUFFIX);
    if let Ok(p) = std::env::var("DANGORON_SHARD_BIN") {
        let p = PathBuf::from(p);
        if p.exists() {
            return Some(p);
        }
    }
    let exe = std::env::current_exe().ok()?;
    let dir = exe.parent()?;
    let mut candidates = vec![dir.join(&name)];
    if let Some(up) = dir.parent() {
        candidates.push(up.join(&name));
    }
    candidates.into_iter().find(|c| c.exists())
}

/// Number of windows the merged result must cover for a mode.
pub fn expected_windows(
    mode: WorkerMode,
    engine_cfg: &DangoronConfig,
    data_cols: usize,
    query: &SlidingQuery,
) -> usize {
    match mode {
        WorkerMode::Batch => query.n_windows(),
        WorkerMode::StreamingReplay { .. } => {
            // A streaming session only sees whole basic windows.
            let covered = data_cols / engine_cfg.basic_window * engine_cfg.basic_window;
            if covered < query.window {
                0
            } else {
                (covered - query.window) / query.step + 1
            }
        }
    }
}

/// Runs the distributed query across workers reached through the
/// configured transport.
pub fn run(
    cfg: &CoordinatorConfig,
    engine_cfg: &DangoronConfig,
    data: &TimeSeriesMatrix,
    query: SlidingQuery,
) -> Result<DistResult, String> {
    match &cfg.transport {
        TransportMode::Spawn { .. } => run_inner(cfg, None, engine_cfg, data, query),
        TransportMode::Tcp { listen, .. } => {
            let listener = TcpListener::bind(listen)
                .map_err(|e| format!("cannot bind TCP listener on {listen}: {e}"))?;
            run_inner(cfg, Some(listener), engine_cfg, data, query)
        }
    }
}

/// [`run`] with a pre-bound listener — the caller learns the actual
/// address (port `0` binds) from [`TcpListener::local_addr`] before any
/// worker needs it. `cfg.transport` must be [`TransportMode::Tcp`].
pub fn run_with_listener(
    cfg: &CoordinatorConfig,
    listener: TcpListener,
    engine_cfg: &DangoronConfig,
    data: &TimeSeriesMatrix,
    query: SlidingQuery,
) -> Result<DistResult, String> {
    if !matches!(cfg.transport, TransportMode::Tcp { .. }) {
        return Err("run_with_listener requires TransportMode::Tcp".into());
    }
    run_inner(cfg, Some(listener), engine_cfg, data, query)
}

fn run_inner(
    cfg: &CoordinatorConfig,
    listener: Option<TcpListener>,
    engine_cfg: &DangoronConfig,
    data: &TimeSeriesMatrix,
    query: SlidingQuery,
) -> Result<DistResult, String> {
    let t_start = Instant::now();
    let plan = ShardPlan::balanced(data.n_series(), cfg.n_shards);
    if plan.shards().is_empty() {
        return Err("workload has no pairs to shard".into());
    }
    let n_workers = cfg.n_workers.clamp(1, plan.shards().len());
    let needed_cap = proto::required_cap(cfg.mode);

    // The Load frame is identical for every worker: encode it once,
    // straight from the borrowed matrix.
    let load_payload = proto::encode_load(data);
    if load_payload.len() > proto::MAX_FRAME {
        return Err(format!(
            "workload matrix of {} payload bytes exceeds the {}-byte frame limit",
            load_payload.len(),
            proto::MAX_FRAME
        ));
    }

    let (tx, rx) = mpsc::channel::<Event>();
    // Both connect paths hand back links whose handshake already
    // validated — a spawn-mode failure is fatal (our own child is
    // broken), a TCP peer that fails it is dropped without costing the
    // run or an accept slot.
    let links = match (&cfg.transport, listener) {
        (TransportMode::Spawn { worker_bin }, _) => {
            let mut links = Vec::with_capacity(n_workers);
            for w in 0..n_workers {
                links.push(spawn_worker(
                    worker_bin,
                    cfg.kill_worker == Some(w),
                    needed_cap,
                )?);
            }
            links
        }
        (TransportMode::Tcp { accept_timeout, .. }, Some(listener)) => accept_tcp_workers(
            &listener,
            n_workers,
            *accept_timeout,
            cfg.timeout,
            needed_cap,
        )?,
        (TransportMode::Tcp { .. }, None) => unreachable!("run binds before run_inner"),
    };
    let transport_kind = links
        .first()
        .map(|(t, _)| t.kind())
        .unwrap_or("none")
        .to_string();

    let mut coord = CoordStats {
        n_shards_planned: plan.shards().len(),
        n_workers: links.len(),
        transport: transport_kind,
        ..Default::default()
    };

    // Registration: ship the matrix once per worker, then hand the read
    // half to a dedicated reader thread. A worker that dies between its
    // handshake and the Load frame is dropped — worker death is
    // tolerated, so it must not cost the run while healthy links exist.
    let mut workers: Vec<WorkerHandle> = Vec::with_capacity(links.len());
    for (mut transport, mut reader) in links {
        transport.handshake_complete();
        if let Err(e) = transport.send(&load_payload) {
            eprintln!("dist: dropping a worker at registration (cannot ship the Load frame: {e})");
            transport.kill();
            continue;
        }
        coord.load_bytes += load_payload.len() as u64;
        let idx = workers.len();
        let tx = tx.clone();
        let handle = std::thread::spawn(move || reader_loop(idx, &mut *reader, &tx));
        workers.push(WorkerHandle {
            transport,
            reader: Some(handle),
            alive: true,
        });
    }
    drop(tx);
    if workers.is_empty() {
        return Err("every worker failed during registration".into());
    }
    coord.n_workers = workers.len();
    // The encoded Load frame is matrix-sized; free it before the
    // assignment/merge phase rather than holding it for the whole run.
    drop(load_payload);

    let mut pending: VecDeque<PendingShard> = plan
        .shards()
        .iter()
        .map(|s| PendingShard {
            ranks: s.ranks.clone(),
            attempt: 0,
        })
        .collect();
    // worker → (shard, deadline, assignment id)
    let mut busy: HashMap<usize, (PendingShard, Instant, u64)> = HashMap::new();
    let mut next_id: u64 = 0;
    let mut segments: Vec<ShardEdges> = Vec::new();
    let mut summaries: Vec<ShardSummary> = Vec::new();
    let mut stats = PruningStats::default();

    let live = |workers: &[WorkerHandle]| workers.iter().filter(|h| h.alive).count();
    let replan = |shard: PendingShard,
                  survivors: usize,
                  pending: &mut VecDeque<PendingShard>,
                  coord: &mut CoordStats|
     -> Result<(), String> {
        if shard.attempt + 1 > cfg.max_attempts {
            return Err(format!(
                "shard {:?} exceeded {} re-plan attempts",
                shard.ranks, cfg.max_attempts
            ));
        }
        coord.replans += 1;
        for sub in split_range(shard.ranks.clone(), survivors.max(1)) {
            pending.push_back(PendingShard {
                ranks: sub,
                attempt: shard.attempt + 1,
            });
        }
        Ok(())
    };

    loop {
        // Dispatch to every idle live worker.
        for w in 0..workers.len() {
            if pending.is_empty() {
                break;
            }
            if !workers[w].alive || busy.contains_key(&w) {
                continue;
            }
            let shard = pending.pop_front().expect("checked non-empty");
            let id = next_id;
            next_id += 1;
            let assignment = Assignment {
                shard_id: id,
                ranks: shard.ranks.clone(),
                mode: cfg.mode,
                config: DangoronConfig {
                    threads: cfg.worker_threads,
                    ..engine_cfg.clone()
                },
                query,
            };
            let payload = proto::encode(&Message::Assign(assignment));
            match workers[w].send(&payload) {
                Ok(()) => {
                    coord.assignments += 1;
                    coord.assign_bytes += payload.len() as u64;
                    busy.insert(w, (shard, Instant::now() + cfg.timeout, id));
                }
                Err(_) => {
                    // Write failure ⇒ the worker is gone.
                    workers[w].abandon();
                    coord.worker_failures += 1;
                    replan(shard, live(&workers), &mut pending, &mut coord)?;
                }
            }
        }
        if busy.is_empty() {
            if pending.is_empty() {
                break;
            }
            if live(&workers) == 0 {
                return Err("every worker died with shards outstanding".into());
            }
            continue;
        }

        // Wait for the next event or the earliest deadline.
        let deadline = busy
            .values()
            .map(|(_, d, _)| *d)
            .min()
            .expect("busy is non-empty");
        let wait = deadline.saturating_duration_since(Instant::now());
        match rx.recv_timeout(wait) {
            Ok(Event::Msg(w, Message::Result(res))) => {
                // Only the reply to the worker's outstanding assignment
                // counts. Anything else is a frame the coordinator
                // already gave up on — a kill racing a final in-flight
                // result, or a duplicate — and merging it would double
                // count the shard's edges; it is discarded by id.
                match busy.get(&w) {
                    Some(&(_, _, id)) if res.shard_id == id => {
                        let (shard, _, _) = busy.remove(&w).expect("just found");
                        stats.merge(&res.stats);
                        summaries.push(ShardSummary {
                            ranks: res.ranks.clone(),
                            attempt: shard.attempt,
                            prepare_s: res.prepare_s,
                            query_s: res.query_s,
                            stats: res.stats.clone(),
                            n_edges: res.edges.len(),
                        });
                        segments.push((res.ranks, res.edges));
                    }
                    Some(&(_, _, id)) if res.shard_id < id => {
                        coord.stale_frames += 1;
                    }
                    Some(&(_, _, id)) => {
                        return Err(format!(
                            "worker {w} answered assignment {} while {} was outstanding",
                            res.shard_id, id
                        ));
                    }
                    None => {
                        coord.stale_frames += 1;
                    }
                }
            }
            Ok(Event::Msg(w, Message::Error(id, text))) => {
                // Engine-side failure: the worker survives, the shard is
                // re-planned (possibly back onto the same worker). Stale
                // error frames are discarded like stale results.
                match busy.get(&w) {
                    Some(&(_, _, cur)) if id == cur => {
                        let (shard, _, _) = busy.remove(&w).expect("just found");
                        eprintln!("dist: worker {w} reported: {text}");
                        replan(shard, live(&workers), &mut pending, &mut coord)?;
                    }
                    _ => {
                        coord.stale_frames += 1;
                    }
                }
            }
            Ok(Event::Msg(
                w,
                msg @ (Message::Assign(_) | Message::Load(_) | Message::Hello(_)),
            )) => {
                return Err(format!("worker {w} sent a coordinator-side frame: {msg:?}"));
            }
            Ok(Event::Closed(w, why)) => {
                if workers[w].alive {
                    workers[w].abandon();
                    coord.worker_failures += 1;
                    if let Some((shard, _, _)) = busy.remove(&w) {
                        eprintln!(
                            "dist: worker {w} died ({why}); re-planning {:?}",
                            shard.ranks
                        );
                        replan(shard, live(&workers), &mut pending, &mut coord)?;
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                let now = Instant::now();
                let expired: Vec<usize> = busy
                    .iter()
                    .filter(|(_, (_, d, _))| *d <= now)
                    .map(|(w, _)| *w)
                    .collect();
                for w in expired {
                    let (shard, _, _) = busy.remove(&w).expect("just listed");
                    workers[w].abandon();
                    coord.worker_failures += 1;
                    eprintln!("dist: worker {w} timed out; re-planning {:?}", shard.ranks);
                    replan(shard, live(&workers), &mut pending, &mut coord)?;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err("every worker reader thread terminated".into());
            }
        }
    }

    for h in &mut workers {
        h.shutdown();
    }

    let n_windows = expected_windows(cfg.mode, engine_cfg, data.len(), &query);
    let matrices = merge_shard_edges(
        data.n_series(),
        query.threshold,
        engine_cfg.edge_rule,
        n_windows,
        segments,
    );
    coord.wall_s = t_start.elapsed().as_secs_f64();
    Ok(DistResult {
        matrices,
        stats,
        shards: summaries,
        coord,
    })
}

/// Reads one frame (bounded by [`proto::MAX_HELLO_FRAME`] — the peer is
/// not yet trusted) and validates it as a compatible handshake.
fn handshake(mut reader: &mut (dyn Read + Send), needed_cap: u32) -> Result<proto::Hello, String> {
    let payload = frame::read_from(&mut reader, proto::MAX_HELLO_FRAME)
        .map_err(|e| format!("cannot read the handshake frame: {e}"))?
        .ok_or("link closed before the handshake")?;
    match proto::decode(&payload).map_err(|e| format!("bad handshake frame: {e}"))? {
        Message::Hello(h) => {
            if h.version != proto::PROTOCOL_VERSION {
                return Err(format!(
                    "protocol version mismatch: worker speaks v{}, coordinator v{}",
                    h.version,
                    proto::PROTOCOL_VERSION
                ));
            }
            if h.caps & needed_cap != needed_cap {
                return Err(format!(
                    "worker lacks the required capability bit {needed_cap:#x} (has {:#x})",
                    h.caps
                ));
            }
            Ok(h)
        }
        other => Err(format!("expected Hello, got {other:?}")),
    }
}

/// The per-worker reader thread: frames off the link become events on
/// the coordinator's channel until EOF, damage, or channel teardown.
fn reader_loop(idx: usize, mut reader: &mut (dyn Read + Send), tx: &mpsc::Sender<Event>) {
    loop {
        match frame::read_from(&mut reader, proto::MAX_FRAME) {
            Ok(Some(payload)) => match proto::decode(&payload) {
                Ok(msg) => {
                    if tx.send(Event::Msg(idx, msg)).is_err() {
                        break;
                    }
                }
                Err(e) => {
                    let _ = tx.send(Event::Closed(idx, format!("protocol damage: {e}")));
                    break;
                }
            },
            Ok(None) => {
                let _ = tx.send(Event::Closed(idx, "clean EOF".into()));
                break;
            }
            Err(e) => {
                let _ = tx.send(Event::Closed(idx, e.to_string()));
                break;
            }
        }
    }
}

type Link = (Box<dyn Transport>, Box<dyn Read + Send>);

/// Runs the blocking [`handshake`] read on a helper thread with a
/// deadline — anonymous pipes have no read timeouts, so without this a
/// spawned worker that never writes its `Hello` (a hung binary, or one
/// speaking protocol v1, which waits for an `Assign` first) would
/// deadlock the coordinator. On success the read half is handed back; on
/// timeout the helper thread stays parked in `read()` until the caller
/// kills the transport, which severs the pipe and lets it exit.
fn handshake_with_deadline(
    mut reader: Box<dyn Read + Send>,
    deadline: Duration,
    needed_cap: u32,
) -> Result<Box<dyn Read + Send>, String> {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let res = handshake(&mut *reader, needed_cap);
        let _ = tx.send((reader, res));
    });
    match rx.recv_timeout(deadline) {
        Ok((reader, Ok(_))) => Ok(reader),
        Ok((_, Err(e))) => Err(e),
        Err(_) => Err(format!("no handshake within {deadline:?}")),
    }
}

/// Spawns one worker child over stdio pipes and validates its handshake
/// (10 s deadline). A failure here is fatal to the run — the configured
/// worker binary itself is broken or incompatible.
fn spawn_worker(
    worker_bin: &std::path::Path,
    inject_fail: bool,
    needed_cap: u32,
) -> Result<Link, String> {
    let mut cmd = Command::new(worker_bin);
    cmd.stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    if inject_fail {
        cmd.env(worker::FAIL_ENV, "1");
    }
    let child = cmd
        .spawn()
        .map_err(|e| format!("cannot spawn {worker_bin:?}: {e}"))?;
    let mut transport = ChildTransport::new(child);
    let reader = transport
        .take_reader()
        .ok_or("spawned child has no stdout pipe")?;
    match handshake_with_deadline(reader, Duration::from_secs(10), needed_cap) {
        Ok(reader) => Ok((Box::new(transport), reader)),
        Err(e) => {
            transport.kill();
            Err(format!("worker {worker_bin:?} handshake failed: {e}"))
        }
    }
}

/// Accepts workers off the listener until `want` have completed the
/// [`handshake`] or `accept_timeout` closes the window. The peer is not
/// yet trusted, so its first-frame read is bounded by a 10 s socket read
/// timeout (lifted by `handshake_complete` once validated) and by
/// [`proto::MAX_HELLO_FRAME`] — and each handshake runs on its **own
/// thread**, so a peer that connects and then says nothing (a
/// load-balancer probe holding the socket open) cannot serialise the
/// accept loop and starve legitimate workers queued behind it. A peer
/// that fails the handshake — a port scanner, a health check, a
/// version-mismatched worker — is dropped without costing a worker slot
/// or the run. Returns an error only when the window closes with zero
/// workers.
fn accept_tcp_workers(
    listener: &TcpListener,
    want: usize,
    accept_timeout: Duration,
    io_timeout: Duration,
    needed_cap: u32,
) -> Result<Vec<Link>, String> {
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot poll the TCP listener: {e}"))?;
    let deadline = Instant::now() + accept_timeout;
    let (tx, rx) = mpsc::channel::<Result<Link, String>>();
    let mut links: Vec<Link> = Vec::with_capacity(want);
    let mut in_flight = 0usize;
    let collect = |done: Result<Link, String>, links: &mut Vec<Link>| match done {
        Ok(link) => {
            eprintln!("dist: accepted worker {}", links.len());
            links.push(link);
        }
        Err(e) => eprintln!("dist: rejecting peer: {e}"),
    };
    while links.len() < want {
        while let Ok(done) = rx.try_recv() {
            in_flight -= 1;
            collect(done, &mut links);
        }
        if links.len() >= want {
            break;
        }
        if Instant::now() >= deadline {
            if in_flight == 0 {
                break;
            }
            // The window is closed; only handshakes already in flight can
            // still qualify. Each is bounded by the 10 s pre-trust socket
            // read timeout, so this drains quickly.
            if let Ok(done) = rx.recv_timeout(Duration::from_millis(200)) {
                in_flight -= 1;
                collect(done, &mut links);
            }
            continue;
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                // Some platforms (Windows, several BSDs) hand accepted
                // sockets the listener's nonblocking flag; the handshake
                // relies on blocking reads bounded by the read timeout.
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                let _ = stream.set_write_timeout(Some(io_timeout.max(Duration::from_secs(1))));
                match TcpTransport::new(stream) {
                    Ok(mut transport) => {
                        let mut reader = transport.take_reader().expect("fresh transport");
                        let tx = tx.clone();
                        in_flight += 1;
                        std::thread::spawn(move || {
                            let res = handshake(&mut *reader, needed_cap)
                                .map(|_| (Box::new(transport) as Box<dyn Transport>, reader))
                                .map_err(|e| format!("{peer}: {e}"));
                            let _ = tx.send(res);
                        });
                    }
                    Err(e) => eprintln!("dist: dropping {peer}: {e}"),
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => return Err(format!("TCP accept failed: {e}")),
        }
    }
    if links.is_empty() {
        return Err(format!(
            "no worker connected within {accept_timeout:?} — start workers with \
             `dangoron-shard --connect ADDR`"
        ));
    }
    if links.len() < want {
        eprintln!(
            "dist: accept window closed with {}/{want} workers; proceeding",
            links.len()
        );
    }
    Ok(links)
}

/// Runs the same shard plan **in-process** (no worker processes): every
/// shard goes through the identical [`worker::execute`] path and the
/// identical merge, sequentially. The harness falls back to this when the
/// worker binary is not built, and tests use it as the ground truth the
/// process tier must reproduce.
pub fn run_in_process(
    n_shards: usize,
    mode: WorkerMode,
    engine_cfg: &DangoronConfig,
    data: &TimeSeriesMatrix,
    query: SlidingQuery,
) -> Result<DistResult, String> {
    let t_start = Instant::now();
    let plan = ShardPlan::balanced(data.n_series(), n_shards);
    if plan.shards().is_empty() {
        return Err("workload has no pairs to shard".into());
    }
    let mut segments: Vec<ShardEdges> = Vec::new();
    let mut summaries = Vec::new();
    let mut stats = PruningStats::default();
    for s in plan.shards() {
        let a = Assignment {
            shard_id: s.id as u64,
            ranks: s.ranks.clone(),
            mode,
            config: engine_cfg.clone(),
            query,
        };
        let r = worker::execute(&a, data)?;
        stats.merge(&r.stats);
        summaries.push(ShardSummary {
            ranks: r.ranks.clone(),
            attempt: 0,
            prepare_s: r.prepare_s,
            query_s: r.query_s,
            stats: r.stats.clone(),
            n_edges: r.edges.len(),
        });
        segments.push((r.ranks, r.edges));
    }
    let n_windows = expected_windows(mode, engine_cfg, data.len(), &query);
    let matrices = merge_shard_edges(
        data.n_series(),
        query.threshold,
        engine_cfg.edge_rule,
        n_windows,
        segments,
    );
    Ok(DistResult {
        matrices,
        stats,
        shards: summaries,
        coord: CoordStats {
            n_shards_planned: plan.shards().len(),
            transport: "in-process".to_string(),
            wall_s: t_start.elapsed().as_secs_f64(),
            ..Default::default()
        },
    })
}

/// The unsharded reference: the whole triangle through the same
/// [`worker::execute`] path (for batch mode this is exactly
/// `Dangoron::prepare` + `run`). The coordinator's `--verify` compares
/// against it bitwise.
pub fn run_single_process(
    mode: WorkerMode,
    engine_cfg: &DangoronConfig,
    data: &TimeSeriesMatrix,
    query: SlidingQuery,
) -> Result<DistResult, String> {
    run_in_process(1, mode, engine_cfg, data, query).map(|mut r| {
        debug_assert_eq!(r.shards.len(), 1);
        debug_assert_eq!(r.shards[0].ranks, 0..triangular::count(data.n_series()));
        r.coord.n_shards_planned = 1;
        r
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::windows_bit_identical;
    use dangoron::BoundMode;
    use tsdata::generators;

    fn workload() -> (TimeSeriesMatrix, SlidingQuery, DangoronConfig) {
        let data = generators::clustered_matrix(10, 300, 2, 0.5, 23).unwrap();
        let query = SlidingQuery {
            start: 0,
            end: 300,
            window: 60,
            step: 20,
            threshold: 0.7,
        };
        let cfg = DangoronConfig {
            basic_window: 20,
            bound: BoundMode::PaperJump { slack: 0.0 },
            ..Default::default()
        };
        (data, query, cfg)
    }

    #[test]
    fn in_process_sharding_is_invariant_in_shard_count() {
        let (data, query, cfg) = workload();
        let single = run_single_process(WorkerMode::Batch, &cfg, &data, query).unwrap();
        for k in [2usize, 4, 8, 45] {
            let sharded = run_in_process(k, WorkerMode::Batch, &cfg, &data, query).unwrap();
            assert!(
                windows_bit_identical(&sharded.matrices, &single.matrices),
                "k={k}"
            );
            assert_eq!(sharded.stats, single.stats, "k={k}");
        }
    }

    #[test]
    fn in_process_streaming_replay_is_invariant_in_shard_count() {
        let (data, query, cfg) = workload();
        let mode = WorkerMode::StreamingReplay {
            initial_cols: 140,
            chunk_cols: 60,
        };
        let single = run_single_process(mode, &cfg, &data, query).unwrap();
        assert_eq!(
            single.matrices.len(),
            expected_windows(mode, &cfg, data.len(), &query)
        );
        for k in [2usize, 5] {
            let sharded = run_in_process(k, mode, &cfg, &data, query).unwrap();
            assert!(
                windows_bit_identical(&sharded.matrices, &single.matrices),
                "k={k}"
            );
            assert_eq!(sharded.stats, single.stats, "k={k}");
        }
    }

    #[test]
    fn expected_windows_accounts_for_partial_basic_windows() {
        let (_, query, cfg) = workload();
        assert_eq!(
            expected_windows(WorkerMode::Batch, &cfg, 300, &query),
            query.n_windows()
        );
        let stream = WorkerMode::StreamingReplay {
            initial_cols: 100,
            chunk_cols: 50,
        };
        // 310 columns: the last 10 never complete a basic window.
        assert_eq!(
            expected_windows(stream, &cfg, 310, &query),
            expected_windows(stream, &cfg, 300, &query)
        );
        assert_eq!(expected_windows(stream, &cfg, 59, &query), 0);
    }

    #[test]
    fn handshake_rejects_version_and_capability_mismatches() {
        use proto::{Hello, CAP_BATCH, CAP_STREAMING};
        let frame_of = |h: Hello| frame::encode(&proto::encode(&Message::Hello(h)));

        let mut ok: &[u8] = &frame_of(Hello::local());
        let boxed: &mut (dyn Read + Send) = &mut ok;
        handshake(boxed, CAP_BATCH).unwrap();

        let mut old: &[u8] = &frame_of(Hello {
            version: 1,
            caps: CAP_BATCH,
        });
        let err = handshake(&mut old, CAP_BATCH).unwrap_err();
        assert!(err.contains("version"), "{err}");

        let mut weak: &[u8] = &frame_of(Hello {
            version: proto::PROTOCOL_VERSION,
            caps: CAP_BATCH,
        });
        let err = handshake(&mut weak, CAP_STREAMING).unwrap_err();
        assert!(err.contains("capability"), "{err}");

        // A non-Hello first frame is rejected.
        let mut wrong: &[u8] = &frame::encode(&proto::encode(&Message::Error(0, "hi".into())));
        assert!(handshake(&mut wrong, CAP_BATCH).is_err());

        // An oversized first frame is rejected by the handshake limit
        // before its payload is even read.
        let mut big: &[u8] = &frame::encode(&[0u8; 4096]);
        assert!(handshake(&mut big, CAP_BATCH).is_err());
    }
}
