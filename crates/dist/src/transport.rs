//! Pluggable coordinator↔worker transports.
//!
//! The wire protocol ([`crate::proto`]) is a sequence of length-prefixed
//! frames over *any* byte stream; this module abstracts where that stream
//! comes from. A [`Transport`] is one established, bidirectional link to
//! one worker: framed writes on the coordinator thread, and a detachable
//! read half the coordinator moves onto a dedicated reader thread. Two
//! implementations exist:
//!
//! * [`ChildTransport`] — the PR 4 mode: the coordinator spawns a
//!   `dangoron-shard` child and speaks over its stdio pipes;
//! * [`TcpTransport`] — workers started independently (possibly on other
//!   machines) connect to `dangoron-coord --listen ADDR`, and the
//!   coordinator accepts them off a [`std::net::TcpListener`].
//!
//! Both halves of a link are severed by [`Transport::kill`] (SIGKILL for
//! a child, `shutdown(Both)` for a socket), which is what guarantees the
//! reader thread unblocks and can be joined — a reader blocked in
//! `read()` on a live pipe/socket would otherwise leak.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::process::{Child, ChildStdin, ChildStdout};
use std::time::Duration;

use bytes::frame;

/// One established link to a worker, with the read half detachable so a
/// reader thread can own it while the coordinator keeps the write half.
pub trait Transport: Send {
    /// Writes one length-prefixed frame and flushes it.
    fn send(&mut self, payload: &[u8]) -> io::Result<()>;

    /// Writes raw bytes (no framing) and flushes. Only the chaos layer
    /// uses this — truncating a frame mid-write requires bypassing the
    /// all-or-nothing framed `send`.
    fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Takes the read half (at most once) for the reader thread.
    fn take_reader(&mut self) -> Option<Box<dyn Read + Send>>;

    /// Called once the peer's handshake has been validated — the link is
    /// trusted from here on. [`TcpTransport`] uses this to lift the
    /// short pre-trust socket read timeout; the default is a no-op.
    fn handshake_complete(&mut self) {}

    /// Signals end-of-assignments: the worker's serve loop sees a clean
    /// EOF on its next read and exits.
    fn close_send(&mut self);

    /// Forcibly severs the link in both directions. Idempotent; after it
    /// returns, a blocked reader-thread `read()` is guaranteed to
    /// complete (EOF or error).
    fn kill(&mut self);

    /// Reaps whatever the transport owns (waits on a child process);
    /// called after [`Transport::close_send`] or [`Transport::kill`].
    fn reap(&mut self);

    /// A short human label for diagnostics (`"pipe"` / `"tcp"`).
    fn kind(&self) -> &'static str;
}

/// A spawned `dangoron-shard` child over its stdio pipes.
pub struct ChildTransport {
    child: Child,
    stdin: Option<ChildStdin>,
    stdout: Option<ChildStdout>,
}

impl ChildTransport {
    /// Wraps a child whose stdin/stdout were spawned piped.
    pub fn new(mut child: Child) -> Self {
        let stdin = child.stdin.take();
        let stdout = child.stdout.take();
        Self {
            child,
            stdin,
            stdout,
        }
    }
}

impl Drop for ChildTransport {
    /// Error-path cleanup: a transport dropped before a graceful
    /// `close_send` + `reap` (e.g. registration bailed out mid-loop)
    /// must not leave the child as a zombie. After a normal shutdown the
    /// kill is a no-op and the wait returns the cached status.
    fn drop(&mut self) {
        self.stdin.take();
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Transport for ChildTransport {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        let stdin = self
            .stdin
            .as_mut()
            .ok_or_else(|| io::Error::other("worker stdin already closed"))?;
        frame::write_to(stdin, payload)
    }

    fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        let stdin = self
            .stdin
            .as_mut()
            .ok_or_else(|| io::Error::other("worker stdin already closed"))?;
        stdin.write_all(bytes)?;
        stdin.flush()
    }

    fn take_reader(&mut self) -> Option<Box<dyn Read + Send>> {
        self.stdout
            .take()
            .map(|s| Box::new(s) as Box<dyn Read + Send>)
    }

    fn close_send(&mut self) {
        self.stdin.take(); // dropping the pipe is the EOF
    }

    fn kill(&mut self) {
        self.stdin.take();
        let _ = self.child.kill();
        // Reap immediately: child death closes its stdout pipe, which is
        // what unblocks the reader thread.
        let _ = self.child.wait();
    }

    fn reap(&mut self) {
        let _ = self.child.wait();
    }

    fn kind(&self) -> &'static str {
        "pipe"
    }
}

/// A worker connected over TCP. The write half is owned here; the read
/// half is a cloned handle to the same socket, so `shutdown(Both)`
/// severs both at once.
pub struct TcpTransport {
    stream: TcpStream,
    reader: Option<TcpStream>,
}

impl TcpTransport {
    /// Wraps an accepted (or connected) stream. Cloning the read half can
    /// fail only on resource exhaustion.
    pub fn new(stream: TcpStream) -> io::Result<Self> {
        let reader = stream.try_clone()?;
        Ok(Self {
            stream,
            reader: Some(reader),
        })
    }

    /// Sets the socket read timeout (used to bound the handshake read on
    /// a not-yet-trusted peer; `None` blocks forever).
    pub fn set_read_timeout(&mut self, t: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(t)
    }

    /// Reads one frame synchronously off the link — the coordinator's
    /// handshake read, before the read half is detached.
    pub fn recv(&mut self, max_len: usize) -> io::Result<Option<Vec<u8>>> {
        match self.reader.as_mut() {
            Some(r) => frame::read_from(r, max_len),
            None => Err(io::Error::other("read half already detached")),
        }
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        frame::write_to(&mut self.stream, payload)
    }

    fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    fn take_reader(&mut self) -> Option<Box<dyn Read + Send>> {
        self.reader
            .take()
            .map(|s| Box::new(s) as Box<dyn Read + Send>)
    }

    fn handshake_complete(&mut self) {
        // The read-timeout socket option is shared with the cloned read
        // half, so this also unblocks the reader thread's long waits.
        let _ = self.stream.set_read_timeout(None);
    }

    fn close_send(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Write);
    }

    fn kill(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    fn reap(&mut self) {}

    fn kind(&self) -> &'static str {
        "tcp"
    }
}

/// The worker's side of a link: a framed `Read + Write` pair driving
/// [`crate::worker::serve`]. Stdio pipes and TCP sockets both reduce to
/// this.
pub struct WorkerIo<R: Read, W: Write> {
    /// The frame source (assignments in).
    pub input: R,
    /// The frame sink (results out).
    pub output: W,
}

impl WorkerIo<TcpStream, TcpStream> {
    /// Connects to a listening coordinator, retrying with jittered
    /// exponential backoff for up to `patience` (covers the two-terminal
    /// race where the worker starts before the coordinator has bound its
    /// listener, and the reconnect path after a dropped link). The delay
    /// doubles from 100 ms up to a 2 s cap, each sleep stretched by a
    /// seeded jitter of up to half the delay — a fleet of workers
    /// restarting together must not re-dial in lockstep.
    pub fn connect(addr: &str, patience: Duration, jitter_seed: u64) -> io::Result<Self> {
        let deadline = std::time::Instant::now() + patience;
        let mut rng = crate::chaos::Rng::new(jitter_seed);
        let mut delay = Duration::from_millis(100);
        loop {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    let input = stream.try_clone()?;
                    return Ok(Self {
                        input,
                        output: stream,
                    });
                }
                Err(e) => {
                    let now = std::time::Instant::now();
                    if now >= deadline {
                        return Err(e);
                    }
                    let jitter_ms = rng.range_u64(0, delay.as_millis() as u64 / 2 + 1);
                    let sleep = (delay + Duration::from_millis(jitter_ms))
                        .min(deadline.saturating_duration_since(now));
                    std::thread::sleep(sleep);
                    delay = (delay * 2).min(Duration::from_secs(2));
                }
            }
        }
    }
}

/// How one conversation over a [`serve_with_reconnect`] link ended, as
/// reported by the serve closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkEnd {
    /// This side is done on purpose (a client that sent its last
    /// request). Never retried.
    Done,
    /// The link hit end-of-file. For a worker this is ambiguous: a peer
    /// that finished cleanly closes the link exactly the way a severed
    /// link looks from here — only the listener knows which happened, so
    /// the reconnect loop disambiguates with a probe dial.
    Eof,
}

/// Patience for the probe dial after an [`LinkEnd::Eof`]: long enough to
/// ride out a restarting listener, short enough that a peer outliving a
/// finished run exits promptly instead of grinding the full `patience`.
const EOF_PROBE_PATIENCE: Duration = Duration::from_secs(2);

/// Dials `addr` and hands the link to `serve`; re-dials and re-serves up
/// to `reconnect` more times before giving up. [`LinkEnd::Done`] ends
/// the loop — a deliberate finish is never retried. [`LinkEnd::Eof`]
/// could be either a peer that completed its run or a link that was
/// killed under this side while it sat idle (both read as end-of-file),
/// so the loop probes: if something is still listening on `addr` the run
/// is still on and the link is re-established; if nothing accepts within
/// a short patience, the peer is gone and the loop exits cleanly. An
/// `Err` (a link that died mid-frame) re-dials with the full `patience`
/// and surfaces the error once attempts are exhausted.
///
/// This is the one reconnect loop shared by every long-lived peer of a
/// listening process: `dangoron-shard --connect/--reconnect` rejoining an
/// elastic coordinator, and the serving tier's clients re-dialing a
/// `dangoron-serve` daemon. The backoff jitter is seeded per process
/// *and* per attempt ([`WorkerIo::connect`]) so a fleet killed together
/// does not re-dial in lockstep. `who` labels the retry diagnostics on
/// stderr.
pub fn serve_with_reconnect<F>(
    addr: &str,
    patience: Duration,
    reconnect: u32,
    who: &str,
    mut serve: F,
) -> io::Result<()>
where
    F: FnMut(WorkerIo<TcpStream, TcpStream>) -> io::Result<LinkEnd>,
{
    let mut attempt: u32 = 0;
    let mut probing = false;
    loop {
        let seed = (std::process::id() as u64) << 8 | attempt as u64;
        let link = if probing {
            match WorkerIo::connect(addr, EOF_PROBE_PATIENCE, seed) {
                Ok(link) => link,
                // Nothing accepting: the peer finished and left. A clean
                // end-of-run must exit cleanly, not as a dial error.
                Err(_) => return Ok(()),
            }
        } else {
            WorkerIo::connect(addr, patience, seed)?
        };
        match serve(link) {
            Ok(LinkEnd::Done) => return Ok(()),
            Ok(LinkEnd::Eof) if attempt < reconnect => {
                attempt += 1;
                probing = true;
                eprintln!(
                    "{who}: link closed; probing {addr} for a live peer (attempt {attempt}/{reconnect})"
                );
            }
            Ok(LinkEnd::Eof) => return Ok(()),
            Err(e) if attempt < reconnect => {
                attempt += 1;
                probing = false;
                eprintln!("{who}: link lost ({e}); reconnecting to {addr} (attempt {attempt}/{reconnect})");
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn tcp_transport_frames_roundtrip_and_kill_unblocks_the_reader() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut io = WorkerIo::connect(&addr.to_string(), Duration::from_secs(5), 1).unwrap();
            // Echo one frame back, then wait for the EOF from close_send.
            let got = frame::read_from(&mut io.input, 1024).unwrap().unwrap();
            frame::write_to(&mut io.output, &got).unwrap();
            assert!(frame::read_from(&mut io.input, 1024).unwrap().is_none());
        });
        let (stream, _) = listener.accept().unwrap();
        let mut t = TcpTransport::new(stream).unwrap();
        t.send(b"ping").unwrap();
        assert_eq!(t.recv(1024).unwrap().unwrap(), b"ping");
        let mut reader = t.take_reader().unwrap();
        t.close_send();
        client.join().unwrap();
        // After the peer exits, the detached read half sees EOF.
        assert!(frame::read_from(&mut reader, 1024).unwrap().is_none());
        t.kill();
        t.reap();
        assert_eq!(t.kind(), "tcp");
    }

    #[test]
    fn serve_with_reconnect_redials_on_error_and_stops_on_ok() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let acceptor = std::thread::spawn(move || {
            // Accept three links; the worker errors twice, then succeeds.
            for _ in 0..3 {
                let (_s, _) = listener.accept().unwrap();
            }
        });
        let mut served = 0;
        let res = serve_with_reconnect(&addr, Duration::from_secs(5), 5, "test", |_link| {
            served += 1;
            if served < 3 {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "injected"))
            } else {
                Ok(LinkEnd::Done)
            }
        });
        assert!(res.is_ok());
        assert_eq!(served, 3, "a deliberate finish must not be retried");
        acceptor.join().unwrap();

        // Exhausted retries surface the last error.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let acceptor = std::thread::spawn(move || {
            for _ in 0..2 {
                let (_s, _) = listener.accept().unwrap();
            }
        });
        let res = serve_with_reconnect(&addr, Duration::from_secs(5), 1, "test", |_link| {
            Err(io::Error::new(io::ErrorKind::BrokenPipe, "always"))
        });
        assert!(res.is_err());
        acceptor.join().unwrap();
    }

    #[test]
    fn eof_probe_rejoins_while_the_listener_lives() {
        // A link killed while this side sits idle reads as EOF; as long
        // as the listener is still up, the loop must re-establish it.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let acceptor = std::thread::spawn(move || {
            for _ in 0..2 {
                let (_s, _) = listener.accept().unwrap();
            }
        });
        let mut served = 0;
        let res = serve_with_reconnect(&addr, Duration::from_secs(5), 3, "test", |_link| {
            served += 1;
            if served == 1 {
                Ok(LinkEnd::Eof)
            } else {
                Ok(LinkEnd::Done)
            }
        });
        assert!(res.is_ok());
        assert_eq!(served, 2, "EOF with a live listener must rejoin");
        acceptor.join().unwrap();
    }

    #[test]
    fn eof_exits_cleanly_once_the_listener_is_gone() {
        // The other half of the ambiguity: EOF because the peer finished
        // and closed up. The probe finds nothing accepting and the loop
        // ends Ok — never a dial error, never a full-patience grind.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            serve_with_reconnect(&addr, Duration::from_secs(30), 3, "test", |_link| {
                Ok(LinkEnd::Eof)
            })
        });
        let (_s, _) = listener.accept().unwrap();
        drop(listener);
        // The probe may still catch the listener's backlog for an accept
        // or two; the attempt budget bounds it either way.
        assert!(handle.join().unwrap().is_ok());
    }

    #[test]
    fn connect_retries_until_the_listener_appears() {
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe); // free the port; nothing is listening now
        let waiter = std::thread::spawn(move || {
            WorkerIo::connect(&addr.to_string(), Duration::from_secs(10), 2)
        });
        std::thread::sleep(Duration::from_millis(400));
        let listener = TcpListener::bind(addr).unwrap();
        let (_server, _) = listener.accept().unwrap();
        assert!(waiter.join().unwrap().is_ok());
    }
}
